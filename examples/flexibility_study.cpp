// Flexibility case study (Section V-D): what does a rigid substrate cost?
//
//   * A rigid temporal-reduction-only substrate (no adder tree) can map the
//     SP-Optimized dataflow only with T_F = T_N = 1 — which is exactly the
//     pathological SPhighV instance.
//   * A rigid spatial-reduction-only substrate cannot map SP-Optimized at
//     all (the intermediate must accumulate in place).
//   * The flexible substrate picks tile sizes freely.
#include <iostream>

#include "graph/datasets.hpp"
#include "omega/omega.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace omega;

  SynthesisOptions opt;
  opt.scale = 0.5;
  const GnnWorkload w = synthesize_workload(dataset_by_name("Citeseer"), opt);
  const LayerSpec layer{16};

  TextTable t({"substrate", "mappable SP dataflow", "cycles", "psum GB",
               "slowdown vs flexible"});

  // Flexible substrate: free tile choice -> SP2-style binding.
  const Omega flexible(default_accelerator());
  const RunResult best =
      flexible.run_pattern(w, layer, pattern_by_name("SP2"));
  t.add_row({"flexible (spatial+temporal reduction)",
             best.dataflow.to_string(), with_commas(best.cycles),
             si_suffix(static_cast<double>(
                 best.traffic.gb_for(TrafficCategory::kPsum).total())),
             "1.00x"});

  // Rigid temporal-only substrate: T_F must be 1 (no spatial reduction), so
  // the only SP-Optimized instance distributes V alone == SPhighV.
  AcceleratorConfig temporal_only = default_accelerator();
  temporal_only.supports_spatial_reduction = false;
  const Omega rigid(temporal_only);
  const RunResult high =
      rigid.run_pattern(w, layer, pattern_by_name("SPhighV"));
  t.add_row({"rigid temporal-only (no adder tree)",
             high.dataflow.to_string(), with_commas(high.cycles),
             si_suffix(static_cast<double>(
                 high.traffic.gb_for(TrafficCategory::kPsum).total())),
             fixed(static_cast<double>(high.cycles) /
                       static_cast<double>(best.cycles), 2) + "x"});

  // Rigid spatial-only substrate: SP-Optimized needs in-place accumulators.
  AcceleratorConfig spatial_only = default_accelerator();
  spatial_only.supports_temporal_reduction = false;
  const Omega rigid_spatial(spatial_only);
  try {
    (void)rigid_spatial.run_pattern(w, layer, pattern_by_name("SP2"));
    t.add_row({"rigid spatial-only", "unexpected success", "-", "-", "-"});
  } catch (const ResourceError& e) {
    t.add_row({"rigid spatial-only (no accumulators)",
               "NONE — " + std::string(e.what()).substr(0, 48) + "...", "-",
               "-", "-"});
  }

  std::cout << t
            << "\nConclusion (paper Section V-D): configurable tile sizes "
               "and reduction style are what make pipelined dataflows "
               "efficient; rigidity forces the evil-row-bound mapping or "
               "none at all.\n";
  return 0;
}
