// Mapping-optimizer example (Section VI): search the taxonomy space for the
// best dataflow for one workload, under runtime and energy objectives, and
// print the Pareto frontier.
//
// Usage: dse_search [dataset] [max_candidates]
#include <iostream>

#include "dse/search.hpp"
#include "graph/datasets.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace omega;

  const std::string dataset = argc > 1 ? argv[1] : "Cora";
  const std::size_t budget =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2000;

  SynthesisOptions opt;
  opt.scale = 0.5;
  const GnnWorkload w = synthesize_workload(dataset_by_name(dataset), opt);
  const LayerSpec layer{16};
  const Omega omega(default_accelerator());

  std::cout << "searching mappings for " << w.name << " (V="
            << with_commas(w.num_vertices()) << ", E="
            << with_commas(w.num_edges()) << ", F=" << w.in_features
            << ", G=" << layer.out_features << ")\n";

  for (const Objective obj : {Objective::kRuntime, Objective::kEnergy}) {
    SearchOptions so;
    so.objective = obj;
    so.max_candidates = budget;
    so.include_ca = true;
    so.top_k = 5;
    const SearchResult r = search_mappings(omega, w, layer, so);

    std::cout << "\nobjective: " << to_string(obj) << " — evaluated "
              << r.evaluated << " of " << r.generated << " candidates\n";
    TextTable t({"rank", "dataflow", "cycles", "energy (uJ)"});
    for (std::size_t i = 0; i < r.ranked.size(); ++i) {
      t.add_row({std::to_string(i + 1), r.ranked[i].dataflow.to_string(),
                 with_commas(r.ranked[i].cycles),
                 fixed(r.ranked[i].on_chip_pj / 1e6, 3)});
    }
    std::cout << t;
  }

  SearchOptions so;
  so.max_candidates = budget;
  const SearchResult r = search_mappings(omega, w, layer, so);
  std::cout << "\nruntime/energy Pareto frontier (" << r.pareto.size()
            << " points):\n";
  TextTable t({"cycles", "energy (uJ)", "dataflow"});
  for (const auto& c : r.pareto) {
    t.add_row({with_commas(c.cycles), fixed(c.on_chip_pj / 1e6, 3),
               c.dataflow.to_string()});
  }
  std::cout << t;
  return 0;
}
