// End-to-end GNN inference: a classic two-layer GCN on a citation-network
// style graph, with (a) functional verification that the simulated dataflow
// computes exactly what the reference kernels compute, and (b) the per-layer
// cost-model results under a chosen dataflow pattern.
#include <iostream>

#include "gnn/inference.hpp"
#include "graph/generators.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace omega;

  // A small citation-style graph (heavy-tailed degrees) and a 2-layer GCN:
  // 64 input features -> 16 hidden -> 7 classes.
  Rng rng(11);
  const CSRGraph raw = lognormal_chung_lu(600, 2400, 1.2, rng);
  const CSRGraph adj = normalize_adjacency(raw, GnnModel::kGCN);
  const GnnModelSpec model = gcn_two_layer(64, 16, 7);

  MatrixF x(adj.num_vertices(), 64);
  x.fill_uniform(rng);
  std::vector<MatrixF> weights;
  weights.emplace_back(64, 16);
  weights.emplace_back(16, 7);
  weights[0].fill_uniform(rng, -0.3, 0.3);
  weights[1].fill_uniform(rng, -0.3, 0.3);

  // (a) Functional check: run the actual numbers through the SP-Optimized
  // loop structure and compare with the reference implementation.
  auto df = DataflowDescriptor::parse("SP_AC(VsFsNt, VsFsGt)");
  df.agg.tiles = {.v = 16, .n = 1, .f = 32, .g = 1};
  df.cmb.tiles = {.v = 16, .n = 1, .f = 32, .g = 1};
  const MatrixF ref = reference_inference(adj, x, weights, model);
  const MatrixF got = functional_inference(adj, x, weights, model, df);
  std::cout << "functional check: max |delta| = "
            << fixed(max_abs_diff(ref, got), 8)
            << (approx_equal(ref, got, 1e-3, 1e-3) ? "  (PASS)" : "  (FAIL)")
            << "\n\n";

  // (b) Cost model per layer under the SP2 pattern.
  GnnWorkload w;
  w.name = "citation-toy";
  w.adjacency = adj;
  w.in_features = 64;
  const Omega omega(default_accelerator());
  const ModelRunResult r =
      run_model(omega, w, model, pattern_by_name("SP2"));

  TextTable t({"layer", "F -> G", "dataflow", "cycles", "energy (uJ)",
               "agg util", "cmb util"});
  for (std::size_t l = 0; l < r.layers.size(); ++l) {
    const auto& lr = r.layers[l];
    const auto spec = model.layer_spec(l);
    t.add_row({std::to_string(l), std::to_string(spec.in_features) + " -> " +
                                      std::to_string(spec.out_features),
               lr.dataflow.to_string(), with_commas(lr.cycles),
               fixed(lr.energy.on_chip_pj() / 1e6, 3),
               fixed(100 * lr.agg_dynamic_utilization(), 1) + "%",
               fixed(100 * lr.cmb_dynamic_utilization(), 1) + "%"});
  }
  std::cout << t << "\ntotal: " << with_commas(r.total_cycles) << " cycles, "
            << fixed(r.total_on_chip_pj / 1e6, 3) << " uJ on-chip, "
            << with_commas(r.total_macs) << " MACs\n";
  return 0;
}
