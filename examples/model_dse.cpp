// Model-level mapping study (Fig. 10 evaluates whole multi-layer models):
// for each workload, search a dataflow per layer of a 2-layer GCN and
// compare the heterogeneous per-layer mapping against every fixed Table V
// configuration replayed over all layers — the per-layer flexibility
// argument of VersaGNN / Dynasparse in OMEGA's cost model.
//
// Usage: model_dse [max_candidates_per_layer] [scale] [json_path]
#include <fstream>
#include <iostream>

#include "dse/model_search.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace omega;

  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2000;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
  const std::string json_path = argc > 3 ? argv[3] : "MODEL_DSE.json";

  const Omega omega(default_accelerator());
  const std::vector<std::string> datasets{"Cora", "Citeseer", "Collab"};

  std::cout << "per-layer mapping search, 2-layer GCN (hidden 16), scale "
            << fixed(scale, 2) << ", per-layer budget " << budget << "\n\n";

  // "pipelined best" is the pipelined ranking's own winner — possibly a
  // *different* per-layer assignment than the sequential best the dataflow
  // columns describe (that is the point of composed ranking); the JSON
  // carries both of that candidate's numbers so the two are never ratioed
  // across different mappings.
  TextTable t({"workload", "layer-0 dataflow", "layer-1 dataflow",
               "hetero cycles", "pipelined best", "best fixed",
               "fixed cycles", "speedup"});
  // Shared writer (util/json.hpp): workload names and dataflow notations
  // are escaped, unlike the hand-rolled emitter this replaced.
  JsonWriter jw(2);
  jw.begin_array();
  for (const auto& name : datasets) {
    SynthesisOptions so;
    so.scale = scale;
    const GnnWorkload w = synthesize_workload(dataset_by_name(name), so);
    const GnnModelSpec spec = gcn_two_layer(w.in_features, 16, 8);

    ModelSearchOptions opt;
    opt.layer.max_candidates = budget;
    opt.prune = true;
    // One warmed context serves both composition modes: the pipelined
    // pass re-sweeps the same candidates, so its evaluations are memo hits.
    const WorkloadContext context(w.adjacency);
    const ModelSearchResult r =
        search_model_mappings(omega, w, spec, opt, &context);
    const ModelCandidate& best = r.best();
    // Cross-layer composition: rank the same per-layer sweeps by composed
    // makespan. On these scale-free graphs the winner rarely moves (the
    // dependency rows saturate), but the composed cycles can never exceed
    // the sequential best.
    ModelSearchOptions popt = opt;
    popt.compose = ModelCompose::kPipelined;
    const ModelSearchResult piped =
        search_model_mappings(omega, w, spec, popt, &context);
    const auto fixed_run = best_fixed_pattern(omega, w, spec);
    const double speedup =
        fixed_run ? static_cast<double>(fixed_run->result.total_cycles) /
                        static_cast<double>(best.total_cycles)
                  : 0.0;

    t.add_row({w.name, best.per_layer[0].to_string(),
               best.per_layer[1].to_string(), with_commas(best.total_cycles),
               with_commas(piped.best().composed_cycles),
               fixed_run ? fixed_run->name : "-",
               fixed_run ? with_commas(fixed_run->result.total_cycles) : "-",
               fixed(speedup, 3) + "x"});

    jw.begin_object();
    jw.member("workload", w.name);
    jw.member("heterogeneous_cycles", best.total_cycles);
    jw.member("pipelined_composed_cycles", piped.best().composed_cycles);
    jw.member("pipelined_total_cycles", piped.best().total_cycles);
    jw.member("heterogeneous_on_chip_pj", best.total_on_chip_pj);
    jw.member("evaluated", static_cast<std::uint64_t>(r.evaluated));
    jw.member("pruned", static_cast<std::uint64_t>(r.pruned));
    if (fixed_run) {
      jw.member("best_fixed", fixed_run->name);
      jw.member("best_fixed_cycles", fixed_run->result.total_cycles);
      jw.member("speedup", speedup);
    }
    jw.key("per_layer").begin_array();
    for (const auto& df : best.per_layer) jw.value(df.to_string());
    jw.end_array();
    jw.end_object();
  }
  jw.end_array();
  std::ofstream json(json_path);
  json << jw.str() << "\n";
  std::cout << t << "\n(json: " << json_path << ")\n";
  return 0;
}
