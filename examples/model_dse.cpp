// Model-level mapping study (Fig. 10 evaluates whole multi-layer models):
// for each workload, search a dataflow per layer of a 2-layer GCN and
// compare the heterogeneous per-layer mapping against every fixed Table V
// configuration replayed over all layers — the per-layer flexibility
// argument of VersaGNN / Dynasparse in OMEGA's cost model.
//
// Usage: model_dse [max_candidates_per_layer] [scale] [json_path]
#include <fstream>
#include <iostream>

#include "dse/model_search.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace omega;

  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2000;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
  const std::string json_path = argc > 3 ? argv[3] : "MODEL_DSE.json";

  const Omega omega(default_accelerator());
  const std::vector<std::string> datasets{"Cora", "Citeseer", "Collab"};

  std::cout << "per-layer mapping search, 2-layer GCN (hidden 16), scale "
            << fixed(scale, 2) << ", per-layer budget " << budget << "\n\n";

  TextTable t({"workload", "layer-0 dataflow", "layer-1 dataflow",
               "hetero cycles", "best fixed", "fixed cycles", "speedup"});
  std::ofstream json(json_path);
  json << "[\n";
  bool first = true;
  for (const auto& name : datasets) {
    SynthesisOptions so;
    so.scale = scale;
    const GnnWorkload w = synthesize_workload(dataset_by_name(name), so);
    const GnnModelSpec spec = gcn_two_layer(w.in_features, 16, 8);

    ModelSearchOptions opt;
    opt.layer.max_candidates = budget;
    opt.prune = true;
    const ModelSearchResult r = search_model_mappings(omega, w, spec, opt);
    const ModelCandidate& best = r.best();
    const auto fixed_run = best_fixed_pattern(omega, w, spec);
    const double speedup =
        fixed_run ? static_cast<double>(fixed_run->result.total_cycles) /
                        static_cast<double>(best.total_cycles)
                  : 0.0;

    t.add_row({w.name, best.per_layer[0].to_string(),
               best.per_layer[1].to_string(), with_commas(best.total_cycles),
               fixed_run ? fixed_run->name : "-",
               fixed_run ? with_commas(fixed_run->result.total_cycles) : "-",
               fixed(speedup, 3) + "x"});

    json << (first ? "" : ",\n") << "  {\"workload\": \"" << w.name
         << "\", \"heterogeneous_cycles\": " << best.total_cycles
         << ", \"heterogeneous_on_chip_pj\": " << best.total_on_chip_pj
         << ", \"evaluated\": " << r.evaluated
         << ", \"pruned\": " << r.pruned;
    if (fixed_run) {
      json << ", \"best_fixed\": \"" << fixed_run->name
           << "\", \"best_fixed_cycles\": " << fixed_run->result.total_cycles
           << ", \"speedup\": " << speedup;
    }
    json << ", \"per_layer\": [";
    for (std::size_t l = 0; l < best.per_layer.size(); ++l) {
      json << (l ? ", " : "") << "\"" << best.per_layer[l].to_string()
           << "\"";
    }
    json << "]}";
    first = false;
  }
  json << "\n]\n";
  std::cout << t << "\n(json: " << json_path << ")\n";
  return 0;
}
