// Three-phase GAT-style layer through the N-phase pipeline API
// (omega/pipeline.hpp) — the example that proves the evaluation core is not
// hard-wired to the paper's two-phase Aggregation/Combination shape:
//
//   score:  dense transform X[V,F] x W_a[F,H]      (attention-score head)
//   agg:    sparse aggregate A[V,V] x S[V,H]       (attention-weighted sum)
//   xform:  sparse-weight transform Z[V,H] x W[H,G] (pruned output weights)
//
// The score -> agg boundary is chunkable (row-granular hand-off into the
// scatter-order aggregation), so we compare Seq, SP-Generic and Parallel
// Pipeline there; the pruned output transform sweeps the weight density to
// show the sparse-weight Combination engine tracking it. A pipeline-space
// DSE sweep (dse/pipeline_search.hpp) then searches the same chain's full
// mapping space and reports its speedup over the best hand-picked spec.
#include <algorithm>
#include <iostream>

#include "dse/pipeline_search.hpp"
#include "graph/datasets.hpp"
#include "omega/pipeline.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace omega;

  SynthesisOptions so;
  so.scale = 0.25;
  const GnnWorkload w = synthesize_workload(dataset_by_name("Cora"), so);
  const Omega omega;  // default 512-PE substrate

  const auto make_spec = [&](InterPhase first_boundary, double density) {
    PipelineSpec s;
    PhaseSpec score;
    score.name = "score";
    score.engine = PhaseEngine::kDenseDense;
    score.dataflow = IntraPhaseDataflow::parse("VsFtGs", GnnPhase::kCombination);
    score.dataflow.tiles = {.v = 16, .n = 1, .f = 1, .g = 16};
    score.out_features = 16;
    PhaseSpec agg;
    agg.name = "agg";
    agg.engine = PhaseEngine::kSparseDense;
    agg.dataflow = IntraPhaseDataflow::parse("NtFsVt", GnnPhase::kAggregation);
    agg.dataflow.tiles = {.v = 1, .n = 8, .f = 16, .g = 1};
    PhaseSpec xform;
    xform.name = "xform";
    xform.engine = PhaseEngine::kSparseSparse;
    xform.dataflow = IntraPhaseDataflow::parse("GsVtFt", GnnPhase::kCombination);
    xform.dataflow.tiles = {.v = 1, .n = 1, .f = 1, .g = 8};
    xform.out_features = 8;
    xform.weight_density = density;
    s.phases = {score, agg, xform};
    s.boundaries = {first_boundary, InterPhase::kSequential};
    return s;
  };

  std::cout << "GAT-style 3-phase pipeline on " << w.name << " (V="
            << with_commas(w.num_vertices()) << ", E="
            << with_commas(w.num_edges()) << ", F=" << w.in_features
            << "), widths F->16->16->8\n\n";

  // --- Inter-phase strategy at the score -> agg boundary -------------------
  TextTable t({"score->agg boundary", "granularity", "chunks", "score",
               "agg", "xform", "total"});
  std::uint64_t hand_picked_best = std::numeric_limits<std::uint64_t>::max();
  for (const InterPhase b0 : {InterPhase::kSequential, InterPhase::kSPGeneric,
                              InterPhase::kParallelPipeline}) {
    PipelineSpec s = make_spec(b0, 0.5);
    if (b0 == InterPhase::kParallelPipeline) {
      // Split the array 1:1 between the PP pair; shrink the score tile so
      // both phases fit their halves.
      s.pe_fractions = {1.0, 1.0, 1.0};
      s.phases[0].dataflow.tiles = {.v = 16, .n = 1, .f = 1, .g = 8};
      s.phases[1].dataflow.tiles = {.v = 1, .n = 8, .f = 16, .g = 1};
    }
    const PipelineResult r = omega.run_pipeline(w, s);
    hand_picked_best = std::min(hand_picked_best, r.cycles);
    t.add_row({to_string(b0), to_string(r.boundaries[0].granularity),
               std::to_string(r.boundaries[0].pipeline_chunks),
               with_commas(r.phases[0].result.cycles),
               with_commas(r.phases[1].result.cycles),
               with_commas(r.phases[2].result.cycles),
               with_commas(r.cycles)});
  }
  std::cout << t << "\n";

  // --- Pipeline-space DSE over the same chain ------------------------------
  // The chain fixes the engines/widths/density; the searcher supplies loop
  // orders, tilings, boundary strategies, and PP PE fractions.
  PipelineChainSpec chain;
  chain.phases = {{.name = "score",
                   .engine = PhaseEngine::kDenseDense,
                   .out_features = 16},
                  {.name = "agg", .engine = PhaseEngine::kSparseDense},
                  {.name = "xform",
                   .engine = PhaseEngine::kSparseSparse,
                   .out_features = 8,
                   .weight_density = 0.5}};
  PipelineSearchOptions pso;
  pso.max_candidates = 2048;
  pso.prune = true;
  const PipelineSearchResult searched =
      search_pipeline_mappings(omega, w, chain, pso);
  const RankedPipelineCandidate& best = searched.best();
  const double dse_speedup =
      best.cycles > 0 ? static_cast<double>(hand_picked_best) /
                            static_cast<double>(best.cycles)
                      : 0.0;
  std::cout << "pipeline-space DSE over " << chain.to_string() << ":\n  best "
            << best.key << " at " << with_commas(best.cycles) << " cycles ("
            << searched.evaluated << " evaluated + " << searched.pruned
            << " culled of " << with_commas(searched.generated)
            << " generated)\n  searched vs best hand-picked ("
            << with_commas(hand_picked_best) << " cycles): "
            << fixed(dse_speedup, 3) << "x\n\n";

  // --- Sparse-weight density sweep on the output transform -----------------
  TextTable d({"W density", "xform cycles", "xform GB traffic", "total"});
  for (const double density : {1.0, 0.5, 0.25, 0.1}) {
    const PipelineResult r =
        omega.run_pipeline(w, make_spec(InterPhase::kSPGeneric, density));
    d.add_row({fixed(density, 2),
               with_commas(r.phases[2].result.cycles),
               with_commas(r.phases[2].result.traffic.gb_total()),
               with_commas(r.cycles)});
  }
  std::cout << d
            << "\nPruning the output weights shrinks the sparse-weight "
               "Combination phase monotonically — the DLRM/pruned-GNN "
               "scenario the ROADMAP's sparse-Combination item asked for.\n";
  return 0;
}
