// Beyond GNNs (paper Section VI): the taxonomy and the inter-phase analysis
// generalize to other multiphase sparse/dense kernels. DLRM inference is
// the paper's named example: an SpMM (multi-hot embedding-bag lookup) and a
// DenseGEMM (bottom MLP) run in PARALLEL, their outputs concatenate, and a
// DenseGEMM (top MLP) consumes the result.
//
// This example builds that pipeline from the same phase engines: the two
// independent producers split the PE array (a PP-style allocation) and the
// top MLP consumes at row granularity; we sweep the split to find the
// balanced allocation, exactly like Fig. 14 does for GNN phases. The serial
// embedding -> top-MLP sub-pipeline is then handed to the pipeline-space
// searcher (dse/pipeline_search.hpp), which finds its own orders, tilings,
// and boundary strategy — reported as speedup over the hand-picked binding.
#include <iostream>

#include "dse/pipeline_search.hpp"
#include "engine/gemm_engine.hpp"
#include "engine/spmm_engine.hpp"
#include "graph/generators.hpp"
#include "omega/omega.hpp"
#include "omega/pipeline.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace omega;

  // DLRM-ish shapes: batch 2048, 26 sparse features with multi-hot lookups
  // into a 100K-row embedding table of width 64; dense input 13 -> 512 -> 64
  // bottom MLP; top MLP on the concatenated (26+1)*64 features.
  const std::size_t batch = 2048;
  const std::size_t table_rows = 100000;
  const std::size_t emb_dim = 64;
  const std::size_t hots = 26;   // avg lookups per sample (ragged!)
  const std::size_t dense_in = 512;
  const std::size_t concat = 2 * emb_dim;
  const std::size_t top_out = 256;

  // The lookup matrix is a batch x table_rows sparse matrix with ~26
  // nonzeros per row and a popularity skew — the same "evil row" structure
  // GNN adjacencies have, transposed into hot embedding rows.
  Rng rng(21);
  std::vector<std::pair<VertexId, VertexId>> lookups;
  std::vector<double> popularity(table_rows);
  for (auto& p : popularity) p = rng.lognormal(0.0, 1.2);
  const DiscreteSampler sampler(popularity);
  const std::size_t padded =
      std::max(batch, table_rows);  // square CSR container
  for (std::size_t b = 0; b < batch; ++b) {
    const auto n = static_cast<std::size_t>(
        std::max<std::int64_t>(1, rng.uniform_int(-6, 6) + static_cast<std::int64_t>(hots)));
    for (std::size_t k = 0; k < n; ++k) {
      lookups.emplace_back(static_cast<VertexId>(b),
                           static_cast<VertexId>(sampler.sample(rng)));
    }
  }
  const CSRGraph lookup = CSRGraph::from_coo(padded, std::move(lookups));

  const AcceleratorConfig hw = default_accelerator();

  TextTable t({"PE split (emb-mlp)", "embedding SpMM", "bottom MLP",
               "parallel phase", "top MLP", "total"});
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  std::string best_split;
  for (const double frac : {0.25, 0.5, 0.75}) {
    const auto pes_emb = static_cast<std::size_t>(
        static_cast<double>(hw.num_pes) * frac);
    const std::size_t pes_mlp = hw.num_pes - pes_emb;

    // Embedding bag: SpMM over the ragged lookup rows (VFN gather order).
    SpmmPhaseConfig emb;
    emb.graph = &lookup;
    emb.feat = emb_dim;
    emb.order = LoopOrder::parse("VFN", GnnPhase::kAggregation);
    emb.tiles = {.v = std::min<std::size_t>(pow2_floor(pes_emb / 16), 32),
                 .n = 1,
                 .f = 16,
                 .g = 1};
    emb.pes = pes_emb;
    emb.b_category = TrafficCategory::kInput;
    emb.out_category = TrafficCategory::kIntermediate;
    const PhaseResult emb_r = run_spmm_phase(emb);

    // Bottom MLP: batch x dense_in x emb_dim GEMM.
    GemmPhaseConfig mlp;
    mlp.rows = batch;
    mlp.inner = dense_in;
    mlp.cols = emb_dim;
    mlp.order = LoopOrder::parse("VGF", GnnPhase::kCombination);
    mlp.tiles = {.v = std::min<std::size_t>(pow2_floor(pes_mlp / 16), 64),
                 .n = 1,
                 .f = 1,
                 .g = 16};
    mlp.pes = pes_mlp;
    mlp.a_category = TrafficCategory::kInput;
    const PhaseResult mlp_r = run_gemm_phase(mlp);

    // Top MLP consumes the concatenated features once both are done.
    GemmPhaseConfig top;
    top.rows = batch;
    top.inner = concat;
    top.cols = top_out;
    top.order = LoopOrder::parse("VGF", GnnPhase::kCombination);
    top.tiles = {.v = 32, .n = 1, .f = 1, .g = 16};
    top.pes = hw.num_pes;
    const PhaseResult top_r = run_gemm_phase(top);

    const std::uint64_t parallel = std::max(emb_r.cycles, mlp_r.cycles);
    const std::uint64_t total = parallel + top_r.cycles;
    if (total < best) {
      best = total;
      best_split = fixed(frac * 100, 0) + "-" + fixed(100 - frac * 100, 0);
    }
    t.add_row({fixed(frac * 100, 0) + "-" + fixed(100 - frac * 100, 0),
               with_commas(emb_r.cycles), with_commas(mlp_r.cycles),
               with_commas(parallel), with_commas(top_r.cycles),
               with_commas(total)});
  }
  std::cout << t << "\nbest split: " << best_split
            << " — the same load-balancing trade-off as Fig. 14, on a "
               "non-GNN multiphase kernel (paper Section VI).\n";

  // --- Pipeline-space DSE over the serial embedding -> top-MLP chain -------
  // The lookup matrix doubles as a GNN-style adjacency, so the generic
  // N-phase searcher applies directly: the chain fixes the engines and
  // widths, the searcher supplies the mapping.
  GnnWorkload w;
  w.name = "dlrm-lookup";
  w.adjacency = lookup;
  w.in_features = emb_dim;
  const Omega omega(hw);

  PipelineChainSpec chain;
  chain.phases = {{.name = "emb", .engine = PhaseEngine::kSparseDense},
                  {.name = "top",
                   .engine = PhaseEngine::kDenseDense,
                   .out_features = top_out}};

  // Hand-picked binding of the same chain: the example's orders and tiles,
  // sequential boundary, full array for each phase.
  const std::vector<IntraPhaseDataflow> hand_phases{
      {.phase = GnnPhase::kAggregation,
       .order = LoopOrder::parse("VFN", GnnPhase::kAggregation),
       .tiles = {.v = 32, .n = 1, .f = 16, .g = 1}},
      {.phase = GnnPhase::kCombination,
       .order = LoopOrder::parse("VGF", GnnPhase::kCombination),
       .tiles = {.v = 32, .n = 1, .f = 1, .g = 16}}};
  const std::vector<InterPhase> hand_bounds{InterPhase::kSequential};
  const PipelineSpec hand =
      chain.bind({hand_phases, hand_bounds, std::span<const double>{}});
  const PipelineResult hand_r = omega.run_pipeline(w, hand);

  PipelineSearchOptions pso;
  pso.max_candidates = 512;
  pso.prune = true;
  const PipelineSearchResult searched =
      search_pipeline_mappings(omega, w, chain, pso);
  const RankedPipelineCandidate& dse_best = searched.best();
  const double dse_speedup =
      dse_best.cycles > 0 ? static_cast<double>(hand_r.cycles) /
                                static_cast<double>(dse_best.cycles)
                          : 0.0;
  std::cout << "\npipeline-space DSE over " << chain.to_string() << ":\n  best "
            << dse_best.key << " at " << with_commas(dse_best.cycles)
            << " cycles ("
            << searched.evaluated << " evaluated + " << searched.pruned
            << " culled of " << with_commas(searched.generated)
            << " generated)\n  searched vs hand-picked ("
            << with_commas(hand_r.cycles) << " cycles): "
            << fixed(dse_speedup, 3) << "x\n";
  return 0;
}
