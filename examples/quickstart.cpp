// Quickstart: evaluate one GNN dataflow on one graph in ~30 lines.
//
//   1. Build (or load) a CSR graph and normalize it for GCN.
//   2. Describe a dataflow in the paper's taxonomy notation.
//   3. Run the OMEGA cost model and inspect runtime/energy/buffering.
#include <iostream>

#include "graph/generators.hpp"
#include "omega/omega.hpp"
#include "util/format.hpp"

int main() {
  using namespace omega;

  // A small social-network-like graph: 1000 vertices, ~6000 edges.
  Rng rng(/*seed=*/7);
  GnnWorkload workload;
  workload.name = "quickstart";
  workload.adjacency = lognormal_chung_lu(1000, 6000, /*sigma=*/1.0, rng)
                           .with_self_loops()
                           .gcn_normalized();
  workload.in_features = 128;  // F
  const LayerSpec layer{16};   // G: GCN hidden width

  // HyGCN's dataflow expressed in the taxonomy (Section III-C), bound to
  // concrete tile sizes: Aggregation VtFsNt feeding Combination VsGsFt
  // through a row-granular parallel pipeline.
  auto df = DataflowDescriptor::parse("PP_AC(VtFsNt, VsGsFt)");
  df.agg.tiles = {.v = 1, .n = 1, .f = 256, .g = 1};   // 256 PEs on Agg
  df.cmb.tiles = {.v = 16, .n = 1, .f = 1, .g = 16};   // 256 PEs on Cmb
  df.pp_agg_pe_fraction = 0.5;

  const Omega omega(default_accelerator());
  const RunResult r = omega.run(workload, layer, df);

  std::cout << "dataflow:     " << df.to_string() << "\n"
            << "granularity:  " << to_string(r.granularity) << " ("
            << r.pipeline_chunks << " pipeline chunks, Pel = "
            << r.pipeline_elements << ")\n"
            << "runtime:      " << with_commas(r.cycles) << " cycles\n"
            << "  aggregation " << with_commas(r.agg.cycles) << " on "
            << r.pes_agg << " PEs (util "
            << fixed(100 * r.agg_dynamic_utilization(), 1) << "%)\n"
            << "  combination " << with_commas(r.cmb.cycles) << " on "
            << r.pes_cmb << " PEs (util "
            << fixed(100 * r.cmb_dynamic_utilization(), 1) << "%)\n"
            << "buffering:    " << r.intermediate_buffer_elements
            << " intermediate elements (Table III)\n"
            << "energy:       " << fixed(r.energy.on_chip_pj() / 1e6, 3)
            << " uJ on-chip (GB " << fixed(r.energy.gb_pj / 1e6, 3)
            << ", RF " << fixed(r.energy.rf_pj / 1e6, 3) << ", int-buf "
            << fixed(r.energy.partition_pj / 1e6, 3) << ")\n";

  // Compare against running the two phases sequentially.
  auto seq = df;
  seq.inter = InterPhase::kSequential;
  const RunResult s = omega.run(workload, layer, seq);
  std::cout << "vs Seq:       " << with_commas(s.cycles) << " cycles -> "
            << fixed(static_cast<double>(s.cycles) /
                         static_cast<double>(r.cycles), 2)
            << "x speedup from pipelining\n";
  return 0;
}
