// Case study: the dataflows of two published GNN accelerator ASICs mapped
// onto the same flexible substrate (Section III-C):
//
//   HyGCN    — PP_AC(VxFsNt, VsGsFt): row-granular pipeline, Aggregation
//              first, fixed engine split (we model its rigid 50-50).
//   AWB-GCN  — PP_CA(FsNtVs, GtFtVs): column-granular pipeline, Combination
//              first, flexible PE allocation (we sweep the split).
//
// Running both through OMEGA separates the dataflow's contribution from the
// microarchitecture's — the comparison the paper argues ASIC-vs-ASIC
// evaluations cannot make.
#include <iostream>

#include "graph/datasets.hpp"
#include "omega/omega.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace omega;

  const Omega omega(default_accelerator());
  const LayerSpec layer{16};

  SynthesisOptions opt;
  opt.scale = 0.5;  // example-sized workloads

  TextTable t({"dataset", "HyGCN cycles", "AWB-GCN cycles (50-50)",
               "AWB-GCN best split", "best cycles", "winner"});
  for (const auto& spec : table4_datasets()) {
    const GnnWorkload w = synthesize_workload(spec, opt);
    const WorkloadDims dims = dims_of(w, layer);

    // HyGCN: fixed allocation, row granularity, AC.
    DataflowPattern hygcn;
    hygcn.name = "HyGCN";
    hygcn.inter = InterPhase::kParallelPipeline;
    hygcn.phase_order = PhaseOrder::kAC;
    hygcn.agg = IntraPhasePattern::parse("VxFsNt", GnnPhase::kAggregation);
    hygcn.cmb = IntraPhasePattern::parse("VsGsFt", GnnPhase::kCombination);
    hygcn.style = TileStyle::kLowRows;
    hygcn.pp_agg_pe_fraction = 0.5;
    const RunResult hy = omega.run(w, layer, bind_tiles(hygcn, dims,
                                                        omega.config()));

    // AWB-GCN: CA order, column granularity, workload-rebalanced split.
    DataflowPattern awb;
    awb.name = "AWB-GCN";
    awb.inter = InterPhase::kParallelPipeline;
    awb.phase_order = PhaseOrder::kCA;
    awb.agg = IntraPhasePattern::parse("FsNtVs", GnnPhase::kAggregation);
    awb.cmb = IntraPhasePattern::parse("GtFtVs", GnnPhase::kCombination);
    // AWB-GCN's column product parallelizes output vertices across ALL the
    // PEs of each engine.
    awb.style = TileStyle::kExtremeV;

    std::uint64_t fifty = 0;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    double best_frac = 0.5;
    for (const double frac : {0.25, 0.375, 0.5, 0.625, 0.75}) {
      awb.pp_agg_pe_fraction = frac;
      const RunResult r =
          omega.run(w, layer, bind_tiles(awb, dims, omega.config()));
      if (frac == 0.5) fifty = r.cycles;
      if (r.cycles < best) {
        best = r.cycles;
        best_frac = frac;
      }
    }

    t.add_row({w.name, with_commas(hy.cycles), with_commas(fifty),
               fixed(best_frac * 100, 0) + "-" + fixed(100 - best_frac * 100, 0),
               with_commas(best), best < hy.cycles ? "AWB-GCN" : "HyGCN"});
  }
  std::cout << t;
  std::cout << "\nThe flexible substrate runs both ASIC dataflows; AWB-GCN's "
               "runtime rebalancing corresponds to picking the best PE "
               "split per workload (Section V-D).\n";
  return 0;
}
