// omega_cli — evaluate any dataflow on any Table IV workload from the
// command line, or serve mapping requests as a long-lived daemon.
//
// Usage:
//   omega_cli run  <dataset> "<dataflow>" [--tiles v,n,f,V,G,F] [--pes N]
//                  [--g N] [--frac X] [--bw N] [--scale X]
//   omega_cli list                     # datasets and Table V configs
//   omega_cli pattern <dataset> <name> [--pes N] [--g N] [--scale X]
//   omega_cli search-model <dataset> [--widths 16,8] [--model gcn|sage|gin]
//                  [--pes N] [--scale X] [--budget N] [--total-budget N]
//                  [--objective runtime|energy|edp] [--no-prune]
//                  [--allocation mac|even] [--compose sequential|pipelined]
//                  [--json PATH]
//   omega_cli run-model <dataset> <pattern> [--widths 16,8]
//                  [--model gcn|sage|gin] [--pes N] [--scale X]
//                  [--compose sequential|pipelined]
//       Replays one Table V pattern over every model layer and prints the
//       composed timeline (cross-layer overlap under --compose pipelined).
//   omega_cli serve [--registry N] [--threads N] [--socket PATH]
//                  [--max-connections N]
//       Long-lived mapping service. Default: NDJSON on stdin/stdout — one
//       JSON request per line, a blank line (or EOF) flushes the batch and
//       emits responses in request order. --socket serves the same protocol
//       over a Unix domain socket (one connection = one session).
//   omega_cli batch <file|->  [--registry N] [--threads N]
//       One-shot: replay a request file through an in-process service.
//   omega_cli client --socket PATH [file|-]
//       Send a request file to a running `serve --socket` daemon.
//
// Request lines (see DESIGN.md "Mapping service" for the full schema):
//   {"id":1,"kind":"evaluate","workload":{"dataset":"Cora","scale":0.25},
//    "out_features":16,"pattern":"SP2"}
//   {"id":2,"kind":"search_mappings","workload":{"mtx":"graph.mtx",
//    "in_features":64},"options":{"max_candidates":512}}
//   {"id":3,"kind":"search_model","workload":{"dataset":"Citeseer"},
//    "model":{"arch":"gcn","widths":[16,8]},"options":{"budget":400}}
//   {"id":4,"kind":"stats"}
//
// Examples:
//   omega_cli run Citeseer "PP_AC(VtFsNt, VsGsFt)" --tiles 1,1,256,16,16,1
//   omega_cli pattern Collab SP2
//   omega_cli search-model Cora --widths 16,7 --budget 2000 --json model.json
//   printf '%s\n' '{"id":1,"kind":"stats"}' | omega_cli serve
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dse/model_search.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"
#include "omega/omega.hpp"
#include "service/server.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace omega;

struct CliOptions {
  std::size_t pes = 512;
  std::size_t g = 16;
  double frac = 0.5;
  std::size_t bw = 0;  // 0 = unbounded
  double scale = 1.0;
  std::vector<std::size_t> tiles;
};

CliOptions parse_flags(int argc, char** argv, int first) {
  CliOptions o;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--pes") o.pes = static_cast<std::size_t>(std::stoul(next()));
    else if (a == "--g") o.g = static_cast<std::size_t>(std::stoul(next()));
    else if (a == "--frac") o.frac = std::stod(next());
    else if (a == "--bw") o.bw = static_cast<std::size_t>(std::stoul(next()));
    else if (a == "--scale") o.scale = std::stod(next());
    else if (a == "--tiles") {
      for (const auto& part : split(next(), ',')) {
        o.tiles.push_back(static_cast<std::size_t>(std::stoul(part)));
      }
      if (o.tiles.size() != 6) {
        throw InvalidArgumentError(
            "--tiles wants 6 values: T_VAGG,T_N,T_FAGG,T_VCMB,T_G,T_FCMB");
      }
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }
  return o;
}

AcceleratorConfig hw_of(const CliOptions& o) {
  AcceleratorConfig hw;
  hw.num_pes = o.pes;
  if (o.bw > 0) {
    hw.distribution_bandwidth = o.bw;
    hw.reduction_bandwidth = o.bw;
  }
  return hw;
}

GnnWorkload load_workload(const std::string& name, const CliOptions& o) {
  SynthesisOptions so;
  so.scale = o.scale;
  return synthesize_workload(dataset_by_name(name), so);
}

void print_result(const RunResult& r, const GnnWorkload& w) {
  std::cout << "workload:    " << w.name << " (V="
            << with_commas(w.num_vertices()) << ", E="
            << with_commas(w.num_edges()) << ", F=" << w.in_features << ")\n"
            << "dataflow:    " << r.dataflow.to_string() << "\n"
            << "granularity: " << to_string(r.granularity) << ", Pel="
            << with_commas(r.pipeline_elements) << ", buffering="
            << with_commas(r.intermediate_buffer_elements) << " elems"
            << (r.intermediate_spilled ? " (Seq spilled to DRAM)" : "") << "\n"
            << "cycles:      " << with_commas(r.cycles) << "  (agg "
            << with_commas(r.agg.cycles) << " on " << r.pes_agg << " PEs, cmb "
            << with_commas(r.cmb.cycles) << " on " << r.pes_cmb << " PEs)\n"
            << "utilization: agg " << fixed(100 * r.agg_dynamic_utilization(), 1)
            << "% / cmb " << fixed(100 * r.cmb_dynamic_utilization(), 1)
            << "%\n"
            << "energy:      " << fixed(r.energy.on_chip_pj() / 1e6, 3)
            << " uJ on-chip + " << fixed(r.energy.dram_pj / 1e6, 3)
            << " uJ DRAM\n";
  TextTable t({"matrix", "GB reads", "GB writes"});
  for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
    const auto& a = r.traffic.gb[c];
    t.add_row({to_string(static_cast<TrafficCategory>(c)),
               with_commas(a.reads), with_commas(a.writes)});
  }
  std::cout << t;
}

int cmd_list() {
  std::cout << "datasets (Table IV):\n";
  for (const auto& s : table4_datasets()) {
    std::cout << "  " << pad_right(s.name, 12) << to_string(s.category)
              << "  V~" << fixed(s.avg_nodes, 0) << " E~"
              << fixed(s.avg_edges, 0) << " F=" << s.num_features << "\n";
  }
  std::cout << "\ndataflow configs (Table V):\n";
  for (const auto& p : table5_patterns()) {
    std::cout << "  " << pad_right(p.name, 9) << pad_right(p.to_string(), 26)
              << p.property << "\n";
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 4) throw InvalidArgumentError("run needs <dataset> <dataflow>");
  const CliOptions o = parse_flags(argc, argv, 4);
  const GnnWorkload w = load_workload(argv[2], o);
  DataflowDescriptor df = DataflowDescriptor::parse(argv[3]);
  df.pp_agg_pe_fraction = o.frac;
  if (!o.tiles.empty()) {
    df.agg.tiles = {.v = o.tiles[0], .n = o.tiles[1], .f = o.tiles[2], .g = 1};
    df.cmb.tiles = {.v = o.tiles[3], .n = 1, .f = o.tiles[5], .g = o.tiles[4]};
  }
  const Omega omega(hw_of(o));
  print_result(omega.run(w, LayerSpec{o.g}, df), w);
  return 0;
}

int cmd_search_model(int argc, char** argv) {
  if (argc < 3) throw InvalidArgumentError("search-model needs <dataset>");
  std::vector<std::size_t> widths{16, 8};
  GnnModel model = GnnModel::kGCN;
  ModelSearchOptions mso;
  mso.layer.max_candidates = 2000;
  std::size_t pes = 512;
  double scale = 1.0;
  std::string json_path;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--widths") {
      widths.clear();
      for (const auto& part : split(next(), ',')) {
        widths.push_back(static_cast<std::size_t>(std::stoul(part)));
      }
      if (widths.empty()) {
        throw InvalidArgumentError("--widths wants e.g. 16,8");
      }
    } else if (a == "--model") {
      const std::string m = to_lower(next());
      if (m == "gcn") model = GnnModel::kGCN;
      else if (m == "sage" || m == "graphsage") model = GnnModel::kGraphSAGE;
      else if (m == "gin") model = GnnModel::kGIN;
      else throw InvalidArgumentError("unknown model: " + m);
    } else if (a == "--objective") {
      const std::string o = to_lower(next());
      if (o == "runtime") mso.layer.objective = Objective::kRuntime;
      else if (o == "energy") mso.layer.objective = Objective::kEnergy;
      else if (o == "edp") mso.layer.objective = Objective::kEnergyDelayProduct;
      else throw InvalidArgumentError("unknown objective: " + o);
    } else if (a == "--pes") {
      pes = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else if (a == "--budget") {
      mso.layer.max_candidates = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--total-budget") {
      mso.max_total_candidates = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--allocation") {
      const std::string al = to_lower(next());
      if (al == "mac") mso.budget_allocation = BudgetAllocation::kMacWeighted;
      else if (al == "even") mso.budget_allocation = BudgetAllocation::kEven;
      else throw InvalidArgumentError("unknown allocation: " + al);
    } else if (a == "--no-prune") {
      mso.prune = false;
    } else if (a == "--compose") {
      mso.compose = compose_from_string(to_lower(next()));
    } else if (a == "--json") {
      json_path = next();
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }

  SynthesisOptions so;
  so.scale = scale;
  const GnnWorkload w = synthesize_workload(dataset_by_name(argv[2]), so);
  GnnModelSpec spec;
  spec.model = model;
  spec.feature_widths.push_back(w.in_features);
  spec.feature_widths.insert(spec.feature_widths.end(), widths.begin(),
                             widths.end());
  AcceleratorConfig hw;
  hw.num_pes = pes;
  const Omega omega(hw);

  std::cout << "model-level mapping search: " << to_string(model) << " on "
            << w.name << " (V=" << with_commas(w.num_vertices())
            << ", E=" << with_commas(w.num_edges()) << "), layers:";
  for (std::size_t i = 0; i + 1 < spec.feature_widths.size(); ++i) {
    std::cout << " " << spec.feature_widths[i] << "->"
              << spec.feature_widths[i + 1];
  }
  std::cout << ", objective " << to_string(mso.layer.objective)
            << ", compose " << to_string(mso.compose)
            << (mso.prune ? ", pruned" : "") << "\n\n";

  const ModelSearchResult r = search_model_mappings(omega, w, spec, mso);

  TextTable t({"layer", "dims", "best dataflow", "cycles", "energy (uJ)",
               "evaluated", "pruned"});
  for (std::size_t l = 0; l < r.layers.size(); ++l) {
    const auto& lr = r.layers[l];
    const Candidate& best = lr.search.best();
    t.add_row({std::to_string(l),
               std::to_string(lr.spec.in_features) + "->" +
                   std::to_string(lr.spec.out_features),
               best.dataflow.to_string(), with_commas(best.cycles),
               fixed(best.on_chip_pj / 1e6, 3),
               std::to_string(lr.search.evaluated),
               std::to_string(lr.search.pruned)});
  }
  std::cout << t;

  const ModelCandidate& best = r.best();
  std::cout << "\nmodel total: " << with_commas(best.total_cycles)
            << " cycles, " << fixed(best.total_on_chip_pj / 1e6, 3)
            << " uJ on-chip (" << r.evaluated << " evaluated, " << r.pruned
            << " pruned of " << r.generated << " generated"
            << (r.budget_exhausted ? "; budget exhausted" : "") << ")\n";
  if (mso.compose == ModelCompose::kPipelined) {
    const double pipe_speedup =
        best.composed_cycles > 0
            ? static_cast<double>(best.total_cycles) /
                  static_cast<double>(best.composed_cycles)
            : 0.0;
    std::cout << "pipelined composition: " << with_commas(best.composed_cycles)
              << " cycles (" << best.overlapped_boundaries
              << " overlapped boundaries, " << fixed(pipe_speedup, 3)
              << "x vs sequential sum)\n";
  }

  const auto fixed_run = best_fixed_pattern(omega, w, spec, mso.compose);
  double speedup = 0.0;
  if (fixed_run) {
    speedup = best.composed_cycles > 0
                  ? static_cast<double>(fixed_run->result.total_cycles) /
                        static_cast<double>(best.composed_cycles)
                  : 0.0;
    std::cout << "best fixed pattern: " << fixed_run->name << " at "
              << with_commas(fixed_run->result.total_cycles)
              << " cycles -> heterogeneous speedup " << fixed(speedup, 3)
              << "x\n";
  }

  if (!json_path.empty()) {
    // Shared writer (util/json.hpp): names and dataflow notations are
    // escaped, unlike the hand-rolled emitter this replaced.
    JsonWriter jw(2);
    jw.begin_object();
    jw.member("workload", w.name);
    jw.member("model", to_string(model));
    jw.key("widths").begin_array();
    for (const std::size_t width : spec.feature_widths) {
      jw.value(static_cast<std::uint64_t>(width));
    }
    jw.end_array();
    jw.key("layers").begin_array();
    for (std::size_t l = 0; l < r.layers.size(); ++l) {
      const Candidate& c = r.layers[l].search.best();
      jw.begin_object();
      jw.member("layer", static_cast<std::uint64_t>(l));
      jw.member("dataflow", c.dataflow.to_string());
      jw.member("cycles", c.cycles);
      jw.member("on_chip_pj", c.on_chip_pj);
      jw.member("evaluated",
                static_cast<std::uint64_t>(r.layers[l].search.evaluated));
      jw.member("pruned",
                static_cast<std::uint64_t>(r.layers[l].search.pruned));
      jw.end_object();
    }
    jw.end_array();
    jw.member("total_cycles", best.total_cycles);
    jw.member("compose", to_string(mso.compose));
    jw.member("composed_cycles", best.composed_cycles);
    jw.member("overlapped_boundaries",
              static_cast<std::uint64_t>(best.overlapped_boundaries));
    jw.member("total_on_chip_pj", best.total_on_chip_pj);
    jw.member("evaluated", static_cast<std::uint64_t>(r.evaluated));
    jw.member("pruned", static_cast<std::uint64_t>(r.pruned));
    jw.member("generated", static_cast<std::uint64_t>(r.generated));
    if (fixed_run) {
      jw.key("best_fixed").begin_object();
      jw.member("name", fixed_run->name);
      jw.member("cycles", fixed_run->result.total_cycles);
      jw.end_object();
      jw.member("speedup_vs_fixed", speedup);
    }
    jw.end_object();
    std::ofstream json(json_path);
    json << jw.str() << "\n";
    std::cout << "(json: " << json_path << ")\n";
  }
  return 0;
}

int cmd_run_model(int argc, char** argv) {
  if (argc < 4) {
    throw InvalidArgumentError("run-model needs <dataset> <pattern>");
  }
  std::vector<std::size_t> widths{16, 8};
  GnnModel model = GnnModel::kGCN;
  ModelCompose compose = ModelCompose::kSequential;
  std::size_t pes = 512;
  double scale = 1.0;
  for (int i = 4; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--widths") {
      widths.clear();
      for (const auto& part : split(next(), ',')) {
        widths.push_back(static_cast<std::size_t>(std::stoul(part)));
      }
      if (widths.empty()) {
        throw InvalidArgumentError("--widths wants e.g. 16,8");
      }
    } else if (a == "--model") {
      const std::string m = to_lower(next());
      if (m == "gcn") model = GnnModel::kGCN;
      else if (m == "sage" || m == "graphsage") model = GnnModel::kGraphSAGE;
      else if (m == "gin") model = GnnModel::kGIN;
      else throw InvalidArgumentError("unknown model: " + m);
    } else if (a == "--compose") {
      compose = compose_from_string(to_lower(next()));
    } else if (a == "--pes") {
      pes = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }

  SynthesisOptions so;
  so.scale = scale;
  const GnnWorkload w = synthesize_workload(dataset_by_name(argv[2]), so);
  GnnModelSpec spec;
  spec.model = model;
  spec.feature_widths.push_back(w.in_features);
  spec.feature_widths.insert(spec.feature_widths.end(), widths.begin(),
                             widths.end());
  AcceleratorConfig hw;
  hw.num_pes = pes;
  const Omega omega(hw);
  const DataflowPattern pattern = pattern_by_name(argv[3]);
  const ModelRunResult r = run_model(omega, w, spec, pattern, compose);

  std::cout << "model run: " << to_string(model) << " on " << w.name
            << " (V=" << with_commas(w.num_vertices()) << ", E="
            << with_commas(w.num_edges()) << "), pattern " << pattern.name
            << ", compose " << to_string(compose) << "\n\n";
  TextTable t({"layer", "dims", "start", "finish", "cycles", "boundary"});
  for (std::size_t l = 0; l < r.layers.size(); ++l) {
    std::string note = "-";
    if (l > 0) {
      const BoundaryComposition& b = r.composition.boundaries[l - 1];
      note = b.overlapped
                 ? "overlap (saved " + with_commas(b.saved_cycles) + ")"
                 : b.reason;
    }
    t.add_row({std::to_string(l),
               std::to_string(r.layers[l].in_features) + "->" +
                   std::to_string(r.layers[l].out_features),
               with_commas(r.composition.layer_start[l]),
               with_commas(r.composition.layer_finish[l]),
               with_commas(r.layers[l].cycles), note});
  }
  std::cout << t;
  std::cout << "\nsequential sum: " << with_commas(r.sequential_cycles)
            << " cycles; composed: " << with_commas(r.total_cycles)
            << " cycles";
  if (r.sequential_cycles > r.total_cycles) {
    std::cout << " ("
              << fixed(static_cast<double>(r.sequential_cycles) /
                           static_cast<double>(std::max<std::uint64_t>(
                               r.total_cycles, 1)),
                       3)
              << "x)";
  }
  std::cout << "\nenergy: " << fixed(r.total_on_chip_pj / 1e6, 3)
            << " uJ on-chip, " << with_commas(r.total_macs) << " MACs\n";
  return 0;
}

// ---- Mapping service subcommands -------------------------------------------

service::ServiceOptions parse_service_flags(int argc, char** argv, int first,
                                            std::string* socket_path,
                                            std::size_t* max_connections,
                                            std::string* input_path) {
  service::ServiceOptions so;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--registry") {
      so.registry_capacity = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--threads") {
      so.threads = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--socket" && socket_path != nullptr) {
      *socket_path = next();
    } else if (a == "--max-connections" && max_connections != nullptr) {
      *max_connections = static_cast<std::size_t>(std::stoul(next()));
    } else if (input_path != nullptr && !starts_with(a, "--")) {
      *input_path = a;
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }
  return so;
}

int cmd_serve(int argc, char** argv) {
  std::string socket_path;
  std::size_t max_connections = 0;
  const service::ServiceOptions so =
      parse_service_flags(argc, argv, 2, &socket_path, &max_connections,
                          nullptr);
  service::MappingService svc(so);
  if (!socket_path.empty()) {
    std::cerr << "mapping service listening on " << socket_path << "\n";
    return service::serve_unix_socket(svc, socket_path, max_connections);
  }
  svc.serve(std::cin, std::cout);
  return 0;
}

int cmd_batch(int argc, char** argv) {
  std::string input_path;
  const service::ServiceOptions so =
      parse_service_flags(argc, argv, 2, nullptr, nullptr, &input_path);
  if (input_path.empty()) {
    throw InvalidArgumentError("batch needs a request file (or '-')");
  }
  service::MappingService svc(so);
  if (input_path == "-") {
    svc.serve(std::cin, std::cout);
  } else {
    std::ifstream in(input_path);
    if (!in) throw InvalidArgumentError("cannot open " + input_path);
    svc.serve(in, std::cout);
  }
  return 0;
}

int cmd_client(int argc, char** argv) {
  std::string socket_path;
  std::string input_path = "-";
  parse_service_flags(argc, argv, 2, &socket_path, nullptr, &input_path);
  if (socket_path.empty()) {
    throw InvalidArgumentError("client needs --socket PATH");
  }
  std::string requests;
  if (input_path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    requests = buf.str();
  } else {
    std::ifstream in(input_path);
    if (!in) throw InvalidArgumentError("cannot open " + input_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    requests = buf.str();
  }
  std::cout << service::send_to_unix_socket(socket_path, requests);
  return 0;
}

int cmd_pattern(int argc, char** argv) {
  if (argc < 4) throw InvalidArgumentError("pattern needs <dataset> <name>");
  const CliOptions o = parse_flags(argc, argv, 4);
  const GnnWorkload w = load_workload(argv[2], o);
  DataflowPattern p = pattern_by_name(argv[3]);
  p.pp_agg_pe_fraction = o.frac;
  const Omega omega(hw_of(o));
  print_result(omega.run_pattern(w, LayerSpec{o.g}, p), w);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::cerr << "usage: omega_cli "
                   "{run|pattern|search-model|run-model|list|serve|batch|"
                   "client} ...\n"
                   "  serve  [--registry N] [--threads N] [--socket PATH]  "
                   "NDJSON mapping service (stdin/stdout or unix socket)\n"
                   "  batch  <file|->                                      "
                   "replay a request file through an in-process service\n"
                   "  client --socket PATH [file|-]                        "
                   "send requests to a running serve --socket daemon\n";
      return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "list") return cmd_list();
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "pattern") return cmd_pattern(argc, argv);
    if (cmd == "search-model") return cmd_search_model(argc, argv);
    if (cmd == "run-model") return cmd_run_model(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "batch") return cmd_batch(argc, argv);
    if (cmd == "client") return cmd_client(argc, argv);
    std::cerr << "unknown command: " << cmd << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
