// omega_cli — evaluate any dataflow on any Table IV workload from the
// command line, or serve mapping requests as a long-lived daemon.
//
// Usage (`omega_cli help <command>` prints per-command flags):
//   omega_cli run  <dataset> "<dataflow>" [--tiles v,n,f,V,G,F] [--pes N]
//                  [--g N] [--frac X] [--bw N] [--scale X]
//   omega_cli run-pipeline <dataset> --phase name=...,engine=...,order=...
//                  [--phase ...] [--inter Seq,SPg,...] [--pe-fractions ...]
//       Evaluates an N-phase sparse/dense pipeline (omega/pipeline.hpp):
//       engines spmm | gemm | spgemm (sparse-weight Combination at a
//       configurable density).
//   omega_cli list                     # datasets and Table V configs
//   omega_cli pattern <dataset> <name> [--pes N] [--g N] [--scale X]
//   omega_cli search-model <dataset> [--widths 16,8] [--model gcn|sage|gin]
//                  [--pes N] [--scale X] [--budget N] [--total-budget N]
//                  [--objective runtime|energy|edp] [--no-prune]
//                  [--allocation mac|even] [--compose sequential|pipelined]
//                  [--json PATH]
//   omega_cli run-model <dataset> <pattern> [--widths 16,8]
//                  [--model gcn|sage|gin] [--pes N] [--scale X]
//                  [--compose sequential|pipelined]
//       Replays one Table V pattern over every model layer and prints the
//       composed timeline (cross-layer overlap under --compose pipelined).
//   omega_cli serve [--registry N] [--threads N] [--socket PATH]
//                  [--max-connections N]
//       Long-lived mapping service. Default: NDJSON on stdin/stdout — one
//       JSON request per line, a blank line (or EOF) flushes the batch and
//       emits responses in request order. --socket serves the same protocol
//       over a Unix domain socket (one connection = one session).
//   omega_cli batch <file|->  [--registry N] [--threads N]
//       One-shot: replay a request file through an in-process service.
//   omega_cli client --socket PATH [file|-]
//       Send a request file to a running `serve --socket` daemon.
//   omega_cli metrics --socket PATH
//       Fetch a v2 metrics snapshot from a running daemon.
//
// Observability: run-pipeline / search-pipeline / serve / batch accept
// --trace PATH and write a Chrome trace-event JSON (load in Perfetto or
// chrome://tracing). run-pipeline renders the modeled schedule itself
// (per-phase chunk timelines, boundary overlaps); the others record
// wall-clock stage spans.
//
// Request lines (see DESIGN.md "Mapping service" for the full schema):
//   {"id":1,"kind":"evaluate","workload":{"dataset":"Cora","scale":0.25},
//    "out_features":16,"pattern":"SP2"}
//   {"id":2,"kind":"search_mappings","workload":{"mtx":"graph.mtx",
//    "in_features":64},"options":{"max_candidates":512}}
//   {"id":3,"kind":"search_model","workload":{"dataset":"Citeseer"},
//    "model":{"arch":"gcn","widths":[16,8]},"options":{"budget":400}}
//   {"id":4,"kind":"stats"}
//
// Examples:
//   omega_cli run Citeseer "PP_AC(VtFsNt, VsGsFt)" --tiles 1,1,256,16,16,1
//   omega_cli pattern Collab SP2
//   omega_cli search-model Cora --widths 16,7 --budget 2000 --json model.json
//   printf '%s\n' '{"id":1,"kind":"stats"}' | omega_cli serve
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dse/model_search.hpp"
#include "dse/pipeline_search.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"
#include "obs/schedule_trace.hpp"
#include "obs/trace.hpp"
#include "omega/omega.hpp"
#include "omega/pipeline.hpp"
#include "service/server.hpp"
#include "service/tcp.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace omega;

// ---- Per-subcommand usage ---------------------------------------------------

struct CommandHelp {
  const char* name;
  const char* summary;  // one line for the global listing
  const char* usage;    // full --help text
};

constexpr CommandHelp kCommands[] = {
    {"run", "evaluate one two-phase dataflow on a dataset",
     "usage: omega_cli run <dataset> \"<dataflow>\" [flags]\n"
     "  Evaluates a fully bound two-phase descriptor, e.g.\n"
     "  \"PP_AC(VtFsNt, VsGsFt)\".\n"
     "flags:\n"
     "  --tiles v,n,f,V,G,F  explicit tile sizes "
     "(T_VAGG,T_N,T_FAGG,T_VCMB,T_G,T_FCMB)\n"
     "  --pes N              PE count (default 512)\n"
     "  --g N                output feature width G (default 16)\n"
     "  --frac X             PP aggregation PE fraction in (0,1)\n"
     "  --bw N               distribution/reduction bandwidth (default "
     "unbounded)\n"
     "  --scale X            workload scale factor (default 1.0)\n"},
    {"run-pipeline", "evaluate an N-phase sparse/dense pipeline",
     "usage: omega_cli run-pipeline <dataset> --phase <spec> [--phase ...] "
     "[flags]\n"
     "  Evaluates an arbitrary chain of phases through the pipeline core\n"
     "  (omega/pipeline.hpp). Each --phase is a comma-separated key=value\n"
     "  list:\n"
     "    name=<label>       free-form phase label (default phaseN)\n"
     "    engine=<kind>      spmm | gemm | spgemm (sparse-weight)\n"
     "    order=<notation>   intra-phase order, e.g. VtFsNt / VsFtGs\n"
     "    tiles=AxBxC        tile sizes per canonical dim (V,N,F for spmm;\n"
     "                       V,F,G otherwise)\n"
     "    out=N              output feature width (gemm/spgemm)\n"
     "    density=D          weight density in (0,1] (spgemm only)\n"
     "flags:\n"
     "  --inter A,B,...      one boundary per adjacent pair: Seq | SPg | SP "
     "| PP\n"
     "  --pe-fractions ...   relative PE weights, one per phase (PP pairs "
     "split\n"
     "                       the array proportionally)\n"
     "  --pes N --bw N --scale X --in-features N\n"
     "  --trace PATH         write the modeled schedule as Chrome\n"
     "                       trace-event JSON (phase tracks, chunk slices,\n"
     "                       boundary overlaps; 1 cycle = 1 trace us)\n"
     "example:\n"
     "  omega_cli run-pipeline Cora --scale 0.25 \\\n"
     "    --phase name=score,engine=gemm,order=VsFtGs,tiles=8x1x8,out=16 \\\n"
     "    --phase name=agg,engine=spmm,order=NtFsVt,tiles=1x4x16 \\\n"
     "    --phase name=xform,engine=spgemm,order=GsVtFt,tiles=1x1x8,out=8,"
     "density=0.5 \\\n"
     "    --inter SPg,Seq\n"},
    {"search-pipeline", "mapping search over an N-phase pipeline chain",
     "usage: omega_cli search-pipeline <dataset> --phase <spec> [--phase ...] "
     "[flags]\n"
     "  Searches the mapping space of an N-phase chain "
     "(dse/pipeline_search.hpp):\n"
     "  the chain fixes engines/widths/densities, the searcher enumerates "
     "loop\n"
     "  orders, tilings, boundary strategies, and PP PE fractions. Each\n"
     "  --phase is a comma-separated key=value list:\n"
     "    name=<label>       free-form phase label (default phaseN)\n"
     "    engine=<kind>      spmm | gemm | spgemm (sparse-weight)\n"
     "    out=N              output feature width (gemm/spgemm)\n"
     "    density=D          weight density in (0,1] (spgemm only)\n"
     "flags:\n"
     "  --objective runtime|energy|edp\n"
     "  --budget N           candidate cap (deterministic subsample; 0 = "
     "all)\n"
     "  --top-k N            ranked entries to keep (default 16)\n"
     "  --prune              lossless lower-bound pruning (any objective)\n"
     "  --no-seeds           drop the Table V seed compositions\n"
     "  --eval-path batched|delta|scalar  evaluation core (default batched)\n"
     "  --threads N --pes N --bw N --scale X --in-features N --json PATH\n"
     "  --trace PATH         write search-stage spans (enumerate / prune /\n"
     "                       evaluate / rank) as Chrome trace-event JSON\n"
     "example:\n"
     "  omega_cli search-pipeline Cora --scale 0.25 \\\n"
     "    --phase name=score,engine=gemm,out=16 --phase engine=spmm \\\n"
     "    --phase name=xform,engine=spgemm,out=8,density=0.5 \\\n"
     "    --objective edp --budget 512 --prune\n"},
    {"pattern", "evaluate a named Table V configuration",
     "usage: omega_cli pattern <dataset> <name> [flags]\n"
     "  Binds the named Table V pattern's tile sizes to the workload and\n"
     "  evaluates it. See `omega_cli list` for the names.\n"
     "flags:\n"
     "  --pes N --g N --frac X --bw N --scale X\n"},
    {"list", "list datasets and Table V configurations",
     "usage: omega_cli list\n"
     "  Prints the Table IV datasets and Table V dataflow configurations.\n"},
    {"search-model", "per-layer mapping search over a GNN model",
     "usage: omega_cli search-model <dataset> [flags]\n"
     "flags:\n"
     "  --widths 16,8            hidden layer widths (appended to F)\n"
     "  --model gcn|sage|gin     model family (default gcn)\n"
     "  --objective runtime|energy|edp\n"
     "  --budget N               per-layer candidate budget\n"
     "  --total-budget N         model-wide candidate budget\n"
     "  --allocation mac|even    budget split across layers\n"
     "  --compose sequential|pipelined\n"
     "  --no-prune               disable lower-bound pruning\n"
     "  --eval-path batched|delta|scalar  evaluation core (default batched)\n"
     "  --pes N --scale X --json PATH\n"},
    {"run-model", "replay one pattern over every model layer",
     "usage: omega_cli run-model <dataset> <pattern> [flags]\n"
     "flags:\n"
     "  --widths 16,8 --model gcn|sage|gin\n"
     "  --compose sequential|pipelined --pes N --scale X\n"},
    {"serve", "long-lived NDJSON mapping service",
     "usage: omega_cli serve [flags]\n"
     "  Default: NDJSON on stdin/stdout — one JSON request per line, a\n"
     "  blank line (or EOF) flushes the batch. --socket/--tcp serve the\n"
     "  streaming transports instead: concurrent connections, responses\n"
     "  stream per request in per-connection priority-band order, and a\n"
     "  bounded priority/deadline scheduler sheds overload as structured\n"
     "  {\"error\":{\"type\":\"overloaded\"}} responses. See DESIGN.md\n"
     "  \"Serving core\".\n"
     "flags:\n"
     "  --registry N         workload registry capacity\n"
     "  --shards N           registry partitions (consistent-hash router)\n"
     "  --threads N          stdio batch worker threads (default hardware)\n"
     "  --socket PATH        serve a Unix domain socket (streaming)\n"
     "  --tcp PORT           serve TCP on --bind:PORT (streaming; port 0\n"
     "                       picks a free port, printed on stderr)\n"
     "  --bind ADDR          TCP bind address (default 127.0.0.1)\n"
     "  --backlog N          listen() backlog (default 64)\n"
     "  --queue N            scheduler admission queue depth (default 256)\n"
     "  --sched-threads N    scheduler dispatch threads (default hardware)\n"
     "  --min-deadline MS    shed requests whose deadline_ms is below MS\n"
     "                       at admission (0 = disabled)\n"
     "  --max-connections N  stop after N connections (0 = forever)\n"
     "  --trace PATH         write per-request spans (parse / registry /\n"
     "                       evaluate / serialize) as Chrome trace-event\n"
     "                       JSON when the service exits\n"},
    {"batch", "replay a request file through an in-process service",
     "usage: omega_cli batch <file|-> [--registry N] [--shards N] "
     "[--threads N] [--trace PATH]\n"},
    {"client", "send requests to a running serve daemon",
     "usage: omega_cli client (--socket PATH | --connect HOST:PORT) "
     "[file|-]\n"
     "flags:\n"
     "  --priority N     inject \"priority\":N into each request line\n"
     "                   (0-7; requires v2 request lines)\n"
     "  --deadline-ms N  inject \"deadline_ms\":N likewise\n"
     "  Responses print as the daemon streams them: per-connection\n"
     "  request order within a priority band.\n"},
    {"metrics", "fetch a metrics snapshot from a serve daemon",
     "usage: omega_cli metrics (--socket PATH | --connect HOST:PORT)\n"
     "  Sends {\"id\":1,\"version\":2,\"kind\":\"metrics\"} and prints the\n"
     "  response: service counters, latency histograms (p50/p90/p99),\n"
     "  scheduler queue/shed counters, registry hit/miss/eviction\n"
     "  counters, and eval-core counters. See DESIGN.md \"Observability\"\n"
     "  for the metric namespace.\n"},
};

const CommandHelp* find_command(const std::string& name) {
  for (const CommandHelp& c : kCommands) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

void print_global_usage(std::ostream& os) {
  os << "usage: omega_cli <command> [args]\n\ncommands:\n";
  for (const CommandHelp& c : kCommands) {
    os << "  " << pad_right(c.name, 14) << c.summary << "\n";
  }
  os << "\n`omega_cli help <command>` or `omega_cli <command> --help` "
        "prints the command's flags.\n";
}

/// True when any argument asks for help; commands call this before parsing
/// so `omega_cli run --help` never trips the strict flag rejection.
bool wants_help(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return true;
  }
  return false;
}

struct CliOptions {
  std::size_t pes = 512;
  std::size_t g = 16;
  double frac = 0.5;
  std::size_t bw = 0;  // 0 = unbounded
  double scale = 1.0;
  std::vector<std::size_t> tiles;
};

CliOptions parse_flags(int argc, char** argv, int first) {
  CliOptions o;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--pes") o.pes = static_cast<std::size_t>(std::stoul(next()));
    else if (a == "--g") o.g = static_cast<std::size_t>(std::stoul(next()));
    else if (a == "--frac") o.frac = std::stod(next());
    else if (a == "--bw") o.bw = static_cast<std::size_t>(std::stoul(next()));
    else if (a == "--scale") o.scale = std::stod(next());
    else if (a == "--tiles") {
      for (const auto& part : split(next(), ',')) {
        o.tiles.push_back(static_cast<std::size_t>(std::stoul(part)));
      }
      if (o.tiles.size() != 6) {
        throw InvalidArgumentError(
            "--tiles wants 6 values: T_VAGG,T_N,T_FAGG,T_VCMB,T_G,T_FCMB");
      }
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }
  return o;
}

AcceleratorConfig hw_of(const CliOptions& o) {
  AcceleratorConfig hw;
  hw.num_pes = o.pes;
  if (o.bw > 0) {
    hw.distribution_bandwidth = o.bw;
    hw.reduction_bandwidth = o.bw;
  }
  return hw;
}

GnnWorkload load_workload(const std::string& name, const CliOptions& o) {
  SynthesisOptions so;
  so.scale = o.scale;
  return synthesize_workload(dataset_by_name(name), so);
}

void print_result(const RunResult& r, const GnnWorkload& w) {
  std::cout << "workload:    " << w.name << " (V="
            << with_commas(w.num_vertices()) << ", E="
            << with_commas(w.num_edges()) << ", F=" << w.in_features << ")\n"
            << "dataflow:    " << r.dataflow.to_string() << "\n"
            << "granularity: " << to_string(r.granularity) << ", Pel="
            << with_commas(r.pipeline_elements) << ", buffering="
            << with_commas(r.intermediate_buffer_elements) << " elems"
            << (r.intermediate_spilled ? " (Seq spilled to DRAM)" : "") << "\n"
            << "cycles:      " << with_commas(r.cycles) << "  (agg "
            << with_commas(r.agg.cycles) << " on " << r.pes_agg << " PEs, cmb "
            << with_commas(r.cmb.cycles) << " on " << r.pes_cmb << " PEs)\n"
            << "utilization: agg " << fixed(100 * r.agg_dynamic_utilization(), 1)
            << "% / cmb " << fixed(100 * r.cmb_dynamic_utilization(), 1)
            << "%\n"
            << "energy:      " << fixed(r.energy.on_chip_pj() / 1e6, 3)
            << " uJ on-chip + " << fixed(r.energy.dram_pj / 1e6, 3)
            << " uJ DRAM\n";
  TextTable t({"matrix", "GB reads", "GB writes"});
  for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
    const auto& a = r.traffic.gb[c];
    t.add_row({to_string(static_cast<TrafficCategory>(c)),
               with_commas(a.reads), with_commas(a.writes)});
  }
  std::cout << t;
}

int cmd_list() {
  std::cout << "datasets (Table IV):\n";
  for (const auto& s : table4_datasets()) {
    std::cout << "  " << pad_right(s.name, 12) << to_string(s.category)
              << "  V~" << fixed(s.avg_nodes, 0) << " E~"
              << fixed(s.avg_edges, 0) << " F=" << s.num_features << "\n";
  }
  std::cout << "\ndataflow configs (Table V):\n";
  for (const auto& p : table5_patterns()) {
    std::cout << "  " << pad_right(p.name, 9) << pad_right(p.to_string(), 26)
              << p.property << "\n";
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 4) throw InvalidArgumentError("run needs <dataset> <dataflow>");
  const CliOptions o = parse_flags(argc, argv, 4);
  const GnnWorkload w = load_workload(argv[2], o);
  DataflowDescriptor df = DataflowDescriptor::parse(argv[3]);
  df.pp_agg_pe_fraction = o.frac;
  if (!o.tiles.empty()) {
    df.agg.tiles = {.v = o.tiles[0], .n = o.tiles[1], .f = o.tiles[2], .g = 1};
    df.cmb.tiles = {.v = o.tiles[3], .n = 1, .f = o.tiles[5], .g = o.tiles[4]};
  }
  const Omega omega(hw_of(o));
  print_result(omega.run(w, LayerSpec{o.g}, df), w);
  return 0;
}

// ---- run-pipeline -----------------------------------------------------------

PhaseSpec parse_phase_arg(const std::string& text, std::size_t index) {
  std::string name;
  PhaseEngine engine = PhaseEngine::kDenseDense;
  std::string order_text;
  std::vector<std::size_t> tiles;
  std::size_t out_features = 0;
  double density = 1.0;
  bool saw_engine = false;
  for (const std::string& part : split(text, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgumentError("--phase wants key=value pairs; got \"" +
                                 part + "\"");
    }
    const std::string key = part.substr(0, eq);
    const std::string val = part.substr(eq + 1);
    if (key == "name") {
      name = val;
    } else if (key == "engine") {
      engine = phase_engine_from_string(val);
      saw_engine = true;
    } else if (key == "order") {
      order_text = val;
    } else if (key == "tiles") {
      for (const std::string& t : split(val, 'x')) {
        tiles.push_back(static_cast<std::size_t>(std::stoul(t)));
      }
    } else if (key == "out") {
      out_features = static_cast<std::size_t>(std::stoul(val));
    } else if (key == "density") {
      density = std::stod(val);
    } else {
      throw InvalidArgumentError("unknown --phase key: " + key);
    }
  }
  if (!saw_engine || order_text.empty()) {
    throw InvalidArgumentError("each --phase needs engine= and order=");
  }
  // Shared assembly (omega/pipeline.hpp): tile-dim mapping and name
  // defaulting stay identical between the CLI and the service v2 parser.
  return assemble_phase_spec(std::move(name), engine, order_text, tiles,
                             out_features, density, index);
}

int cmd_run_pipeline(int argc, char** argv) {
  if (argc < 3) {
    throw InvalidArgumentError("run-pipeline needs <dataset> and --phase");
  }
  PipelineSpec spec;
  std::size_t pes = 512;
  std::size_t bw = 0;
  double scale = 1.0;
  std::string trace_path;
  std::vector<InterPhase> boundaries;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--phase") {
      spec.phases.push_back(parse_phase_arg(next(), spec.phases.size()));
    } else if (a == "--inter") {
      for (const std::string& b : split(next(), ',')) {
        boundaries.push_back(inter_phase_from_string(b));
      }
    } else if (a == "--pe-fractions") {
      for (const std::string& f : split(next(), ',')) {
        spec.pe_fractions.push_back(std::stod(f));
      }
    } else if (a == "--in-features") {
      spec.in_features = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--pes") {
      pes = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--bw") {
      bw = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else if (a == "--trace") {
      trace_path = next();
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }
  if (spec.phases.empty()) {
    throw InvalidArgumentError("run-pipeline needs at least one --phase");
  }
  // Boundaries default to Seq between every adjacent pair.
  spec.boundaries = boundaries.empty()
                        ? std::vector<InterPhase>(spec.phases.size() - 1,
                                                  InterPhase::kSequential)
                        : std::move(boundaries);

  SynthesisOptions so;
  so.scale = scale;
  const GnnWorkload w = synthesize_workload(dataset_by_name(argv[2]), so);
  AcceleratorConfig hw;
  hw.num_pes = pes;
  if (bw > 0) {
    hw.distribution_bandwidth = bw;
    hw.reduction_bandwidth = bw;
  }
  const Omega omega(hw);
  const PipelineResult r = omega.run_pipeline(w, spec);

  std::cout << "workload:  " << w.name << " (V=" << with_commas(w.num_vertices())
            << ", E=" << with_commas(w.num_edges()) << ", F=" << w.in_features
            << ")\n"
            << "pipeline:  " << spec.to_string() << "\n"
            << "cycles:    " << with_commas(r.cycles) << "\n"
            << "energy:    " << fixed(r.energy.on_chip_pj() / 1e6, 3)
            << " uJ on-chip + " << fixed(r.energy.dram_pj / 1e6, 3)
            << " uJ DRAM\n\n";
  TextTable phases({"phase", "engine", "dims", "PEs", "cycles", "MACs",
                    "util"});
  for (const PhaseOutcome& p : r.phases) {
    phases.add_row({p.name, to_string(p.engine),
                    std::to_string(p.in_features) + "->" +
                        std::to_string(p.out_features),
                    std::to_string(p.pes), with_commas(p.result.cycles),
                    with_commas(p.result.macs),
                    fixed(100 * p.dynamic_utilization(), 1) + "%"});
  }
  std::cout << phases;
  if (!r.boundaries.empty()) {
    TextTable bt({"boundary", "inter", "granularity", "chunks", "Pel",
                  "buffer", "notes"});
    for (std::size_t b = 0; b < r.boundaries.size(); ++b) {
      const BoundaryOutcome& bo = r.boundaries[b];
      std::string notes;
      if (bo.overlapped) notes += "overlapped";
      if (bo.spilled) notes += std::string(notes.empty() ? "" : ", ") +
                               "spilled to DRAM";
      if (notes.empty()) notes = "-";
      bt.add_row({r.phases[b].name + "->" + r.phases[b + 1].name,
                  to_string(bo.inter), to_string(bo.granularity),
                  std::to_string(bo.pipeline_chunks),
                  with_commas(bo.pipeline_elements),
                  with_commas(bo.buffer_elements), notes});
    }
    std::cout << "\n" << bt;
  }
  if (!trace_path.empty()) {
    obs::TraceCollector tc;
    obs::export_pipeline_trace(r, tc);
    tc.write_file(trace_path);
    std::cout << "\n(trace: " << trace_path << ", " << tc.size()
              << " events — load in Perfetto or chrome://tracing)\n";
  }
  return 0;
}

// ---- search-pipeline --------------------------------------------------------

PhaseChainSpec parse_chain_phase_arg(const std::string& text) {
  PhaseChainSpec p;
  bool saw_engine = false;
  for (const std::string& part : split(text, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgumentError("--phase wants key=value pairs; got \"" +
                                 part + "\"");
    }
    const std::string key = part.substr(0, eq);
    const std::string val = part.substr(eq + 1);
    if (key == "name") {
      p.name = val;
    } else if (key == "engine") {
      p.engine = phase_engine_from_string(val);
      saw_engine = true;
    } else if (key == "out") {
      p.out_features = static_cast<std::size_t>(std::stoul(val));
    } else if (key == "density") {
      p.weight_density = std::stod(val);
    } else {
      throw InvalidArgumentError(
          "unknown --phase key for search-pipeline: " + key +
          " (the chain fixes engine/out/density; the searcher supplies "
          "orders and tiles)");
    }
  }
  if (!saw_engine) {
    throw InvalidArgumentError("each --phase needs engine=");
  }
  return p;
}

int cmd_search_pipeline(int argc, char** argv) {
  if (argc < 3) {
    throw InvalidArgumentError("search-pipeline needs <dataset> and --phase");
  }
  PipelineChainSpec chain;
  PipelineSearchOptions pso;
  std::size_t pes = 512;
  std::size_t bw = 0;
  double scale = 1.0;
  std::string json_path;
  std::string trace_path;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--phase") {
      chain.phases.push_back(parse_chain_phase_arg(next()));
    } else if (a == "--objective") {
      const std::string o = to_lower(next());
      if (o == "runtime") pso.objective = Objective::kRuntime;
      else if (o == "energy") pso.objective = Objective::kEnergy;
      else if (o == "edp") pso.objective = Objective::kEnergyDelayProduct;
      else throw InvalidArgumentError("unknown objective: " + o);
    } else if (a == "--budget") {
      pso.max_candidates = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--top-k") {
      pso.top_k = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--prune") {
      pso.prune = true;
    } else if (a == "--no-seeds") {
      pso.seed_table5 = false;
    } else if (a == "--eval-path") {
      const std::string p = to_lower(next());
      if (p == "batched") pso.eval_path = EvalPath::kBatched;
      else if (p == "delta") pso.eval_path = EvalPath::kDelta;
      else if (p == "scalar") pso.eval_path = EvalPath::kScalar;
      else throw InvalidArgumentError("unknown eval path: " + p);
    } else if (a == "--threads") {
      pso.threads = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--in-features") {
      chain.in_features = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--pes") {
      pes = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--bw") {
      bw = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--trace") {
      trace_path = next();
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }
  if (chain.phases.empty()) {
    throw InvalidArgumentError("search-pipeline needs at least one --phase");
  }

  SynthesisOptions so;
  so.scale = scale;
  const GnnWorkload w = synthesize_workload(dataset_by_name(argv[2]), so);
  AcceleratorConfig hw;
  hw.num_pes = pes;
  if (bw > 0) {
    hw.distribution_bandwidth = bw;
    hw.reduction_bandwidth = bw;
  }
  const Omega omega(hw);

  std::cout << "pipeline mapping search on " << w.name << " (V="
            << with_commas(w.num_vertices()) << ", E="
            << with_commas(w.num_edges()) << ", F=" << w.in_features << ")\n"
            << "chain:     " << chain.to_string() << "\n"
            << "objective: " << to_string(pso.objective)
            << (pso.prune ? ", pruned" : "")
            << (pso.seed_table5 ? ", Table V seeded" : "") << "\n\n";

  obs::TraceCollector tc;
  if (!trace_path.empty()) pso.trace = &tc;

  const PipelineSearchResult r = search_pipeline_mappings(omega, w, chain, pso);
  if (!trace_path.empty()) {
    tc.name_process(0, "omega.search");
    tc.write_file(trace_path);
    std::cout << "(trace: " << trace_path << ", " << tc.size()
              << " events)\n";
  }
  if (r.ranked.empty()) {
    std::cout << "no feasible candidate (" << r.generated << " generated)\n";
    return 1;
  }

  TextTable t({"#", "pipeline", "cycles", "energy (uJ)", "score"});
  for (std::size_t i = 0; i < r.ranked.size(); ++i) {
    const RankedPipelineCandidate& c = r.ranked[i];
    t.add_row({std::to_string(i), c.key, with_commas(c.cycles),
               fixed(c.on_chip_pj / 1e6, 3), fixed(c.score, 6)});
  }
  std::cout << t;
  std::cout << "\nbest: " << r.best().key << " at "
            << with_commas(r.best().cycles) << " cycles, "
            << fixed(r.best().on_chip_pj / 1e6, 3) << " uJ on-chip ("
            << r.evaluated << " evaluated, " << r.pruned << " pruned of "
            << r.generated << " generated; Pareto "
            << r.pareto.size() << ")\n";
  if (pso.eval_path != EvalPath::kScalar) {
    // Delta-hit and batch-shape numbers vary with the machine's thread
    // layout — informational here, never part of golden output.
    std::cout << "eval core: " << to_string(pso.eval_path) << " path, "
              << with_commas(r.eval.term_requests) << " term requests ("
              << with_commas(r.eval.term_builds) << " built, "
              << with_commas(r.eval.delta_hits) << " delta hits), "
              << with_commas(r.eval.batches) << " batches (max "
              << with_commas(r.eval.max_batch) << ")\n";
  }

  if (!json_path.empty()) {
    JsonWriter jw(2);
    jw.begin_object();
    jw.member("workload", w.name);
    jw.member("chain", chain.to_string());
    jw.member("objective", to_string(pso.objective));
    jw.member("generated", static_cast<std::uint64_t>(r.generated));
    jw.member("evaluated", static_cast<std::uint64_t>(r.evaluated));
    jw.member("pruned", static_cast<std::uint64_t>(r.pruned));
    jw.key("ranked").begin_array();
    for (const RankedPipelineCandidate& c : r.ranked) {
      jw.begin_object();
      jw.member("pipeline", c.key);
      jw.member("cycles", c.cycles);
      jw.member("on_chip_pj", c.on_chip_pj);
      jw.member("score", c.score);
      jw.end_object();
    }
    jw.end_array();
    jw.key("pareto").begin_array();
    for (const RankedPipelineCandidate& c : r.pareto) {
      jw.begin_object();
      jw.member("pipeline", c.key);
      jw.member("cycles", c.cycles);
      jw.member("on_chip_pj", c.on_chip_pj);
      jw.end_object();
    }
    jw.end_array();
    jw.key("eval").begin_object();
    jw.member("term_requests", r.eval.term_requests);
    jw.member("term_builds", r.eval.term_builds);
    jw.member("delta_hits", r.eval.delta_hits);
    jw.member("batches", r.eval.batches);
    jw.member("max_batch", r.eval.max_batch);
    jw.end_object();
    jw.end_object();
    std::ofstream json(json_path);
    json << jw.str() << "\n";
    std::cout << "(json: " << json_path << ")\n";
  }
  return 0;
}

int cmd_search_model(int argc, char** argv) {
  if (argc < 3) throw InvalidArgumentError("search-model needs <dataset>");
  std::vector<std::size_t> widths{16, 8};
  GnnModel model = GnnModel::kGCN;
  ModelSearchOptions mso;
  mso.layer.max_candidates = 2000;
  std::size_t pes = 512;
  double scale = 1.0;
  std::string json_path;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--widths") {
      widths.clear();
      for (const auto& part : split(next(), ',')) {
        widths.push_back(static_cast<std::size_t>(std::stoul(part)));
      }
      if (widths.empty()) {
        throw InvalidArgumentError("--widths wants e.g. 16,8");
      }
    } else if (a == "--model") {
      const std::string m = to_lower(next());
      if (m == "gcn") model = GnnModel::kGCN;
      else if (m == "sage" || m == "graphsage") model = GnnModel::kGraphSAGE;
      else if (m == "gin") model = GnnModel::kGIN;
      else throw InvalidArgumentError("unknown model: " + m);
    } else if (a == "--objective") {
      const std::string o = to_lower(next());
      if (o == "runtime") mso.layer.objective = Objective::kRuntime;
      else if (o == "energy") mso.layer.objective = Objective::kEnergy;
      else if (o == "edp") mso.layer.objective = Objective::kEnergyDelayProduct;
      else throw InvalidArgumentError("unknown objective: " + o);
    } else if (a == "--pes") {
      pes = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else if (a == "--budget") {
      mso.layer.max_candidates = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--total-budget") {
      mso.max_total_candidates = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--allocation") {
      const std::string al = to_lower(next());
      if (al == "mac") mso.budget_allocation = BudgetAllocation::kMacWeighted;
      else if (al == "even") mso.budget_allocation = BudgetAllocation::kEven;
      else throw InvalidArgumentError("unknown allocation: " + al);
    } else if (a == "--no-prune") {
      mso.prune = false;
    } else if (a == "--eval-path") {
      const std::string p = to_lower(next());
      if (p == "batched") mso.layer.eval_path = EvalPath::kBatched;
      else if (p == "delta") mso.layer.eval_path = EvalPath::kDelta;
      else if (p == "scalar") mso.layer.eval_path = EvalPath::kScalar;
      else throw InvalidArgumentError("unknown eval path: " + p);
    } else if (a == "--compose") {
      mso.compose = compose_from_string(to_lower(next()));
    } else if (a == "--json") {
      json_path = next();
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }

  SynthesisOptions so;
  so.scale = scale;
  const GnnWorkload w = synthesize_workload(dataset_by_name(argv[2]), so);
  GnnModelSpec spec;
  spec.model = model;
  spec.feature_widths.push_back(w.in_features);
  spec.feature_widths.insert(spec.feature_widths.end(), widths.begin(),
                             widths.end());
  AcceleratorConfig hw;
  hw.num_pes = pes;
  const Omega omega(hw);

  std::cout << "model-level mapping search: " << to_string(model) << " on "
            << w.name << " (V=" << with_commas(w.num_vertices())
            << ", E=" << with_commas(w.num_edges()) << "), layers:";
  for (std::size_t i = 0; i + 1 < spec.feature_widths.size(); ++i) {
    std::cout << " " << spec.feature_widths[i] << "->"
              << spec.feature_widths[i + 1];
  }
  std::cout << ", objective " << to_string(mso.layer.objective)
            << ", compose " << to_string(mso.compose)
            << (mso.prune ? ", pruned" : "") << "\n\n";

  const ModelSearchResult r = search_model_mappings(omega, w, spec, mso);

  TextTable t({"layer", "dims", "best dataflow", "cycles", "energy (uJ)",
               "evaluated", "pruned"});
  for (std::size_t l = 0; l < r.layers.size(); ++l) {
    const auto& lr = r.layers[l];
    const Candidate& best = lr.search.best();
    t.add_row({std::to_string(l),
               std::to_string(lr.spec.in_features) + "->" +
                   std::to_string(lr.spec.out_features),
               best.dataflow.to_string(), with_commas(best.cycles),
               fixed(best.on_chip_pj / 1e6, 3),
               std::to_string(lr.search.evaluated),
               std::to_string(lr.search.pruned)});
  }
  std::cout << t;

  const ModelCandidate& best = r.best();
  std::cout << "\nmodel total: " << with_commas(best.total_cycles)
            << " cycles, " << fixed(best.total_on_chip_pj / 1e6, 3)
            << " uJ on-chip (" << r.evaluated << " evaluated, " << r.pruned
            << " pruned of " << r.generated << " generated"
            << (r.budget_exhausted ? "; budget exhausted" : "") << ")\n";
  if (mso.layer.eval_path != EvalPath::kScalar) {
    // Delta-hit and batch-shape numbers vary with the machine's thread
    // layout — informational here, never part of golden output.
    std::cout << "eval core: " << to_string(mso.layer.eval_path) << " path, "
              << with_commas(r.eval.term_requests) << " term requests ("
              << with_commas(r.eval.term_builds) << " built, "
              << with_commas(r.eval.delta_hits) << " delta hits), "
              << with_commas(r.eval.batches) << " batches (max "
              << with_commas(r.eval.max_batch) << ")\n";
  }
  if (mso.compose == ModelCompose::kPipelined) {
    const double pipe_speedup =
        best.composed_cycles > 0
            ? static_cast<double>(best.total_cycles) /
                  static_cast<double>(best.composed_cycles)
            : 0.0;
    std::cout << "pipelined composition: " << with_commas(best.composed_cycles)
              << " cycles (" << best.overlapped_boundaries
              << " overlapped boundaries, " << fixed(pipe_speedup, 3)
              << "x vs sequential sum)\n";
  }

  const auto fixed_run = best_fixed_pattern(omega, w, spec, mso.compose);
  double speedup = 0.0;
  if (fixed_run) {
    speedup = best.composed_cycles > 0
                  ? static_cast<double>(fixed_run->result.total_cycles) /
                        static_cast<double>(best.composed_cycles)
                  : 0.0;
    std::cout << "best fixed pattern: " << fixed_run->name << " at "
              << with_commas(fixed_run->result.total_cycles)
              << " cycles -> heterogeneous speedup " << fixed(speedup, 3)
              << "x\n";
  }

  if (!json_path.empty()) {
    // Shared writer (util/json.hpp): names and dataflow notations are
    // escaped, unlike the hand-rolled emitter this replaced.
    JsonWriter jw(2);
    jw.begin_object();
    jw.member("workload", w.name);
    jw.member("model", to_string(model));
    jw.key("widths").begin_array();
    for (const std::size_t width : spec.feature_widths) {
      jw.value(static_cast<std::uint64_t>(width));
    }
    jw.end_array();
    jw.key("layers").begin_array();
    for (std::size_t l = 0; l < r.layers.size(); ++l) {
      const Candidate& c = r.layers[l].search.best();
      jw.begin_object();
      jw.member("layer", static_cast<std::uint64_t>(l));
      jw.member("dataflow", c.dataflow.to_string());
      jw.member("cycles", c.cycles);
      jw.member("on_chip_pj", c.on_chip_pj);
      jw.member("evaluated",
                static_cast<std::uint64_t>(r.layers[l].search.evaluated));
      jw.member("pruned",
                static_cast<std::uint64_t>(r.layers[l].search.pruned));
      jw.end_object();
    }
    jw.end_array();
    jw.member("total_cycles", best.total_cycles);
    jw.member("compose", to_string(mso.compose));
    jw.member("composed_cycles", best.composed_cycles);
    jw.member("overlapped_boundaries",
              static_cast<std::uint64_t>(best.overlapped_boundaries));
    jw.member("total_on_chip_pj", best.total_on_chip_pj);
    jw.member("evaluated", static_cast<std::uint64_t>(r.evaluated));
    jw.member("pruned", static_cast<std::uint64_t>(r.pruned));
    jw.member("generated", static_cast<std::uint64_t>(r.generated));
    jw.member("eval_path", to_string(mso.layer.eval_path));
    jw.key("eval").begin_object();
    jw.member("term_requests", r.eval.term_requests);
    jw.member("term_builds", r.eval.term_builds);
    jw.member("delta_hits", r.eval.delta_hits);
    jw.member("batches", r.eval.batches);
    jw.member("max_batch", r.eval.max_batch);
    jw.end_object();
    if (fixed_run) {
      jw.key("best_fixed").begin_object();
      jw.member("name", fixed_run->name);
      jw.member("cycles", fixed_run->result.total_cycles);
      jw.end_object();
      jw.member("speedup_vs_fixed", speedup);
    }
    jw.end_object();
    std::ofstream json(json_path);
    json << jw.str() << "\n";
    std::cout << "(json: " << json_path << ")\n";
  }
  return 0;
}

int cmd_run_model(int argc, char** argv) {
  if (argc < 4) {
    throw InvalidArgumentError("run-model needs <dataset> <pattern>");
  }
  std::vector<std::size_t> widths{16, 8};
  GnnModel model = GnnModel::kGCN;
  ModelCompose compose = ModelCompose::kSequential;
  std::size_t pes = 512;
  double scale = 1.0;
  for (int i = 4; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--widths") {
      widths.clear();
      for (const auto& part : split(next(), ',')) {
        widths.push_back(static_cast<std::size_t>(std::stoul(part)));
      }
      if (widths.empty()) {
        throw InvalidArgumentError("--widths wants e.g. 16,8");
      }
    } else if (a == "--model") {
      const std::string m = to_lower(next());
      if (m == "gcn") model = GnnModel::kGCN;
      else if (m == "sage" || m == "graphsage") model = GnnModel::kGraphSAGE;
      else if (m == "gin") model = GnnModel::kGIN;
      else throw InvalidArgumentError("unknown model: " + m);
    } else if (a == "--compose") {
      compose = compose_from_string(to_lower(next()));
    } else if (a == "--pes") {
      pes = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }

  SynthesisOptions so;
  so.scale = scale;
  const GnnWorkload w = synthesize_workload(dataset_by_name(argv[2]), so);
  GnnModelSpec spec;
  spec.model = model;
  spec.feature_widths.push_back(w.in_features);
  spec.feature_widths.insert(spec.feature_widths.end(), widths.begin(),
                             widths.end());
  AcceleratorConfig hw;
  hw.num_pes = pes;
  const Omega omega(hw);
  const DataflowPattern pattern = pattern_by_name(argv[3]);
  const ModelRunResult r = run_model(omega, w, spec, pattern, compose);

  std::cout << "model run: " << to_string(model) << " on " << w.name
            << " (V=" << with_commas(w.num_vertices()) << ", E="
            << with_commas(w.num_edges()) << "), pattern " << pattern.name
            << ", compose " << to_string(compose) << "\n\n";
  TextTable t({"layer", "dims", "start", "finish", "cycles", "boundary"});
  for (std::size_t l = 0; l < r.layers.size(); ++l) {
    std::string note = "-";
    if (l > 0) {
      const BoundaryComposition& b = r.composition.boundaries[l - 1];
      note = b.overlapped
                 ? "overlap (saved " + with_commas(b.saved_cycles) + ")"
                 : b.reason;
    }
    t.add_row({std::to_string(l),
               std::to_string(r.layers[l].in_features) + "->" +
                   std::to_string(r.layers[l].out_features),
               with_commas(r.composition.layer_start[l]),
               with_commas(r.composition.layer_finish[l]),
               with_commas(r.layers[l].cycles), note});
  }
  std::cout << t;
  std::cout << "\nsequential sum: " << with_commas(r.sequential_cycles)
            << " cycles; composed: " << with_commas(r.total_cycles)
            << " cycles";
  if (r.sequential_cycles > r.total_cycles) {
    std::cout << " ("
              << fixed(static_cast<double>(r.sequential_cycles) /
                           static_cast<double>(std::max<std::uint64_t>(
                               r.total_cycles, 1)),
                       3)
              << "x)";
  }
  std::cout << "\nenergy: " << fixed(r.total_on_chip_pj / 1e6, 3)
            << " uJ on-chip, " << with_commas(r.total_macs) << " MACs\n";
  return 0;
}

// ---- Mapping service subcommands -------------------------------------------

/// Everything the service/transport subcommands accept; which fields each
/// command honors is controlled by the enable flags below.
struct ServiceCliFlags {
  service::ServiceOptions service;
  service::ServeOptions serve;
  std::string socket_path;
  std::string connect;  // client side: HOST:PORT
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  std::string bind_addr = "127.0.0.1";
  std::string input_path;
  std::string trace_path;
  std::uint64_t priority = 0;
  std::uint64_t deadline_ms = 0;
  bool inject_scheduling = false;
};

ServiceCliFlags parse_service_flags(int argc, char** argv, int first,
                                    bool server_flags, bool client_flags,
                                    bool with_input) {
  ServiceCliFlags f;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw InvalidArgumentError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--registry" && server_flags) {
      f.service.registry_capacity =
          static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--shards" && server_flags) {
      f.service.registry_shards = static_cast<std::size_t>(std::stoul(next()));
      if (f.service.registry_shards == 0) {
        throw InvalidArgumentError("--shards must be >= 1");
      }
    } else if (a == "--threads" && server_flags) {
      f.service.threads = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--trace" && server_flags) {
      f.trace_path = next();
    } else if (a == "--socket") {
      f.socket_path = next();
    } else if (a == "--tcp" && server_flags) {
      f.tcp = true;
      f.tcp_port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (a == "--bind" && server_flags) {
      f.bind_addr = next();
    } else if (a == "--backlog" && server_flags) {
      f.serve.backlog = static_cast<int>(std::stoul(next()));
    } else if (a == "--queue" && server_flags) {
      f.serve.queue_depth = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--sched-threads" && server_flags) {
      f.serve.scheduler_threads =
          static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--min-deadline" && server_flags) {
      f.serve.min_feasible_deadline_ms = std::stoull(next());
    } else if (a == "--max-connections" && server_flags) {
      f.serve.max_connections = static_cast<std::size_t>(std::stoul(next()));
    } else if (a == "--connect" && client_flags) {
      f.connect = next();
    } else if (a == "--priority" && client_flags) {
      f.priority = std::stoull(next());
      f.inject_scheduling = true;
    } else if (a == "--deadline-ms" && client_flags) {
      f.deadline_ms = std::stoull(next());
      f.inject_scheduling = true;
    } else if (with_input && !starts_with(a, "--")) {
      f.input_path = a;
    } else {
      throw InvalidArgumentError("unknown flag: " + a);
    }
  }
  return f;
}

/// Splits "HOST:PORT" (the port is the last ':' so IPv6-ish hosts keep
/// working once resolution handles them).
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon + 1 >= s.size()) {
    throw InvalidArgumentError("--connect wants HOST:PORT, got: " + s);
  }
  return {s.substr(0, colon),
          static_cast<std::uint16_t>(std::stoul(s.substr(colon + 1)))};
}

/// Injects the client's --priority/--deadline-ms as leading members of a
/// request object. The fields are v2 protocol additions, so the server
/// rejects injected v1 lines with a structured error rather than silently
/// ignoring the flags.
std::string with_scheduling(const std::string& line, std::uint64_t priority,
                            std::uint64_t deadline_ms) {
  const std::string body = trim(line);
  if (body.empty() || body.front() != '{') return line;
  std::string inject = "\"priority\":" + std::to_string(priority);
  if (deadline_ms > 0) {
    inject += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  const bool empty_object = body.size() == 2;  // "{}"
  return "{" + inject + (empty_object ? "" : ",") + body.substr(1);
}

std::string read_input_or_stdin(const std::string& input_path) {
  if (input_path == "-" || input_path.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream in(input_path);
  if (!in) throw InvalidArgumentError("cannot open " + input_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int cmd_serve(int argc, char** argv) {
  ServiceCliFlags f = parse_service_flags(argc, argv, 2, /*server_flags=*/true,
                                          /*client_flags=*/false,
                                          /*with_input=*/false);
  if (f.tcp && !f.socket_path.empty()) {
    throw InvalidArgumentError("--tcp and --socket are exclusive");
  }
  obs::TraceCollector tc;
  if (!f.trace_path.empty()) f.service.trace = &tc;
  service::MappingService svc(f.service);
  int rc = 0;
  if (f.tcp) {
    service::Listener listener =
        service::Listener::tcp(f.bind_addr, f.tcp_port, f.serve.backlog);
    // The resolved port matters when --tcp 0 asked for an ephemeral one.
    std::cerr << "mapping service listening on " << f.bind_addr << ":"
              << listener.port() << "\n";
    rc = service::serve_on(svc, listener, f.serve);
  } else if (!f.socket_path.empty()) {
    std::cerr << "mapping service listening on " << f.socket_path << "\n";
    rc = service::serve_unix_socket(svc, f.socket_path, f.serve);
  } else {
    svc.serve(std::cin, std::cout);
  }
  if (!f.trace_path.empty()) {
    tc.name_process(0, "omega.service");
    tc.write_file(f.trace_path);
    std::cerr << "(trace: " << f.trace_path << ", " << tc.size()
              << " events)\n";
  }
  return rc;
}

int cmd_batch(int argc, char** argv) {
  ServiceCliFlags f = parse_service_flags(argc, argv, 2, /*server_flags=*/true,
                                          /*client_flags=*/false,
                                          /*with_input=*/true);
  if (f.input_path.empty()) {
    throw InvalidArgumentError("batch needs a request file (or '-')");
  }
  obs::TraceCollector tc;
  if (!f.trace_path.empty()) f.service.trace = &tc;
  service::MappingService svc(f.service);
  if (f.input_path == "-") {
    svc.serve(std::cin, std::cout);
  } else {
    std::ifstream in(f.input_path);
    if (!in) throw InvalidArgumentError("cannot open " + f.input_path);
    svc.serve(in, std::cout);
  }
  if (!f.trace_path.empty()) {
    tc.name_process(0, "omega.service");
    tc.write_file(f.trace_path);
    std::cerr << "(trace: " << f.trace_path << ", " << tc.size()
              << " events)\n";
  }
  return 0;
}

int cmd_metrics(int argc, char** argv) {
  const ServiceCliFlags f =
      parse_service_flags(argc, argv, 2, /*server_flags=*/false,
                          /*client_flags=*/true, /*with_input=*/false);
  const std::string request = "{\"id\":1,\"version\":2,\"kind\":\"metrics\"}\n";
  if (!f.connect.empty()) {
    const auto [host, port] = parse_host_port(f.connect);
    std::cout << service::send_to_tcp(host, port, request);
    return 0;
  }
  if (f.socket_path.empty()) {
    throw InvalidArgumentError("metrics needs --socket PATH or "
                               "--connect HOST:PORT");
  }
  std::cout << service::send_to_unix_socket(f.socket_path, request);
  return 0;
}

int cmd_client(int argc, char** argv) {
  ServiceCliFlags f = parse_service_flags(argc, argv, 2, /*server_flags=*/false,
                                          /*client_flags=*/true,
                                          /*with_input=*/true);
  if (f.connect.empty() == f.socket_path.empty()) {
    throw InvalidArgumentError(
        "client needs exactly one of --socket PATH or --connect HOST:PORT");
  }
  std::string requests = read_input_or_stdin(f.input_path);
  if (f.inject_scheduling) {
    std::istringstream in(requests);
    std::string rewritten;
    std::string line;
    while (std::getline(in, line)) {
      rewritten += with_scheduling(line, f.priority, f.deadline_ms);
      rewritten += '\n';
    }
    requests = std::move(rewritten);
  }
  // Stream: send everything, half-close, then print responses as the
  // daemon emits them (per-connection per-band request order).
  service::StreamClient client =
      f.connect.empty()
          ? service::StreamClient::connect_unix(f.socket_path)
          : [&] {
              const auto [host, port] = parse_host_port(f.connect);
              return service::StreamClient::connect_tcp(host, port);
            }();
  if (!requests.empty() && requests.back() != '\n') requests += '\n';
  std::istringstream in(requests);
  std::string line;
  while (std::getline(in, line)) client.send_line(line);
  client.shutdown_writes();
  std::optional<std::string> response;
  while ((response = client.read_line()).has_value()) {
    std::cout << *response << '\n';
  }
  return 0;
}

int cmd_pattern(int argc, char** argv) {
  if (argc < 4) throw InvalidArgumentError("pattern needs <dataset> <name>");
  const CliOptions o = parse_flags(argc, argv, 4);
  const GnnWorkload w = load_workload(argv[2], o);
  DataflowPattern p = pattern_by_name(argv[3]);
  p.pp_agg_pe_fraction = o.frac;
  const Omega omega(hw_of(o));
  print_result(omega.run_pattern(w, LayerSpec{o.g}, p), w);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = argc >= 2 ? argv[1] : "";
  try {
    if (cmd.empty() || cmd == "--help" || cmd == "-h") {
      print_global_usage(cmd.empty() ? std::cerr : std::cout);
      return cmd.empty() ? 2 : 0;
    }
    if (cmd == "help") {
      if (argc >= 3) {
        if (const CommandHelp* h = find_command(argv[2])) {
          std::cout << h->usage;
          return 0;
        }
        std::cerr << "unknown command: " << argv[2] << "\n\n";
        print_global_usage(std::cerr);
        return 2;
      }
      print_global_usage(std::cout);
      return 0;
    }
    const CommandHelp* help = find_command(cmd);
    if (help == nullptr) {
      std::cerr << "unknown command: " << cmd << "\n\n";
      print_global_usage(std::cerr);
      return 2;
    }
    if (wants_help(argc, argv, 2)) {
      std::cout << help->usage;
      return 0;
    }
    if (cmd == "list") return cmd_list();
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "run-pipeline") return cmd_run_pipeline(argc, argv);
    if (cmd == "pattern") return cmd_pattern(argc, argv);
    if (cmd == "search-pipeline") return cmd_search_pipeline(argc, argv);
    if (cmd == "search-model") return cmd_search_model(argc, argv);
    if (cmd == "run-model") return cmd_run_model(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "batch") return cmd_batch(argc, argv);
    if (cmd == "client") return cmd_client(argc, argv);
    if (cmd == "metrics") return cmd_metrics(argc, argv);
    // A kCommands entry without a dispatch line above is a programming
    // error — fail loudly instead of falling through to some command.
    std::cerr << "error: command \"" << cmd << "\" is listed but not wired\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    if (find_command(cmd) != nullptr) {
      std::cerr << "(see `omega_cli help " << cmd << "` for the flags)\n";
    }
    return 1;
  }
}
