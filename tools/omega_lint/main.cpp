// omega_lint CLI — scans the repo (default: src/ tools/ bench/) with the
// contract rules in lint.hpp and reports findings as human-readable text or
// --json. Exit code: 0 clean, 1 findings, 2 usage/IO error.
//
//   omega_lint [paths...] [--root DIR] [--json] [--baseline FILE]
//              [--write-baseline FILE] [--allow RULE:PREFIX] [--list-rules]
//
// Baseline workflow: `omega_lint --write-baseline lint_baseline.json` records
// today's findings; CI runs `omega_lint --baseline lint_baseline.json` so
// only NEW violations fail. Fixed violations show up as stale baseline rows
// (exit stays 0) — delete them by rewriting the baseline.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kUsage =
    "usage: omega_lint [paths...] [options]\n"
    "\n"
    "Scans C++ sources (default paths: src tools bench, relative to --root)\n"
    "for contract violations. Exit 0 = clean, 1 = findings, 2 = error.\n"
    "\n"
    "options:\n"
    "  --root DIR             repo root paths are resolved against (default .)\n"
    "  --json                 machine-readable report on stdout\n"
    "  --baseline FILE        ignore findings recorded in FILE; report stale\n"
    "                         entries (violations fixed since the baseline)\n"
    "  --write-baseline FILE  write current findings to FILE and exit 0\n"
    "  --allow RULE:PREFIX    allowlist RULE (or 'all') under path PREFIX;\n"
    "                         repeatable\n"
    "  --list-rules           print the rule catalog and exit\n"
    "  -q, --quiet            suppress the summary line on success\n";

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
         ext == ".hh";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative, '/'-separated virtual path (rule scoping keys on it).
std::string virtual_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string root = ".";
  std::string baseline_file;
  std::string write_baseline_file;
  bool json = false;
  bool quiet = false;
  omega::lint::LintOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "omega_lint: " << a << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (a == "--list-rules") {
      for (const omega::lint::RuleInfo& r : omega::lint::rules()) {
        std::cout << r.id << " (" << r.code << "): " << r.summary << "\n";
      }
      return 0;
    } else if (a == "--root") {
      root = next();
    } else if (a == "--json") {
      json = true;
    } else if (a == "--baseline") {
      baseline_file = next();
    } else if (a == "--write-baseline") {
      write_baseline_file = next();
    } else if (a == "--allow") {
      const std::string v = next();
      const std::size_t colon = v.find(':');
      if (colon == std::string::npos || colon == 0 ||
          !omega::lint::is_known_rule(v.substr(0, colon))) {
        std::cerr << "omega_lint: --allow wants KNOWN_RULE:PATH_PREFIX, got '"
                  << v << "'\n";
        return 2;
      }
      options.allow.emplace_back(v.substr(0, colon), v.substr(colon + 1));
    } else if (a == "-q" || a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "omega_lint: unknown option '" << a << "'\n" << kUsage;
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  omega::lint::Linter linter(options);
  std::size_t files = 0;
  try {
    const fs::path root_path(root);
    std::vector<fs::path> inputs;
    for (const std::string& p : paths) {
      const fs::path full = fs::path(p).is_absolute() ? fs::path(p)
                                                      : root_path / p;
      if (fs::is_directory(full)) {
        for (const auto& e : fs::recursive_directory_iterator(full)) {
          if (e.is_regular_file() && has_source_extension(e.path())) {
            inputs.push_back(e.path());
          }
        }
      } else if (fs::is_regular_file(full)) {
        inputs.push_back(full);
      } else {
        std::cerr << "omega_lint: no such file or directory: " << full
                  << "\n";
        return 2;
      }
    }
    std::sort(inputs.begin(), inputs.end());
    for (const fs::path& file : inputs) {
      linter.add_file(virtual_path(file, root_path), read_file(file));
      ++files;
    }
  } catch (const std::exception& e) {
    std::cerr << "omega_lint: " << e.what() << "\n";
    return 2;
  }

  omega::lint::LintReport report;
  omega::lint::BaselineResult baseline;
  try {
    report = linter.run();
    if (!write_baseline_file.empty()) {
      std::ofstream out(write_baseline_file, std::ios::binary);
      out << omega::lint::baseline_json(report.findings) << "\n";
      if (!out) {
        std::cerr << "omega_lint: cannot write " << write_baseline_file
                  << "\n";
        return 2;
      }
      std::cout << "omega_lint: wrote " << report.findings.size()
                << " baseline entr" << (report.findings.size() == 1 ? "y" : "ies")
                << " to " << write_baseline_file << "\n";
      return 0;
    }
    if (!baseline_file.empty()) {
      baseline = omega::lint::apply_baseline(
          report, omega::lint::parse_baseline(read_file(baseline_file)));
    }
  } catch (const std::exception& e) {
    std::cerr << "omega_lint: " << e.what() << "\n";
    return 2;
  }

  if (json) {
    std::cout << omega::lint::report_json(report, baseline) << "\n";
  } else {
    for (const omega::lint::Finding& f : report.findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      if (!f.snippet.empty()) std::cout << "    > " << f.snippet << "\n";
      if (!f.hint.empty()) std::cout << "    hint: " << f.hint << "\n";
    }
    for (const omega::lint::BaselineEntry& b : baseline.stale) {
      std::cout << "stale baseline entry (violation fixed — delete it): "
                << b.file << " [" << b.rule << "] " << b.snippet << "\n";
    }
    if (!report.findings.empty() || !quiet) {
      std::cout << "omega_lint: " << files << " files, "
                << report.findings.size() << " finding"
                << (report.findings.size() == 1 ? "" : "s") << " ("
                << report.suppressed << " suppressed, " << report.allowlisted
                << " allowlisted, " << baseline.baselined << " baselined, "
                << baseline.stale.size() << " stale)\n";
    }
  }
  return report.findings.empty() ? 0 : 1;
}
