// omega_lint — contract-enforcing static analysis for the OMEGA tree.
//
// The repo's correctness story rests on invariants that used to live as
// prose in DESIGN.md: u64 cycle/traffic accumulators saturate instead of
// wrapping ("Overflow contract"), ranked/serialized output never depends on
// unordered-container iteration order or wall-clock reads ("Determinism
// guarantees"), floats are never compared with ==/!= outside deliberate
// total-order ties, and the service boundary converts every escape into a
// structured error. This tool makes those contracts machine-checkable: a
// token/AST-lite scanner (no libclang) with a pluggable rule engine, inline
// suppressions that require a reason, per-rule path allowlists, and a
// committed-baseline mode so a tree starts clean and NEW violations fail CI.
//
// Rules (DESIGN.md "Static analysis & contracts" has the full catalog):
//   raw-arith      (R1)  raw +/*/+= on std::uint64_t accumulators named
//                        *cycles*/*macs*/*traffic*/*energy*/*bytes* in
//                        src/engine, src/omega, src/dse — use sat_add_u64 /
//                        sat_mul_u64 (src/util/saturate.hpp).
//   unordered-iter (R2a) range-for over unordered_{map,set} without a sorted
//                        materialization (insert into std::map/std::set in
//                        the body, or std::sort later in the same scope).
//   wall-clock     (R2b) rand()/time()/clock reads outside src/obs, bench/
//                        and src/util/rng.* — nondeterminism must stay in
//                        the observability / benchmarking layers.
//   float-eq       (R3a) ==/!= with a floating operand, except symmetric
//                        same-field compares (a.score != b.score), which are
//                        the deliberate representation-exact total-order
//                        ties the determinism contract depends on.
//   float-accum    (R3b) += on floating accumulators in src/dse (ranking
//                        paths): float sums are order-sensitive.
//   uncaught-escape(R4a) a try in src/service whose final catch is not
//                        catch (const std::exception&) / catch (...): the
//                        service boundary must not let raw exceptions kill
//                        the daemon.
//   pragma-once    (R4b) every header starts with #pragma once.
//   bad-suppression      an omega-lint: allow(...) with an unknown rule id
//                        or no reason — suppressions are part of the
//                        contract and must say why.
//
// Suppression syntax (same line or the line above):
//   // omega-lint: allow(rule-id): <reason>
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace omega::lint {

struct RuleInfo {
  const char* id;       // stable rule id ("raw-arith")
  const char* code;     // catalog code ("R1")
  const char* summary;  // one-line description
};

/// The rule catalog, in report order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// True if `id` names a known rule (or the "all" wildcard).
[[nodiscard]] bool is_known_rule(const std::string& id);

struct Finding {
  std::string file;     // virtual path, '/'-separated, repo-relative
  std::size_t line = 0; // 1-based
  std::string rule;
  std::string message;
  std::string hint;
  std::string snippet;  // trimmed source line the finding anchors to
};

struct LintOptions {
  /// Extra per-rule path allowlists on top of the built-ins:
  /// rule id (or "all") -> path prefix.
  std::vector<std::pair<std::string, std::string>> allow;
};

struct LintReport {
  std::vector<Finding> findings;  // active findings, file/line ordered
  std::size_t suppressed = 0;     // dropped by inline allow() suppressions
  std::size_t allowlisted = 0;    // dropped by per-rule path allowlists
  std::size_t files = 0;          // files scanned
};

/// Project-wide linter: add every file first (declaration harvesting is
/// global, so a field declared in a header resolves in the .cpp that uses
/// it), then run().
class Linter {
 public:
  explicit Linter(LintOptions options = {});

  /// Registers `content` under the virtual path `path` (repo-relative,
  /// '/'-separated; the path decides which rules apply).
  void add_file(std::string path, std::string content);

  /// Runs every rule over every added file.
  [[nodiscard]] LintReport run() const;

 private:
  LintOptions options_;
  std::vector<std::pair<std::string, std::string>> files_;  // path, content
};

// ---- Baseline ---------------------------------------------------------------
//
// A baseline entry identifies a finding by (file, rule, snippet) rather than
// line number, so unrelated edits above a baselined site do not churn the
// file. Matching is multiset: N identical entries absorb at most N findings.

struct BaselineEntry {
  std::string file;
  std::string rule;
  std::string snippet;
};

/// Parses a baseline document ({"version":1,"entries":[...]}); throws
/// InvalidArgumentError on malformed input.
[[nodiscard]] std::vector<BaselineEntry> parse_baseline(
    const std::string& json_text);

/// Renders `findings` as a baseline document (pretty-printed, stable order).
[[nodiscard]] std::string baseline_json(const std::vector<Finding>& findings);

/// Removes findings matched by `baseline` from `report` (counting them) and
/// returns the stale entries — baseline rows with no matching finding left,
/// i.e. violations that have since been fixed and should be deleted.
struct BaselineResult {
  std::size_t baselined = 0;
  std::vector<BaselineEntry> stale;
};
BaselineResult apply_baseline(LintReport& report,
                              const std::vector<BaselineEntry>& baseline);

/// Machine-readable report: {"version":1,"findings":[...],"counts":{...},
/// "stale_baseline":[...]}.
[[nodiscard]] std::string report_json(const LintReport& report,
                                      const BaselineResult& baseline);

}  // namespace omega::lint
