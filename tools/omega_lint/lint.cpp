#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <string_view>
#include <unordered_map>

#include "util/error.hpp"
#include "util/json.hpp"

namespace omega::lint {

namespace {

// ---- Rule catalog -----------------------------------------------------------

constexpr const char* kRawArith = "raw-arith";
constexpr const char* kUnorderedIter = "unordered-iter";
constexpr const char* kWallClock = "wall-clock";
constexpr const char* kFloatEq = "float-eq";
constexpr const char* kFloatAccum = "float-accum";
constexpr const char* kUncaughtEscape = "uncaught-escape";
constexpr const char* kPragmaOnce = "pragma-once";
constexpr const char* kBadSuppression = "bad-suppression";

const std::vector<RuleInfo> kRules = {
    {kRawArith, "R1",
     "raw +/*/+= on a std::uint64_t accumulator; use sat_add_u64/sat_mul_u64"},
    {kUnorderedIter, "R2a",
     "iteration over an unordered container without sorted materialization"},
    {kWallClock, "R2b",
     "rand()/time()/clock read outside src/obs, bench/, src/util/rng.*"},
    {kFloatEq, "R3a", "==/!= on floating-point operands"},
    {kFloatAccum, "R3b", "order-sensitive float accumulation in a ranking path"},
    {kUncaughtEscape, "R4a",
     "service try block whose final catch is not std::exception/..."},
    {kPragmaOnce, "R4b", "header does not start with #pragma once"},
    {kBadSuppression, "meta",
     "omega-lint suppression with an unknown rule or missing reason"},
};

// ---- Path scoping -----------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool is_header(std::string_view path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") ||
         ends_with(path, ".hh");
}

/// Directories a rule is restricted to (empty = every scanned file).
const std::vector<std::string_view>& rule_scope(std::string_view rule) {
  static const std::vector<std::string_view> kEverywhere = {};
  static const std::vector<std::string_view> kAccumulatorDirs = {
      "src/engine/", "src/omega/", "src/dse/"};
  static const std::vector<std::string_view> kRankingDirs = {"src/dse/"};
  static const std::vector<std::string_view> kServiceDirs = {"src/service/"};
  if (rule == kRawArith) return kAccumulatorDirs;
  if (rule == kFloatAccum) return kRankingDirs;
  if (rule == kUncaughtEscape) return kServiceDirs;
  return kEverywhere;
}

/// Built-in allowlists: paths where a rule does not apply by design.
const std::vector<std::string_view>& rule_builtin_allow(std::string_view rule) {
  static const std::vector<std::string_view> kNone = {};
  static const std::vector<std::string_view> kClockOk = {
      "src/obs/", "bench/", "src/util/rng."};
  if (rule == kWallClock) return kClockOk;
  return kNone;
}

bool rule_applies(std::string_view rule, std::string_view path) {
  const auto& scope = rule_scope(rule);
  if (!scope.empty()) {
    bool in_scope = false;
    for (const std::string_view dir : scope) {
      if (starts_with(path, dir)) in_scope = true;
    }
    if (!in_scope) return false;
  }
  for (const std::string_view prefix : rule_builtin_allow(rule)) {
    if (starts_with(path, prefix)) return false;
  }
  return true;
}

// ---- Scrubbing & suppressions -----------------------------------------------

struct Suppression {
  std::size_t line = 0;
  std::vector<std::string> rule_ids;
  bool has_reason = false;
  bool own_line = false;  // comment line with no code: also covers line+1
};

/// `source` with comments and string/char literals blanked to spaces
/// (newlines preserved, so token line numbers match the original), plus the
/// omega-lint suppressions found in comments.
struct ScrubResult {
  std::string text;
  std::vector<Suppression> suppressions;
};

void parse_suppression_comment(std::string_view comment, std::size_t line,
                               std::vector<Suppression>& out) {
  const std::size_t tag = comment.find("omega-lint:");
  if (tag == std::string_view::npos) return;
  // A suppression must be the whole comment: prose that merely MENTIONS the
  // omega-lint syntax (like the catalog in lint.hpp) is not a suppression.
  for (std::size_t i = 0; i < tag; ++i) {
    if (!std::isspace(static_cast<unsigned char>(comment[i]))) return;
  }
  Suppression s;
  s.line = line;
  std::size_t pos = comment.find("allow(", tag);
  if (pos == std::string_view::npos) {
    out.push_back(std::move(s));  // no allow() clause: reported as malformed
    return;
  }
  pos += 6;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string_view::npos) {
    out.push_back(std::move(s));
    return;
  }
  std::string id;
  for (std::size_t i = pos; i <= close; ++i) {
    const char c = i < close ? comment[i] : ',';
    if (c == ',' ) {
      while (!id.empty() && id.front() == ' ') id.erase(id.begin());
      while (!id.empty() && id.back() == ' ') id.pop_back();
      if (!id.empty()) s.rule_ids.push_back(id);
      id.clear();
    } else {
      id.push_back(c);
    }
  }
  // Reason: a ':' after the ')' followed by at least one non-space char.
  const std::size_t colon = comment.find(':', close);
  if (colon != std::string_view::npos) {
    for (std::size_t i = colon + 1; i < comment.size(); ++i) {
      if (!std::isspace(static_cast<unsigned char>(comment[i]))) {
        s.has_reason = true;
        break;
      }
    }
  }
  out.push_back(std::move(s));
}

ScrubResult scrub(const std::string& source) {
  ScrubResult r;
  r.text.assign(source.size(), ' ');
  std::size_t line = 1;
  bool line_has_code = false;
  std::string comment;           // text of the comment being scanned
  std::size_t comment_line = 0;  // line the current comment started on
  const auto flush_comment = [&] {
    if (!comment.empty()) {
      const std::size_t before = r.suppressions.size();
      parse_suppression_comment(comment, comment_line, r.suppressions);
      if (r.suppressions.size() > before && !line_has_code) {
        r.suppressions.back().own_line = true;
      }
      comment.clear();
    }
  };
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    if (c == '\n') {
      r.text[i] = '\n';
      if (state == State::kLine) {
        flush_comment();
        state = State::kCode;
      } else if (state == State::kBlock) {
        flush_comment();  // treat each block-comment line independently
        comment_line = line + 1;
      }
      ++line;
      line_has_code = false;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
          state = State::kLine;
          comment_line = line;
          ++i;
        } else if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
          state = State::kBlock;
          comment_line = line;
          ++i;
        } else if (c == '"' && i >= 1 && source[i - 1] == 'R') {
          state = State::kRaw;
          raw_delim.clear();
          for (std::size_t j = i + 1; j < source.size() && source[j] != '(';
               ++j) {
            raw_delim.push_back(source[j]);
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        } else {
          r.text[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
        }
        break;
      case State::kLine:
      case State::kBlock:
        if (state == State::kBlock && c == '*' && i + 1 < source.size() &&
            source[i + 1] == '/') {
          flush_comment();
          state = State::kCode;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          line_has_code = true;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          line_has_code = true;
        }
        break;
      case State::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (c == ')' && source.compare(i, close.size(), close) == 0) {
          i += close.size() - 1;
          state = State::kCode;
          line_has_code = true;
        }
        break;
      }
    }
  }
  flush_comment();
  return r;
}

// ---- Tokenizer --------------------------------------------------------------

struct Token {
  enum class Kind : unsigned char { kIdent, kNumber, kPunct };
  Kind kind;
  std::string_view text;
  std::size_t line = 0;
  bool is_float = false;  // kNumber only
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(std::string_view text) {
  static constexpr std::array<std::string_view, 24> kMulti = {
      "...", "->*", "<<=", ">>=", "::", "->", "++", "--", "+=", "-=", "*=",
      "/=",  "%=",  "&=",  "|=",  "^=", "==", "!=", "<=", ">=", "&&", "||",
      "<<",  ">>"};
  std::vector<Token> out;
  std::size_t line = 1;
  for (std::size_t i = 0; i < text.size();) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < text.size() && ident_char(text[j])) ++j;
      out.push_back({Token::Kind::kIdent, text.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < text.size()) {
        const char d = text[j];
        if (ident_char(d) || d == '\'' || d == '.') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                    text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      const std::string_view tok = text.substr(i, j - i);
      // Hex literals (0x1F, 0x1p3) are integers for our purposes; a decimal
      // token is floating if it has a '.', an exponent, or an f/F suffix.
      const bool hex = tok.size() > 1 && tok[0] == '0' &&
                       (tok[1] == 'x' || tok[1] == 'X');
      const bool is_float =
          !hex && (tok.find('.') != std::string_view::npos ||
                   tok.find('e') != std::string_view::npos ||
                   tok.find('E') != std::string_view::npos ||
                   tok.back() == 'f' || tok.back() == 'F');
      out.push_back({Token::Kind::kNumber, tok, line, is_float});
      i = j;
      continue;
    }
    std::string_view matched;
    for (const std::string_view m : kMulti) {
      if (text.compare(i, m.size(), m) == 0) {
        matched = m;
        break;
      }
    }
    if (!matched.empty()) {
      out.push_back({Token::Kind::kPunct, text.substr(i, matched.size()), line,
                     false});
      i += matched.size();
    } else {
      out.push_back({Token::Kind::kPunct, text.substr(i, 1), line, false});
      ++i;
    }
  }
  return out;
}

// ---- Declaration harvesting -------------------------------------------------

/// What the harvester learned about an identifier, project-wide. A name
/// declared with conflicting classes keeps every bit; rules require the bit
/// they care about to be unambiguous (e.g. raw-arith skips names that are
/// also floating somewhere).
enum TypeBits : unsigned {
  kTypeU64 = 1u << 0,       // std::uint64_t (incl. vector<uint64_t> elements)
  kTypeFloat = 1u << 1,     // double / float
  kTypeUnordered = 1u << 2, // unordered_{map,set,...}
  kTypeOrdered = 1u << 3,   // std::map / std::set (sorted materialization)
  kTypeAtomic = 1u << 4,    // std::atomic<...>: has its own memory contract
  kTypeOther = 1u << 5,     // declared with some other type
};

using TypeTable = std::unordered_map<std::string, unsigned>;

/// Words that start statements/declarations but are never a user type in the
/// `Type name` declaration pattern the generic harvester keys on.
bool is_decl_keyword(std::string_view t) {
  static constexpr std::array<std::string_view, 36> kWords = {
      "return",   "case",     "new",      "delete",  "throw",    "else",
      "do",       "goto",     "operator", "sizeof",  "typename", "template",
      "using",    "namespace","class",    "struct",  "enum",     "public",
      "private",  "protected","virtual",  "override","final",    "explicit",
      "friend",   "typedef",  "if",       "while",   "for",      "switch",
      "catch",    "static_assert",        "alignas", "alignof",  "co_return",
      "co_yield"};
  return std::find(kWords.begin(), kWords.end(), t) != kWords.end();
}

/// Type spellings the dedicated harvest branches own (the generic branch
/// must not double-record their declarations under kTypeOther).
bool is_typed_trigger(std::string_view t) {
  static constexpr std::array<std::string_view, 13> kTriggers = {
      "uint64_t", "double",   "float", "atomic", "vector", "array",
      "span",     "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "map", "set"};
  return std::find(kTriggers.begin(), kTriggers.end(), t) != kTriggers.end();
}

/// Builtin type spellings: a binary '*' or '&' right after one of these is a
/// pointer/reference declarator, not arithmetic.
bool is_builtin_type_name(std::string_view t) {
  static constexpr std::array<std::string_view, 16> kTypes = {
      "uint64_t", "uint32_t", "uint16_t", "uint8_t", "int64_t", "int32_t",
      "int16_t",  "int8_t",   "size_t",   "double",  "float",   "int",
      "unsigned", "long",     "char",     "bool"};
  return std::find(kTypes.begin(), kTypes.end(), t) != kTypes.end();
}

/// Tokens a declaration's type can directly follow — keeps the generic
/// harvester off expression contexts like `x = a * b`.
bool is_decl_context(std::string_view prev) {
  return prev == ";" || prev == "{" || prev == "}" || prev == "(" ||
         prev == "," || prev == "::" || prev == ":" || prev == ">" ||
         prev == "const" || prev == "constexpr" || prev == "static" ||
         prev == "inline" || prev == "mutable" || prev == "friend" ||
         prev == "typename";
}

/// Tokens that can follow a declared name (initializer, separator, or a
/// function parameter list).
bool is_decl_terminator(std::string_view next) {
  return next == "=" || next == ";" || next == "," || next == ")" ||
         next == "{" || next == "(";
}

/// Skips a balanced template argument list; `i` points at '<'. Returns the
/// index just past the matching '>'. Handles '>>' closing two levels.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string_view t = toks[i].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t == ";" || t == "{") {
      return i;  // not a template argument list after all
    }
  }
  return i;
}

/// True if the token range [begin, end) mentions a floating-point type.
bool mentions_float(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].text == "double" || toks[i].text == "float") return true;
  }
  return false;
}

bool mentions_u64(const std::vector<Token>& toks, std::size_t begin,
                  std::size_t end) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].text == "uint64_t") return true;
  }
  return false;
}

/// After a type spelling, skips cv/ref/pointer tokens and records the next
/// identifier (if any) with `bits`.
void record_declared_name(const std::vector<Token>& toks, std::size_t i,
                          unsigned bits, TypeTable& table) {
  while (i < toks.size() &&
         (toks[i].text == "const" || toks[i].text == "*" ||
          toks[i].text == "&" || toks[i].text == "&&")) {
    ++i;
  }
  if (i < toks.size() && toks[i].kind == Token::Kind::kIdent) {
    table[std::string(toks[i].text)] |= bits;
  }
}

void harvest(const std::vector<Token>& toks, TypeTable& table) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string_view t = toks[i].text;
    if (t == "uint64_t") {
      // `std::uint64_t name` (fields, locals, params, function returns).
      // Inside a template argument list the next token is punctuation, so
      // nothing is recorded here (the container triggers handle those).
      record_declared_name(toks, i + 1, kTypeU64, table);
    } else if (t == "double" || t == "float") {
      record_declared_name(toks, i + 1, kTypeFloat, table);
    } else if (t == "atomic" && i + 1 < toks.size() &&
               toks[i + 1].text == "<") {
      record_declared_name(toks, skip_angles(toks, i + 1), kTypeAtomic, table);
    } else if ((t == "unordered_map" || t == "unordered_set" ||
                t == "unordered_multimap" || t == "unordered_multiset") &&
               i + 1 < toks.size() && toks[i + 1].text == "<") {
      record_declared_name(toks, skip_angles(toks, i + 1), kTypeUnordered,
                           table);
    } else if ((t == "map" || t == "set" || t == "multimap" ||
                t == "multiset") &&
               i >= 2 && toks[i - 1].text == "::" &&
               toks[i - 2].text == "std" && i + 1 < toks.size() &&
               toks[i + 1].text == "<") {
      record_declared_name(toks, skip_angles(toks, i + 1), kTypeOrdered,
                           table);
    } else if ((t == "vector" || t == "array" || t == "span") &&
               i + 1 < toks.size() && toks[i + 1].text == "<") {
      const std::size_t past = skip_angles(toks, i + 1);
      if (mentions_u64(toks, i + 1, past)) {
        // Element access through [] is u64 arithmetic for the accumulator
        // rule (chunk_cycles[i] + x must saturate like cycles + x).
        record_declared_name(toks, past, kTypeU64, table);
      } else if (mentions_float(toks, i + 1, past)) {
        record_declared_name(toks, past, kTypeFloat, table);
      }
    } else if (!is_decl_keyword(t) && !is_typed_trigger(t) &&
               (i == 0 || is_decl_context(toks[i - 1].text))) {
      // Generic `Type name` declaration (GnnPhase p, std::size_t n, ...):
      // records `name` under kTypeOther. The float rules require an
      // UNAMBIGUOUS float classification, so a `double p` in one file no
      // longer taints a `GnnPhase p` parameter elsewhere in the project.
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") j = skip_angles(toks, i + 1);
      while (j < toks.size() &&
             (toks[j].text == "const" || toks[j].text == "*" ||
              toks[j].text == "&" || toks[j].text == "&&")) {
        ++j;
      }
      if (j > i && j + 1 < toks.size() &&
          toks[j].kind == Token::Kind::kIdent &&
          is_decl_terminator(toks[j + 1].text)) {
        table[std::string(toks[j].text)] |= kTypeOther;
      }
    }
  }
}

// ---- Operand extraction -----------------------------------------------------

struct Operand {
  std::string_view terminal;  // last identifier component ("" if unknown)
  bool is_float_literal = false;
  bool cast_to_float = false;
  bool cast_to_u64 = false;
};

std::size_t match_back(const std::vector<Token>& toks, std::size_t close,
                       std::string_view open_t, std::string_view close_t) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    if (toks[j].text == close_t) ++depth;
    if (toks[j].text == open_t && --depth == 0) return j;
    if (j == 0) break;
  }
  return 0;
}

/// The primary expression ending just before token `i` (the operator).
Operand left_operand(const std::vector<Token>& toks, std::size_t i) {
  Operand op;
  if (i == 0) return op;
  std::size_t j = i - 1;
  // Skip trailing call/index groups: foo(...)  foo[...]  (...).
  while (j > 0 && (toks[j].text == ")" || toks[j].text == "]")) {
    const std::string_view open = toks[j].text == ")" ? "(" : "[";
    const std::size_t o = match_back(toks, j, open, toks[j].text);
    if (o == 0) return op;
    j = o;  // at the opener
    if (j == 0) return op;
    --j;    // token before the opener
    if (toks[j].text == ">") {  // template call / cast: foo<T>(...)
      const std::size_t lt = match_back(toks, j, "<", ">");
      if (lt == 0) return op;
      if (mentions_float(toks, lt, j + 1)) op.cast_to_float = true;
      if (mentions_u64(toks, lt, j + 1)) op.cast_to_u64 = true;
      j = lt - 1;
    }
  }
  if (toks[j].kind == Token::Kind::kNumber) {
    op.is_float_literal = toks[j].is_float;
    return op;
  }
  if (toks[j].kind == Token::Kind::kIdent) op.terminal = toks[j].text;
  return op;
}

/// The primary expression starting just after token `i`.
Operand right_operand(const std::vector<Token>& toks, std::size_t i) {
  Operand op;
  std::size_t j = i + 1;
  // Unary prefixes and grouping parens.
  while (j < toks.size() &&
         (toks[j].text == "(" || toks[j].text == "-" || toks[j].text == "+" ||
          toks[j].text == "~" || toks[j].text == "!" || toks[j].text == "*" ||
          toks[j].text == "&")) {
    ++j;
  }
  if (j >= toks.size()) return op;
  if (toks[j].kind == Token::Kind::kNumber) {
    op.is_float_literal = toks[j].is_float;
    return op;
  }
  if (toks[j].kind != Token::Kind::kIdent) return op;
  // Follow the access chain a::b.c->d, keeping the last component; a cast
  // like static_cast<double>(x) reports the cast type instead.
  std::string_view name = toks[j].text;
  while (j + 2 < toks.size() &&
         (toks[j + 1].text == "." || toks[j + 1].text == "->" ||
          toks[j + 1].text == "::") &&
         toks[j + 2].kind == Token::Kind::kIdent) {
    j += 2;
    name = toks[j].text;
  }
  if (j + 1 < toks.size() && toks[j + 1].text == "<" &&
      (name == "static_cast" || name == "saturate_cast")) {
    const std::size_t past = skip_angles(toks, j + 1);
    if (mentions_float(toks, j + 1, past)) op.cast_to_float = true;
    if (mentions_u64(toks, j + 1, past)) op.cast_to_u64 = true;
    return op;
  }
  op.terminal = name;
  return op;
}

// ---- Rule helpers -----------------------------------------------------------

/// Accumulator naming convention (DESIGN.md): any snake_case component of
/// the identifier equal to one of the accounting nouns.
bool is_accumulator_name(std::string_view name) {
  static constexpr std::array<std::string_view, 7> kNouns = {
      "cycles", "cycle", "macs", "pj", "traffic", "energy", "bytes"};
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t end = name.find('_', start);
    if (end == std::string_view::npos) end = name.size();
    const std::string_view comp = name.substr(start, end - start);
    for (const std::string_view n : kNouns) {
      if (comp == n) return true;
    }
    if (end == name.size()) break;
    start = end + 1;
  }
  return false;
}

unsigned type_bits(const TypeTable& table, std::string_view name) {
  if (name.empty()) return 0;
  const auto it = table.find(std::string(name));
  return it == table.end() ? 0 : it->second;
}

bool operand_is_floatish(const TypeTable& table, const Operand& op) {
  if (op.is_float_literal || op.cast_to_float) return true;
  // Name-table evidence must be unambiguous: a name that is also declared
  // with a non-float type somewhere is a collision, not a float.
  const unsigned bits = type_bits(table, op.terminal);
  return (bits & kTypeFloat) != 0 &&
         (bits & (kTypeU64 | kTypeOther)) == 0;
}

std::string trimmed_line(const std::string& source, std::size_t line) {
  std::size_t begin = 0;
  for (std::size_t l = 1; l < line; ++l) {
    begin = source.find('\n', begin);
    if (begin == std::string::npos) return "";
    ++begin;
  }
  std::size_t end = source.find('\n', begin);
  if (end == std::string::npos) end = source.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(source[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(source[end - 1]))) {
    --end;
  }
  return source.substr(begin, end - begin);
}

// ---- Per-file rule pass -----------------------------------------------------

struct FileContext {
  const std::string& path;
  const std::string& source;
  const std::vector<Token>& toks;
  const TypeTable& types;
  std::vector<Finding>& out;
};

void emit(FileContext& ctx, std::size_t line, const char* rule,
          std::string message, std::string hint) {
  ctx.out.push_back({ctx.path, line, rule, std::move(message), std::move(hint),
                     trimmed_line(ctx.source, line)});
}

void rule_raw_arith(FileContext& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string_view t = toks[i].text;
    const bool compound = t == "+=" || t == "*=";
    const bool binary =
        (t == "+" || t == "*") && i > 0 &&
        (toks[i - 1].kind == Token::Kind::kIdent ||
         toks[i - 1].kind == Token::Kind::kNumber ||
         toks[i - 1].text == ")" || toks[i - 1].text == "]") &&
        toks[i - 1].text != "operator";
    if (!compound && !binary) continue;
    // `std::uint64_t* sink` is a pointer declarator, not a multiply.
    if (binary && is_builtin_type_name(toks[i - 1].text)) continue;
    const Operand lhs = left_operand(toks, i);
    const Operand rhs = right_operand(toks, i);
    const auto is_u64_acc = [&](const Operand& op) {
      if (!is_accumulator_name(op.terminal)) return false;
      const unsigned bits = type_bits(ctx.types, op.terminal);
      return (bits & kTypeU64) != 0 &&
             (bits & (kTypeFloat | kTypeAtomic)) == 0;
    };
    const bool lhs_acc = is_u64_acc(lhs);
    const bool rhs_acc = !compound && is_u64_acc(rhs);
    if (!lhs_acc && !rhs_acc) continue;
    // Mixed float arithmetic promotes to double: overflow is R3 territory.
    if (operand_is_floatish(ctx.types, lhs) ||
        operand_is_floatish(ctx.types, rhs)) {
      continue;
    }
    const std::string_view name = lhs_acc ? lhs.terminal : rhs.terminal;
    const bool mul = t == "*" || t == "*=";
    emit(ctx, toks[i].line, kRawArith,
         "raw '" + std::string(t) + "' on u64 accumulator '" +
             std::string(name) + "' can wrap silently",
         mul ? "use sat_mul_u64 (src/util/saturate.hpp) or suppress with a "
               "reason"
             : "use sat_add_u64 (src/util/saturate.hpp) or suppress with a "
               "reason");
  }
}

void rule_wall_clock(FileContext& ctx) {
  static constexpr std::array<std::string_view, 7> kCalls = {
      "rand", "srand", "random", "time", "clock", "clock_gettime",
      "gettimeofday"};
  static constexpr std::array<std::string_view, 3> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string_view t = toks[i].text;
    for (const std::string_view call : kCalls) {
      if (t == call && i + 1 < toks.size() && toks[i + 1].text == "(" &&
          (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->"))) {
        emit(ctx, toks[i].line, kWallClock,
             "call to '" + std::string(t) + "' is nondeterministic",
             "route randomness through src/util/rng and time through src/obs, "
             "or suppress with a reason");
      }
    }
    for (const std::string_view clk : kClocks) {
      if (t == clk) {
        emit(ctx, toks[i].line, kWallClock,
             "wall-clock read ('" + std::string(t) +
                 "') outside the observability layer",
             "results and responses must not depend on time; keep clocks in "
             "src/obs / bench, or suppress with a reason");
      }
    }
  }
}

void rule_float_eq(FileContext& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string_view t = toks[i].text;
    if (t != "==" && t != "!=") continue;
    const Operand lhs = left_operand(toks, i);
    const Operand rhs = right_operand(toks, i);
    // A float can never be compared against nullptr; the name on the other
    // side is a pointer whatever the name table says.
    if (lhs.terminal == "nullptr" || rhs.terminal == "nullptr") continue;
    const bool lf = operand_is_floatish(ctx.types, lhs);
    const bool rf = operand_is_floatish(ctx.types, rhs);
    if (!lf && !rf) continue;
    // Symmetric same-field compares (a.score != b.score) are the deliberate
    // representation-exact ties of the ranking total order.
    if (!lhs.terminal.empty() && lhs.terminal == rhs.terminal) continue;
    const std::string name(lhs.terminal.empty() ? rhs.terminal : lhs.terminal);
    std::string message = "'";
    message += t;
    message += "' on floating-point operand";
    if (!name.empty()) {
      message += " '";
      message += name;
      message += "'";
    }
    emit(ctx, toks[i].line, kFloatEq, std::move(message),
         "compare integers, use an explicit tolerance, or suppress with a "
         "reason if the exact representation compare is intended");
  }
}

void rule_float_accum(FileContext& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "+=") continue;
    const Operand lhs = left_operand(toks, i);
    const unsigned bits = type_bits(ctx.types, lhs.terminal);
    if ((bits & kTypeFloat) == 0 ||
        (bits & (kTypeU64 | kTypeOther)) != 0) {
      continue;
    }
    emit(ctx, toks[i].line, kFloatAccum,
         "float accumulation into '" + std::string(lhs.terminal) +
             "' in a ranking path is order-sensitive",
         "accumulate in a fixed sequential order (and say so in a "
         "suppression), or sum integers and convert once");
  }
}

std::size_t skip_braces(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i + 1;
  }
  return i;
}

std::size_t skip_parens(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i + 1;
  }
  return i;
}

void rule_unordered_iter(FileContext& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
    const std::size_t open = i + 1;
    const std::size_t close = skip_parens(toks, open) - 1;
    // Range-for: a single ':' at paren depth 1.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = open; j <= close && j < toks.size(); ++j) {
      if (toks[j].text == "(" || toks[j].text == "[") ++depth;
      if (toks[j].text == ")" || toks[j].text == "]") --depth;
      if (toks[j].text == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    // Terminal identifier of the range expression.
    std::string_view range;
    for (std::size_t j = close; j-- > colon;) {
      if (toks[j].kind == Token::Kind::kIdent) {
        range = toks[j].text;
        break;
      }
      if (toks[j].text == ")" || toks[j].text == "]") {
        j = match_back(toks, j, toks[j].text == ")" ? "(" : "[", toks[j].text);
        if (j == 0) break;
      }
    }
    if ((type_bits(ctx.types, range) & kTypeUnordered) == 0) continue;
    // Body extent.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < toks.size() && toks[body_begin].text == "{") {
      body_end = skip_braces(toks, body_begin);
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && toks[body_end].text != ";") ++body_end;
    }
    // Sorted materialization inside the body: writes into an ordered
    // container (std::map / std::set).
    bool ordered_sink = false;
    for (std::size_t j = body_begin; j < body_end; ++j) {
      if (toks[j].kind == Token::Kind::kIdent &&
          (type_bits(ctx.types, toks[j].text) & kTypeOrdered) != 0 &&
          j + 1 < toks.size() &&
          (toks[j + 1].text == "." || toks[j + 1].text == "[" ||
           toks[j + 1].text == "->")) {
        ordered_sink = true;
        break;
      }
    }
    // ... or a sort of the materialized output later in the enclosing scope.
    // The scan pops through one wrapper scope (the idiomatic lock block
    // around the collection loop) and is token-capped so it cannot drift
    // into an unrelated function further down the file.
    bool sorted_after = false;
    int after_depth = 0;
    const std::size_t scan_end = std::min(toks.size(), body_end + 256);
    for (std::size_t j = body_end; j < scan_end; ++j) {
      if (toks[j].text == "{") ++after_depth;
      if (toks[j].text == "}" && --after_depth < -2) break;
      if (toks[j].kind == Token::Kind::kIdent &&
          (toks[j].text == "sort" || toks[j].text == "stable_sort")) {
        sorted_after = true;
        break;
      }
    }
    if (ordered_sink || sorted_after) continue;
    emit(ctx, toks[i].line, kUnorderedIter,
         "iteration over unordered container '" + std::string(range) +
             "' has no deterministic order",
         "materialize into a std::map/std::set or sort before emission; if "
         "the fold is commutative, suppress with a reason");
  }
}

void rule_uncaught_escape(FileContext& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "try") continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "{") continue;
    std::size_t j = skip_braces(toks, i + 1);
    bool last_is_catch_all = false;
    bool saw_catch = false;
    while (j < toks.size() && toks[j].text == "catch") {
      saw_catch = true;
      const std::size_t popen = j + 1;
      const std::size_t pclose = skip_parens(toks, popen);
      last_is_catch_all = false;
      for (std::size_t k = popen; k < pclose; ++k) {
        if (toks[k].text == "..." || toks[k].text == "exception") {
          last_is_catch_all = true;
        }
      }
      j = pclose;
      if (j < toks.size() && toks[j].text == "{") j = skip_braces(toks, j);
    }
    if (saw_catch && !last_is_catch_all) {
      emit(ctx, toks[i].line, kUncaughtEscape,
           "service try block's final catch lets non-structured exceptions "
           "escape",
           "end the chain with catch (const std::exception&) so only "
           "structured errors cross the service boundary, or suppress with a "
           "reason");
    }
  }
}

void rule_pragma_once(FileContext& ctx) {
  if (!is_header(ctx.path)) return;
  if (ctx.source.find("#pragma once") != std::string::npos) return;
  ctx.out.push_back({ctx.path, 1, kPragmaOnce,
                     "header is missing #pragma once",
                     "add #pragma once before the first declaration", ""});
}

}  // namespace

// ---- Public API -------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

bool is_known_rule(const std::string& id) {
  if (id == "all") return true;
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

Linter::Linter(LintOptions options) : options_(std::move(options)) {}

void Linter::add_file(std::string path, std::string content) {
  files_.emplace_back(std::move(path), std::move(content));
}

LintReport Linter::run() const {
  // Pass 1: scrub + tokenize every file, harvesting declarations into one
  // project-wide table (a field declared in phase_result.hpp must resolve
  // inside gemm_engine.cpp).
  struct Prepared {
    ScrubResult scrubbed;
    std::vector<Token> toks;
  };
  TypeTable types;
  std::vector<Prepared> prepared(files_.size());
  for (std::size_t f = 0; f < files_.size(); ++f) {
    prepared[f].scrubbed = scrub(files_[f].second);
    prepared[f].toks = tokenize(prepared[f].scrubbed.text);
    harvest(prepared[f].toks, types);
  }

  LintReport report;
  report.files = files_.size();
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const std::string& path = files_[f].first;
    const std::string& source = files_[f].second;
    std::vector<Finding> raw;
    FileContext ctx{path, source, prepared[f].toks, types, raw};
    rule_raw_arith(ctx);
    rule_unordered_iter(ctx);
    rule_wall_clock(ctx);
    rule_float_eq(ctx);
    rule_float_accum(ctx);
    rule_uncaught_escape(ctx);
    rule_pragma_once(ctx);

    // Malformed suppressions are findings themselves: a suppression is part
    // of the contract record and must name a known rule and a reason.
    for (const Suppression& s : prepared[f].scrubbed.suppressions) {
      if (s.rule_ids.empty()) {
        raw.push_back({path, s.line, kBadSuppression,
                       "omega-lint comment without an allow(rule) clause",
                       "write: // omega-lint: allow(rule-id): <reason>",
                       trimmed_line(source, s.line)});
        continue;
      }
      for (const std::string& id : s.rule_ids) {
        if (!is_known_rule(id)) {
          raw.push_back({path, s.line, kBadSuppression,
                         "unknown rule '" + id + "' in suppression",
                         "run omega_lint --list-rules for valid ids",
                         trimmed_line(source, s.line)});
        }
      }
      if (!s.has_reason) {
        raw.push_back({path, s.line, kBadSuppression,
                       "suppression without a reason",
                       "append ': <why this site is safe>' to the allow()",
                       trimmed_line(source, s.line)});
      }
    }

    // Apply rule scoping, CLI allowlists, then inline suppressions.
    for (Finding& finding : raw) {
      if (!rule_applies(finding.rule, path)) continue;
      bool allowlisted = false;
      for (const auto& [rule, prefix] : options_.allow) {
        if ((rule == finding.rule || rule == "all") &&
            starts_with(path, prefix)) {
          allowlisted = true;
        }
      }
      if (allowlisted) {
        ++report.allowlisted;
        continue;
      }
      bool suppressed = false;
      if (finding.rule != kBadSuppression) {
        for (const Suppression& s : prepared[f].scrubbed.suppressions) {
          const bool covers_line =
              s.line == finding.line ||
              (s.own_line && s.line + 1 == finding.line);
          if (!covers_line || !s.has_reason) continue;
          for (const std::string& id : s.rule_ids) {
            if (id == finding.rule || id == "all") suppressed = true;
          }
        }
      }
      if (suppressed) {
        ++report.suppressed;
      } else {
        report.findings.push_back(std::move(finding));
      }
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

// ---- Baseline ---------------------------------------------------------------

std::vector<BaselineEntry> parse_baseline(const std::string& json_text) {
  const JsonValue doc = JsonValue::parse(json_text);
  OMEGA_CHECK(doc.is_object(), "baseline: top level must be an object");
  const JsonValue* entries = doc.find("entries");
  OMEGA_CHECK(entries != nullptr && entries->is_array(),
              "baseline: missing \"entries\" array");
  std::vector<BaselineEntry> out;
  for (const JsonValue& e : entries->items()) {
    OMEGA_CHECK(e.is_object(), "baseline: entry must be an object");
    BaselineEntry b;
    const JsonValue* file = e.find("file");
    const JsonValue* rule = e.find("rule");
    OMEGA_CHECK(file != nullptr && rule != nullptr,
                "baseline: entry needs \"file\" and \"rule\"");
    b.file = file->as_string();
    b.rule = rule->as_string();
    if (const JsonValue* snippet = e.find("snippet")) {
      b.snippet = snippet->as_string();
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::string baseline_json(const std::vector<Finding>& findings) {
  JsonWriter w(2);
  w.begin_object();
  w.member("version", 1);
  w.key("entries").begin_array();
  for (const Finding& f : findings) {
    w.begin_object();
    w.member("file", f.file);
    w.member("rule", f.rule);
    w.member("snippet", f.snippet);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

BaselineResult apply_baseline(LintReport& report,
                              const std::vector<BaselineEntry>& baseline) {
  BaselineResult result;
  // Multiset matching on (file, rule, snippet): N identical baseline rows
  // absorb at most N findings, so adding a second violation on a baselined
  // line still fails.
  std::map<std::string, std::size_t> budget;
  const auto key = [](const std::string& file, const std::string& rule,
                      const std::string& snippet) {
    return file + "\x1f" + rule + "\x1f" + snippet;
  };
  for (const BaselineEntry& b : baseline) {
    ++budget[key(b.file, b.rule, b.snippet)];
  }
  std::vector<Finding> remaining;
  for (Finding& f : report.findings) {
    const auto it = budget.find(key(f.file, f.rule, f.snippet));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++result.baselined;
    } else {
      remaining.push_back(std::move(f));
    }
  }
  report.findings = std::move(remaining);
  for (const BaselineEntry& b : baseline) {
    auto& left = budget[key(b.file, b.rule, b.snippet)];
    if (left > 0) {
      --left;
      result.stale.push_back(b);
    }
  }
  return result;
}

std::string report_json(const LintReport& report,
                        const BaselineResult& baseline) {
  JsonWriter w(2);
  w.begin_object();
  w.member("version", 1);
  w.key("findings").begin_array();
  for (const Finding& f : report.findings) {
    w.begin_object();
    w.member("file", f.file);
    w.member("line", static_cast<std::uint64_t>(f.line));
    w.member("rule", f.rule);
    w.member("message", f.message);
    w.member("hint", f.hint);
    w.member("snippet", f.snippet);
    w.end_object();
  }
  w.end_array();
  w.key("counts").begin_object();
  w.member("files", static_cast<std::uint64_t>(report.files));
  w.member("findings", static_cast<std::uint64_t>(report.findings.size()));
  w.member("suppressed", static_cast<std::uint64_t>(report.suppressed));
  w.member("allowlisted", static_cast<std::uint64_t>(report.allowlisted));
  w.member("baselined", static_cast<std::uint64_t>(baseline.baselined));
  w.member("stale_baseline",
           static_cast<std::uint64_t>(baseline.stale.size()));
  w.end_object();
  w.key("stale_baseline").begin_array();
  for (const BaselineEntry& b : baseline.stale) {
    w.begin_object();
    w.member("file", b.file);
    w.member("rule", b.rule);
    w.member("snippet", b.snippet);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace omega::lint
