// Exact quantile helpers shared by every layer that reports percentiles:
// graph degree statistics (graph/stats.cpp), the metrics histograms
// (obs/metrics.hpp), and the benchmark harness (bench/bench_common.hpp).
// One percentile definition everywhere: sort ascending, rank
// p/100 * (n - 1), linear interpolation between the floor and ceil ranks —
// the same convention NumPy's default percentile uses, and the one the
// degree stats have reported since the seed.
#pragma once

#include <span>
#include <vector>

namespace omega::obs {

/// Percentile of an ALREADY ascending-sorted sample; p in [0, 100].
/// Throws InvalidArgumentError on an empty sample or p out of range.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double p);

/// Sorts a copy of `values` and delegates to percentile_sorted.
[[nodiscard]] double percentile(std::vector<double> values, double p);

}  // namespace omega::obs
