#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.hpp"
#include "util/json.hpp"

namespace omega::obs {

// ---- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value == 0) return 0;
  const unsigned octave = std::bit_width(value) - 1;  // 2^octave <= value
  if (octave < kSubBucketBits) return static_cast<std::size_t>(value);
  const std::uint64_t sub =
      (value >> (octave - kSubBucketBits)) - kSubBuckets;
  return kSubBuckets + (octave - kSubBucketBits) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t index) {
  if (index < 2 * kSubBuckets) return index;  // exact region
  const std::size_t shift = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  return (static_cast<std::uint64_t>(kSubBuckets) + sub) << shift;
}

void Histogram::record(std::uint64_t value) {
  const std::size_t i = bucket_index(value);
  if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
  ++buckets_[i];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::value_at_percentile(double p) const {
  OMEGA_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return bucket_lower_bound(i);
  }
  return bucket_lower_bound(buckets_.size() - 1);  // p == 100 fallthrough
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > 0) out.push_back({bucket_lower_bound(i), buckets_[i]});
  }
  return out;
}

// ---- Snapshot ---------------------------------------------------------------

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

void write_metrics_json(const MetricsSnapshot& snapshot, JsonWriter& w) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : snapshot.counters) w.member(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snapshot.gauges) w.member(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name).begin_object();
    w.member("count", h.count());
    w.member("sum", h.sum());
    w.member("min", h.min());
    w.member("max", h.max());
    w.member("p50", h.value_at_percentile(50.0));
    w.member("p90", h.value_at_percentile(90.0));
    w.member("p99", h.value_at_percentile(99.0));
    w.key("buckets").begin_array();
    for (const Histogram::Bucket& b : h.nonzero_buckets()) {
      w.begin_object();
      w.member("lo", b.lower_bound);
      w.member("count", b.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name), 0).first->second;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  counter(name).fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const std::scoped_lock lock(mutex_);
  gauges_.insert_or_assign(std::string(name), value);
}

void MetricsRegistry::observe(std::string_view name, std::uint64_t value) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  it->second.record(value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, v] : counters_) {
    s.counters.emplace(name, v.load(std::memory_order_relaxed));
  }
  for (const auto& [name, v] : gauges_) s.gauges.emplace(name, v);
  for (const auto& [name, h] : histograms_) s.histograms.emplace(name, h);
  return s;
}

std::string MetricsRegistry::to_json(int indent) const {
  JsonWriter w(indent);
  write_metrics_json(snapshot(), w);
  return w.str();
}

}  // namespace omega::obs
