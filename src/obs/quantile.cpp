#include "obs/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace omega::obs {

double percentile_sorted(std::span<const double> sorted, double p) {
  OMEGA_CHECK(!sorted.empty(), "percentile of empty set");
  OMEGA_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

}  // namespace omega::obs
