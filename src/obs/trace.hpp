// Scoped spans and a Chrome trace-event collector (Perfetto-loadable).
//
// Two producers feed a TraceCollector:
//  * ScopedSpan — RAII wall-clock spans around runtime stages (service
//    request phases, DSE sweep stages). Timestamps are microseconds since
//    the collector's construction; they vary run to run and are never part
//    of goldened output.
//  * obs/schedule_trace.hpp — deterministic *modeled* schedules: a
//    PipelineResult's per-phase chunk timelines rendered with one modeled
//    cycle = one trace microsecond. Those events are pure functions of the
//    result and reproduce byte-identically.
//
// The emitted JSON is the Chrome trace-event format's JSON-object flavor:
// {"traceEvents":[...]} with "X" (complete) duration events and "M"
// process/thread-name metadata — load it at ui.perfetto.dev or
// chrome://tracing.
//
// Disabled cost: every instrumentation site takes a TraceCollector* that
// defaults to null; a ScopedSpan over a null collector does no clock read,
// no allocation and no locking (two pointer checks total).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace omega::obs {

/// One trace event. `ph` is the event type: 'X' = complete (ts + dur),
/// 'M' = metadata (process_name / thread_name), 'i' = instant.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::uint64_t>> args_u64;
  std::vector<std::pair<std::string, std::string>> args_str;
};

/// Thread-safe event buffer with a steady-clock epoch and JSON export.
class TraceCollector {
 public:
  TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

  void add(TraceEvent event);
  /// Emits a process_name / thread_name metadata event (Perfetto labels
  /// the track with it).
  void name_process(std::uint32_t pid, std::string_view name);
  void name_thread(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::vector<TraceEvent> events() const;  // snapshot copy

  /// Microseconds since construction (span timestamps).
  [[nodiscard]] std::uint64_t now_us() const;
  /// Small stable id for the calling thread (first-come numbering).
  [[nodiscard]] std::uint32_t thread_id();

  /// {"traceEvents":[...]} — `indent` 0 emits one line.
  [[nodiscard]] std::string to_json(int indent = 0) const;
  /// Writes to_json(2) to `path`; throws Error when the file cannot open.
  void write_file(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, std::uint32_t> thread_ids_;
};

/// RAII wall-clock span: records one complete event over its lifetime on
/// the calling thread's track. No-op (and allocation-free) when the
/// collector is null.
class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* collector, std::string_view name,
             std::string_view cat);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// Attaches a numeric argument to the event (no-op when disabled).
  void arg(std::string_view key, std::uint64_t value);

 private:
  TraceCollector* collector_;
  TraceEvent event_;
  std::uint64_t start_us_ = 0;
};

}  // namespace omega::obs
