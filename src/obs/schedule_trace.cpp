#include "obs/schedule_trace.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "omega/omega.hpp"
#include "util/saturate.hpp"

namespace omega::obs {

namespace {

struct Slice {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Emits a phase's chunk slices, coalescing consecutive chunks into runs
/// when the grid exceeds the cap (so million-chunk grids stay loadable).
void emit_chunks(const std::vector<Slice>& slices, std::uint32_t pid,
                 std::uint32_t tid, std::size_t cap, TraceCollector& out) {
  const std::size_t m = slices.size();
  if (m == 0 || cap == 0) return;
  const std::size_t group = (m + cap - 1) / cap;
  for (std::size_t a = 0; a < m; a += group) {
    const std::size_t b = std::min(a + group, m);
    std::uint64_t begin = slices[a].begin;
    std::uint64_t end = slices[a].end;
    for (std::size_t j = a + 1; j < b; ++j) {
      begin = std::min(begin, slices[j].begin);
      end = std::max(end, slices[j].end);
    }
    TraceEvent e;
    e.name = b - a == 1 ? "chunk " + std::to_string(a)
                        : "chunks " + std::to_string(a) + "-" +
                              std::to_string(b - 1);
    e.cat = "chunk";
    e.ts_us = begin;
    e.dur_us = end - begin;
    e.pid = pid;
    e.tid = tid;
    e.args_u64.emplace_back("chunks", static_cast<std::uint64_t>(b - a));
    out.add(std::move(e));
  }
}

}  // namespace

void export_pipeline_trace(const PipelineResult& result, TraceCollector& out,
                           const ScheduleTraceOptions& options) {
  const std::size_t n = result.phases.size();
  const std::uint32_t pid = options.pid;
  out.name_process(pid, "omega.pipeline");
  out.name_thread(pid, 0, "pipeline");
  for (std::size_t i = 0; i < n; ++i) {
    out.name_thread(pid, static_cast<std::uint32_t>(1 + i),
                    result.phases[i].name);
  }
  if (!result.boundaries.empty()) {
    out.name_thread(pid, static_cast<std::uint32_t>(1 + n), "boundaries");
  }

  {
    TraceEvent total;
    total.name = "pipeline";
    total.cat = "pipeline";
    total.ts_us = 0;
    total.dur_us = result.cycles;
    total.pid = pid;
    total.tid = 0;
    total.args_u64.emplace_back("cycles", result.cycles);
    total.args_u64.emplace_back("phases", static_cast<std::uint64_t>(n));
    out.add(std::move(total));
  }

  // Replay the engine's composition walk to place each phase on the global
  // clock: serialized segments advance the cursor; an overlapped PP pair
  // runs the consumer recurrence against the producer's chunk completions
  // (Omega::run_pipeline composes cycles with exactly this rule).
  std::vector<std::uint64_t> start(n, 0);
  std::vector<std::uint64_t> finish(n, 0);
  // For overlapped consumers: completion timeline relative to the pair
  // segment start, and that segment start itself.
  std::vector<std::vector<std::uint64_t>> overlap_done(n);
  std::vector<std::uint64_t> overlap_base(n, 0);
  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < n;) {
    const PhaseResult& pr = result.phases[i].result;
    const bool overlapped = i + 1 < n && result.boundaries[i].overlapped &&
                            !pr.chunk_completion.empty() &&
                            !result.phases[i + 1].result.chunk_cycles.empty();
    if (overlapped) {
      const PhaseResult& cr = result.phases[i + 1].result;
      start[i] = cursor;
      finish[i] = sat_add_u64(cursor, pr.cycles);
      const std::vector<std::uint64_t> done =
          compose_parallel_pipeline_timeline(pr.chunk_completion,
                                             cr.chunk_cycles);
      overlap_done[i + 1] = done;
      overlap_base[i + 1] = cursor;
      start[i + 1] =
          sat_add_u64(cursor, done.front() - cr.chunk_cycles.front());
      finish[i + 1] = sat_add_u64(cursor, done.back());
      cursor = finish[i + 1];
      i += 2;
    } else {
      start[i] = cursor;
      finish[i] = sat_add_u64(cursor, pr.cycles);
      cursor = finish[i];
      i += 1;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const PhaseOutcome& po = result.phases[i];
    TraceEvent pe;
    pe.name = po.name;
    pe.cat = "phase";
    pe.ts_us = start[i];
    pe.dur_us = finish[i] - start[i];
    pe.pid = pid;
    pe.tid = static_cast<std::uint32_t>(1 + i);
    pe.args_u64.emplace_back("pes", static_cast<std::uint64_t>(po.pes));
    pe.args_u64.emplace_back("cycles", po.result.cycles);
    pe.args_u64.emplace_back("macs", po.result.macs);
    pe.args_str.emplace_back("engine", to_string(po.engine));
    out.add(std::move(pe));

    // Chunk slices: an overlapped consumer renders its composed timeline
    // (dependency stalls included); everything else renders the phase's own
    // chunk completion profile relative to its start.
    const PhaseResult& pr = po.result;
    std::vector<Slice> slices;
    if (!overlap_done[i].empty()) {
      const std::vector<std::uint64_t>& done = overlap_done[i];
      slices.reserve(done.size());
      for (std::size_t j = 0; j < done.size(); ++j) {
        const std::uint64_t end = sat_add_u64(overlap_base[i], done[j]);
        slices.push_back({end - pr.chunk_cycles[j], end});
      }
    } else if (pr.chunk_completion.size() == pr.chunk_cycles.size()) {
      slices.reserve(pr.chunk_completion.size());
      for (std::size_t j = 0; j < pr.chunk_completion.size(); ++j) {
        const std::uint64_t end = sat_add_u64(start[i], pr.chunk_completion[j]);
        slices.push_back({end - pr.chunk_cycles[j], end});
      }
    }
    emit_chunks(slices, pid, static_cast<std::uint32_t>(1 + i),
                options.max_chunk_events, out);
  }

  for (std::size_t b = 0; b < result.boundaries.size(); ++b) {
    const BoundaryOutcome& bo = result.boundaries[b];
    TraceEvent be;
    be.name = result.phases[b].name + "->" + result.phases[b + 1].name +
              " (" + to_string(bo.inter) + ")";
    be.cat = "boundary";
    be.pid = pid;
    be.tid = static_cast<std::uint32_t>(1 + n);
    if (bo.overlapped && finish[b] > start[b + 1]) {
      // The overlap window: producer still filling while the consumer runs.
      be.ts_us = start[b + 1];
      be.dur_us = finish[b] - start[b + 1];
    } else {
      be.ts_us = finish[b];  // serialized handoff point
      be.dur_us = 0;
    }
    be.args_u64.emplace_back("chunks",
                             static_cast<std::uint64_t>(bo.pipeline_chunks));
    be.args_u64.emplace_back(
        "pipeline_elements", static_cast<std::uint64_t>(bo.pipeline_elements));
    be.args_u64.emplace_back("buffer_elements",
                             static_cast<std::uint64_t>(bo.buffer_elements));
    be.args_str.emplace_back("granularity", to_string(bo.granularity));
    if (bo.spilled) be.args_str.emplace_back("spilled", "true");
    out.add(std::move(be));
  }
}

}  // namespace omega::obs
