// Unified metrics layer: named counters, gauges, and log-bucketed latency
// histograms behind one registry with a deterministic JSON snapshot.
//
// This absorbs the counter structs that used to live in three places
// (EvalStats in dse/search.hpp, ContextEvalStats in engine/schedule_cache.hpp,
// and the registry hit/miss totals in service/registry.cpp) into a single
// dotted namespace — `dse.eval.term_requests`, `service.registry.hits`,
// `service.request.latency_us` — so the service `metrics` request, the CLI
// and the benches all read from one place.
//
// Determinism contract (DESIGN.md "Observability"):
//  * counters and gauges exported from the deterministic cores (term
//    requests/builds, registry hits/misses, plan/term populations) are
//    byte-identical across thread counts for a given request sequence;
//  * histograms fed wall-clock samples are NOT deterministic and never
//    appear in goldened responses — but their *merge* is exact (bucket
//    counts add), so sharded collection reduces to one histogram with no
//    dependence on merge order or thread layout;
//  * snapshots iterate name-sorted maps, so two registries fed the same
//    multiset of samples render byte-identical JSON.
//
// Overhead: a counter add after the first lookup is one relaxed atomic
// add through a cached handle; a histogram record is a mutex acquire plus
// one bucket increment (service-request granularity, not the DSE hot loop —
// the sweep keeps its plain local counters and exports once per sweep).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace omega {
class JsonWriter;
}

namespace omega::obs {

/// Log-bucketed histogram of unsigned 64-bit samples (HdrHistogram-style):
/// each power-of-two octave splits into 2^kSubBucketBits linear sub-buckets,
/// so a recorded value lands in a bucket whose lower bound is within
/// 2^-kSubBucketBits (12.5%) of it; values below 2^(kSubBucketBits+1) are
/// bucketed exactly. Merging adds bucket counts — exact and order-free.
class Histogram {
 public:
  static constexpr unsigned kSubBucketBits = 3;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;

  /// Flattened bucket index of `value` (0 maps to bucket 0; small values
  /// map to themselves; see the class comment).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);
  /// Smallest value that lands in bucket `index` (the value the quantile
  /// extraction reports for ranks inside the bucket).
  [[nodiscard]] static std::uint64_t bucket_lower_bound(std::size_t index);

  void record(std::uint64_t value);
  /// Exact merge: bucket counts, count/sum add; min/max combine.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }

  /// Nearest-rank quantile from the buckets: the lower bound of the bucket
  /// holding the ceil(p/100 * count)-th smallest sample (0 when empty).
  /// Exact for samples below 2 * kSubBuckets; within 12.5% above.
  [[nodiscard]] std::uint64_t value_at_percentile(double p) const;

  struct Bucket {
    std::uint64_t lower_bound = 0;
    std::uint64_t count = 0;
  };
  /// Non-empty buckets, ascending by lower bound.
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  [[nodiscard]] bool operator==(const Histogram&) const = default;

 private:
  std::vector<std::uint64_t> buckets_;  // grown on demand
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// Name-sorted point-in-time copy of a registry's contents; what the JSON
/// emitters and the merge-determinism tests operate on.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;

  /// Exact merge of another snapshot (counters add, gauges overwrite,
  /// histograms merge bucket-wise).
  void merge(const MetricsSnapshot& other);
};

/// Renders a snapshot as {"counters":{...},"gauges":{...},"histograms":
/// {name:{count,sum,min,max,p50,p90,p99,buckets:[{lo,count}...]}}} into an
/// already-open writer position (emits one complete object value).
void write_metrics_json(const MetricsSnapshot& snapshot, JsonWriter& w);

/// Thread-safe named metrics registry. Names are dotted lowercase paths
/// (`component.object.event`, units suffixed: `..._us`, `..._bytes`).
class MetricsRegistry {
 public:
  using Counter = std::atomic<std::uint64_t>;

  /// Stable handle to a named counter (node-based map: the reference
  /// survives later insertions). Cache it on hot paths.
  [[nodiscard]] Counter& counter(std::string_view name);

  void add(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  /// Records one sample into the named histogram.
  void observe(std::string_view name, std::uint64_t value);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// snapshot() rendered through write_metrics_json; `indent` 0 = one line.
  [[nodiscard]] std::string to_json(int indent = 0) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace omega::obs
