#include "obs/trace.hpp"

#include <fstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace omega::obs {

void TraceCollector::add(TraceEvent event) {
  const std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceCollector::name_process(std::uint32_t pid, std::string_view name) {
  TraceEvent e;
  e.name = "process_name";
  e.ph = 'M';
  e.pid = pid;
  e.args_str.emplace_back("name", std::string(name));
  add(std::move(e));
}

void TraceCollector::name_thread(std::uint32_t pid, std::uint32_t tid,
                                 std::string_view name) {
  TraceEvent e;
  e.name = "thread_name";
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.args_str.emplace_back("name", std::string(name));
  add(std::move(e));
}

std::size_t TraceCollector::size() const {
  const std::scoped_lock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceCollector::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

std::uint64_t TraceCollector::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t TraceCollector::thread_id() {
  const std::scoped_lock lock(mutex_);
  const auto [it, inserted] = thread_ids_.try_emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(thread_ids_.size()));
  (void)inserted;
  return it->second;
}

std::string TraceCollector::to_json(int indent) const {
  const std::vector<TraceEvent> events = this->events();
  JsonWriter w(indent);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.member("name", e.name);
    if (!e.cat.empty()) w.member("cat", e.cat);
    w.member("ph", std::string_view(&e.ph, 1));
    w.member("ts", e.ts_us);
    if (e.ph == 'X') w.member("dur", e.dur_us);
    w.member("pid", static_cast<std::uint64_t>(e.pid));
    w.member("tid", static_cast<std::uint64_t>(e.tid));
    if (!e.args_u64.empty() || !e.args_str.empty()) {
      w.key("args").begin_object();
      for (const auto& [k, v] : e.args_u64) w.member(k, v);
      for (const auto& [k, v] : e.args_str) w.member(k, v);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

void TraceCollector::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write trace file: " + path);
  out << to_json(2) << "\n";
}

ScopedSpan::ScopedSpan(TraceCollector* collector, std::string_view name,
                       std::string_view cat)
    : collector_(collector) {
  if (collector_ == nullptr) return;
  event_.name = std::string(name);
  event_.cat = std::string(cat);
  start_us_ = collector_->now_us();
}

void ScopedSpan::arg(std::string_view key, std::uint64_t value) {
  if (collector_ == nullptr) return;
  event_.args_u64.emplace_back(std::string(key), value);
}

ScopedSpan::~ScopedSpan() {
  if (collector_ == nullptr) return;
  event_.ts_us = start_us_;
  event_.dur_us = collector_->now_us() - start_us_;
  event_.tid = collector_->thread_id();
  collector_->add(std::move(event_));
}

}  // namespace omega::obs
