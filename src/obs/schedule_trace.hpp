// Deterministic schedule exporter: renders a PipelineResult — the paper's
// core artifact, per-phase chunk timelines composed across boundaries — as
// Chrome trace events, one modeled cycle = one trace microsecond.
//
// Track layout (all on one pid):
//   tid 0                "pipeline"  — one event spanning the composed
//                                      makespan (result.cycles)
//   tid 1 + i            phase i     — a phase-span event plus per-chunk
//                                      slices from PhaseResult::chunk_cycles
//                                      / chunk_completion
//   tid 1 + phases       "boundaries" — one event per boundary: a zero-
//                                      duration handoff for serialized
//                                      boundaries, the overlap window for a
//                                      PP pair
//
// Phase start times replay the engine's own composition rule: serialized
// segments advance a cursor by the phase's cycles; an overlapped (PP)
// boundary runs the consumer through compose_parallel_pipeline_timeline
// against the producer's chunk completions, so the rendered consumer chunks
// show exactly the dependency stalls the makespan paid. Everything here is
// a pure function of the PipelineResult — the exported JSON is
// byte-identical across runs and thread counts (goldenable, unlike
// wall-clock spans).
#pragma once

#include <cstdint>

#include "obs/trace.hpp"
#include "omega/pipeline.hpp"

namespace omega::obs {

struct ScheduleTraceOptions {
  std::uint32_t pid = 0;
  /// Per-phase cap on emitted chunk slices; phases with more chunks
  /// coalesce consecutive runs so giant grids stay loadable. 0 = no chunk
  /// slices (phase spans only).
  std::size_t max_chunk_events = 512;
};

/// Appends the schedule events of `result` to `out`.
void export_pipeline_trace(const PipelineResult& result, TraceCollector& out,
                           const ScheduleTraceOptions& options = {});

}  // namespace omega::obs
