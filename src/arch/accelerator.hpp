// Hardware model of the templated flexible spatial accelerator (Fig. 1):
// a PE array with per-PE register files, a banked global scratchpad buffer,
// a distribution network and a reduction network. Matches the evaluation
// substrate of Section V-A3 (512 PEs, 64 B RF per PE, "sufficient"
// distribution/reduction bandwidth unless a case study lowers it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace omega {

struct AcceleratorConfig {
  /// Total processing elements (one MAC per PE per cycle).
  std::size_t num_pes = 512;

  /// Per-PE register file, bytes (banked; holds stationary operands and
  /// accumulators).
  std::size_t rf_bytes_per_pe = 64;

  /// Global buffer capacity in bytes. Table IV workloads fit a batch
  /// on-chip (Section V-A2); the capacity only gates the *intermediate*
  /// matrix of the Seq dataflow, which spills to DRAM when too large.
  std::size_t gb_bytes = 4ull << 20;

  /// Bank size used for the GB access-energy reference point (1 MB/bank).
  std::size_t gb_bank_bytes = 1ull << 20;

  /// Elements per cycle the distribution network can deliver from the GB to
  /// the PEs (spatial multicast counts the unique elements once).
  /// Defaults to "sufficient" — effectively unbounded.
  std::size_t distribution_bandwidth = kUnbounded;

  /// Elements per cycle the reduction/collection network can drain from the
  /// PEs back to the GB.
  std::size_t reduction_bandwidth = kUnbounded;

  /// Elements per cycle exchangeable with DRAM (16 x 4B = 64 GB/s at 1 GHz).
  /// Only exercised when the Seq dataflow's intermediate matrix exceeds the
  /// global buffer and spills (Fig. 6/8a) — on-chip workloads never touch it.
  std::size_t dram_bandwidth = 16;

  /// Bytes per matrix element (fp32 features/weights).
  std::size_t element_bytes = 4;

  /// Flexibility switches used by the Section V-D rigid-substrate study:
  /// a rigid temporal-only substrate cannot spatially reduce (no adder
  /// tree), a rigid spatial-only substrate cannot accumulate in place.
  bool supports_spatial_reduction = true;
  bool supports_temporal_reduction = true;

  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::uint32_t>::max();

  [[nodiscard]] std::size_t rf_elements_per_pe() const {
    return rf_bytes_per_pe / element_bytes;
  }
  [[nodiscard]] std::size_t gb_elements() const {
    return gb_bytes / element_bytes;
  }

  /// Throws InvalidArgumentError on nonsensical parameters.
  void validate() const;

  [[nodiscard]] std::string summary() const;
};

/// The paper's default evaluation substrate.
[[nodiscard]] AcceleratorConfig default_accelerator();

/// The Fig. 15 scalability variant (2048 PEs).
[[nodiscard]] AcceleratorConfig scaled_accelerator(std::size_t num_pes);

}  // namespace omega
