// Energy model (Section V-B2).
//
// Access energies follow the paper's numbers from Dally et al., "Domain-
// Specific Hardware Accelerators" (CACM 2020): 1.046 pJ per global-buffer
// access at the 1 MB/bank reference point and 0.053 pJ per PE register-file
// access. Smaller on-chip partitions are cheaper to access: we scale buffer
// access energy with sqrt(capacity) relative to the 1 MB bank (the standard
// first-order SRAM scaling), clamped to the RF energy from below. This is
// what gives the PP dataflow its intermediate-buffer energy advantage in
// Fig. 12. DRAM is modeled only as the Seq spill target and is reported
// separately from on-chip energy, mirroring the paper's on-chip focus.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omega {

struct EnergyModel {
  double gb_access_pj = 1.046;   // per element access, 1 MB bank
  double rf_access_pj = 0.053;   // per element access
  double dram_access_pj = 160.0; // per element access (LPDDR-class, ~150x GB)
  std::size_t reference_bank_bytes = 1ull << 20;

  /// Access energy for an on-chip buffer partition of `capacity_bytes`,
  /// sqrt-scaled from the reference bank and clamped to [rf, gb].
  [[nodiscard]] double buffer_access_pj(std::size_t capacity_bytes) const;
};

/// Raw access counts for one memory level.
struct AccessCounts {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  [[nodiscard]] std::uint64_t total() const { return reads + writes; }
  AccessCounts& operator+=(const AccessCounts& o) {
    reads += o.reads;
    writes += o.writes;
    return *this;
  }
};

}  // namespace omega
