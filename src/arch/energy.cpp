#include "arch/energy.hpp"

#include <algorithm>
#include <cmath>

namespace omega {

double EnergyModel::buffer_access_pj(std::size_t capacity_bytes) const {
  if (capacity_bytes == 0) return rf_access_pj;
  const double ratio = static_cast<double>(capacity_bytes) /
                       static_cast<double>(reference_bank_bytes);
  const double scaled = gb_access_pj * std::sqrt(ratio);
  return std::clamp(scaled, rf_access_pj, gb_access_pj);
}

}  // namespace omega
