#include "arch/accelerator.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace omega {

void AcceleratorConfig::validate() const {
  OMEGA_CHECK(num_pes >= 1, "accelerator needs at least one PE");
  OMEGA_CHECK(element_bytes >= 1, "element size must be positive");
  OMEGA_CHECK(rf_bytes_per_pe >= element_bytes,
              "RF must hold at least one element");
  OMEGA_CHECK(gb_bytes >= element_bytes, "GB must hold at least one element");
  OMEGA_CHECK(gb_bank_bytes >= 1, "bank size must be positive");
  OMEGA_CHECK(distribution_bandwidth >= 1, "distribution bandwidth >= 1");
  OMEGA_CHECK(reduction_bandwidth >= 1, "reduction bandwidth >= 1");
  OMEGA_CHECK(dram_bandwidth >= 1, "DRAM bandwidth >= 1");
  OMEGA_CHECK(supports_spatial_reduction || supports_temporal_reduction,
              "substrate must support some reduction style");
}

std::string AcceleratorConfig::summary() const {
  std::ostringstream os;
  os << num_pes << " PEs, " << rf_bytes_per_pe << "B RF/PE, "
     << (gb_bytes >> 20) << "MiB GB";
  if (distribution_bandwidth != kUnbounded) {
    os << ", dist BW " << distribution_bandwidth << " elem/cy";
  }
  if (reduction_bandwidth != kUnbounded) {
    os << ", red BW " << reduction_bandwidth << " elem/cy";
  }
  return os.str();
}

AcceleratorConfig default_accelerator() { return AcceleratorConfig{}; }

AcceleratorConfig scaled_accelerator(std::size_t num_pes) {
  AcceleratorConfig cfg;
  cfg.num_pes = num_pes;
  return cfg;
}

}  // namespace omega
