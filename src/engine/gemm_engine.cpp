#include "engine/gemm_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <string>

#include "engine/schedule_cache.hpp"
#include "util/error.hpp"
#include "util/saturate.hpp"

namespace omega {

namespace {

/// Everything that determines the PhaseResult; see
/// WorkloadContext::phase_result.
std::string memo_key(const GemmPhaseConfig& cfg) {
  std::string k;
  k.reserve(160);
  k += "gemm|";
  k += cfg.order.letters();
  const auto add = [&k](std::uint64_t v) {
    k += '|';
    k += std::to_string(v);
  };
  add(cfg.rows);
  add(cfg.inner);
  add(cfg.cols);
  add(cfg.tiles.v);
  add(cfg.tiles.f);
  add(cfg.tiles.g);
  add(cfg.pes);
  add(cfg.bw_dist);
  add(cfg.bw_red);
  add(cfg.rf_elements);
  add(cfg.a_stream_bw);
  add(cfg.out_drain_bw);
  add(static_cast<std::uint64_t>(cfg.a_from_rf) << 5 |
      static_cast<std::uint64_t>(cfg.out_to_rf) << 4 |
      static_cast<std::uint64_t>(cfg.a_in_dram) << 3 |
      static_cast<std::uint64_t>(cfg.out_in_dram) << 2 |
      static_cast<std::uint64_t>(cfg.a_via_partition) << 1 |
      static_cast<std::uint64_t>(cfg.out_via_partition));
  add(static_cast<std::uint64_t>(cfg.a_category));
  add(static_cast<std::uint64_t>(cfg.b_category));
  add(static_cast<std::uint64_t>(cfg.out_category));
  add(static_cast<std::uint64_t>(cfg.chunk_target));
  add(cfg.chunks.rows);
  add(cfg.chunks.cols);
  add(cfg.chunks.row_block);
  add(cfg.chunks.col_block);
  add(static_cast<std::uint64_t>(cfg.chunks.major));
  return k;
}

PhaseResult run_gemm_phase_impl(const GemmPhaseConfig& cfg);

struct LoopInfo {
  Dim dim;
  std::size_t extent = 1;
  std::size_t tile = 1;
  std::size_t count = 1;  // ceil(extent / tile)
};

std::size_t actual_tile(const LoopInfo& l, std::size_t idx) {
  const std::size_t base = idx * l.tile;
  return std::min(l.tile, l.extent - base);
}

/// Deepest loop depth indexing the operand with more than one tile;
/// -1 if the operand never needs re-fetching after the initial load.
int deepest_effective_level(const std::array<LoopInfo, 3>& loops, bool uses_v,
                            bool uses_f, bool uses_g) {
  int level = -1;
  for (int d = 0; d < 3; ++d) {
    const bool uses = (loops[static_cast<std::size_t>(d)].dim == Dim::kV && uses_v) ||
                      (loops[static_cast<std::size_t>(d)].dim == Dim::kF && uses_f) ||
                      (loops[static_cast<std::size_t>(d)].dim == Dim::kG && uses_g);
    if (uses && loops[static_cast<std::size_t>(d)].count > 1) level = d;
  }
  return level;
}

}  // namespace

void GemmPhaseConfig::validate() const {
  order.validate(GnnPhase::kCombination);
  OMEGA_CHECK(rows >= 1 && inner >= 1 && cols >= 1, "extents must be >= 1");
  OMEGA_CHECK(pes >= 1, "phase needs at least one PE");
  OMEGA_CHECK(bw_dist >= 1 && bw_red >= 1, "bandwidth must be >= 1");
  const std::size_t spatial =
      std::min(tiles.v, rows) * std::min(tiles.f, inner) * std::min(tiles.g, cols);
  OMEGA_CHECK(spatial <= pes,
              "spatial tile footprint exceeds the PEs allocated to the phase");
}

PhaseResult run_gemm_phase(const GemmPhaseConfig& cfg) {
  const bool memoizable =
      cfg.chunk_target == ChunkTarget::kNone ||
      cfg.chunks.num_chunks() <= kPhaseMemoMaxChunks;
  if (cfg.context != nullptr && memoizable) {
    return *cfg.context->phase_result(memo_key(cfg),
                                      [&] { return run_gemm_phase_impl(cfg); });
  }
  return run_gemm_phase_impl(cfg);
}

std::shared_ptr<const PhaseResult> run_gemm_phase_shared(
    const GemmPhaseConfig& cfg) {
  const bool memoizable =
      cfg.chunk_target == ChunkTarget::kNone ||
      cfg.chunks.num_chunks() <= kPhaseMemoMaxChunks;
  if (cfg.context != nullptr && memoizable) {
    return cfg.context->phase_result(memo_key(cfg),
                                     [&] { return run_gemm_phase_impl(cfg); });
  }
  return std::make_shared<const PhaseResult>(run_gemm_phase_impl(cfg));
}

namespace {

PhaseResult run_gemm_phase_impl(const GemmPhaseConfig& cfg) {
  cfg.validate();

  // Clamp tiles to extents so degenerate dims do not inflate the footprint.
  const std::size_t tv = std::min(cfg.tiles.v, cfg.rows);
  const std::size_t tf = std::min(cfg.tiles.f, cfg.inner);
  const std::size_t tg = std::min(cfg.tiles.g, cfg.cols);

  std::array<LoopInfo, 3> loops;
  for (std::size_t d = 0; d < 3; ++d) {
    const Dim dim = cfg.order.at(d);
    LoopInfo info;
    info.dim = dim;
    switch (dim) {
      case Dim::kV: info.extent = cfg.rows; info.tile = tv; break;
      case Dim::kF: info.extent = cfg.inner; info.tile = tf; break;
      case Dim::kG: info.extent = cfg.cols; info.tile = tg; break;
      case Dim::kN: throw InvalidDataflowError("GEMM phase cannot loop over N");
    }
    info.count = ceil_div(info.extent, info.tile);
    loops[d] = info;
  }

  const int la = deepest_effective_level(loops, true, true, false);  // A{V,F}
  const int lb = deepest_effective_level(loops, false, true, true);  // B{F,G}

  const std::size_t f_depth = cfg.order.depth_of(Dim::kF);
  const std::size_t c_f = loops[f_depth].count;

  const std::size_t a_bw = cfg.a_stream_bw > 0 ? cfg.a_stream_bw : cfg.bw_dist;
  const std::size_t out_bw = cfg.out_drain_bw > 0 ? cfg.out_drain_bw : cfg.bw_red;

  // RF-resident partial sums: between increments of the contraction (F)
  // loop, each PE must keep one accumulator per output element it covers
  // across all output tiles swept by the loops *inside* F. If that live set
  // fits in half the RF, accumulators persist and no psum spill happens.
  const std::size_t f_depth_raw = cfg.order.depth_of(Dim::kF);
  std::uint64_t covered_v = tv;
  std::uint64_t covered_g = tg;
  if (cfg.order.depth_of(Dim::kV) > f_depth_raw) covered_v = cfg.rows;
  if (cfg.order.depth_of(Dim::kG) > f_depth_raw) covered_g = cfg.cols;
  const std::uint64_t tile_pes =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(tv) * tf * tg);
  const std::uint64_t live_psums_per_pe =
      ceil_div(covered_v * covered_g, tile_pes);
  const bool psums_fit_in_rf =
      live_psums_per_pe <= std::max<std::size_t>(cfg.rf_elements / 2, 1);

  PhaseResult r;
  const std::size_t num_chunks =
      cfg.chunk_target == ChunkTarget::kNone ? 1 : cfg.chunks.num_chunks();
  r.chunk_cycles.assign(num_chunks, 0);
  r.chunk_completion.assign(num_chunks, 0);
  std::size_t last_chunk_touched = 0;

  // One-time fill: distribution latency + spatial-reduction tree depth.
  const std::size_t tree_in = tf > 1 ? tf : 1;
  r.fill_cycles =
      2 + static_cast<std::uint64_t>(std::bit_width(tree_in) - 1);

  auto charge_a_read = [&](std::uint64_t elems) {
    if (cfg.a_from_rf) {
      r.traffic.rf.reads += elems;
      return;
    }
    if (cfg.a_in_dram) r.traffic.dram.reads += elems;
    else if (cfg.a_via_partition)
      r.traffic.intermediate_partition.reads += elems;
    else r.traffic.gb_for(cfg.a_category).reads += elems;
    r.traffic.rf.writes += elems;  // latched into PE registers
  };
  auto charge_b_read = [&](std::uint64_t elems) {
    r.traffic.gb_for(cfg.b_category).reads += elems;
    r.traffic.rf.writes += elems;
  };

  // Per-step tracking of the current output tile visit.
  std::size_t prev_iv = std::numeric_limits<std::size_t>::max();
  std::size_t prev_ig = std::numeric_limits<std::size_t>::max();
  std::size_t prev_out_elems = 0;
  bool prev_out_final = false;

  auto flush_out_visit = [&](std::uint64_t* sink_cycles) {
    // Called when the (iv, ig) output tile changes or the nest ends; charges
    // the drain of the visit that just finished.
    if (prev_iv == std::numeric_limits<std::size_t>::max()) return;
    const std::uint64_t elems = prev_out_elems;
    if (prev_out_final) {
      if (cfg.out_to_rf) {
        r.traffic.rf.writes += elems;
        // Result stays resident: no drain cycles.
      } else {
        if (cfg.out_in_dram) r.traffic.dram.writes += elems;
        else if (cfg.out_via_partition)
          r.traffic.intermediate_partition.writes += elems;
        else r.traffic.gb_for(cfg.out_category).writes += elems;
        const std::uint64_t cost = ceil_div(elems, out_bw);
        r.stall_cycles = sat_add_u64(r.stall_cycles, cost);
        *sink_cycles = sat_add_u64(*sink_cycles, cost);
      }
    } else if (!psums_fit_in_rf) {
      // Partial-sum spill: accumulators evicted to the GB psum region.
      r.traffic.gb_for(TrafficCategory::kPsum).writes += elems;
      r.traffic.rf.reads += elems;
      const std::uint64_t cost = ceil_div(elems, cfg.bw_red);
      r.psum_cycles = sat_add_u64(r.psum_cycles, cost);
      *sink_cycles = sat_add_u64(*sink_cycles, cost);
    }
    // Otherwise the partial sums stay live in the PE register files.
  };

  const std::size_t c0 = loops[0].count;
  const std::size_t c1 = loops[1].count;
  const std::size_t c2 = loops[2].count;

  // ---- Hot-nest precomputation -------------------------------------------
  // This loop runs V*F*G / (tv*tf*tg) iterations per candidate — the hottest
  // loop of a design-space sweep — so everything that only changes at tile
  // boundaries is hoisted: actual tile sizes take two values per dim (full,
  // last remainder), streaming costs take at most four values per operand,
  // and the pipeline chunk index decomposes into precomputed per-dim
  // contributions (no division inside the nest).
  const std::size_t lv = cfg.order.depth_of(Dim::kV);
  const std::size_t lg = cfg.order.depth_of(Dim::kG);
  const std::size_t cv_cnt = loops[lv].count;
  const std::size_t cg_cnt = loops[lg].count;
  const std::size_t av_full = loops[lv].tile;
  const std::size_t af_full = loops[f_depth].tile;
  const std::size_t ag_full = loops[lg].tile;
  const std::size_t av_last = actual_tile(loops[lv], cv_cnt - 1);
  const std::size_t af_last = actual_tile(loops[f_depth], c_f - 1);
  const std::size_t ag_last = actual_tile(loops[lg], cg_cnt - 1);

  // Streaming-operand step costs, indexed [last f tile][last partner tile].
  const bool a_streams = la == 2;
  const bool b_streams = lb == 2;
  std::uint64_t acost[2][2] = {{0, 0}, {0, 0}};  // [iv last][f last]
  std::uint64_t bcost[2][2] = {{0, 0}, {0, 0}};  // [f last][ig last]
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      const std::uint64_t av_x = x ? av_last : av_full;
      const std::uint64_t af_y = y ? af_last : af_full;
      const std::uint64_t ag_y = y ? ag_last : ag_full;
      const std::uint64_t af_x = x ? af_last : af_full;
      if (a_streams) acost[x][y] = ceil_div(av_x * af_y, a_bw);
      if (b_streams) bcost[x][y] = ceil_div(af_x * ag_y, cfg.bw_dist);
    }
  }

  // Chunk index = row contribution (by V index) + column contribution (by F
  // index for kMatrixA, by G index for kMatrixOut); identical to
  // ChunkSpec::chunk_of with the divisions done once per extent.
  std::vector<std::size_t> chunk_rowc;
  std::vector<std::size_t> chunk_colc;
  if (cfg.chunk_target != ChunkTarget::kNone) {
    const std::size_t rb = std::min(cfg.chunks.row_block, cfg.chunks.rows);
    const std::size_t cb = std::min(cfg.chunks.col_block, cfg.chunks.cols);
    const bool row_major = cfg.chunks.major == TraversalMajor::kRowMajor;
    const std::size_t row_stride =
        row_major ? cfg.chunks.col_blocks() : std::size_t{1};
    const std::size_t col_stride =
        row_major ? std::size_t{1} : cfg.chunks.row_blocks();
    chunk_rowc.resize(cv_cnt);
    for (std::size_t i = 0; i < cv_cnt; ++i) {
      chunk_rowc[i] = (rb == 0 ? 0 : i * av_full / rb) * row_stride;
    }
    const bool col_by_f = cfg.chunk_target == ChunkTarget::kMatrixA;
    const std::size_t col_cnt = col_by_f ? c_f : cg_cnt;
    const std::size_t col_tile = col_by_f ? af_full : ag_full;
    chunk_colc.resize(col_cnt);
    for (std::size_t i = 0; i < col_cnt; ++i) {
      chunk_colc[i] = (cb == 0 ? 0 : i * col_tile / cb) * col_stride;
    }
  }

  // Per-level roles: which loop counter feeds V / F / G.
  std::size_t cur_idx[3] = {0, 0, 0};

  const auto exec_step = [&](std::size_t i0, std::size_t i1, std::size_t i2) {
        cur_idx[0] = i0;
        cur_idx[1] = i1;
        cur_idx[2] = i2;
        const std::size_t iv = cur_idx[lv];
        const std::size_t f_idx = cur_idx[f_depth];
        const std::size_t ig = cur_idx[lg];
        const bool v_at_last = iv + 1 == cv_cnt;
        const bool f_at_last = f_idx + 1 == c_f;
        const bool g_at_last = ig + 1 == cg_cnt;
        const std::size_t av = v_at_last ? av_last : av_full;
        const std::size_t af = f_at_last ? af_last : af_full;
        const std::size_t ag = g_at_last ? ag_last : ag_full;
        const std::uint64_t a_elems = static_cast<std::uint64_t>(av) * af;
        const std::uint64_t b_elems = static_cast<std::uint64_t>(af) * ag;
        const std::uint64_t out_elems = static_cast<std::uint64_t>(av) * ag;
        const std::uint64_t macs = static_cast<std::uint64_t>(av) * af * ag;

        // Which loop level did this step enter fresh?
        int changed = 2;
        if (i2 == 0) changed = (i1 == 0 && i0 == 0) ? -1 : (i1 == 0 ? 0 : 1);
        // changed == -1 means the very first step: every level is fresh.

        std::uint64_t serial = 0;   // serial cycles charged this step
        std::uint64_t stream_a = 0;
        std::uint64_t stream_b = 0;

        // Stationary (re)loads for operands bound above the innermost level.
        auto handle_operand = [&](int level, std::uint64_t elems, bool is_a) {
          const bool fresh =
              changed == -1 || (level >= 0 && changed <= level && level < 2);
          if (level >= 0 ? fresh : changed == -1) {
            // Re-loaded at each entry of its binding level (or once if -1).
            if (is_a) {
              if (!cfg.a_from_rf) {
                serial += ceil_div(elems, a_bw);
                r.load_cycles = sat_add_u64(r.load_cycles, ceil_div(elems, a_bw));
              }
              charge_a_read(elems);
            } else {
              serial += ceil_div(elems, cfg.bw_dist);
              r.load_cycles =
                  sat_add_u64(r.load_cycles, ceil_div(elems, cfg.bw_dist));
              charge_b_read(elems);
            }
          }
        };
        if (a_streams) {
          stream_a = acost[v_at_last][f_at_last];
          charge_a_read(a_elems);
        } else {
          handle_operand(la, a_elems, true);
        }
        if (b_streams) {
          stream_b = bcost[f_at_last][g_at_last];
          charge_b_read(b_elems);
        } else {
          handle_operand(lb, b_elems, false);
        }

        // Output tile bookkeeping.
        if (iv != prev_iv || ig != prev_ig) {
          flush_out_visit(&serial);
          if (f_idx > 0 && !psums_fit_in_rf) {
            // Revisit: partial sums come back from the GB.
            r.traffic.gb_for(TrafficCategory::kPsum).reads += out_elems;
            r.traffic.rf.writes += out_elems;
            const std::uint64_t cost = ceil_div(out_elems, cfg.bw_dist);
            r.psum_cycles = sat_add_u64(r.psum_cycles, cost);
            serial += cost;
          }
          prev_iv = iv;
          prev_ig = ig;
        }
        prev_out_elems = out_elems;
        prev_out_final = f_at_last;

        // Step cost: MAC issue vs distribution of streaming operands
        // (stream_a/b already hold the per-step distribution cost).
        std::uint64_t step = 1;
        if (stream_a > 0) step = std::max(step, stream_a);
        if (stream_b > 0) step = std::max(step, stream_b);
        if (step > 1) r.stall_cycles = sat_add_u64(r.stall_cycles, step - 1);

        // RF accounting: operand reads per MAC plus accumulator RMW per
        // output lane per step (temporal accumulation).
        r.traffic.rf.reads += sat_mul_u64(2, macs);
        r.traffic.rf.reads += out_elems;
        r.traffic.rf.writes += out_elems;

        r.issue_steps += 1;
        r.macs = sat_add_u64(r.macs, macs);
        // One PE-cycle per MAC at step cost 1.
        r.active_pe_cycles = sat_add_u64(r.active_pe_cycles, macs);
        const std::uint64_t total_step = step + serial;
        r.cycles = sat_add_u64(r.cycles, total_step);

        if (cfg.chunk_target != ChunkTarget::kNone) {
          const std::size_t chunk =
              chunk_rowc[iv] +
              chunk_colc[cfg.chunk_target == ChunkTarget::kMatrixA ? f_idx
                                                                   : ig];
          r.chunk_cycles[chunk] = sat_add_u64(r.chunk_cycles[chunk], total_step);
          r.chunk_completion[chunk] = r.cycles;  // last contribution wins
          last_chunk_touched = chunk;
        } else {
          r.chunk_cycles[0] = sat_add_u64(r.chunk_cycles[0], total_step);
          r.chunk_completion[0] = r.cycles;
          last_chunk_touched = 0;
        }
  };

  // Uniform-walk collapse. Along the deepest loop level whose inner levels
  // are all trivial (count 1), every "middle" step — neither the fresh
  // entry at index 0 nor the possibly-partial last tile — is exactly
  // uniform: full tiles, the same `changed` level (hence the same
  // stationary reloads), and identical flush/psum charges. Execute one
  // representative middle step through the normal path, then replay its
  // accumulator deltas arithmetically; the collapse is exact by
  // construction and turns the V*F*G/PE-size nest into
  // O(outer counts * chunk-runs). Only the pipeline chunk binning needs
  // per-run attention: the walked dim's chunk contribution advances in
  // plateaus of the precomputed arrays.
  const auto walk_with_collapse = [&](std::size_t walk_level, std::size_t cw,
                                      auto&& exec_at) {
    exec_at(0);
    if (cw >= 3) {
      const std::uint64_t s_cycles = r.cycles;
      const std::uint64_t s_issue = r.issue_steps;
      const std::uint64_t s_load = r.load_cycles;
      const std::uint64_t s_stall = r.stall_cycles;
      const std::uint64_t s_psum = r.psum_cycles;
      const std::uint64_t s_macs = r.macs;
      const std::uint64_t s_active = r.active_pe_cycles;
      const TrafficCounters s_traffic = r.traffic;

      exec_at(1);  // representative middle step

      const std::size_t mid_end = cw - 2;      // last middle index
      const std::uint64_t reps = mid_end - 1;  // walked steps 2 .. mid_end
      if (reps > 0) {
        const std::uint64_t step_cycles = r.cycles - s_cycles;
        const std::uint64_t walked = sat_mul_u64(reps, step_cycles);
        const Dim walk_dim = loops[walk_level].dim;

        // Chunk binning for the replayed steps.
        const std::uint64_t base_cycles = r.cycles;  // after walked step 1
        if (cfg.chunk_target != ChunkTarget::kNone) {
          const bool col_by_f = cfg.chunk_target == ChunkTarget::kMatrixA;
          const std::size_t col_idx =
              col_by_f ? cur_idx[f_depth] : cur_idx[lg];
          const std::size_t* varying = nullptr;
          std::size_t fixed_contrib = 0;
          if (walk_dim == Dim::kV) {
            varying = chunk_rowc.data();
            fixed_contrib = chunk_colc[col_idx];
          } else if (col_by_f ? walk_dim == Dim::kF : walk_dim == Dim::kG) {
            varying = chunk_colc.data();
            fixed_contrib = chunk_rowc[cur_idx[lv]];
          } else {
            fixed_contrib = chunk_rowc[cur_idx[lv]] + chunk_colc[col_idx];
          }
          if (varying == nullptr) {
            r.chunk_cycles[fixed_contrib] =
                sat_add_u64(r.chunk_cycles[fixed_contrib], walked);
            r.chunk_completion[fixed_contrib] =
                sat_add_u64(base_cycles, walked);
            last_chunk_touched = fixed_contrib;
          } else {
            std::size_t s = 2;
            while (s <= mid_end) {
              const std::size_t contrib = varying[s];
              std::size_t e = s;
              while (e + 1 <= mid_end && varying[e + 1] == contrib) ++e;
              const std::size_t chunk = fixed_contrib + contrib;
              r.chunk_cycles[chunk] = sat_add_u64(
                  r.chunk_cycles[chunk],
                  sat_mul_u64(static_cast<std::uint64_t>(e - s + 1),
                              step_cycles));
              r.chunk_completion[chunk] = sat_add_u64(
                  base_cycles,
                  sat_mul_u64(static_cast<std::uint64_t>(e - 1), step_cycles));
              last_chunk_touched = chunk;
              s = e + 1;
            }
          }
        } else {
          r.chunk_cycles[0] = sat_add_u64(r.chunk_cycles[0], walked);
          r.chunk_completion[0] = sat_add_u64(base_cycles, walked);
          last_chunk_touched = 0;
        }

        // Replay the scalar deltas of the representative step.
        r.cycles = sat_add_u64(r.cycles, walked);
        r.issue_steps += reps * (r.issue_steps - s_issue);
        r.load_cycles = sat_add_u64(
            r.load_cycles, sat_mul_u64(reps, r.load_cycles - s_load));
        r.stall_cycles = sat_add_u64(
            r.stall_cycles, sat_mul_u64(reps, r.stall_cycles - s_stall));
        r.psum_cycles = sat_add_u64(
            r.psum_cycles, sat_mul_u64(reps, r.psum_cycles - s_psum));
        r.macs = sat_add_u64(r.macs, sat_mul_u64(reps, r.macs - s_macs));
        r.active_pe_cycles =
            sat_add_u64(r.active_pe_cycles,
                        sat_mul_u64(reps, r.active_pe_cycles - s_active));
        const auto replay = [reps](AccessCounts& cur,
                                   const AccessCounts& before) {
          cur.reads += reps * (cur.reads - before.reads);
          cur.writes += reps * (cur.writes - before.writes);
        };
        for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
          replay(r.traffic.gb[c], s_traffic.gb[c]);
        }
        replay(r.traffic.rf, s_traffic.rf);
        replay(r.traffic.dram, s_traffic.dram);
        replay(r.traffic.intermediate_partition,
               s_traffic.intermediate_partition);

        // Output-visit state as if the walk stood at mid_end: only the
        // walked dim's coordinate moved (the visit size and finality are
        // middle-uniform).
        if (walk_dim == Dim::kV) prev_iv = mid_end;
        if (walk_dim == Dim::kG) prev_ig = mid_end;
      }
    }
    if (cw >= 2) exec_at(cw - 1);
  };

  if (c1 == 1 && c2 == 1) {
    walk_with_collapse(0, c0,
                       [&](std::size_t j) { exec_step(j, 0, 0); });
  } else if (c2 == 1) {
    for (std::size_t i0 = 0; i0 < c0; ++i0) {
      walk_with_collapse(1, c1,
                         [&](std::size_t j) { exec_step(i0, j, 0); });
    }
  } else {
    for (std::size_t i0 = 0; i0 < c0; ++i0) {
      for (std::size_t i1 = 0; i1 < c1; ++i1) {
        walk_with_collapse(2, c2,
                           [&](std::size_t j) { exec_step(i0, i1, j); });
      }
    }
  }
  std::uint64_t tail = 0;
  flush_out_visit(&tail);
  r.cycles = sat_add_u64(r.cycles, tail);
  if (!r.chunk_cycles.empty()) {
    r.chunk_cycles[last_chunk_touched] =
        sat_add_u64(r.chunk_cycles[last_chunk_touched], tail);
    r.chunk_completion[last_chunk_touched] += tail;
  }

  r.cycles = sat_add_u64(r.cycles, r.fill_cycles);
  r.chunk_cycles.front() += r.fill_cycles;
  // The pipeline fill delays every completion; never-touched chunks (empty
  // grid cells) complete with their predecessors.
  std::uint64_t floor_cycles = 0;
  for (auto& c : r.chunk_completion) {
    c += r.fill_cycles;
    floor_cycles = std::max(floor_cycles, c);
    c = std::max(c, floor_cycles);
  }
  return r;
}

}  // namespace

}  // namespace omega
