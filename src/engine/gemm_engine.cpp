#include "engine/gemm_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace omega {

namespace {

struct LoopInfo {
  Dim dim;
  std::size_t extent = 1;
  std::size_t tile = 1;
  std::size_t count = 1;  // ceil(extent / tile)
};

std::size_t actual_tile(const LoopInfo& l, std::size_t idx) {
  const std::size_t base = idx * l.tile;
  return std::min(l.tile, l.extent - base);
}

/// Deepest loop depth indexing the operand with more than one tile;
/// -1 if the operand never needs re-fetching after the initial load.
int deepest_effective_level(const std::array<LoopInfo, 3>& loops, bool uses_v,
                            bool uses_f, bool uses_g) {
  int level = -1;
  for (int d = 0; d < 3; ++d) {
    const bool uses = (loops[static_cast<std::size_t>(d)].dim == Dim::kV && uses_v) ||
                      (loops[static_cast<std::size_t>(d)].dim == Dim::kF && uses_f) ||
                      (loops[static_cast<std::size_t>(d)].dim == Dim::kG && uses_g);
    if (uses && loops[static_cast<std::size_t>(d)].count > 1) level = d;
  }
  return level;
}

}  // namespace

void GemmPhaseConfig::validate() const {
  order.validate(GnnPhase::kCombination);
  OMEGA_CHECK(rows >= 1 && inner >= 1 && cols >= 1, "extents must be >= 1");
  OMEGA_CHECK(pes >= 1, "phase needs at least one PE");
  OMEGA_CHECK(bw_dist >= 1 && bw_red >= 1, "bandwidth must be >= 1");
  const std::size_t spatial =
      std::min(tiles.v, rows) * std::min(tiles.f, inner) * std::min(tiles.g, cols);
  OMEGA_CHECK(spatial <= pes,
              "spatial tile footprint exceeds the PEs allocated to the phase");
}

PhaseResult run_gemm_phase(const GemmPhaseConfig& cfg) {
  cfg.validate();

  // Clamp tiles to extents so degenerate dims do not inflate the footprint.
  const std::size_t tv = std::min(cfg.tiles.v, cfg.rows);
  const std::size_t tf = std::min(cfg.tiles.f, cfg.inner);
  const std::size_t tg = std::min(cfg.tiles.g, cfg.cols);

  std::array<LoopInfo, 3> loops;
  for (std::size_t d = 0; d < 3; ++d) {
    const Dim dim = cfg.order.at(d);
    LoopInfo info;
    info.dim = dim;
    switch (dim) {
      case Dim::kV: info.extent = cfg.rows; info.tile = tv; break;
      case Dim::kF: info.extent = cfg.inner; info.tile = tf; break;
      case Dim::kG: info.extent = cfg.cols; info.tile = tg; break;
      case Dim::kN: throw InvalidDataflowError("GEMM phase cannot loop over N");
    }
    info.count = ceil_div(info.extent, info.tile);
    loops[d] = info;
  }

  const int la = deepest_effective_level(loops, true, true, false);  // A{V,F}
  const int lb = deepest_effective_level(loops, false, true, true);  // B{F,G}

  const std::size_t f_depth = cfg.order.depth_of(Dim::kF);
  const std::size_t c_f = loops[f_depth].count;

  const std::size_t a_bw = cfg.a_stream_bw > 0 ? cfg.a_stream_bw : cfg.bw_dist;
  const std::size_t out_bw = cfg.out_drain_bw > 0 ? cfg.out_drain_bw : cfg.bw_red;

  // RF-resident partial sums: between increments of the contraction (F)
  // loop, each PE must keep one accumulator per output element it covers
  // across all output tiles swept by the loops *inside* F. If that live set
  // fits in half the RF, accumulators persist and no psum spill happens.
  const std::size_t f_depth_raw = cfg.order.depth_of(Dim::kF);
  std::uint64_t covered_v = tv;
  std::uint64_t covered_g = tg;
  if (cfg.order.depth_of(Dim::kV) > f_depth_raw) covered_v = cfg.rows;
  if (cfg.order.depth_of(Dim::kG) > f_depth_raw) covered_g = cfg.cols;
  const std::uint64_t tile_pes =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(tv) * tf * tg);
  const std::uint64_t live_psums_per_pe =
      ceil_div(covered_v * covered_g, tile_pes);
  const bool psums_fit_in_rf =
      live_psums_per_pe <= std::max<std::size_t>(cfg.rf_elements / 2, 1);

  PhaseResult r;
  const std::size_t num_chunks =
      cfg.chunk_target == ChunkTarget::kNone ? 1 : cfg.chunks.num_chunks();
  r.chunk_cycles.assign(num_chunks, 0);
  r.chunk_completion.assign(num_chunks, 0);
  std::size_t last_chunk_touched = 0;

  // One-time fill: distribution latency + spatial-reduction tree depth.
  const std::size_t tree_in = tf > 1 ? tf : 1;
  r.fill_cycles =
      2 + static_cast<std::uint64_t>(std::bit_width(tree_in) - 1);

  auto charge_a_read = [&](std::uint64_t elems) {
    if (cfg.a_from_rf) {
      r.traffic.rf.reads += elems;
      return;
    }
    if (cfg.a_in_dram) r.traffic.dram.reads += elems;
    else if (cfg.a_via_partition)
      r.traffic.intermediate_partition.reads += elems;
    else r.traffic.gb_for(cfg.a_category).reads += elems;
    r.traffic.rf.writes += elems;  // latched into PE registers
  };
  auto charge_b_read = [&](std::uint64_t elems) {
    r.traffic.gb_for(cfg.b_category).reads += elems;
    r.traffic.rf.writes += elems;
  };

  // Per-step tracking of the current output tile visit.
  std::size_t prev_iv = std::numeric_limits<std::size_t>::max();
  std::size_t prev_ig = std::numeric_limits<std::size_t>::max();
  std::size_t prev_out_elems = 0;
  bool prev_out_final = false;
  std::size_t current_chunk = 0;

  auto flush_out_visit = [&](std::uint64_t* sink_cycles) {
    // Called when the (iv, ig) output tile changes or the nest ends; charges
    // the drain of the visit that just finished.
    if (prev_iv == std::numeric_limits<std::size_t>::max()) return;
    const std::uint64_t elems = prev_out_elems;
    if (prev_out_final) {
      if (cfg.out_to_rf) {
        r.traffic.rf.writes += elems;
        // Result stays resident: no drain cycles.
      } else {
        if (cfg.out_in_dram) r.traffic.dram.writes += elems;
        else if (cfg.out_via_partition)
          r.traffic.intermediate_partition.writes += elems;
        else r.traffic.gb_for(cfg.out_category).writes += elems;
        const std::uint64_t cost = ceil_div(elems, out_bw);
        r.stall_cycles += cost;
        *sink_cycles += cost;
      }
    } else if (!psums_fit_in_rf) {
      // Partial-sum spill: accumulators evicted to the GB psum region.
      r.traffic.gb_for(TrafficCategory::kPsum).writes += elems;
      r.traffic.rf.reads += elems;
      const std::uint64_t cost = ceil_div(elems, cfg.bw_red);
      r.psum_cycles += cost;
      *sink_cycles += cost;
    }
    // Otherwise the partial sums stay live in the PE register files.
  };

  const std::size_t c0 = loops[0].count;
  const std::size_t c1 = loops[1].count;
  const std::size_t c2 = loops[2].count;

  for (std::size_t i0 = 0; i0 < c0; ++i0) {
    for (std::size_t i1 = 0; i1 < c1; ++i1) {
      for (std::size_t i2 = 0; i2 < c2; ++i2) {
        const std::array<std::size_t, 3> idx{i0, i1, i2};
        // Current actual tile sizes by dim.
        std::size_t av = 1, af = 1, ag = 1;
        std::size_t v_base = 0, f_idx = 0, g_base = 0;
        for (std::size_t d = 0; d < 3; ++d) {
          const std::size_t a = actual_tile(loops[d], idx[d]);
          switch (loops[d].dim) {
            case Dim::kV: av = a; v_base = idx[d] * loops[d].tile; break;
            case Dim::kF: af = a; f_idx = idx[d]; break;
            case Dim::kG: ag = a; g_base = idx[d] * loops[d].tile; break;
            case Dim::kN: break;
          }
        }
        const std::uint64_t a_elems = static_cast<std::uint64_t>(av) * af;
        const std::uint64_t b_elems = static_cast<std::uint64_t>(af) * ag;
        const std::uint64_t out_elems = static_cast<std::uint64_t>(av) * ag;
        const std::uint64_t macs = static_cast<std::uint64_t>(av) * af * ag;

        // Which loop level did this step enter fresh?
        int changed = 2;
        if (i2 == 0) changed = (i1 == 0 && i0 == 0) ? -1 : (i1 == 0 ? 0 : 1);
        // changed == -1 means the very first step: every level is fresh.

        std::uint64_t serial = 0;   // serial cycles charged this step
        std::uint64_t stream_a = 0;
        std::uint64_t stream_b = 0;

        // Stationary (re)loads for operands bound above the innermost level.
        auto handle_operand = [&](int level, std::uint64_t elems, bool is_a) {
          const bool fresh =
              changed == -1 || (level >= 0 && changed <= level && level < 2);
          if (level == 2) {
            // Streams every step.
            if (is_a) stream_a += elems; else stream_b += elems;
            if (is_a) charge_a_read(elems); else charge_b_read(elems);
          } else if (level >= 0 ? fresh : changed == -1) {
            // Re-loaded at each entry of its binding level (or once if -1).
            if (is_a) {
              if (!cfg.a_from_rf) {
                serial += ceil_div(elems, a_bw);
                r.load_cycles += ceil_div(elems, a_bw);
              }
              charge_a_read(elems);
            } else {
              serial += ceil_div(elems, cfg.bw_dist);
              r.load_cycles += ceil_div(elems, cfg.bw_dist);
              charge_b_read(elems);
            }
          }
        };
        handle_operand(la, a_elems, true);
        handle_operand(lb, b_elems, false);

        // Output tile bookkeeping.
        const std::size_t iv = idx[cfg.order.depth_of(Dim::kV)];
        const std::size_t ig = idx[cfg.order.depth_of(Dim::kG)];
        if (iv != prev_iv || ig != prev_ig) {
          flush_out_visit(&serial);
          if (f_idx > 0 && !psums_fit_in_rf) {
            // Revisit: partial sums come back from the GB.
            r.traffic.gb_for(TrafficCategory::kPsum).reads += out_elems;
            r.traffic.rf.writes += out_elems;
            const std::uint64_t cost = ceil_div(out_elems, cfg.bw_dist);
            r.psum_cycles += cost;
            serial += cost;
          }
          prev_iv = iv;
          prev_ig = ig;
        }
        prev_out_elems = out_elems;
        prev_out_final = (f_idx == c_f - 1);

        // Step cost: MAC issue vs distribution of streaming operands.
        std::uint64_t step = 1;
        if (stream_a > 0) step = std::max(step, ceil_div(stream_a, a_bw));
        if (stream_b > 0) step = std::max(step, ceil_div(stream_b, cfg.bw_dist));
        if (step > 1) r.stall_cycles += step - 1;

        // RF accounting: operand reads per MAC plus accumulator RMW per
        // output lane per step (temporal accumulation).
        r.traffic.rf.reads += 2 * macs;
        r.traffic.rf.reads += out_elems;
        r.traffic.rf.writes += out_elems;

        r.issue_steps += 1;
        r.macs += macs;
        r.active_pe_cycles += macs;  // one PE-cycle per MAC at step cost 1
        const std::uint64_t total_step = step + serial;
        r.cycles += total_step;

        if (cfg.chunk_target != ChunkTarget::kNone) {
          std::size_t chunk = 0;
          if (cfg.chunk_target == ChunkTarget::kMatrixA) {
            chunk = cfg.chunks.chunk_of(v_base, f_idx * loops[f_depth].tile);
          } else {
            chunk = cfg.chunks.chunk_of(v_base, g_base);
          }
          current_chunk = chunk;
          r.chunk_cycles[chunk] += total_step;
          r.chunk_completion[chunk] = r.cycles;  // last contribution wins
          last_chunk_touched = chunk;
        } else {
          r.chunk_cycles[0] += total_step;
          r.chunk_completion[0] = r.cycles;
          last_chunk_touched = 0;
        }
      }
    }
  }
  std::uint64_t tail = 0;
  flush_out_visit(&tail);
  r.cycles += tail;
  if (!r.chunk_cycles.empty()) {
    r.chunk_cycles[last_chunk_touched] += tail;
    r.chunk_completion[last_chunk_touched] += tail;
  }

  r.cycles += r.fill_cycles;
  r.chunk_cycles.front() += r.fill_cycles;
  // The pipeline fill delays every completion; never-touched chunks (empty
  // grid cells) complete with their predecessors.
  std::uint64_t floor_cycles = 0;
  for (auto& c : r.chunk_completion) {
    c += r.fill_cycles;
    floor_cycles = std::max(floor_cycles, c);
    c = std::max(c, floor_cycles);
  }
  return r;
}

}  // namespace omega
