// Dense-phase (Combination) cost engine.
//
// Simulates a tiled GEMM `Out[V,G] = A[V,F] x B[F,G]` on the PE array at
// tile-step granularity: each iteration of the temporal loop nest issues one
// wave of MACs across the spatially mapped tile and is charged
// max(1, distribution-stall, drain-stall) cycles; stationary-tile (re)loads,
// partial-sum spills/reloads and final drains add serial cycles. Traffic is
// counted event-by-event so the totals are exactly consistent with the
// cycle accounting (see DESIGN.md "Cost-model semantics").
#pragma once

#include <memory>

#include "arch/accelerator.hpp"
#include "dataflow/intra.hpp"
#include "engine/phase_result.hpp"

namespace omega {

class WorkloadContext;  // engine/schedule_cache.hpp

/// Which matrix the pipeline chunk grid tracks.
enum class ChunkTarget : std::uint8_t {
  kNone = 0,
  kMatrixA = 1,    // AC consumer: A is the intermediate being consumed
  kMatrixOut = 2,  // CA producer: Out is the intermediate being produced
};

struct GemmPhaseConfig {
  // Extents.
  std::size_t rows = 1;   // V
  std::size_t inner = 1;  // F (contraction)
  std::size_t cols = 1;   // G

  LoopOrder order;  // permutation of {V, F, G}
  TileSizes tiles;  // t_n ignored

  /// Optional per-workload memo (engine/schedule_cache.hpp): identical
  /// configs skip the tile-step simulation and return the memoized
  /// PhaseResult. The search's agg x cmb cross product makes such repeats
  /// the common case. Null simulates fresh (identical results).
  const WorkloadContext* context = nullptr;

  // Hardware binding.
  std::size_t pes = 512;
  std::size_t bw_dist = AcceleratorConfig::kUnbounded;
  std::size_t bw_red = AcceleratorConfig::kUnbounded;
  /// RF capacity per PE in elements. Half of it may hold live partial sums:
  /// when the output elements a PE must keep alive between contraction steps
  /// fit, accumulators persist in the RF and no psum spill occurs (this is
  /// what separates SP2's T_F=4 from SPhighV's T_F=1 in Section V-B2).
  std::size_t rf_elements = 16;

  /// SP-Optimized (AC): the intermediate already sits in the PE register
  /// files — A is neither loaded nor streamed from the GB (the t_load
  /// credit of Table III).
  bool a_from_rf = false;
  /// SP-Optimized (CA): outputs stay resident in the PE register files.
  bool out_to_rf = false;

  /// Overrides for spilled intermediates (Seq with V*F too large for the
  /// GB): stream A from DRAM / drain Out to DRAM at this bandwidth.
  /// 0 = not spilled (use bw_dist / bw_red).
  std::size_t a_stream_bw = 0;
  std::size_t out_drain_bw = 0;
  /// When spilled, A reads / Out writes are charged to DRAM, not the GB.
  bool a_in_dram = false;
  bool out_in_dram = false;

  TrafficCategory a_category = TrafficCategory::kIntermediate;
  TrafficCategory b_category = TrafficCategory::kWeight;
  TrafficCategory out_category = TrafficCategory::kOutput;
  /// Accesses to A (or Out) staged through the PP ping-pong partition are
  /// additionally mirrored into traffic.intermediate_partition.
  bool a_via_partition = false;
  bool out_via_partition = false;

  ChunkSpec chunks;  // identity grid unless pipelining
  ChunkTarget chunk_target = ChunkTarget::kNone;

  void validate() const;
};

[[nodiscard]] PhaseResult run_gemm_phase(const GemmPhaseConfig& cfg);

/// Like run_gemm_phase, but hands back the memo's shared entry instead of
/// copying the PhaseResult out of it. The copy is what the by-value path
/// pays per candidate (chunked results carry O(chunks) timeline vectors);
/// the delta-evaluation core (engine/eval_core.hpp) holds terms by pointer,
/// so it must not pay it. Uncached configs build a fresh shared result —
/// bit-identical either way.
[[nodiscard]] std::shared_ptr<const PhaseResult> run_gemm_phase_shared(
    const GemmPhaseConfig& cfg);

/// ceil(a / b) with b >= 1.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace omega
