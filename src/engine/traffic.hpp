// Traffic accounting shared by the phase engines and the inter-phase model.
//
// Global-buffer accesses are attributed to the matrix they move (the six
// categories of Fig. 13: adjacency, input, weight, intermediate, output,
// partial sums); register-file and DRAM accesses are tracked as aggregates.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "arch/energy.hpp"

namespace omega {

enum class TrafficCategory : std::uint8_t {
  kAdjacency = 0,     // CSR vertex/edge arrays (+ edge values)
  kInput = 1,         // X0 feature matrix
  kWeight = 2,        // W
  kIntermediate = 3,  // the matrix handed between phases
  kOutput = 4,        // X1
  kPsum = 5,          // partial-sum spills
};
inline constexpr std::size_t kNumTrafficCategories = 6;

[[nodiscard]] const char* to_string(TrafficCategory c);

/// Per-run traffic: GB accesses by category, plus RF/DRAM aggregates.
struct TrafficCounters {
  std::array<AccessCounts, kNumTrafficCategories> gb{};
  AccessCounts rf;
  AccessCounts dram;
  /// Accesses to the PP intermediate ping-pong partition (charged at the
  /// partition-scaled energy rather than full GB energy).
  AccessCounts intermediate_partition;

  [[nodiscard]] AccessCounts& gb_for(TrafficCategory c) {
    return gb[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const AccessCounts& gb_for(TrafficCategory c) const {
    return gb[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] std::uint64_t gb_total() const {
    std::uint64_t t = 0;
    for (const auto& a : gb) t += a.total();
    return t;
  }

  TrafficCounters& operator+=(const TrafficCounters& o) {
    for (std::size_t i = 0; i < gb.size(); ++i) gb[i] += o.gb[i];
    rf += o.rf;
    dram += o.dram;
    intermediate_partition += o.intermediate_partition;
    return *this;
  }
};

}  // namespace omega
