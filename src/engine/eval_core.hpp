// Delta + batched candidate evaluation: the DSE hot path.
//
// A sweep's candidates differ from their neighbors in one or two descriptor
// fields, and the full Omega::run pipeline re-derives everything per
// candidate: PE/bandwidth split, feature widths, the boundary plan, two
// engine configs, two phase simulations (memoized by string key — built,
// hashed and compared per candidate), the PP composition, the traffic sum
// and the energy model. An EvalPlan factors one candidate evaluation into
// exactly two *phase terms* — the memoizable units — plus O(1) composition:
//
//   cycles  = compose(term_first, term_second)   (PP overlap or sat-add)
//   traffic = term_first.traffic + term_second.traffic
//   energy  = compute_energy(traffic, em, partition_bytes(boundary))
//
// Each term is keyed by the descriptor fields it actually depends on (its
// engine config: tile dims, loop order, the InterPhase-derived flag set,
// the PE/bandwidth split, widths, chunk grid — see key_of in eval_core.cpp
// for the exact field->term dependency map) and cached in a POD-keyed hash
// map on the plan, so a single-field mutation invalidates at most the terms
// whose key embeds that field. The plan itself is cached in the
// WorkloadContext keyed by everything outside the descriptor (substrate +
// energy model + layer shape), so repeated searches over one workload reuse
// all terms across calls.
//
// Two access tiers sit above the shared map:
//  * DeltaState — a per-evaluation-block L1: the last term per engine slot.
//    Neighboring candidates that leave one phase untouched (the common case
//    in tiling sweeps: the agg x cmb cross product mutates one side at a
//    time) hit the slot without touching the map or hashing the key.
//  * evaluate_batch — struct-of-arrays evaluation of a candidate block:
//    pass 1 derives every candidate's term specs into parallel arrays,
//    pass 2 resolves terms (delta slot -> shared map -> simulate), pass 3
//    composes cycles/energy in a tight loop over the resolved arrays.
//
// Parity contract: for every descriptor, evaluate_one/evaluate_batch return
// bit-identical (cycles, on_chip_pj) to Omega::run with the same context,
// and `ok == false` exactly when Omega::run throws Error. The scalar path
// stays alive behind SearchOptions::eval_path as the differential oracle;
// tests/eval_core_test.cpp fuzzes single-field mutations against it.
//
// PipelineEvalPlan (below) generalizes the same factoring to N-phase chains
// for the pipeline-space DSE: one term per chain position, (N-1) boundary
// compositions, the same TermStore/delta-slot machinery, and the same
// parity contract against Omega::run_pipeline.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/gemm_engine.hpp"
#include "engine/schedule_cache.hpp"
#include "engine/spmm_engine.hpp"
#include "omega/omega.hpp"
#include "omega/pipeline.hpp"

namespace omega {

/// One candidate's evaluation result, reduced to what the search ranks on.
/// `ok == false` mirrors Omega::run throwing (infeasible candidate); the
/// other fields are zero then.
struct EvalOutcome {
  std::uint64_t cycles = 0;
  double on_chip_pj = 0.0;
  bool ok = false;
};

/// POD signature of one phase term — the numeric mirror of the engines'
/// string memo keys (same fields, no formatting/hashing of digits per
/// candidate). w[0] tags the engine so spmm/gemm keys can never collide.
struct EvalTermKey {
  std::array<std::uint64_t, 22> w{};
  [[nodiscard]] bool operator==(const EvalTermKey&) const = default;
};

/// Byte budget for *chunked* phase-term timelines held by one EvalPlan.
/// The legacy engine memo refuses chunk grids past kPhaseMemoMaxChunks on
/// the assumption that giant timelines are near-unique; sweep profiles show
/// the opposite — candidates that differ only in fields outside a phase's
/// key share its grid, and re-simulating those terms dominates the hot
/// path. The plan therefore admits big-chunk terms until their estimated
/// timeline footprint (two u64 vectors per term) reaches this budget; past
/// it, new big terms fall back to uncached builds (results identical, the
/// DeltaState slot is then their only cache).
inline constexpr std::size_t kTermTimelineBudgetBytes = 512ull << 20;

struct EvalTermKeyHash {
  [[nodiscard]] std::size_t operator()(const EvalTermKey& k) const noexcept {
    // FNV-1a over the words; the fields are small integers, so the byte-wise
    // avalanche matters more than speed here (the map is behind the L1).
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint64_t w : k.w) {
      h ^= w;
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Per-evaluation-block working state: the last resolved term per engine
/// slot (0 = spmm, 1 = gemm) plus reusable batch scratch. One DeltaState
/// per parallel block — never shared across threads. A null `term` with
/// `valid == true` caches "this term's phase config is infeasible".
struct DeltaState {
  struct Slot {
    EvalTermKey key;
    std::shared_ptr<const PhaseResult> term;
    bool valid = false;
  };
  std::array<Slot, 2> slots;
  std::uint64_t delta_hits = 0;  // term requests served by a slot

  // evaluate_batch scratch (SoA arrays), reused across batches to keep the
  // hot loop allocation-free after the first call.
  struct Scratch;
  std::shared_ptr<Scratch> scratch;
};

/// The shared term memo behind an evaluation plan: a POD-keyed map of
/// once-built phase results, the chunked-timeline byte budget, and the
/// request/build counters. Thread-safe; one store per plan, shared between
/// the two-phase EvalPlan and the N-phase PipelineEvalPlan so the admission
/// policy and counter semantics cannot drift between them.
class TermStore {
 public:
  /// Resolves a term through (delta slot -> map -> build). `timeline_bytes
  /// == 0` marks a small-grid term (always admitted, like the legacy
  /// engine memo); nonzero is the estimated footprint of a chunked term's
  /// timelines, admitted against kTermTimelineBudgetBytes. `slot` is the
  /// caller's per-block L1 for this term position; `delta_hits` counts the
  /// requests it served.
  [[nodiscard]] std::shared_ptr<const PhaseResult> resolve(
      const EvalTermKey& key, DeltaState::Slot& slot,
      const std::function<std::shared_ptr<const PhaseResult>()>& build,
      std::size_t timeline_bytes, std::uint64_t& delta_hits) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t builds() const {
    return builds_.load(std::memory_order_relaxed);
  }
  /// Estimated bytes of chunked-term timelines admitted against
  /// kTermTimelineBudgetBytes (small-grid terms are not counted).
  [[nodiscard]] std::size_t timeline_bytes() const;

 private:
  struct TermEntry {
    std::once_flag once;
    std::exception_ptr error;  // non-Error escape from the build, memoized
    // Null after a failed build: the engines reject this config
    // (infeasible), cached so every revisit fails without re-simulating.
    std::shared_ptr<const PhaseResult> result;
  };

  mutable std::mutex mutex_;
  mutable std::unordered_map<EvalTermKey, std::shared_ptr<TermEntry>,
                             EvalTermKeyHash>
      terms_;
  mutable std::size_t timeline_bytes_ = 0;  // guarded by mutex_
  mutable std::atomic<std::uint64_t> requests_{0};
  mutable std::atomic<std::uint64_t> builds_{0};
};

/// A per-(workload, substrate, layer) evaluation plan. Obtain through
/// EvalPlan::obtain (cached in the WorkloadContext); all methods are const
/// and thread-safe. Counter semantics: term_requests/term_builds/term_count
/// are deterministic for a given evaluated-candidate set (builds happen
/// once per distinct key); delta-hit counts live on the caller's DeltaState
/// because block layout is thread-count-dependent.
class EvalPlan final : public EvalPlanBase {
 public:
  /// The context-cached plan for (omega's substrate + energy model,
  /// workload, layer). `context` must be bound to `workload.adjacency`.
  [[nodiscard]] static std::shared_ptr<const EvalPlan> obtain(
      const Omega& omega, const GnnWorkload& workload, const LayerSpec& layer,
      const WorkloadContext& context);

  /// Evaluates one candidate through the term cache. Bit-identical to
  /// Omega::run (see the parity contract above).
  [[nodiscard]] EvalOutcome evaluate_one(const DataflowDescriptor& df,
                                         DeltaState& state) const;

  /// Struct-of-arrays evaluation of a candidate block: writes one
  /// EvalOutcome per input descriptor pointer. Outcomes are identical to
  /// calling evaluate_one per candidate in order (the batch only
  /// restructures the passes).
  void evaluate_batch(std::span<const DataflowDescriptor* const> dfs,
                      EvalOutcome* out, DeltaState& state) const;

  // EvalPlanBase observability.
  [[nodiscard]] std::size_t term_count() const override {
    return store_.size();
  }
  [[nodiscard]] std::uint64_t term_requests() const override {
    return store_.requests();
  }
  [[nodiscard]] std::uint64_t term_builds() const override {
    return store_.builds();
  }

  /// Estimated bytes of chunked-term timelines admitted against
  /// kTermTimelineBudgetBytes (small-grid terms are not counted).
  [[nodiscard]] std::size_t term_timeline_bytes() const override {
    return store_.timeline_bytes();
  }

 private:
  friend struct DeltaState::Scratch;  // batch scratch holds TermSpecs arrays
  EvalPlan() = default;

  /// Fully derived engine configs for one candidate (the term specs) plus
  /// the O(1) composition inputs. `feasible == false` short-circuits the
  /// term passes (precheck failed — exactly the throws Omega::run performs
  /// before reaching the engines).
  struct TermSpecs {
    SpmmPhaseConfig spmm;
    GemmPhaseConfig gemm;
    bool feasible = false;
    bool pp = false;          // compose by chunk overlap instead of sat-add
    bool spmm_first = false;  // execution order of the two terms
    std::size_t partition_bytes = 0;
  };

  [[nodiscard]] bool derive(const DataflowDescriptor& df, TermSpecs* ts) const;
  [[nodiscard]] std::shared_ptr<const PhaseResult> resolve_spmm(
      const SpmmPhaseConfig& cfg, DeltaState& state) const;
  [[nodiscard]] std::shared_ptr<const PhaseResult> resolve_gemm(
      const GemmPhaseConfig& cfg, DeltaState& state) const;
  [[nodiscard]] static EvalOutcome compose(
      const TermSpecs& ts, const PhaseResult& first,
      const PhaseResult& second, const EnergyModel& em);

  // Workload / substrate bindings (all layer- and descriptor-invariant).
  const CSRGraph* graph_ = nullptr;
  const WorkloadContext* context_ = nullptr;
  AcceleratorConfig hw_;
  EnergyModel em_;
  std::size_t v_ = 0;
  std::size_t f_ = 0;  // resolved input width
  std::size_t g_ = 0;  // output width
  bool dims_ok_ = false;

  TermStore store_;
};

/// Per-evaluation-block working state for N-phase pipeline evaluation: one
/// delta slot per phase POSITION (consecutive candidates that leave phase i
/// untouched hit slot i without hashing its key) plus reusable batch
/// scratch. One state per parallel block — never shared across threads.
struct PipelineDeltaState {
  std::vector<DeltaState::Slot> slots;  // sized to the plan's phase count
  std::uint64_t delta_hits = 0;         // term requests served by a slot

  struct Scratch;
  std::shared_ptr<Scratch> scratch;
};

/// The N-phase generalization of EvalPlan: one candidate evaluation factors
/// into N phase terms — one per chain position — plus (N-1) boundary
/// compositions (PP pairs overlap chunk-by-chunk, everything else
/// sat-adds), all resolved through the same TermStore machinery. The plan
/// is keyed by the *chain* (engines, widths, densities — everything a
/// pipeline sweep holds fixed) so per-candidate work reduces to deriving
/// engine configs from the binding (dataflows, boundaries, PE fractions)
/// and resolving cached terms; sparse-weight W^T CSRs are built once per
/// chain phase here instead of once per candidate as in run_pipeline.
///
/// Parity contract (the pipeline sibling of EvalPlan's): for every binding,
/// evaluate_one/evaluate_batch return bit-identical (cycles, on_chip_pj) to
/// Omega::run_pipeline on the bound spec with the same context, and
/// `ok == false` exactly when run_pipeline throws Error.
class PipelineEvalPlan final : public EvalPlanBase {
 public:
  /// The context-cached plan for (omega's substrate + energy model,
  /// workload, chain). `context` must be bound to `workload.adjacency`. A
  /// chain that can never evaluate (chain_error, empty workload) still
  /// yields a plan — every candidate then reports ok == false, mirroring
  /// run_pipeline throwing on each.
  [[nodiscard]] static std::shared_ptr<const PipelineEvalPlan> obtain(
      const Omega& omega, const GnnWorkload& workload,
      const PipelineChainSpec& chain, const WorkloadContext& context);

  /// Evaluates one candidate binding through the term cache.
  [[nodiscard]] EvalOutcome evaluate_one(const PipelineBindingView& binding,
                                         PipelineDeltaState& state) const;

  /// Struct-of-arrays evaluation of a binding block: writes one EvalOutcome
  /// per input binding. Outcomes are identical to calling evaluate_one per
  /// binding in order (the batch only restructures the passes).
  void evaluate_batch(std::span<const PipelineBindingView> bindings,
                      EvalOutcome* out, PipelineDeltaState& state) const;

  [[nodiscard]] std::size_t phase_count() const { return statics_.size(); }

  // EvalPlanBase observability.
  [[nodiscard]] std::size_t term_count() const override {
    return store_.size();
  }
  [[nodiscard]] std::uint64_t term_requests() const override {
    return store_.requests();
  }
  [[nodiscard]] std::uint64_t term_builds() const override {
    return store_.builds();
  }
  [[nodiscard]] std::size_t term_timeline_bytes() const override {
    return store_.timeline_bytes();
  }

 private:
  friend struct PipelineDeltaState::Scratch;  // scratch holds term arrays
  PipelineEvalPlan() = default;

  /// Chain-invariant per-phase facts, resolved once at obtain time.
  struct PhaseStatic {
    PhaseEngine engine = PhaseEngine::kDenseDense;
    std::size_t in_w = 0;
    std::size_t out_w = 0;
    /// Distinguishes which graph a sparse term runs on in its key (spare
    /// word w[19]): 0 = the workload adjacency, 1 + i = phase i's W^T. Two
    /// sparse-weight phases can share every keyed config field while
    /// walking different weight patterns.
    std::uint64_t graph_tag = 0;
    std::shared_ptr<const CSRGraph> wcsr;  // sparse-weight phases only
  };

  /// One phase's fully derived engine config (the term spec). Exactly one
  /// of spmm/gemm is meaningful per `is_gemm`; sparse-weight phases derive
  /// a transposed spmm config like run_pipeline.
  struct PhaseTerm {
    bool is_gemm = false;
    std::uint64_t graph_tag = 0;
    SpmmPhaseConfig spmm;
    GemmPhaseConfig gemm;
  };
  /// Per-candidate composition inputs. `feasible == false` short-circuits
  /// the term passes (precheck failed — exactly the throws run_pipeline
  /// performs before reaching the engines).
  struct CandidateMeta {
    bool feasible = false;
    std::size_t partition_bytes = 0;
  };

  [[nodiscard]] bool derive(const PipelineBindingView& binding,
                            PhaseTerm* terms, CandidateMeta* meta) const;
  [[nodiscard]] std::shared_ptr<const PhaseResult> resolve_phase(
      const PhaseTerm& term, std::size_t phase_idx,
      PipelineDeltaState& state) const;
  [[nodiscard]] EvalOutcome compose(
      const PipelineBindingView& binding,
      const std::shared_ptr<const PhaseResult>* results,
      std::size_t partition_bytes) const;
  void ensure_state(PipelineDeltaState& state) const;

  // Workload / substrate / chain bindings (all binding-invariant).
  const CSRGraph* graph_ = nullptr;
  const WorkloadContext* context_ = nullptr;
  AcceleratorConfig hw_;
  EnergyModel em_;
  std::size_t v_ = 0;
  std::vector<PhaseStatic> statics_;
  bool chain_ok_ = false;

  TermStore store_;
};

}  // namespace omega
