// Result of simulating one phase, plus the chunking contract used to stitch
// two phases into a pipeline.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "dataflow/descriptor.hpp"
#include "engine/traffic.hpp"

namespace omega {

/// How the intermediate matrix is carved into pipeline chunks (Section IV-D).
/// A chunk is a `row_block x col_block` region; chunks are traversed in
/// `major` order, which the feasibility analysis guarantees both phases
/// share. Seq / SP-Optimized use a single all-covering chunk.
struct ChunkSpec {
  std::size_t rows = 1;       // intermediate row extent
  std::size_t cols = 1;       // intermediate column extent
  std::size_t row_block = std::numeric_limits<std::size_t>::max();
  std::size_t col_block = std::numeric_limits<std::size_t>::max();
  TraversalMajor major = TraversalMajor::kRowMajor;

  [[nodiscard]] std::size_t row_blocks() const {
    const std::size_t rb = std::min(row_block, rows);
    return rb == 0 ? 1 : (rows + rb - 1) / rb;
  }
  [[nodiscard]] std::size_t col_blocks() const {
    const std::size_t cb = std::min(col_block, cols);
    return cb == 0 ? 1 : (cols + cb - 1) / cb;
  }
  [[nodiscard]] std::size_t num_chunks() const {
    return row_blocks() * col_blocks();
  }

  /// Flattened chunk index for an intermediate coordinate.
  [[nodiscard]] std::size_t chunk_of(std::size_t row, std::size_t col) const {
    const std::size_t rb = std::min(row_block, rows);
    const std::size_t cb = std::min(col_block, cols);
    const std::size_t ri = rb == 0 ? 0 : row / rb;
    const std::size_t ci = cb == 0 ? 0 : col / cb;
    return major == TraversalMajor::kRowMajor ? ri * col_blocks() + ci
                                              : ci * row_blocks() + ri;
  }

  /// Single-chunk spec covering the whole intermediate (Seq / SP).
  static ChunkSpec whole(std::size_t rows, std::size_t cols) {
    ChunkSpec s;
    s.rows = rows;
    s.cols = cols;
    return s;
  }
};

/// Per-phase simulation output.
struct PhaseResult {
  std::uint64_t cycles = 0;         // total, including every stall/load
  std::uint64_t issue_steps = 0;    // MAC-issue steps (ideal cycle count)
  std::uint64_t load_cycles = 0;    // stationary-tile (re)loads (t_load)
  std::uint64_t stall_cycles = 0;   // distribution/reduction bandwidth stalls
  std::uint64_t psum_cycles = 0;    // partial-sum spill/reload serialization
  std::uint64_t fill_cycles = 0;    // one-time pipeline fill (tree depth etc.)
  std::uint64_t macs = 0;
  std::uint64_t active_pe_cycles = 0;  // sum over steps of active PEs

  TrafficCounters traffic;

  /// Duration of each pipeline chunk, aligned with the ChunkSpec grid;
  /// sums to `cycles` (fill attributed to the first chunk).
  std::vector<std::uint64_t> chunk_cycles;

  /// Absolute cycle at which each chunk is COMPLETE (its last contribution
  /// lands). For monotone producers this is the prefix sum of chunk_cycles;
  /// producers whose traversal revisits chunks (e.g. a CA Combination with
  /// T_G smaller than the handoff width) complete chunks only on the final
  /// sweep, which this captures.
  std::vector<std::uint64_t> chunk_completion;

  /// Dynamic utilization of the PEs allocated to this phase.
  [[nodiscard]] double utilization(std::size_t pes) const {
    if (cycles == 0 || pes == 0) return 0.0;
    return static_cast<double>(active_pe_cycles) /
           (static_cast<double>(cycles) * static_cast<double>(pes));
  }
};

}  // namespace omega
