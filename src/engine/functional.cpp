#include "engine/functional.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace omega {

namespace {

std::size_t clamp_tile(std::size_t tile, std::size_t extent) {
  return std::min(std::max<std::size_t>(tile, 1), std::max<std::size_t>(extent, 1));
}

}  // namespace

MatrixF functional_gemm(const MatrixF& a, const MatrixF& b,
                        const LoopOrder& order, const TileSizes& tiles) {
  OMEGA_CHECK(a.cols() == b.rows(), "gemm inner dimension mismatch");
  order.validate(GnnPhase::kCombination);
  const std::size_t rows = a.rows(), inner = a.cols(), cols = b.cols();
  const std::size_t tv = clamp_tile(tiles.v, rows);
  const std::size_t tf = clamp_tile(tiles.f, inner);
  const std::size_t tg = clamp_tile(tiles.g, cols);

  auto extent_of = [&](Dim d) {
    return d == Dim::kV ? rows : d == Dim::kF ? inner : cols;
  };
  auto tile_of = [&](Dim d) { return d == Dim::kV ? tv : d == Dim::kF ? tf : tg; };

  MatrixF c(rows, cols, 0.0f);
  const Dim d0 = order.at(0), d1 = order.at(1), d2 = order.at(2);
  for (std::size_t i0 = 0; i0 < extent_of(d0); i0 += tile_of(d0)) {
    for (std::size_t i1 = 0; i1 < extent_of(d1); i1 += tile_of(d1)) {
      for (std::size_t i2 = 0; i2 < extent_of(d2); i2 += tile_of(d2)) {
        std::size_t v0 = 0, f0 = 0, g0 = 0;
        auto assign = [&](Dim d, std::size_t base) {
          if (d == Dim::kV) v0 = base;
          else if (d == Dim::kF) f0 = base;
          else g0 = base;
        };
        assign(d0, i0);
        assign(d1, i1);
        assign(d2, i2);
        const std::size_t v1 = std::min(rows, v0 + tv);
        const std::size_t f1 = std::min(inner, f0 + tf);
        const std::size_t g1 = std::min(cols, g0 + tg);
        for (std::size_t v = v0; v < v1; ++v) {
          for (std::size_t f = f0; f < f1; ++f) {
            const float av = a(v, f);
            for (std::size_t gg = g0; gg < g1; ++gg) c(v, gg) += av * b(f, gg);
          }
        }
      }
    }
  }
  return c;
}

MatrixF functional_spmm(const CSRGraph& adj, const MatrixF& x,
                        const LoopOrder& order, const TileSizes& tiles) {
  OMEGA_CHECK(x.rows() == adj.num_vertices(),
              "feature rows must match vertex count");
  order.validate(GnnPhase::kAggregation);
  const std::size_t v_extent = adj.num_vertices();
  const std::size_t feat = x.cols();
  const std::size_t dv = order.depth_of(Dim::kV);
  const std::size_t dn = order.depth_of(Dim::kN);
  const std::size_t df = order.depth_of(Dim::kF);
  const bool scatter = dn < dv;
  const CSRGraph walk_graph = scatter ? adj.transposed() : CSRGraph{};
  const CSRGraph& walk = scatter ? walk_graph : adj;

  const std::size_t row_tile =
      clamp_tile(scatter ? tiles.n : tiles.v, v_extent);
  const std::size_t lane_tile = std::max<std::size_t>(
      scatter ? tiles.v : tiles.n, 1);
  const std::size_t tf = clamp_tile(tiles.f, feat);
  const bool f_outside_lanes = scatter ? df < dv : df < dn;
  const bool f_outside_rows = scatter ? df < dn : df < dv;

  MatrixF h(v_extent, feat, 0.0f);

  // One lockstep micro-step: process lane chunk k of every row in the tile
  // for one feature tile.
  auto do_step = [&](std::size_t base, std::size_t count, std::size_t k,
                     std::size_t f0) {
    const std::size_t f1 = std::min(feat, f0 + tf);
    for (std::size_t r = 0; r < count; ++r) {
      const auto row = static_cast<VertexId>(base + r);
      const auto nbrs = walk.neighbors(row);
      const auto vals = walk.edge_values(row);
      const std::size_t lo = k * lane_tile;
      const std::size_t hi = std::min(nbrs.size(), lo + lane_tile);
      for (std::size_t e = lo; e < hi; ++e) {
        const float weight = vals.empty() ? 1.0f : vals[e];
        if (scatter) {
          // Push intermediate row `row` into output vertex nbrs[e].
          for (std::size_t f = f0; f < f1; ++f) {
            h(nbrs[e], f) += weight * x(row, f);
          }
        } else {
          for (std::size_t f = f0; f < f1; ++f) {
            h(row, f) += weight * x(nbrs[e], f);
          }
        }
      }
    }
  };

  auto trips_of = [&](std::size_t base, std::size_t count) {
    std::size_t trips = 1;
    for (std::size_t r = 0; r < count; ++r) {
      trips = std::max(trips, (walk.degree(static_cast<VertexId>(base + r)) +
                               lane_tile - 1) /
                                  lane_tile);
    }
    return trips;
  };

  for (std::size_t outer = 0; outer < (f_outside_rows ? feat : 1);
       outer += tf) {
    for (std::size_t base = 0; base < v_extent; base += row_tile) {
      const std::size_t count = std::min(row_tile, v_extent - base);
      const std::size_t trips = trips_of(base, count);
      if (f_outside_rows) {
        for (std::size_t k = 0; k < trips; ++k) do_step(base, count, k, outer);
      } else if (f_outside_lanes) {
        for (std::size_t f0 = 0; f0 < feat; f0 += tf) {
          for (std::size_t k = 0; k < trips; ++k) do_step(base, count, k, f0);
        }
      } else {
        for (std::size_t k = 0; k < trips; ++k) {
          for (std::size_t f0 = 0; f0 < feat; f0 += tf) {
            do_step(base, count, k, f0);
          }
        }
      }
    }
  }
  return h;
}

MatrixF functional_gcn_layer(const CSRGraph& adj, const MatrixF& x,
                             const MatrixF& w, const DataflowDescriptor& df) {
  if (df.phase_order == PhaseOrder::kAC) {
    const MatrixF h = functional_spmm(adj, x, df.agg.order, df.agg.tiles);
    return functional_gemm(h, w, df.cmb.order, df.cmb.tiles);
  }
  const MatrixF h = functional_gemm(x, w, df.cmb.order, df.cmb.tiles);
  return functional_spmm(adj, h, df.agg.order, df.agg.tiles);
}

}  // namespace omega
