#include "engine/eval_core.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dataflow/descriptor.hpp"
#include "omega/pipeline.hpp"
#include "util/error.hpp"
#include "util/once.hpp"
#include "util/saturate.hpp"

namespace omega {

namespace {

bool chunked_inter(InterPhase ip) {
  return ip == InterPhase::kSPGeneric || ip == InterPhase::kParallelPipeline;
}

std::uint64_t pack_order(const LoopOrder& order) {
  return static_cast<std::uint64_t>(order.at(0)) << 8 |
         static_cast<std::uint64_t>(order.at(1)) << 4 |
         static_cast<std::uint64_t>(order.at(2));
}

std::uint64_t pack_chunk_kind(ChunkTarget target, const ChunkSpec& chunks) {
  return static_cast<std::uint64_t>(target) << 8 |
         static_cast<std::uint64_t>(chunks.major);
}

/// Field->term dependency map, spmm side. Mirrors the spmm engine's string
/// memo key field-for-field (everything that determines the PhaseResult
/// besides the graph, which is plan-invariant); see DESIGN.md "Batched +
/// delta evaluation".
EvalTermKey key_of(const SpmmPhaseConfig& cfg) {
  EvalTermKey k;
  k.w = {1ull,  // engine tag
         pack_order(cfg.order),
         cfg.feat,
         cfg.tiles.v,
         cfg.tiles.n,
         cfg.tiles.f,
         cfg.pes,
         cfg.bw_dist,
         cfg.bw_red,
         cfg.rf_elements,
         cfg.b_stream_bw,
         cfg.out_drain_bw,
         static_cast<std::uint64_t>(cfg.out_to_rf) << 5 |
             static_cast<std::uint64_t>(cfg.b_from_rf) << 4 |
             static_cast<std::uint64_t>(cfg.b_in_dram) << 3 |
             static_cast<std::uint64_t>(cfg.out_in_dram) << 2 |
             static_cast<std::uint64_t>(cfg.b_via_partition) << 1 |
             static_cast<std::uint64_t>(cfg.out_via_partition),
         static_cast<std::uint64_t>(cfg.b_category) << 8 |
             static_cast<std::uint64_t>(cfg.out_category),
         pack_chunk_kind(cfg.chunk_target, cfg.chunks),
         cfg.chunks.rows,
         cfg.chunks.cols,
         cfg.chunks.row_block,
         cfg.chunks.col_block,
         0,
         0,
         0};
  return k;
}

/// Field->term dependency map, gemm side.
EvalTermKey key_of(const GemmPhaseConfig& cfg) {
  EvalTermKey k;
  k.w = {2ull,  // engine tag
         pack_order(cfg.order),
         cfg.rows,
         cfg.inner,
         cfg.cols,
         cfg.tiles.v,
         cfg.tiles.f,
         cfg.tiles.g,
         cfg.pes,
         cfg.bw_dist,
         cfg.bw_red,
         cfg.rf_elements,
         cfg.a_stream_bw,
         cfg.out_drain_bw,
         static_cast<std::uint64_t>(cfg.a_from_rf) << 5 |
             static_cast<std::uint64_t>(cfg.out_to_rf) << 4 |
             static_cast<std::uint64_t>(cfg.a_in_dram) << 3 |
             static_cast<std::uint64_t>(cfg.out_in_dram) << 2 |
             static_cast<std::uint64_t>(cfg.a_via_partition) << 1 |
             static_cast<std::uint64_t>(cfg.out_via_partition),
         static_cast<std::uint64_t>(cfg.a_category) << 16 |
             static_cast<std::uint64_t>(cfg.b_category) << 8 |
             static_cast<std::uint64_t>(cfg.out_category),
         pack_chunk_kind(cfg.chunk_target, cfg.chunks),
         cfg.chunks.rows,
         cfg.chunks.cols,
         cfg.chunks.row_block,
         cfg.chunks.col_block,
         0};
  return k;
}

// Estimated timeline footprint a term would pin in the shared map: zero for
// small grids (admitted unconditionally, matching the legacy engine memo's
// policy), else the two per-chunk u64 vectors a PhaseResult carries.
std::size_t term_timeline_footprint(ChunkTarget target,
                                    const ChunkSpec& chunks) {
  if (target == ChunkTarget::kNone ||
      chunks.num_chunks() <= kPhaseMemoMaxChunks) {
    return 0;
  }
  return chunks.num_chunks() * 2 * sizeof(std::uint64_t);
}

}  // namespace

// SoA batch scratch: parallel arrays, one row per candidate of the block.
struct DeltaState::Scratch {
  std::vector<EvalPlan::TermSpecs> specs;
  std::vector<std::shared_ptr<const PhaseResult>> first;
  std::vector<std::shared_ptr<const PhaseResult>> second;
};

std::shared_ptr<const EvalPlan> EvalPlan::obtain(const Omega& omega,
                                                 const GnnWorkload& workload,
                                                 const LayerSpec& layer,
                                                 const WorkloadContext& context) {
  OMEGA_CHECK(&context.graph() == &workload.adjacency,
              "WorkloadContext is bound to a different graph");
  const AcceleratorConfig& hw = omega.config();
  const EnergyModel& em = omega.energy_model();
  const std::size_t f =
      layer.in_features > 0 ? layer.in_features : workload.in_features;

  // Everything the plan depends on besides the graph (which is the
  // context's own): substrate dims/flags, energy coefficients (hex floats —
  // exact round trip), and the resolved layer shape.
  char sig[512];
  std::snprintf(sig, sizeof(sig),
                "plan|%zu|%zu|%zu|%zu|%zu|%zu|%zu|%zu|%d|%d|%a|%a|%a|%zu|%zu|%zu",
                hw.num_pes, hw.rf_bytes_per_pe, hw.gb_bytes, hw.gb_bank_bytes,
                hw.distribution_bandwidth, hw.reduction_bandwidth,
                hw.dram_bandwidth, hw.element_bytes,
                hw.supports_spatial_reduction ? 1 : 0,
                hw.supports_temporal_reduction ? 1 : 0, em.gb_access_pj,
                em.rf_access_pj, em.dram_access_pj, em.reference_bank_bytes, f,
                layer.out_features);

  std::shared_ptr<EvalPlanBase> base =
      context.eval_plan(sig, [&]() -> std::shared_ptr<EvalPlanBase> {
        auto plan = std::shared_ptr<EvalPlan>(new EvalPlan());
        plan->graph_ = &workload.adjacency;
        plan->context_ = &context;
        plan->hw_ = hw;
        plan->em_ = em;
        plan->v_ = workload.num_vertices();
        plan->f_ = f;
        plan->g_ = layer.out_features;
        plan->dims_ok_ = plan->v_ >= 1 && f >= 1 && layer.out_features >= 1;
        return plan;
      });
  return std::static_pointer_cast<const EvalPlan>(base);
}

std::shared_ptr<const PhaseResult> TermStore::resolve(
    const EvalTermKey& key, DeltaState::Slot& slot,
    const std::function<std::shared_ptr<const PhaseResult>()>& build,
    std::size_t timeline_bytes, std::uint64_t& delta_hits) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (slot.valid && slot.key == key) {
    ++delta_hits;
    return slot.term;
  }
  std::shared_ptr<TermEntry> entry;
  bool overflow = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = terms_.find(key);
    if (it != terms_.end()) {
      entry = it->second;
    } else if (terms_.size() >= kPhaseMemoMaxEntries ||
               timeline_bytes_ + timeline_bytes > kTermTimelineBudgetBytes) {
      // Entry ceiling (same policy as the context phase memo) or the
      // chunked-timeline byte budget is exhausted: build uncached. The
      // results are identical either way — only revisit cost differs.
      overflow = true;
    } else {
      auto& fresh = terms_[key];
      fresh = std::make_shared<TermEntry>();
      entry = fresh;
      timeline_bytes_ += timeline_bytes;
    }
  }
  std::shared_ptr<const PhaseResult> term;
  if (overflow) {
    builds_.fetch_add(1, std::memory_order_relaxed);
    try {
      term = build();
    } catch (const Error&) {
      term = nullptr;
    }
  } else {
    call_once_caching(entry->once, entry->error, [&] {
      builds_.fetch_add(1, std::memory_order_relaxed);
      try {
        entry->result = build();
      } catch (const Error&) {
        // Leave result null: the config is infeasible (engine validate
        // threw), cached so revisits fail without re-simulating. Exactly
        // the candidates on which the scalar oracle throws. Anything else
        // (bad_alloc, logic bugs) is memoized by call_once_caching and
        // rethrown to every caller.
      }
    });
    term = entry->result;
  }
  slot.key = key;
  slot.term = term;
  slot.valid = true;
  return term;
}

std::size_t TermStore::size() const {
  const std::scoped_lock lock(mutex_);
  return terms_.size();
}

std::size_t TermStore::timeline_bytes() const {
  const std::scoped_lock lock(mutex_);
  return timeline_bytes_;
}

bool EvalPlan::derive(const DataflowDescriptor& df, TermSpecs* ts) const {
  // Precheck: exactly the throws Omega::run_impl performs before the
  // engines run (descriptor validity, substrate capability, PP sanity,
  // positive dims). Any failure means the scalar oracle throws -> ok=false.
  ts->feasible = false;
  if (!dims_ok_) return false;
  if (df.validation_error().has_value()) return false;
  const HardwareRequirements req = hardware_requirements(df);
  if (req.needs_spatial_reduction && !hw_.supports_spatial_reduction) {
    return false;
  }
  if (req.needs_temporal_reduction && !hw_.supports_temporal_reduction) {
    return false;
  }
  const bool pp = df.inter == InterPhase::kParallelPipeline;
  if (pp) {
    if (!(df.pp_agg_pe_fraction > 0.0 && df.pp_agg_pe_fraction < 1.0)) {
      return false;
    }
    if (hw_.num_pes < 2) return false;
  }
  const bool ac = df.phase_order == PhaseOrder::kAC;

  // PE / bandwidth split. Replicates two_phase_pipeline's llround-then-
  // clamp on the Aggregation share, then run_pipeline_impl's re-derivation
  // through pe_fractions, double-for-double — the round trip must stay
  // bit-exact or a PP candidate drifts by one PE against the oracle.
  std::size_t pes0 = hw_.num_pes;
  std::size_t pes1 = hw_.num_pes;
  std::size_t bwd0 = hw_.distribution_bandwidth;
  std::size_t bwd1 = hw_.distribution_bandwidth;
  std::size_t bwr0 = hw_.reduction_bandwidth;
  std::size_t bwr1 = hw_.reduction_bandwidth;
  if (pp) {
    const std::size_t pes_agg = std::clamp<std::size_t>(
        static_cast<std::size_t>(
            std::llround(static_cast<double>(hw_.num_pes) *
                         df.pp_agg_pe_fraction)),
        1, hw_.num_pes - 1);
    const std::size_t first_pes = ac ? pes_agg : hw_.num_pes - pes_agg;
    const double first_frac =
        static_cast<double>(first_pes) / static_cast<double>(hw_.num_pes);
    const double second_frac = 1.0 - first_frac;
    const double share = first_frac / (first_frac + second_frac);
    if (!(share > 0.0 && share < 1.0)) return false;
    pes0 = std::clamp<std::size_t>(
        static_cast<std::size_t>(
            std::llround(static_cast<double>(hw_.num_pes) * share)),
        1, hw_.num_pes - 1);
    pes1 = hw_.num_pes - pes0;
    bwd0 = scaled_bandwidth(hw_.distribution_bandwidth, pes0, hw_.num_pes);
    bwd1 = scaled_bandwidth(hw_.distribution_bandwidth, pes1, hw_.num_pes);
    bwr0 = scaled_bandwidth(hw_.reduction_bandwidth, pes0, hw_.num_pes);
    bwr1 = scaled_bandwidth(hw_.reduction_bandwidth, pes1, hw_.num_pes);
  }

  // Feature widths along the two-phase chain: the sparse-dense phase
  // preserves its input width, the dense phase emits G.
  const std::size_t in0 = f_;
  const std::size_t out0 = ac ? f_ : g_;
  const std::size_t in1 = out0;

  // Boundary plan (Table III): the intermediate is V x out0.
  const std::size_t rows = v_;
  const std::size_t cols = out0;
  Granularity gran = Granularity::kNone;
  ChunkSpec grid = ChunkSpec::whole(rows, cols);
  std::size_t pel = 0;
  if (df.inter != InterPhase::kSequential &&
      df.inter != InterPhase::kSPOptimized) {
    const HandoffRole prod_role =
        ac ? HandoffRole{df.agg.order, Dim::kV, Dim::kF, Dim::kN}
           : HandoffRole{df.cmb.order, Dim::kV, Dim::kG, Dim::kF};
    const HandoffRole cons_role =
        ac ? HandoffRole{df.cmb.order, Dim::kV, Dim::kF, Dim::kG}
           : HandoffRole{df.agg.order, Dim::kN, Dim::kF, Dim::kV};
    const PipelineAnalysis analysis = analyze_handoff(prod_role, cons_role);
    if (!analysis.feasible) return false;  // oracle: OMEGA_CHECK throw
    gran = analysis.granularity;
    grid.major = analysis.major;
    const TileSizes& prod_tiles = ac ? df.agg.tiles : df.cmb.tiles;
    const TileSizes& cons_tiles = ac ? df.cmb.tiles : df.agg.tiles;
    const std::size_t t_row =
        std::min(std::max(prod_tiles.get(prod_role.row),
                          cons_tiles.get(cons_role.row)),
                 rows);
    const std::size_t t_col =
        std::min(std::max(prod_tiles.get(prod_role.col),
                          cons_tiles.get(cons_role.col)),
                 cols);
    switch (gran) {
      case Granularity::kElement:
        grid.row_block = t_row;
        grid.col_block = t_col;
        pel = t_row * t_col;
        break;
      case Granularity::kRow:
        grid.row_block = t_row;
        pel = t_row * cols;
        break;
      case Granularity::kColumn:
        grid.col_block = t_col;
        pel = rows * t_col;
        break;
      case Granularity::kNone:
        break;
    }
  }
  std::size_t buffer_elements = 0;
  switch (df.inter) {
    case InterPhase::kSequential: buffer_elements = rows * cols; break;
    case InterPhase::kSPGeneric: buffer_elements = pel; break;
    case InterPhase::kSPOptimized: buffer_elements = 0; break;
    case InterPhase::kParallelPipeline: buffer_elements = 2 * pel; break;
  }
  const std::uint64_t int_bytes =
      sat_mul_u64(sat_mul_u64(rows, cols), hw_.element_bytes);
  const bool spilled =
      df.inter == InterPhase::kSequential && int_bytes > hw_.gb_bytes;
  const bool chunked = chunked_inter(df.inter);
  const bool spo = df.inter == InterPhase::kSPOptimized;

  // Engine configs — phase 0 produces the intermediate, phase 1 consumes
  // it; the boundary-derived flag sets mirror run_pipeline_impl exactly.
  SpmmPhaseConfig& sp = ts->spmm;
  sp = SpmmPhaseConfig{};
  sp.graph = graph_;
  sp.context = context_;
  sp.order = df.agg.order;
  sp.tiles = df.agg.tiles;
  sp.rf_elements = hw_.rf_elements_per_pe();
  GemmPhaseConfig& ge = ts->gemm;
  ge = GemmPhaseConfig{};
  ge.context = context_;
  ge.rows = v_;
  ge.order = df.cmb.order;
  ge.tiles = df.cmb.tiles;
  ge.rf_elements = hw_.rf_elements_per_pe();

  if (ac) {
    sp.feat = in0;
    sp.pes = pes0;
    sp.bw_dist = bwd0;
    sp.bw_red = bwr0;
    sp.b_category = TrafficCategory::kInput;
    sp.out_category = TrafficCategory::kIntermediate;
    sp.out_to_rf = spo;
    sp.out_in_dram = spilled;
    sp.out_drain_bw = spilled ? hw_.dram_bandwidth : 0;
    sp.out_via_partition = pp;
    if (chunked) {
      sp.chunks = grid;
      sp.chunk_target = ChunkTarget::kMatrixOut;
    }
    ge.inner = in1;
    ge.cols = g_;
    ge.pes = pes1;
    ge.bw_dist = bwd1;
    ge.bw_red = bwr1;
    ge.a_category = TrafficCategory::kIntermediate;
    ge.out_category = TrafficCategory::kOutput;
    ge.a_from_rf = spo;
    ge.a_in_dram = spilled;
    ge.a_stream_bw = spilled ? hw_.dram_bandwidth : 0;
    ge.a_via_partition = pp;
    if (chunked) {
      ge.chunks = grid;
      ge.chunk_target = ChunkTarget::kMatrixA;
    }
  } else {
    ge.inner = in0;
    ge.cols = out0;
    ge.pes = pes0;
    ge.bw_dist = bwd0;
    ge.bw_red = bwr0;
    ge.a_category = TrafficCategory::kInput;
    ge.out_category = TrafficCategory::kIntermediate;
    ge.out_to_rf = spo;
    ge.out_in_dram = spilled;
    ge.out_drain_bw = spilled ? hw_.dram_bandwidth : 0;
    ge.out_via_partition = pp;
    if (chunked) {
      ge.chunks = grid;
      ge.chunk_target = ChunkTarget::kMatrixOut;
    }
    sp.feat = in1;
    sp.pes = pes1;
    sp.bw_dist = bwd1;
    sp.bw_red = bwr1;
    sp.b_category = TrafficCategory::kIntermediate;
    sp.out_category = TrafficCategory::kOutput;
    sp.b_from_rf = spo;
    sp.b_in_dram = spilled;
    sp.b_stream_bw = spilled ? hw_.dram_bandwidth : 0;
    sp.b_via_partition = pp;
    if (chunked) {
      sp.chunks = grid;
      sp.chunk_target = ChunkTarget::kMatrixA;
    }
  }

  ts->feasible = true;
  ts->pp = pp;
  ts->spmm_first = ac;
  ts->partition_bytes = pp ? buffer_elements * hw_.element_bytes : 0;
  return true;
}

std::shared_ptr<const PhaseResult> EvalPlan::resolve_spmm(
    const SpmmPhaseConfig& cfg, DeltaState& state) const {
  return store_.resolve(
      key_of(cfg), state.slots[0], [&] { return run_spmm_phase_shared(cfg); },
      term_timeline_footprint(cfg.chunk_target, cfg.chunks), state.delta_hits);
}

std::shared_ptr<const PhaseResult> EvalPlan::resolve_gemm(
    const GemmPhaseConfig& cfg, DeltaState& state) const {
  return store_.resolve(
      key_of(cfg), state.slots[1], [&] { return run_gemm_phase_shared(cfg); },
      term_timeline_footprint(cfg.chunk_target, cfg.chunks), state.delta_hits);
}

EvalOutcome EvalPlan::compose(const TermSpecs& ts, const PhaseResult& first,
                              const PhaseResult& second,
                              const EnergyModel& em) {
  EvalOutcome out;
  out.cycles =
      ts.pp ? compose_parallel_pipeline(first.chunk_completion,
                                        second.chunk_cycles)
            : sat_add_u64(first.cycles, second.cycles);
  TrafficCounters traffic = first.traffic;
  traffic += second.traffic;
  const EnergyBreakdown e = compute_energy(traffic, em, ts.partition_bytes);
  out.on_chip_pj = e.on_chip_pj();
  out.ok = true;
  return out;
}

EvalOutcome EvalPlan::evaluate_one(const DataflowDescriptor& df,
                                   DeltaState& state) const {
  TermSpecs ts;
  if (!derive(df, &ts)) return EvalOutcome{};
  // Execution order matters twice: the PP composition consumes (producer,
  // consumer) in order, and the first phase's terms must resolve first so
  // an infeasible first phase skips the second — the same build set the
  // scalar oracle touches before throwing.
  const std::shared_ptr<const PhaseResult> first =
      ts.spmm_first ? resolve_spmm(ts.spmm, state)
                    : resolve_gemm(ts.gemm, state);
  if (first == nullptr) return EvalOutcome{};
  const std::shared_ptr<const PhaseResult> second =
      ts.spmm_first ? resolve_gemm(ts.gemm, state)
                    : resolve_spmm(ts.spmm, state);
  if (second == nullptr) return EvalOutcome{};
  return compose(ts, *first, *second, em_);
}

void EvalPlan::evaluate_batch(std::span<const DataflowDescriptor* const> dfs,
                              EvalOutcome* out, DeltaState& state) const {
  const std::size_t n = dfs.size();
  if (state.scratch == nullptr) {
    state.scratch = std::make_shared<DeltaState::Scratch>();
  }
  DeltaState::Scratch& s = *state.scratch;
  s.specs.resize(n);
  s.first.assign(n, nullptr);
  s.second.assign(n, nullptr);

  // Pass 1 (derive, SoA): precheck + PE split + boundary plan + both engine
  // configs per candidate, no simulation.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = EvalOutcome{};
    (void)derive(*dfs[i], &s.specs[i]);
  }
  // Pass 2 (resolve): term lookups over the block. Consecutive candidates
  // that share a phase hit the delta slots without hashing; the two terms
  // of one candidate resolve back-to-back so the first phase's
  // infeasibility still skips the second.
  for (std::size_t i = 0; i < n; ++i) {
    const TermSpecs& ts = s.specs[i];
    if (!ts.feasible) continue;
    s.first[i] = ts.spmm_first ? resolve_spmm(ts.spmm, state)
                               : resolve_gemm(ts.gemm, state);
    if (s.first[i] == nullptr) continue;
    s.second[i] = ts.spmm_first ? resolve_gemm(ts.gemm, state)
                                : resolve_spmm(ts.spmm, state);
  }
  // Pass 3 (compose): tight loop over the resolved arrays.
  for (std::size_t i = 0; i < n; ++i) {
    if (s.first[i] == nullptr || s.second[i] == nullptr) continue;
    out[i] = compose(s.specs[i], *s.first[i], *s.second[i], em_);
  }
}

// SoA batch scratch for N-phase evaluation: flat row-major arrays, one row
// of phase_count() entries per candidate of the block.
struct PipelineDeltaState::Scratch {
  std::vector<PipelineEvalPlan::PhaseTerm> terms;
  std::vector<std::shared_ptr<const PhaseResult>> results;
  std::vector<PipelineEvalPlan::CandidateMeta> meta;
};

std::shared_ptr<const PipelineEvalPlan> PipelineEvalPlan::obtain(
    const Omega& omega, const GnnWorkload& workload,
    const PipelineChainSpec& chain, const WorkloadContext& context) {
  OMEGA_CHECK(&context.graph() == &workload.adjacency,
              "WorkloadContext is bound to a different graph");
  const AcceleratorConfig& hw = omega.config();
  const EnergyModel& em = omega.energy_model();
  const std::size_t f =
      chain.in_features > 0 ? chain.in_features : workload.in_features;

  // Everything the plan depends on besides the graph (which is the
  // context's own): substrate dims/flags, energy coefficients (hex floats —
  // exact round trip), the resolved first-phase width, and the chain shape.
  // Phase names are excluded — they never affect costs.
  char head[512];
  std::snprintf(head, sizeof(head),
                "pplan|%zu|%zu|%zu|%zu|%zu|%zu|%zu|%zu|%d|%d|%a|%a|%a|%zu|%zu",
                hw.num_pes, hw.rf_bytes_per_pe, hw.gb_bytes, hw.gb_bank_bytes,
                hw.distribution_bandwidth, hw.reduction_bandwidth,
                hw.dram_bandwidth, hw.element_bytes,
                hw.supports_spatial_reduction ? 1 : 0,
                hw.supports_temporal_reduction ? 1 : 0, em.gb_access_pj,
                em.rf_access_pj, em.dram_access_pj, em.reference_bank_bytes, f);
  std::string sig = head;
  for (const PhaseChainSpec& p : chain.phases) {
    char pb[96];
    std::snprintf(pb, sizeof(pb), "|%d:%zu:%a", static_cast<int>(p.engine),
                  p.out_features, p.weight_density);
    sig += pb;
  }

  std::shared_ptr<EvalPlanBase> base =
      context.eval_plan(sig, [&]() -> std::shared_ptr<EvalPlanBase> {
        auto plan = std::shared_ptr<PipelineEvalPlan>(new PipelineEvalPlan());
        plan->graph_ = &workload.adjacency;
        plan->context_ = &context;
        plan->hw_ = hw;
        plan->em_ = em;
        plan->v_ = workload.num_vertices();
        plan->chain_ok_ =
            !chain.chain_error().has_value() && plan->v_ >= 1 && f >= 1;
        if (plan->chain_ok_) {
          // Chain-fixed facts: the width chain and, for sparse-weight
          // phases, the W^T CSR built ONCE here instead of once per
          // candidate as in run_pipeline (chain_error already pinned
          // out_features >= 1 and density in (0, 1], so this cannot throw).
          const std::size_t n = chain.phases.size();
          plan->statics_.resize(n);
          std::size_t width = f;
          for (std::size_t i = 0; i < n; ++i) {
            const PhaseChainSpec& p = chain.phases[i];
            PhaseStatic& ps = plan->statics_[i];
            ps.engine = p.engine;
            ps.in_w = width;
            ps.out_w = p.engine == PhaseEngine::kSparseDense ? width
                                                             : p.out_features;
            width = ps.out_w;
            if (p.engine == PhaseEngine::kSparseSparse) {
              ps.graph_tag = 1 + static_cast<std::uint64_t>(i);
              ps.wcsr = std::make_shared<const CSRGraph>(
                  sparse_weight_csr(ps.in_w, ps.out_w, p.weight_density));
            }
          }
        }
        return plan;
      });
  return std::static_pointer_cast<const PipelineEvalPlan>(base);
}

bool PipelineEvalPlan::derive(const PipelineBindingView& b, PhaseTerm* terms,
                              CandidateMeta* meta) const {
  // Precheck: exactly the throws Omega::run_pipeline performs before the
  // engines run (spec validation, substrate capability, PP sanity). Any
  // failure means the oracle throws on the bound spec -> ok == false.
  meta->feasible = false;
  meta->partition_bytes = 0;
  if (!chain_ok_) return false;
  const std::size_t n = statics_.size();
  if (b.phases.size() != n || b.boundaries.size() + 1 != n) return false;
  if (!b.pe_fractions.empty() && b.pe_fractions.size() != n) return false;
  for (const double frac : b.pe_fractions) {
    if (!std::isfinite(frac) || frac <= 0.0) return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const IntraPhaseDataflow& df = b.phases[i];
    const PhaseStatic& ps = statics_[i];
    if (df.phase != taxonomy_phase(ps.engine)) return false;
    try {
      df.validate();
    } catch (const Error&) {
      return false;
    }
    if (ps.engine == PhaseEngine::kSparseSparse &&
        df.order.depth_of(Dim::kG) > df.order.depth_of(Dim::kF)) {
      return false;
    }
    // Substrate capability (Table II NoC/PE support column).
    const Dim contraction =
        ps.engine == PhaseEngine::kSparseDense ? Dim::kN : Dim::kF;
    const bool spatial = df.tiles.get(contraction) > 1;
    if (spatial && !hw_.supports_spatial_reduction) return false;
    if (!spatial && !hw_.supports_temporal_reduction) return false;
  }
  const auto first_share = [&](std::size_t bi) {
    if (b.pe_fractions.size() != n) return 0.5;
    return b.pe_fractions[bi] / (b.pe_fractions[bi] + b.pe_fractions[bi + 1]);
  };
  for (std::size_t bi = 0; bi + 1 < n; ++bi) {
    const InterPhase ip = b.boundaries[bi];
    switch (ip) {
      case InterPhase::kSequential:
        break;
      case InterPhase::kSPOptimized:
        if (!sp_optimized_pair_ok(statics_[bi].engine, b.phases[bi],
                                  statics_[bi + 1].engine, b.phases[bi + 1])) {
          return false;
        }
        break;
      case InterPhase::kSPGeneric:
      case InterPhase::kParallelPipeline: {
        const PipelineAnalysis a = analyze_handoff(
            phase_producer_role(statics_[bi].engine, b.phases[bi].order),
            phase_consumer_role(statics_[bi + 1].engine,
                                b.phases[bi + 1].order));
        if (!a.feasible) return false;
        break;
      }
    }
    if (chunked_inter(ip) &&
        statics_[bi + 1].engine == PhaseEngine::kSparseSparse) {
      return false;
    }
    if (bi > 0 && chunked_inter(b.boundaries[bi - 1]) && chunked_inter(ip)) {
      return false;
    }
    if (ip == InterPhase::kParallelPipeline) {
      if (hw_.num_pes < 2) return false;
      const double share = first_share(bi);
      if (!(share > 0.0 && share < 1.0)) return false;
    }
  }

  // Per-boundary plan (Table III generalized), mirroring run_pipeline_impl
  // field-for-field; each boundary is derived once and handed to both
  // adjacent phases.
  struct BoundaryPlan {
    InterPhase inter = InterPhase::kSequential;
    ChunkSpec grid;
    std::size_t buffer_elements = 0;
    bool chunked = false;
    bool spilled = false;
  };
  const auto plan_boundary = [&](std::size_t bi) {
    BoundaryPlan bp;
    bp.inter = b.boundaries[bi];
    const std::size_t rows = v_;
    const std::size_t cols = statics_[bi].out_w;
    bp.grid = ChunkSpec::whole(rows, cols);
    std::size_t pel = 0;
    if (bp.inter != InterPhase::kSequential &&
        bp.inter != InterPhase::kSPOptimized) {
      const HandoffRole prod_role =
          phase_producer_role(statics_[bi].engine, b.phases[bi].order);
      const HandoffRole cons_role = phase_consumer_role(
          statics_[bi + 1].engine, b.phases[bi + 1].order);
      const PipelineAnalysis a = analyze_handoff(prod_role, cons_role);
      bp.grid.major = a.major;
      const std::size_t t_row =
          std::min(std::max(b.phases[bi].tiles.get(prod_role.row),
                            b.phases[bi + 1].tiles.get(cons_role.row)),
                   rows);
      const std::size_t t_col =
          std::min(std::max(b.phases[bi].tiles.get(prod_role.col),
                            b.phases[bi + 1].tiles.get(cons_role.col)),
                   cols);
      switch (a.granularity) {
        case Granularity::kElement:
          bp.grid.row_block = t_row;
          bp.grid.col_block = t_col;
          pel = t_row * t_col;
          break;
        case Granularity::kRow:
          bp.grid.row_block = t_row;
          pel = t_row * cols;
          break;
        case Granularity::kColumn:
          bp.grid.col_block = t_col;
          pel = rows * t_col;
          break;
        case Granularity::kNone:
          break;
      }
    }
    switch (bp.inter) {
      case InterPhase::kSequential: bp.buffer_elements = rows * cols; break;
      case InterPhase::kSPGeneric: bp.buffer_elements = pel; break;
      case InterPhase::kSPOptimized: bp.buffer_elements = 0; break;
      case InterPhase::kParallelPipeline: bp.buffer_elements = 2 * pel; break;
    }
    bp.chunked = chunked_inter(bp.inter);
    const std::uint64_t int_bytes =
        sat_mul_u64(sat_mul_u64(rows, cols), hw_.element_bytes);
    bp.spilled =
        bp.inter == InterPhase::kSequential && int_bytes > hw_.gb_bytes;
    return bp;
  };

  BoundaryPlan up;
  bool has_up = false;
  for (std::size_t i = 0; i < n; ++i) {
    BoundaryPlan down;
    const bool has_down = i + 1 < n;
    if (has_down) {
      down = plan_boundary(i);
      if (down.inter == InterPhase::kParallelPipeline) {
        meta->partition_bytes = std::max(
            meta->partition_bytes, down.buffer_elements * hw_.element_bytes);
      }
    }

    // PE / bandwidth allocation: the phase's PP pair or the whole array.
    // Validation caps every phase at one chunked boundary, so PP pairs
    // never overlap and at most one side is PP.
    std::size_t pes = hw_.num_pes;
    std::size_t bwd = hw_.distribution_bandwidth;
    std::size_t bwr = hw_.reduction_bandwidth;
    const bool pp_second = has_up && up.inter == InterPhase::kParallelPipeline;
    const bool pp_first =
        has_down && down.inter == InterPhase::kParallelPipeline;
    if (pp_first || pp_second) {
      const std::size_t bi = pp_first ? i : i - 1;
      const std::size_t first = std::clamp<std::size_t>(
          static_cast<std::size_t>(std::llround(
              static_cast<double>(hw_.num_pes) * first_share(bi))),
          1, hw_.num_pes - 1);
      pes = pp_first ? first : hw_.num_pes - first;
      bwd = scaled_bandwidth(hw_.distribution_bandwidth, pes, hw_.num_pes);
      bwr = scaled_bandwidth(hw_.reduction_bandwidth, pes, hw_.num_pes);
    }

    const bool in_from_rf = has_up && up.inter == InterPhase::kSPOptimized;
    const bool in_dram = has_up && up.spilled;
    const bool in_via_partition = pp_second;
    const bool out_to_rf = has_down && down.inter == InterPhase::kSPOptimized;
    const bool out_in_dram = has_down && down.spilled;
    const bool out_via_partition = pp_first;
    const TrafficCategory in_cat =
        has_up ? TrafficCategory::kIntermediate : TrafficCategory::kInput;
    const TrafficCategory out_cat =
        has_down ? TrafficCategory::kIntermediate : TrafficCategory::kOutput;
    const bool up_chunked = has_up && up.chunked;
    const bool down_chunked = has_down && down.chunked;

    const PhaseStatic& ps = statics_[i];
    PhaseTerm& t = terms[i];
    t = PhaseTerm{};
    t.graph_tag = ps.graph_tag;
    switch (ps.engine) {
      case PhaseEngine::kSparseDense: {
        SpmmPhaseConfig& cfg = t.spmm;
        cfg.graph = graph_;
        cfg.context = context_;
        cfg.order = b.phases[i].order;
        cfg.tiles = b.phases[i].tiles;
        cfg.feat = ps.in_w;
        cfg.pes = pes;
        cfg.bw_dist = bwd;
        cfg.bw_red = bwr;
        cfg.rf_elements = hw_.rf_elements_per_pe();
        cfg.b_category = in_cat;
        cfg.b_from_rf = in_from_rf;
        cfg.b_in_dram = in_dram;
        cfg.b_stream_bw = in_dram ? hw_.dram_bandwidth : 0;
        cfg.b_via_partition = in_via_partition;
        cfg.out_category = out_cat;
        cfg.out_to_rf = out_to_rf;
        cfg.out_in_dram = out_in_dram;
        cfg.out_drain_bw = out_in_dram ? hw_.dram_bandwidth : 0;
        cfg.out_via_partition = out_via_partition;
        if (up_chunked) {
          cfg.chunks = up.grid;
          cfg.chunk_target = ChunkTarget::kMatrixA;
        } else if (down_chunked) {
          cfg.chunks = down.grid;
          cfg.chunk_target = ChunkTarget::kMatrixOut;
        }
        break;
      }
      case PhaseEngine::kDenseDense: {
        t.is_gemm = true;
        GemmPhaseConfig& cfg = t.gemm;
        cfg.context = context_;
        cfg.rows = v_;
        cfg.inner = ps.in_w;
        cfg.cols = ps.out_w;
        cfg.order = b.phases[i].order;
        cfg.tiles = b.phases[i].tiles;
        cfg.pes = pes;
        cfg.bw_dist = bwd;
        cfg.bw_red = bwr;
        cfg.rf_elements = hw_.rf_elements_per_pe();
        cfg.a_category = in_cat;
        cfg.a_from_rf = in_from_rf;
        cfg.a_in_dram = in_dram;
        cfg.a_stream_bw = in_dram ? hw_.dram_bandwidth : 0;
        cfg.a_via_partition = in_via_partition;
        cfg.out_category = out_cat;
        cfg.out_to_rf = out_to_rf;
        cfg.out_in_dram = out_in_dram;
        cfg.out_drain_bw = out_in_dram ? hw_.dram_bandwidth : 0;
        cfg.out_via_partition = out_via_partition;
        if (up_chunked) {
          cfg.chunks = up.grid;
          cfg.chunk_target = ChunkTarget::kMatrixA;
        } else if (down_chunked) {
          cfg.chunks = down.grid;
          cfg.chunk_target = ChunkTarget::kMatrixOut;
        }
        break;
      }
      case PhaseEngine::kSparseSparse: {
        // Transposed problem Out^T[G,V] = W^T[G,F] x X^T[F,V] on the
        // plan-owned W^T pattern; loop dims translate G->V, F->N, V->Feat
        // (the vocabulary check above rules out kN).
        SpmmPhaseConfig& cfg = t.spmm;
        cfg.graph = ps.wcsr.get();
        cfg.context = nullptr;  // the workload context is bound to the graph
        const auto translate = [](Dim d) {
          if (d == Dim::kG) return Dim::kV;
          if (d == Dim::kF) return Dim::kN;
          return Dim::kF;
        };
        cfg.order = LoopOrder(translate(b.phases[i].order.at(0)),
                              translate(b.phases[i].order.at(1)),
                              translate(b.phases[i].order.at(2)));
        cfg.tiles.v = b.phases[i].tiles.g;
        cfg.tiles.n = b.phases[i].tiles.f;
        cfg.tiles.f = b.phases[i].tiles.v;
        cfg.feat = v_;
        cfg.pes = pes;
        cfg.bw_dist = bwd;
        cfg.bw_red = bwr;
        cfg.rf_elements = hw_.rf_elements_per_pe();
        cfg.b_category = in_cat;
        cfg.b_from_rf = in_from_rf;
        cfg.b_in_dram = in_dram;
        cfg.b_stream_bw = in_dram ? hw_.dram_bandwidth : 0;
        cfg.b_via_partition = in_via_partition;
        cfg.out_category = out_cat;
        cfg.out_to_rf = out_to_rf;
        cfg.out_in_dram = out_in_dram;
        cfg.out_drain_bw = out_in_dram ? hw_.dram_bandwidth : 0;
        cfg.out_via_partition = out_via_partition;
        // A chunked upstream boundary is rejected above (sparse-weight
        // phases cannot consume chunked intermediates), so only the
        // producer side can stage chunks — through the transposed grid.
        if (down_chunked) {
          cfg.chunks = transpose_chunks(down.grid);
          cfg.chunk_target = ChunkTarget::kMatrixOut;
        }
        break;
      }
    }
    up = down;
    has_up = has_down;
  }
  meta->feasible = true;
  return true;
}

std::shared_ptr<const PhaseResult> PipelineEvalPlan::resolve_phase(
    const PhaseTerm& term, std::size_t phase_idx,
    PipelineDeltaState& state) const {
  if (term.is_gemm) {
    return store_.resolve(
        key_of(term.gemm), state.slots[phase_idx],
        [&] { return run_gemm_phase_shared(term.gemm); },
        term_timeline_footprint(term.gemm.chunk_target, term.gemm.chunks),
        state.delta_hits);
  }
  EvalTermKey key = key_of(term.spmm);
  key.w[19] = term.graph_tag;  // which graph: adjacency vs a phase's W^T
  return store_.resolve(
      key, state.slots[phase_idx],
      [&] { return run_spmm_phase_shared(term.spmm); },
      term_timeline_footprint(term.spmm.chunk_target, term.spmm.chunks),
      state.delta_hits);
}

EvalOutcome PipelineEvalPlan::compose(
    const PipelineBindingView& binding,
    const std::shared_ptr<const PhaseResult>* results,
    std::size_t partition_bytes) const {
  const std::size_t n = statics_.size();
  EvalOutcome out;
  // PP pairs overlap chunk-by-chunk (the consumer starts chunk i once the
  // producer completed it); everything else serializes.
  out.cycles = 0;
  for (std::size_t i = 0; i < n;) {
    if (i + 1 < n && binding.boundaries[i] == InterPhase::kParallelPipeline) {
      out.cycles = sat_add_u64(
          out.cycles, compose_parallel_pipeline(results[i]->chunk_completion,
                                                results[i + 1]->chunk_cycles));
      i += 2;
    } else {
      out.cycles = sat_add_u64(out.cycles, results[i]->cycles);
      i += 1;
    }
  }
  TrafficCounters traffic = results[0]->traffic;
  for (std::size_t i = 1; i < n; ++i) traffic += results[i]->traffic;
  const EnergyBreakdown e = compute_energy(traffic, em_, partition_bytes);
  out.on_chip_pj = e.on_chip_pj();
  out.ok = true;
  return out;
}

void PipelineEvalPlan::ensure_state(PipelineDeltaState& state) const {
  if (state.slots.size() != statics_.size()) {
    state.slots.assign(statics_.size(), DeltaState::Slot{});
  }
  if (state.scratch == nullptr) {
    state.scratch = std::make_shared<PipelineDeltaState::Scratch>();
  }
}

EvalOutcome PipelineEvalPlan::evaluate_one(const PipelineBindingView& binding,
                                           PipelineDeltaState& state) const {
  const std::size_t n = statics_.size();
  ensure_state(state);
  PipelineDeltaState::Scratch& s = *state.scratch;
  s.terms.resize(std::max<std::size_t>(n, 1));
  s.results.assign(std::max<std::size_t>(n, 1), nullptr);
  s.meta.resize(1);
  if (!derive(binding, s.terms.data(), &s.meta[0])) return EvalOutcome{};
  // Terms resolve in execution order so an infeasible phase skips the later
  // builds — the same build set run_pipeline touches before throwing.
  for (std::size_t i = 0; i < n; ++i) {
    s.results[i] = resolve_phase(s.terms[i], i, state);
    if (s.results[i] == nullptr) return EvalOutcome{};
  }
  return compose(binding, s.results.data(), s.meta[0].partition_bytes);
}

void PipelineEvalPlan::evaluate_batch(
    std::span<const PipelineBindingView> bindings, EvalOutcome* out,
    PipelineDeltaState& state) const {
  const std::size_t nb = bindings.size();
  const std::size_t n = statics_.size();
  ensure_state(state);
  PipelineDeltaState::Scratch& s = *state.scratch;
  s.terms.resize(std::max<std::size_t>(nb * n, 1));
  s.results.assign(std::max<std::size_t>(nb * n, 1), nullptr);
  s.meta.resize(std::max<std::size_t>(nb, 1));

  // Pass 1 (derive, SoA): precheck + PE split + boundary plans + N engine
  // configs per candidate, no simulation.
  for (std::size_t i = 0; i < nb; ++i) {
    out[i] = EvalOutcome{};
    (void)derive(bindings[i], s.terms.data() + i * n, &s.meta[i]);
  }
  // Pass 2 (resolve): term lookups over the block. Consecutive candidates
  // that share phase p's config hit delta slot p without hashing; one
  // candidate's terms resolve in execution order so an infeasible phase
  // still skips the later builds.
  for (std::size_t i = 0; i < nb; ++i) {
    if (!s.meta[i].feasible) continue;
    for (std::size_t p = 0; p < n; ++p) {
      s.results[i * n + p] = resolve_phase(s.terms[i * n + p], p, state);
      if (s.results[i * n + p] == nullptr) break;
    }
  }
  // Pass 3 (compose): tight loop over the resolved arrays (a null last
  // phase marks a candidate whose resolve pass short-circuited).
  for (std::size_t i = 0; i < nb; ++i) {
    if (!s.meta[i].feasible || n == 0) continue;
    if (s.results[i * n + n - 1] == nullptr) continue;
    out[i] = compose(bindings[i], s.results.data() + i * n,
                     s.meta[i].partition_bytes);
  }
}

}  // namespace omega
