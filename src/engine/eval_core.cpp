#include "engine/eval_core.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dataflow/descriptor.hpp"
#include "omega/pipeline.hpp"
#include "util/error.hpp"
#include "util/saturate.hpp"

namespace omega {

namespace {

bool chunked_inter(InterPhase ip) {
  return ip == InterPhase::kSPGeneric || ip == InterPhase::kParallelPipeline;
}

std::uint64_t pack_order(const LoopOrder& order) {
  return static_cast<std::uint64_t>(order.at(0)) << 8 |
         static_cast<std::uint64_t>(order.at(1)) << 4 |
         static_cast<std::uint64_t>(order.at(2));
}

std::uint64_t pack_chunk_kind(ChunkTarget target, const ChunkSpec& chunks) {
  return static_cast<std::uint64_t>(target) << 8 |
         static_cast<std::uint64_t>(chunks.major);
}

/// Field->term dependency map, spmm side. Mirrors the spmm engine's string
/// memo key field-for-field (everything that determines the PhaseResult
/// besides the graph, which is plan-invariant); see DESIGN.md "Batched +
/// delta evaluation".
EvalTermKey key_of(const SpmmPhaseConfig& cfg) {
  EvalTermKey k;
  k.w = {1ull,  // engine tag
         pack_order(cfg.order),
         cfg.feat,
         cfg.tiles.v,
         cfg.tiles.n,
         cfg.tiles.f,
         cfg.pes,
         cfg.bw_dist,
         cfg.bw_red,
         cfg.rf_elements,
         cfg.b_stream_bw,
         cfg.out_drain_bw,
         static_cast<std::uint64_t>(cfg.out_to_rf) << 5 |
             static_cast<std::uint64_t>(cfg.b_from_rf) << 4 |
             static_cast<std::uint64_t>(cfg.b_in_dram) << 3 |
             static_cast<std::uint64_t>(cfg.out_in_dram) << 2 |
             static_cast<std::uint64_t>(cfg.b_via_partition) << 1 |
             static_cast<std::uint64_t>(cfg.out_via_partition),
         static_cast<std::uint64_t>(cfg.b_category) << 8 |
             static_cast<std::uint64_t>(cfg.out_category),
         pack_chunk_kind(cfg.chunk_target, cfg.chunks),
         cfg.chunks.rows,
         cfg.chunks.cols,
         cfg.chunks.row_block,
         cfg.chunks.col_block,
         0,
         0,
         0};
  return k;
}

/// Field->term dependency map, gemm side.
EvalTermKey key_of(const GemmPhaseConfig& cfg) {
  EvalTermKey k;
  k.w = {2ull,  // engine tag
         pack_order(cfg.order),
         cfg.rows,
         cfg.inner,
         cfg.cols,
         cfg.tiles.v,
         cfg.tiles.f,
         cfg.tiles.g,
         cfg.pes,
         cfg.bw_dist,
         cfg.bw_red,
         cfg.rf_elements,
         cfg.a_stream_bw,
         cfg.out_drain_bw,
         static_cast<std::uint64_t>(cfg.a_from_rf) << 5 |
             static_cast<std::uint64_t>(cfg.out_to_rf) << 4 |
             static_cast<std::uint64_t>(cfg.a_in_dram) << 3 |
             static_cast<std::uint64_t>(cfg.out_in_dram) << 2 |
             static_cast<std::uint64_t>(cfg.a_via_partition) << 1 |
             static_cast<std::uint64_t>(cfg.out_via_partition),
         static_cast<std::uint64_t>(cfg.a_category) << 16 |
             static_cast<std::uint64_t>(cfg.b_category) << 8 |
             static_cast<std::uint64_t>(cfg.out_category),
         pack_chunk_kind(cfg.chunk_target, cfg.chunks),
         cfg.chunks.rows,
         cfg.chunks.cols,
         cfg.chunks.row_block,
         cfg.chunks.col_block,
         0};
  return k;
}

// Estimated timeline footprint a term would pin in the shared map: zero for
// small grids (admitted unconditionally, matching the legacy engine memo's
// policy), else the two per-chunk u64 vectors a PhaseResult carries.
std::size_t term_timeline_footprint(ChunkTarget target,
                                    const ChunkSpec& chunks) {
  if (target == ChunkTarget::kNone ||
      chunks.num_chunks() <= kPhaseMemoMaxChunks) {
    return 0;
  }
  return chunks.num_chunks() * 2 * sizeof(std::uint64_t);
}

}  // namespace

// SoA batch scratch: parallel arrays, one row per candidate of the block.
struct DeltaState::Scratch {
  std::vector<EvalPlan::TermSpecs> specs;
  std::vector<std::shared_ptr<const PhaseResult>> first;
  std::vector<std::shared_ptr<const PhaseResult>> second;
};

std::shared_ptr<const EvalPlan> EvalPlan::obtain(const Omega& omega,
                                                 const GnnWorkload& workload,
                                                 const LayerSpec& layer,
                                                 const WorkloadContext& context) {
  OMEGA_CHECK(&context.graph() == &workload.adjacency,
              "WorkloadContext is bound to a different graph");
  const AcceleratorConfig& hw = omega.config();
  const EnergyModel& em = omega.energy_model();
  const std::size_t f =
      layer.in_features > 0 ? layer.in_features : workload.in_features;

  // Everything the plan depends on besides the graph (which is the
  // context's own): substrate dims/flags, energy coefficients (hex floats —
  // exact round trip), and the resolved layer shape.
  char sig[512];
  std::snprintf(sig, sizeof(sig),
                "plan|%zu|%zu|%zu|%zu|%zu|%zu|%zu|%zu|%d|%d|%a|%a|%a|%zu|%zu|%zu",
                hw.num_pes, hw.rf_bytes_per_pe, hw.gb_bytes, hw.gb_bank_bytes,
                hw.distribution_bandwidth, hw.reduction_bandwidth,
                hw.dram_bandwidth, hw.element_bytes,
                hw.supports_spatial_reduction ? 1 : 0,
                hw.supports_temporal_reduction ? 1 : 0, em.gb_access_pj,
                em.rf_access_pj, em.dram_access_pj, em.reference_bank_bytes, f,
                layer.out_features);

  std::shared_ptr<EvalPlanBase> base =
      context.eval_plan(sig, [&]() -> std::shared_ptr<EvalPlanBase> {
        auto plan = std::shared_ptr<EvalPlan>(new EvalPlan());
        plan->graph_ = &workload.adjacency;
        plan->context_ = &context;
        plan->hw_ = hw;
        plan->em_ = em;
        plan->v_ = workload.num_vertices();
        plan->f_ = f;
        plan->g_ = layer.out_features;
        plan->dims_ok_ = plan->v_ >= 1 && f >= 1 && layer.out_features >= 1;
        return plan;
      });
  return std::static_pointer_cast<const EvalPlan>(base);
}

std::size_t EvalPlan::term_count() const {
  const std::scoped_lock lock(term_mutex_);
  return terms_.size();
}

bool EvalPlan::derive(const DataflowDescriptor& df, TermSpecs* ts) const {
  // Precheck: exactly the throws Omega::run_impl performs before the
  // engines run (descriptor validity, substrate capability, PP sanity,
  // positive dims). Any failure means the scalar oracle throws -> ok=false.
  ts->feasible = false;
  if (!dims_ok_) return false;
  if (df.validation_error().has_value()) return false;
  const HardwareRequirements req = hardware_requirements(df);
  if (req.needs_spatial_reduction && !hw_.supports_spatial_reduction) {
    return false;
  }
  if (req.needs_temporal_reduction && !hw_.supports_temporal_reduction) {
    return false;
  }
  const bool pp = df.inter == InterPhase::kParallelPipeline;
  if (pp) {
    if (!(df.pp_agg_pe_fraction > 0.0 && df.pp_agg_pe_fraction < 1.0)) {
      return false;
    }
    if (hw_.num_pes < 2) return false;
  }
  const bool ac = df.phase_order == PhaseOrder::kAC;

  // PE / bandwidth split. Replicates two_phase_pipeline's llround-then-
  // clamp on the Aggregation share, then run_pipeline_impl's re-derivation
  // through pe_fractions, double-for-double — the round trip must stay
  // bit-exact or a PP candidate drifts by one PE against the oracle.
  std::size_t pes0 = hw_.num_pes;
  std::size_t pes1 = hw_.num_pes;
  std::size_t bwd0 = hw_.distribution_bandwidth;
  std::size_t bwd1 = hw_.distribution_bandwidth;
  std::size_t bwr0 = hw_.reduction_bandwidth;
  std::size_t bwr1 = hw_.reduction_bandwidth;
  if (pp) {
    const std::size_t pes_agg = std::clamp<std::size_t>(
        static_cast<std::size_t>(
            std::llround(static_cast<double>(hw_.num_pes) *
                         df.pp_agg_pe_fraction)),
        1, hw_.num_pes - 1);
    const std::size_t first_pes = ac ? pes_agg : hw_.num_pes - pes_agg;
    const double first_frac =
        static_cast<double>(first_pes) / static_cast<double>(hw_.num_pes);
    const double second_frac = 1.0 - first_frac;
    const double share = first_frac / (first_frac + second_frac);
    if (!(share > 0.0 && share < 1.0)) return false;
    pes0 = std::clamp<std::size_t>(
        static_cast<std::size_t>(
            std::llround(static_cast<double>(hw_.num_pes) * share)),
        1, hw_.num_pes - 1);
    pes1 = hw_.num_pes - pes0;
    bwd0 = scaled_bandwidth(hw_.distribution_bandwidth, pes0, hw_.num_pes);
    bwd1 = scaled_bandwidth(hw_.distribution_bandwidth, pes1, hw_.num_pes);
    bwr0 = scaled_bandwidth(hw_.reduction_bandwidth, pes0, hw_.num_pes);
    bwr1 = scaled_bandwidth(hw_.reduction_bandwidth, pes1, hw_.num_pes);
  }

  // Feature widths along the two-phase chain: the sparse-dense phase
  // preserves its input width, the dense phase emits G.
  const std::size_t in0 = f_;
  const std::size_t out0 = ac ? f_ : g_;
  const std::size_t in1 = out0;

  // Boundary plan (Table III): the intermediate is V x out0.
  const std::size_t rows = v_;
  const std::size_t cols = out0;
  Granularity gran = Granularity::kNone;
  ChunkSpec grid = ChunkSpec::whole(rows, cols);
  std::size_t pel = 0;
  if (df.inter != InterPhase::kSequential &&
      df.inter != InterPhase::kSPOptimized) {
    const HandoffRole prod_role =
        ac ? HandoffRole{df.agg.order, Dim::kV, Dim::kF, Dim::kN}
           : HandoffRole{df.cmb.order, Dim::kV, Dim::kG, Dim::kF};
    const HandoffRole cons_role =
        ac ? HandoffRole{df.cmb.order, Dim::kV, Dim::kF, Dim::kG}
           : HandoffRole{df.agg.order, Dim::kN, Dim::kF, Dim::kV};
    const PipelineAnalysis analysis = analyze_handoff(prod_role, cons_role);
    if (!analysis.feasible) return false;  // oracle: OMEGA_CHECK throw
    gran = analysis.granularity;
    grid.major = analysis.major;
    const TileSizes& prod_tiles = ac ? df.agg.tiles : df.cmb.tiles;
    const TileSizes& cons_tiles = ac ? df.cmb.tiles : df.agg.tiles;
    const std::size_t t_row =
        std::min(std::max(prod_tiles.get(prod_role.row),
                          cons_tiles.get(cons_role.row)),
                 rows);
    const std::size_t t_col =
        std::min(std::max(prod_tiles.get(prod_role.col),
                          cons_tiles.get(cons_role.col)),
                 cols);
    switch (gran) {
      case Granularity::kElement:
        grid.row_block = t_row;
        grid.col_block = t_col;
        pel = t_row * t_col;
        break;
      case Granularity::kRow:
        grid.row_block = t_row;
        pel = t_row * cols;
        break;
      case Granularity::kColumn:
        grid.col_block = t_col;
        pel = rows * t_col;
        break;
      case Granularity::kNone:
        break;
    }
  }
  std::size_t buffer_elements = 0;
  switch (df.inter) {
    case InterPhase::kSequential: buffer_elements = rows * cols; break;
    case InterPhase::kSPGeneric: buffer_elements = pel; break;
    case InterPhase::kSPOptimized: buffer_elements = 0; break;
    case InterPhase::kParallelPipeline: buffer_elements = 2 * pel; break;
  }
  const std::uint64_t int_bytes =
      sat_mul_u64(sat_mul_u64(rows, cols), hw_.element_bytes);
  const bool spilled =
      df.inter == InterPhase::kSequential && int_bytes > hw_.gb_bytes;
  const bool chunked = chunked_inter(df.inter);
  const bool spo = df.inter == InterPhase::kSPOptimized;

  // Engine configs — phase 0 produces the intermediate, phase 1 consumes
  // it; the boundary-derived flag sets mirror run_pipeline_impl exactly.
  SpmmPhaseConfig& sp = ts->spmm;
  sp = SpmmPhaseConfig{};
  sp.graph = graph_;
  sp.context = context_;
  sp.order = df.agg.order;
  sp.tiles = df.agg.tiles;
  sp.rf_elements = hw_.rf_elements_per_pe();
  GemmPhaseConfig& ge = ts->gemm;
  ge = GemmPhaseConfig{};
  ge.context = context_;
  ge.rows = v_;
  ge.order = df.cmb.order;
  ge.tiles = df.cmb.tiles;
  ge.rf_elements = hw_.rf_elements_per_pe();

  if (ac) {
    sp.feat = in0;
    sp.pes = pes0;
    sp.bw_dist = bwd0;
    sp.bw_red = bwr0;
    sp.b_category = TrafficCategory::kInput;
    sp.out_category = TrafficCategory::kIntermediate;
    sp.out_to_rf = spo;
    sp.out_in_dram = spilled;
    sp.out_drain_bw = spilled ? hw_.dram_bandwidth : 0;
    sp.out_via_partition = pp;
    if (chunked) {
      sp.chunks = grid;
      sp.chunk_target = ChunkTarget::kMatrixOut;
    }
    ge.inner = in1;
    ge.cols = g_;
    ge.pes = pes1;
    ge.bw_dist = bwd1;
    ge.bw_red = bwr1;
    ge.a_category = TrafficCategory::kIntermediate;
    ge.out_category = TrafficCategory::kOutput;
    ge.a_from_rf = spo;
    ge.a_in_dram = spilled;
    ge.a_stream_bw = spilled ? hw_.dram_bandwidth : 0;
    ge.a_via_partition = pp;
    if (chunked) {
      ge.chunks = grid;
      ge.chunk_target = ChunkTarget::kMatrixA;
    }
  } else {
    ge.inner = in0;
    ge.cols = out0;
    ge.pes = pes0;
    ge.bw_dist = bwd0;
    ge.bw_red = bwr0;
    ge.a_category = TrafficCategory::kInput;
    ge.out_category = TrafficCategory::kIntermediate;
    ge.out_to_rf = spo;
    ge.out_in_dram = spilled;
    ge.out_drain_bw = spilled ? hw_.dram_bandwidth : 0;
    ge.out_via_partition = pp;
    if (chunked) {
      ge.chunks = grid;
      ge.chunk_target = ChunkTarget::kMatrixOut;
    }
    sp.feat = in1;
    sp.pes = pes1;
    sp.bw_dist = bwd1;
    sp.bw_red = bwr1;
    sp.b_category = TrafficCategory::kIntermediate;
    sp.out_category = TrafficCategory::kOutput;
    sp.b_from_rf = spo;
    sp.b_in_dram = spilled;
    sp.b_stream_bw = spilled ? hw_.dram_bandwidth : 0;
    sp.b_via_partition = pp;
    if (chunked) {
      sp.chunks = grid;
      sp.chunk_target = ChunkTarget::kMatrixA;
    }
  }

  ts->feasible = true;
  ts->pp = pp;
  ts->spmm_first = ac;
  ts->partition_bytes = pp ? buffer_elements * hw_.element_bytes : 0;
  return true;
}

std::shared_ptr<const PhaseResult> EvalPlan::resolve_term(
    const EvalTermKey& key, std::size_t slot_idx,
    const std::function<std::shared_ptr<const PhaseResult>()>& build,
    std::size_t timeline_bytes, DeltaState& state) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  DeltaState::Slot& slot = state.slots[slot_idx];
  if (slot.valid && slot.key == key) {
    ++state.delta_hits;
    return slot.term;
  }
  std::shared_ptr<TermEntry> entry;
  bool overflow = false;
  {
    const std::scoped_lock lock(term_mutex_);
    const auto it = terms_.find(key);
    if (it != terms_.end()) {
      entry = it->second;
    } else if (terms_.size() >= kPhaseMemoMaxEntries ||
               timeline_bytes_ + timeline_bytes > kTermTimelineBudgetBytes) {
      // Entry ceiling (same policy as the context phase memo) or the
      // chunked-timeline byte budget is exhausted: build uncached. The
      // results are identical either way — only revisit cost differs.
      overflow = true;
    } else {
      auto& fresh = terms_[key];
      fresh = std::make_shared<TermEntry>();
      entry = fresh;
      timeline_bytes_ += timeline_bytes;
    }
  }
  std::shared_ptr<const PhaseResult> term;
  if (overflow) {
    builds_.fetch_add(1, std::memory_order_relaxed);
    try {
      term = build();
    } catch (const Error&) {
      term = nullptr;
    }
  } else {
    std::call_once(entry->once, [&] {
      builds_.fetch_add(1, std::memory_order_relaxed);
      try {
        entry->result = build();
      } catch (const Error&) {
        // Leave result null: the config is infeasible (engine validate
        // threw), cached so revisits fail without re-simulating. Exactly
        // the candidates on which the scalar oracle throws.
      }
    });
    term = entry->result;
  }
  slot.key = key;
  slot.term = term;
  slot.valid = true;
  return term;
}

std::size_t EvalPlan::term_timeline_bytes() const {
  const std::scoped_lock lock(term_mutex_);
  return timeline_bytes_;
}

std::shared_ptr<const PhaseResult> EvalPlan::resolve_spmm(
    const SpmmPhaseConfig& cfg, DeltaState& state) const {
  return resolve_term(
      key_of(cfg), 0, [&] { return run_spmm_phase_shared(cfg); },
      term_timeline_footprint(cfg.chunk_target, cfg.chunks), state);
}

std::shared_ptr<const PhaseResult> EvalPlan::resolve_gemm(
    const GemmPhaseConfig& cfg, DeltaState& state) const {
  return resolve_term(
      key_of(cfg), 1, [&] { return run_gemm_phase_shared(cfg); },
      term_timeline_footprint(cfg.chunk_target, cfg.chunks), state);
}

EvalOutcome EvalPlan::compose(const TermSpecs& ts, const PhaseResult& first,
                              const PhaseResult& second,
                              const EnergyModel& em) {
  EvalOutcome out;
  out.cycles =
      ts.pp ? compose_parallel_pipeline(first.chunk_completion,
                                        second.chunk_cycles)
            : sat_add_u64(first.cycles, second.cycles);
  TrafficCounters traffic = first.traffic;
  traffic += second.traffic;
  const EnergyBreakdown e = compute_energy(traffic, em, ts.partition_bytes);
  out.on_chip_pj = e.on_chip_pj();
  out.ok = true;
  return out;
}

EvalOutcome EvalPlan::evaluate_one(const DataflowDescriptor& df,
                                   DeltaState& state) const {
  TermSpecs ts;
  if (!derive(df, &ts)) return EvalOutcome{};
  // Execution order matters twice: the PP composition consumes (producer,
  // consumer) in order, and the first phase's terms must resolve first so
  // an infeasible first phase skips the second — the same build set the
  // scalar oracle touches before throwing.
  const std::shared_ptr<const PhaseResult> first =
      ts.spmm_first ? resolve_spmm(ts.spmm, state)
                    : resolve_gemm(ts.gemm, state);
  if (first == nullptr) return EvalOutcome{};
  const std::shared_ptr<const PhaseResult> second =
      ts.spmm_first ? resolve_gemm(ts.gemm, state)
                    : resolve_spmm(ts.spmm, state);
  if (second == nullptr) return EvalOutcome{};
  return compose(ts, *first, *second, em_);
}

void EvalPlan::evaluate_batch(std::span<const DataflowDescriptor* const> dfs,
                              EvalOutcome* out, DeltaState& state) const {
  const std::size_t n = dfs.size();
  if (state.scratch == nullptr) {
    state.scratch = std::make_shared<DeltaState::Scratch>();
  }
  DeltaState::Scratch& s = *state.scratch;
  s.specs.resize(n);
  s.first.assign(n, nullptr);
  s.second.assign(n, nullptr);

  // Pass 1 (derive, SoA): precheck + PE split + boundary plan + both engine
  // configs per candidate, no simulation.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = EvalOutcome{};
    (void)derive(*dfs[i], &s.specs[i]);
  }
  // Pass 2 (resolve): term lookups over the block. Consecutive candidates
  // that share a phase hit the delta slots without hashing; the two terms
  // of one candidate resolve back-to-back so the first phase's
  // infeasibility still skips the second.
  for (std::size_t i = 0; i < n; ++i) {
    const TermSpecs& ts = s.specs[i];
    if (!ts.feasible) continue;
    s.first[i] = ts.spmm_first ? resolve_spmm(ts.spmm, state)
                               : resolve_gemm(ts.gemm, state);
    if (s.first[i] == nullptr) continue;
    s.second[i] = ts.spmm_first ? resolve_gemm(ts.gemm, state)
                                : resolve_spmm(ts.spmm, state);
  }
  // Pass 3 (compose): tight loop over the resolved arrays.
  for (std::size_t i = 0; i < n; ++i) {
    if (s.first[i] == nullptr || s.second[i] == nullptr) continue;
    out[i] = compose(s.specs[i], *s.first[i], *s.second[i], em_);
  }
}

}  // namespace omega
