#include "engine/schedule_cache.hpp"

#include <algorithm>

#include "engine/gemm_engine.hpp"  // ceil_div
#include "util/error.hpp"
#include "util/once.hpp"
#include "util/saturate.hpp"

namespace omega {

LaneSchedule build_lane_schedule(const CSRGraph& walk, std::size_t lanes,
                                 std::size_t lane_width) {
  const std::size_t rows = walk.num_vertices();
  lanes = std::max<std::size_t>(lanes, 1);
  lane_width = std::max<std::size_t>(lane_width, 1);
  LaneSchedule s;
  s.row_finish.resize(rows);
  s.row_finish_prefix.resize(rows);
  std::vector<std::uint64_t> lane_cum(lanes, 0);
  std::uint64_t prefix = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t deg = walk.degree(static_cast<VertexId>(r));
    const std::uint64_t trips =
        std::max<std::uint64_t>(1, ceil_div(deg, lane_width));
    auto& cum = lane_cum[r % lanes];
    cum += trips;
    s.row_finish[r] = cum;
    prefix = std::max(prefix, cum);
    s.row_finish_prefix[r] = prefix;
    s.total_steps += trips;
  }
  for (const std::uint64_t c : lane_cum) {
    s.critical_path = std::max(s.critical_path, c);
  }
  return s;
}

WorkloadContext::WorkloadContext(const CSRGraph& adjacency)
    : adjacency_(&adjacency) {}

const CSRGraph& WorkloadContext::reverse_graph() const {
  // Pin the shared transpose for the context's lifetime so repeated lookups
  // are a pointer read even if the source graph's cache is later invalidated.
  call_once_caching(reverse_once_, reverse_error_,
                    [&] { reverse_ = adjacency_->shared_transposed(); });
  return *reverse_;
}

std::shared_ptr<const LaneSchedule> WorkloadContext::lane_schedule(
    bool gather, std::size_t lanes, std::size_t lane_width) const {
  const Key key{gather, lanes, lane_width};
  std::shared_ptr<Entry> entry;
  {
    const std::scoped_lock lock(mutex_);
    auto& slot = schedules_[key];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  call_once_caching(entry->once, entry->error, [&] {
    const CSRGraph& walk = gather ? graph() : reverse_graph();
    entry->schedule = std::make_shared<const LaneSchedule>(
        build_lane_schedule(walk, lanes, lane_width));
  });
  return entry->schedule;
}

std::size_t WorkloadContext::schedule_cache_size() const {
  const std::scoped_lock lock(mutex_);
  return schedules_.size();
}

std::shared_ptr<const PhaseResult> WorkloadContext::phase_result(
    const std::string& key, const std::function<PhaseResult()>& build) const {
  std::shared_ptr<PhaseEntry> entry;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = phase_results_.find(key);
    if (it == phase_results_.end()) {
      // Entry-count ceiling: a long-lived context (the mapping service
      // keeps one per resident workload for the daemon's lifetime) serving
      // requests across many substrates would otherwise accumulate memo
      // entries without bound. Past the ceiling, new configs evaluate
      // uncached — identical results, no growth; existing entries keep
      // hitting.
      if (phase_results_.size() >= kPhaseMemoMaxEntries) {
        ++phase_memo_overflow_;
        entry = nullptr;
      } else {
        auto& slot = phase_results_[key];
        slot = std::make_shared<PhaseEntry>();
        entry = slot;
      }
    } else {
      entry = it->second;
    }
  }
  if (entry == nullptr) {
    return std::make_shared<const PhaseResult>(build());
  }
  // Infeasible configs throw Error out of `build`; call_once_caching
  // memoizes the exception so revisits rethrow without re-running (and
  // without throwing across the pthread_once boundary — see util/once.hpp).
  call_once_caching(entry->once, entry->error, [&] {
    entry->result = std::make_shared<const PhaseResult>(build());
  });
  return entry->result;
}

std::size_t WorkloadContext::phase_cache_size() const {
  const std::scoped_lock lock(mutex_);
  return phase_results_.size();
}

std::size_t WorkloadContext::phase_memo_overflow() const {
  const std::scoped_lock lock(mutex_);
  return phase_memo_overflow_;
}

std::shared_ptr<EvalPlanBase> WorkloadContext::eval_plan(
    const std::string& signature,
    const std::function<std::shared_ptr<EvalPlanBase>()>& build) const {
  std::shared_ptr<PlanEntry> entry;
  {
    const std::scoped_lock lock(mutex_);
    auto& slot = eval_plans_[signature];
    if (!slot) slot = std::make_shared<PlanEntry>();
    entry = slot;
  }
  call_once_caching(entry->once, entry->error, [&] { entry->plan = build(); });
  return entry->plan;
}

std::size_t WorkloadContext::eval_plan_count() const {
  const std::scoped_lock lock(mutex_);
  return eval_plans_.size();
}

ContextEvalStats WorkloadContext::eval_stats() const {
  // Snapshot the plan pointers under the lock, then read their counters
  // outside it (the counters are atomics on the plans themselves).
  std::vector<std::shared_ptr<EvalPlanBase>> plans;
  {
    const std::scoped_lock lock(mutex_);
    plans.reserve(eval_plans_.size());
    // omega-lint: allow(unordered-iter): commutative fold (sums of counters), no emission order
    for (const auto& [sig, entry] : eval_plans_) {
      if (entry != nullptr && entry->plan != nullptr) plans.push_back(entry->plan);
    }
  }
  ContextEvalStats s;
  s.plans = plans.size();
  for (const auto& p : plans) {
    s.terms += p->term_count();
    s.term_requests += p->term_requests();
    s.term_builds += p->term_builds();
    s.term_bytes = sat_add_u64(s.term_bytes, p->term_timeline_bytes());
  }
  return s;
}

}  // namespace omega
