// Functional execution of dataflows: runs the *same* tiled loop structures
// the cost engines time, but carrying real values. Used by the test suite to
// prove that every valid mapping computes exactly the GCN layer the
// reference kernels define (loop order and tiling must not change results
// beyond FP reduction-order noise).
#pragma once

#include "dataflow/descriptor.hpp"
#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace omega {

/// C = A x B evaluated through the given loop order and tile sizes.
[[nodiscard]] MatrixF functional_gemm(const MatrixF& a, const MatrixF& b,
                                      const LoopOrder& order,
                                      const TileSizes& tiles);

/// H = Adj x X evaluated through the given loop order and tile sizes;
/// scatter orders (N outside V) walk the transposed adjacency and push.
[[nodiscard]] MatrixF functional_spmm(const CSRGraph& adj, const MatrixF& x,
                                      const LoopOrder& order,
                                      const TileSizes& tiles);

/// Full GCN layer through a dataflow descriptor:
/// AC: (Adj x X) x W; CA: Adj x (X x W).
[[nodiscard]] MatrixF functional_gcn_layer(const CSRGraph& adj,
                                           const MatrixF& x, const MatrixF& w,
                                           const DataflowDescriptor& df);

}  // namespace omega
