#include "engine/spmm_engine.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/error.hpp"
#include "util/saturate.hpp"

namespace omega {

namespace {

/// Splits `total_cycles` across `chunks` so that partial sums follow the
/// cumulative step profile `cum_steps` (monotone, last == critical path).
/// Exact integer proportioning (128-bit multiply, then divide): chunk
/// timelines are bit-identical across platforms and never drop cycles to
/// floating-point rounding; the final chunk absorbs the division remainder.
std::vector<std::uint64_t> scale_chunks(
    const std::vector<std::uint64_t>& cum_steps, std::uint64_t critical_path,
    std::uint64_t total_cycles) {
  std::vector<std::uint64_t> out(cum_steps.size(), 0);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < cum_steps.size(); ++i) {
    const std::uint64_t cum =
        critical_path == 0
            ? total_cycles
            : static_cast<std::uint64_t>(
                  // omega-lint: allow(raw-arith): exact 128-bit proportioning, quotient <= total_cycles
                  static_cast<unsigned __int128>(cum_steps[i]) * total_cycles /
                  critical_path);
    const std::uint64_t clamped = std::min(cum, total_cycles);
    out[i] = clamped - prev;
    prev = clamped;
  }
  if (!out.empty()) out.back() += total_cycles - prev;
  return out;
}

}  // namespace

namespace {

/// Everything that determines the PhaseResult besides the graph (which is
/// the context's own); see WorkloadContext::phase_result.
std::string memo_key(const SpmmPhaseConfig& cfg) {
  std::string k;
  k.reserve(160);
  k += "spmm|";
  k += cfg.order.letters();
  const auto add = [&k](std::uint64_t v) {
    k += '|';
    k += std::to_string(v);
  };
  add(cfg.feat);
  add(cfg.tiles.v);
  add(cfg.tiles.n);
  add(cfg.tiles.f);
  add(cfg.pes);
  add(cfg.bw_dist);
  add(cfg.bw_red);
  add(cfg.rf_elements);
  add(cfg.b_stream_bw);
  add(cfg.out_drain_bw);
  add(static_cast<std::uint64_t>(cfg.out_to_rf) << 5 |
      static_cast<std::uint64_t>(cfg.b_from_rf) << 4 |
      static_cast<std::uint64_t>(cfg.b_in_dram) << 3 |
      static_cast<std::uint64_t>(cfg.out_in_dram) << 2 |
      static_cast<std::uint64_t>(cfg.b_via_partition) << 1 |
      static_cast<std::uint64_t>(cfg.out_via_partition));
  add(static_cast<std::uint64_t>(cfg.b_category));
  add(static_cast<std::uint64_t>(cfg.out_category));
  add(static_cast<std::uint64_t>(cfg.chunk_target));
  add(cfg.chunks.rows);
  add(cfg.chunks.cols);
  add(cfg.chunks.row_block);
  add(cfg.chunks.col_block);
  add(static_cast<std::uint64_t>(cfg.chunks.major));
  return k;
}

PhaseResult run_spmm_phase_impl(const SpmmPhaseConfig& cfg);

}  // namespace

PhaseResult run_spmm_phase(const SpmmPhaseConfig& cfg) {
  // Checked before the memo lookup: the key carries no graph identity, so a
  // mis-bound context must fail loudly rather than return another graph's
  // cached result.
  OMEGA_CHECK(cfg.context == nullptr || &cfg.context->graph() == cfg.graph,
              "WorkloadContext is bound to a different graph");
  const bool memoizable =
      cfg.chunk_target == ChunkTarget::kNone ||
      cfg.chunks.num_chunks() <= kPhaseMemoMaxChunks;
  if (cfg.context != nullptr && memoizable) {
    return *cfg.context->phase_result(memo_key(cfg),
                                      [&] { return run_spmm_phase_impl(cfg); });
  }
  return run_spmm_phase_impl(cfg);
}

std::shared_ptr<const PhaseResult> run_spmm_phase_shared(
    const SpmmPhaseConfig& cfg) {
  OMEGA_CHECK(cfg.context == nullptr || &cfg.context->graph() == cfg.graph,
              "WorkloadContext is bound to a different graph");
  const bool memoizable =
      cfg.chunk_target == ChunkTarget::kNone ||
      cfg.chunks.num_chunks() <= kPhaseMemoMaxChunks;
  if (cfg.context != nullptr && memoizable) {
    return cfg.context->phase_result(memo_key(cfg),
                                     [&] { return run_spmm_phase_impl(cfg); });
  }
  return std::make_shared<const PhaseResult>(run_spmm_phase_impl(cfg));
}

void SpmmPhaseConfig::validate() const {
  OMEGA_CHECK(graph != nullptr, "SpMM phase needs a graph");
  order.validate(GnnPhase::kAggregation);
  OMEGA_CHECK(feat >= 1, "feature width must be >= 1");
  OMEGA_CHECK(pes >= 1, "phase needs at least one PE");
  OMEGA_CHECK(bw_dist >= 1 && bw_red >= 1, "bandwidth must be >= 1");
  const std::size_t v = graph->num_vertices();
  const std::size_t spatial = std::min(tiles.v, std::max<std::size_t>(v, 1)) *
                              tiles.n * std::min(tiles.f, feat);
  OMEGA_CHECK(spatial <= pes,
              "spatial tile footprint exceeds the PEs allocated to the phase");
}

namespace {

PhaseResult run_spmm_phase_impl(const SpmmPhaseConfig& cfg) {
  cfg.validate();
  const CSRGraph& g = *cfg.graph;
  const std::size_t v_extent = g.num_vertices();
  const std::uint64_t edges = g.num_edges();

  const std::size_t dv = cfg.order.depth_of(Dim::kV);
  const std::size_t dn = cfg.order.depth_of(Dim::kN);
  const std::size_t df = cfg.order.depth_of(Dim::kF);
  const bool gather = dv < dn;  // vertex lanes walk their own rows
  // Scatter orders walk the reverse adjacency and push into outputs.
  const bool f_outside_lanes = gather ? df < dn : df < dv;
  const bool f_outside_rows = gather ? df < dv : df < dn;

  // In gather mode T_V spans walked rows and T_N the in-row lanes; scatter
  // swaps the roles (T_N spans intermediate rows, T_V the push lanes).
  const std::size_t lanes =
      std::min(gather ? std::max<std::size_t>(cfg.tiles.v, 1)
                      : std::max<std::size_t>(cfg.tiles.n, 1),
               std::max<std::size_t>(v_extent, 1));
  const std::size_t lane_width =
      gather ? std::max<std::size_t>(cfg.tiles.n, 1)
             : std::max<std::size_t>(cfg.tiles.v, 1);
  const std::size_t tf = std::min(std::max<std::size_t>(cfg.tiles.f, 1), cfg.feat);
  const std::uint64_t c_f = ceil_div(cfg.feat, tf);

  // Resolve the walked adjacency and its base (c_f == 1) lane schedule —
  // through the per-workload memo when a context is attached, fresh
  // otherwise. Schedule quantities are scaled by c_f at their use sites;
  // the scaling is exact, so both paths produce identical results.
  LaneSchedule local_sched;
  std::shared_ptr<const LaneSchedule> cached_sched;
  std::shared_ptr<const CSRGraph> local_transpose;
  const LaneSchedule* base = nullptr;
  if (cfg.context != nullptr) {
    cached_sched = cfg.context->lane_schedule(gather, lanes, lane_width);
    base = cached_sched.get();
  } else {
    const CSRGraph* walk = &g;
    if (!gather) {
      local_transpose = std::make_shared<const CSRGraph>(g.transposed());
      walk = local_transpose.get();
    }
    local_sched = build_lane_schedule(*walk, lanes, lane_width);
    base = &local_sched;
  }
  const std::uint64_t critical_path = base->critical_path * c_f;
  const std::uint64_t base_total_steps = base->total_steps;  // c_f == 1

  const bool weighted = g.has_values();
  const std::uint64_t id_words = weighted ? 2 : 1;

  const std::size_t b_bw = cfg.b_stream_bw > 0 ? cfg.b_stream_bw : cfg.bw_dist;
  const std::size_t out_bw =
      cfg.out_drain_bw > 0 ? cfg.out_drain_bw : cfg.bw_red;

  PhaseResult r;
  const std::size_t tree_in = gather && lane_width > 1 ? lane_width : 1;
  r.fill_cycles = 2 + static_cast<std::uint64_t>(std::bit_width(tree_in) - 1);
  r.issue_steps = critical_path;
  r.macs = edges * cfg.feat;
  r.active_pe_cycles = r.macs;

  // ---- Traffic (exact totals; see DESIGN.md cost-model semantics) --------

  // B matrix: gather fetches one element per (edge, feature); scatter
  // multicasts each walked row slice once per lane-chunk step.
  std::uint64_t b_elems = 0;
  if (gather) {
    b_elems = edges * cfg.feat;
  } else {
    b_elems = base_total_steps * cfg.feat;  // sum of trips * Feat
  }
  if (cfg.b_from_rf) {
    r.traffic.rf.reads += b_elems;
  } else if (cfg.b_in_dram) {
    r.traffic.dram.reads += b_elems;
    r.traffic.rf.writes += b_elems;
  } else if (cfg.b_via_partition) {
    r.traffic.intermediate_partition.reads += b_elems;
    r.traffic.rf.writes += b_elems;
  } else {
    r.traffic.gb_for(cfg.b_category).reads += b_elems;
    r.traffic.rf.writes += b_elems;
  }

  // CSR metadata: edge ids (+ values) per row walk; rewalked per feature
  // tile when the F loop encloses the lane loop. Row pointers per walk.
  const std::uint64_t id_elems =
      edges * id_words * (f_outside_lanes ? c_f : 1);
  const std::uint64_t ptr_elems =
      static_cast<std::uint64_t>(v_extent) * (f_outside_rows ? c_f : 1);
  r.traffic.gb_for(TrafficCategory::kAdjacency).reads += id_elems + ptr_elems;

  // Outputs.
  const std::uint64_t out_total =
      static_cast<std::uint64_t>(v_extent) * cfg.feat;
  std::uint64_t psum_pairs = 0;  // spill+reload pairs (elements)
  std::uint64_t scatter_rmw = 0;
  if (gather) {
    // RF-resident partial sums: with F inside the lane loop (VNF) each lane
    // must keep the whole feature row live between neighbor chunks.
    const std::uint64_t covered_f = f_outside_lanes ? tf : cfg.feat;
    const std::uint64_t live_per_pe =
        ceil_div(covered_f, static_cast<std::uint64_t>(lane_width) * tf);
    const bool psums_fit =
        live_per_pe <= std::max<std::size_t>(cfg.rf_elements / 2, 1);
    if (!f_outside_lanes && !psums_fit) {
      // One spill+reload per non-final neighbor chunk per feature element.
      psum_pairs =
          (base_total_steps - static_cast<std::uint64_t>(v_extent)) * cfg.feat;
      r.traffic.gb_for(TrafficCategory::kPsum).writes += psum_pairs;
      r.traffic.gb_for(TrafficCategory::kPsum).reads += psum_pairs;
      r.traffic.rf.reads += psum_pairs;
      r.traffic.rf.writes += psum_pairs;
    }
    if (cfg.out_to_rf) {
      r.traffic.rf.writes += out_total;
    } else if (cfg.out_in_dram) {
      r.traffic.dram.writes += out_total;
    } else if (cfg.out_via_partition) {
      r.traffic.intermediate_partition.writes += out_total;
    } else {
      r.traffic.gb_for(cfg.out_category).writes += out_total;
    }
  } else {
    // Scatter accumulation: every (edge, feature) update is a GB
    // read-modify-write except each element's first touch; the final value
    // is the output write.
    scatter_rmw = r.macs > out_total ? r.macs - out_total : 0;
    r.traffic.gb_for(TrafficCategory::kPsum).reads += scatter_rmw;
    r.traffic.gb_for(TrafficCategory::kPsum).writes += scatter_rmw;
    if (cfg.out_in_dram) r.traffic.dram.writes += out_total;
    else if (cfg.out_via_partition)
      r.traffic.intermediate_partition.writes += out_total;
    else r.traffic.gb_for(cfg.out_category).writes += out_total;
  }

  // RF accounting: operand reads + accumulator read-modify-write per MAC.
  r.traffic.rf.reads += sat_mul_u64(3, r.macs);
  r.traffic.rf.writes += r.macs;

  // ---- Cycles: critical path vs throughput bounds -------------------------

  std::uint64_t gb_stream = id_elems + ptr_elems;
  if (!cfg.b_from_rf && !cfg.b_in_dram) gb_stream += b_elems;
  std::uint64_t red_volume = scatter_rmw * 2;
  if (!gather) red_volume += out_total;
  std::uint64_t drain_volume = gather && !cfg.out_to_rf ? out_total : 0;

  std::uint64_t cycles = critical_path;
  cycles = std::max(cycles, ceil_div(gb_stream, cfg.bw_dist));
  if (cfg.b_in_dram) cycles = std::max(cycles, ceil_div(b_elems, b_bw));
  cycles = std::max(cycles, ceil_div(red_volume, cfg.bw_red));
  if (drain_volume > 0) {
    cycles = std::max(
        cycles, ceil_div(drain_volume, cfg.out_in_dram ? out_bw : cfg.bw_red));
  }
  r.stall_cycles = cycles - critical_path;

  // Partial-sum spills serialize on top of the streaming steady state.
  r.psum_cycles =
      ceil_div(psum_pairs, cfg.bw_red) + ceil_div(psum_pairs, cfg.bw_dist);
  cycles = sat_add_u64(cycles, sat_add_u64(r.psum_cycles, r.fill_cycles));
  r.cycles = cycles;

  // ---- Chunk timeline ------------------------------------------------------

  auto finish = [&]() -> PhaseResult {
    // Lane traversal produces chunks in grid order: completions are the
    // prefix sums of the per-chunk durations.
    r.chunk_completion.resize(r.chunk_cycles.size());
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < r.chunk_cycles.size(); ++i) {
      cum += r.chunk_cycles[i];
      r.chunk_completion[i] = cum;
    }
    return r;
  };

  const std::size_t num_chunks =
      cfg.chunk_target == ChunkTarget::kNone ? 1 : cfg.chunks.num_chunks();
  if (num_chunks <= 1) {
    r.chunk_cycles.assign(1, r.cycles);
    return finish();
  }

  const std::size_t row_blocks = cfg.chunks.row_blocks();
  const std::size_t col_blocks = cfg.chunks.col_blocks();
  if (cfg.chunks.major == TraversalMajor::kColumnMajor || row_blocks == 1) {
    // Column-granular (or single row block): each of the num_chunks passes
    // covers the same rows; durations are uniform.
    std::vector<std::uint64_t> cum(num_chunks);
    for (std::size_t i = 0; i < num_chunks; ++i) {
      cum[i] = critical_path * (i + 1) / num_chunks;
    }
    r.chunk_cycles = scale_chunks(cum, critical_path, r.cycles);
    return finish();
  }

  // Row-major chunks: completion of a row block is the slowest lane's
  // finish over its rows — the schedule's prefix max at the block's last
  // row, O(row_blocks) instead of a rescan of all V rows per candidate.
  // Element granularity splits each row block evenly across its column
  // chunks. Blocks past the last row complete with their predecessor (the
  // prefix max is monotone, so the clamp covers them).
  const std::size_t row_block =
      std::min(cfg.chunks.row_block, std::max<std::size_t>(v_extent, 1));
  std::vector<std::uint64_t> block_cum(row_blocks, 0);
  for (std::size_t b = 0; b < row_blocks && v_extent > 0; ++b) {
    const std::size_t last =
        std::min((b + 1) * row_block, std::size_t{v_extent}) - 1;
    block_cum[b] = base->row_finish_prefix[b + 1 == row_blocks ? v_extent - 1
                                                               : last] *
                   c_f;
  }
  const std::vector<std::uint64_t> block_cycles =
      scale_chunks(block_cum, critical_path, r.cycles);
  // Split each row block's cycles evenly over its column chunks: the first
  // col_blocks - r chunks get q, the rest q + 1 (q, r = divmod), which is
  // exactly the successive floor(rem / remaining) distribution.
  r.chunk_cycles.assign(num_chunks, 0);
  for (std::size_t b = 0; b < row_blocks; ++b) {
    const std::uint64_t q = block_cycles[b] / col_blocks;
    const std::size_t rmd = static_cast<std::size_t>(block_cycles[b] % col_blocks);
    for (std::size_t c = 0; c < col_blocks; ++c) {
      r.chunk_cycles[b * col_blocks + c] = q + (c >= col_blocks - rmd ? 1 : 0);
    }
  }
  return finish();
}

}  // namespace

}  // namespace omega
