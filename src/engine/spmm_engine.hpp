// Sparse-phase (Aggregation) cost engine.
//
// Simulates `Out[V,Feat] = A[V,V] x B[V,Feat]` with A in CSR. The engine
// covers both traversal families of the taxonomy:
//
//  * gather orders (V outside N — VFN, VNF, FVN): each vertex lane walks its
//    own CSR row; spatially mapped vertices advance in lockstep, so a
//    vertex-tile takes max over its rows of ceil(deg/T_N) neighbor steps —
//    this is the load-imbalance / "evil row" effect of Section V-B.
//  * scatter orders (N outside V — NVF, NFV, FNV): intermediate rows are
//    walked in order and pushed to their reverse neighbors (AWB-GCN style,
//    Table II rows 7-9); outputs accumulate via read-modify-write traffic.
//
// Cycle and traffic accounting mirror gemm_engine.hpp.
#pragma once

#include "arch/accelerator.hpp"
#include "dataflow/intra.hpp"
#include "engine/gemm_engine.hpp"  // ChunkTarget, ceil_div
#include "engine/phase_result.hpp"
#include "engine/schedule_cache.hpp"
#include "graph/csr.hpp"

namespace omega {

struct SpmmPhaseConfig {
  const CSRGraph* graph = nullptr;  // adjacency (rows = output vertices)
  std::size_t feat = 1;             // feature width: F for AC, G for CA

  /// Optional per-workload memo (see schedule_cache.hpp): reuses the cached
  /// adjacency transpose and lane schedules across candidates of a sweep.
  /// Must be bound to `graph`; null recomputes both fresh (identical
  /// results, just slower — the parity is covered by schedule_cache_test).
  const WorkloadContext* context = nullptr;

  LoopOrder order;  // permutation of {V, N, F}
  TileSizes tiles;  // t_g ignored

  std::size_t pes = 512;
  std::size_t bw_dist = AcceleratorConfig::kUnbounded;
  std::size_t bw_red = AcceleratorConfig::kUnbounded;
  /// RF capacity per PE in elements; see GemmPhaseConfig::rf_elements.
  std::size_t rf_elements = 16;

  /// SP-Optimized (AC): aggregated outputs stay in the PE register files for
  /// the Combination phase (no GB writes, no drain cycles).
  bool out_to_rf = false;
  /// SP-Optimized (CA): the B matrix (the intermediate produced by
  /// Combination) is read from the PE register files.
  bool b_from_rf = false;

  /// Spill overrides (Seq with an oversized intermediate): B streamed from
  /// DRAM (CA consumer) or Out drained to DRAM (AC producer). 0 = on-chip.
  std::size_t b_stream_bw = 0;
  std::size_t out_drain_bw = 0;
  bool b_in_dram = false;
  bool out_in_dram = false;

  TrafficCategory b_category = TrafficCategory::kInput;
  TrafficCategory out_category = TrafficCategory::kIntermediate;
  bool b_via_partition = false;
  bool out_via_partition = false;

  ChunkSpec chunks;
  /// kMatrixOut: AC producer (chunks over the produced V x F intermediate).
  /// kMatrixA:   CA consumer (chunks over the consumed intermediate, whose
  ///             rows the N loop indexes and whose columns are this phase's
  ///             feature axis).
  ChunkTarget chunk_target = ChunkTarget::kNone;

  void validate() const;
};

[[nodiscard]] PhaseResult run_spmm_phase(const SpmmPhaseConfig& cfg);

/// Shared-entry variant of run_spmm_phase; see run_gemm_phase_shared.
[[nodiscard]] std::shared_ptr<const PhaseResult> run_spmm_phase_shared(
    const SpmmPhaseConfig& cfg);

}  // namespace omega
