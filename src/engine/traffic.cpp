#include "engine/traffic.hpp"

namespace omega {

const char* to_string(TrafficCategory c) {
  switch (c) {
    case TrafficCategory::kAdjacency: return "Adj";
    case TrafficCategory::kInput: return "Inp";
    case TrafficCategory::kWeight: return "Wt";
    case TrafficCategory::kIntermediate: return "Int";
    case TrafficCategory::kOutput: return "Op";
    case TrafficCategory::kPsum: return "Psum";
  }
  return "?";
}

}  // namespace omega
