// Evaluation-reuse layer for design-space sweeps.
//
// Every `search_mappings` candidate used to pay O(V) or O(E) work that is
// identical across thousands of candidates: scatter-order candidates
// re-transposed the CSR adjacency, and every candidate rebuilt the lane
// schedule from the degree profile. A WorkloadContext memoizes both per
// workload so a sweep pays them once:
//
//  * the reverse adjacency comes from CSRGraph::shared_transposed(), cached
//    inside the graph itself and shared by every scatter candidate;
//  * lane schedules are keyed by (walk direction, lanes, lane_width) only —
//    the feature-tile multiplier c_f scales every schedule quantity
//    linearly, so all F-tilings of one (V, N) tiling hit one cache entry
//    (see LaneSchedule);
//  * each schedule stores the prefix max of per-row finish steps, so the
//    row-major pipeline chunk timeline reads one value per row block
//    instead of rescanning all V rows per candidate;
//  * complete PhaseResults are memoized by the engine config signature —
//    the search's agg x cmb tiling cross product re-simulates the same
//    phase config once per partner tiling, so a sweep of C candidates runs
//    far fewer than 2C phase simulations.
//
// All methods are const and thread-safe; one context is shared by every
// thread of a sweep. See DESIGN.md "WorkloadContext caching contract".
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/phase_result.hpp"
#include "graph/csr.hpp"

namespace omega {

/// Phase results with chunk grids beyond this size are evaluated without
/// the memo (see WorkloadContext::phase_result).
inline constexpr std::size_t kPhaseMemoMaxChunks = 2048;

/// Ceiling on distinct phase-result memo entries per context. A sweep's
/// working set stays far below this; the ceiling exists for long-lived
/// contexts (the mapping service pins one per resident workload) that see
/// requests across many substrates — past it, new configs evaluate
/// uncached instead of growing the memo without bound.
inline constexpr std::size_t kPhaseMemoMaxEntries = 65536;

/// Round-robin lane schedule over the walked rows. Spatially mapped rows do
/// NOT advance in lockstep: each lane walks its own rows asynchronously and
/// the phase finishes when the slowest lane drains. A row whose length
/// exceeds its lane's fair share serializes that lane — the paper's "evil
/// row" effect, which is what punishes extremely high T_V on skewed graphs
/// while leaving moderate T_V efficient (Section V-B1).
///
/// Stored for a feature-tile multiplier of 1: a row's work is
/// trips * c_f, and lane cumulative sums are linear in it, so the engine
/// scales critical_path / total_steps / row finishes by c_f at use sites.
/// This is exact (not an approximation): multiplying every summand of a
/// cumulative sum by c_f multiplies every partial sum by c_f.
struct LaneSchedule {
  std::uint64_t critical_path = 0;          // max lane work, in steps
  std::uint64_t total_steps = 0;            // sum of all row steps
  std::vector<std::uint64_t> row_finish;    // per-row completion step
  std::vector<std::uint64_t> row_finish_prefix;  // prefix max of row_finish
};

/// Builds the schedule for `lanes` round-robin lanes of width `lane_width`
/// over the rows of `walk` (forward adjacency for gather orders, reverse
/// adjacency for scatter orders).
[[nodiscard]] LaneSchedule build_lane_schedule(const CSRGraph& walk,
                                               std::size_t lanes,
                                               std::size_t lane_width);

/// Interface the context uses to hold delta-evaluation plans without
/// depending on the DSE layer (engine/eval_core.hpp implements it; the
/// concrete EvalPlan factors a candidate evaluation into phase terms and
/// memoizes them). The counters feed the service `stats` response and the
/// search observability — every one of them is deterministic for a given
/// request sequence (term builds happen once per distinct key, and the set
/// of evaluated candidates is thread-count-invariant).
class EvalPlanBase {
 public:
  virtual ~EvalPlanBase() = default;
  /// Distinct phase terms resident in the plan's term memo.
  [[nodiscard]] virtual std::size_t term_count() const = 0;
  /// Term lookups served (2 per feasible candidate evaluation).
  [[nodiscard]] virtual std::uint64_t term_requests() const = 0;
  /// Term lookups that had to run a phase simulation (memo misses).
  [[nodiscard]] virtual std::uint64_t term_builds() const = 0;
  /// Estimated bytes of chunked-term timelines resident in the plan's term
  /// store. NOT deterministic near the admission budget (which candidate's
  /// timeline wins admission at saturation depends on thread schedule), so
  /// this feeds metrics/CLI output only — never goldened responses.
  [[nodiscard]] virtual std::size_t term_timeline_bytes() const = 0;
};

/// Aggregated per-context plan counters; see WorkloadContext::eval_stats.
struct ContextEvalStats {
  std::uint64_t plans = 0;          // distinct (substrate, layer) plans
  std::uint64_t terms = 0;          // resident terms across all plans
  std::uint64_t term_requests = 0;
  std::uint64_t term_builds = 0;
  /// Sum of term_timeline_bytes; deterministic only below the timeline
  /// admission budget — excluded from goldened stats responses.
  std::uint64_t term_bytes = 0;
};

/// Per-workload memo shared by all candidates of a sweep. Construct once per
/// (graph, sweep) and pass to Omega::run; candidates that share a walk
/// direction and (lanes, lane_width) reuse one schedule, and all scatter
/// candidates share one transpose.
class WorkloadContext {
 public:
  explicit WorkloadContext(const CSRGraph& adjacency);

  [[nodiscard]] const CSRGraph& graph() const noexcept { return *adjacency_; }

  /// Reverse adjacency (lazily computed, cached in the graph itself).
  [[nodiscard]] const CSRGraph& reverse_graph() const;

  /// Memoized schedule for the given walk. `gather` selects the forward
  /// (true) or reverse (false) adjacency.
  [[nodiscard]] std::shared_ptr<const LaneSchedule> lane_schedule(
      bool gather, std::size_t lanes, std::size_t lane_width) const;

  /// Number of distinct schedules built so far (observability / tests).
  [[nodiscard]] std::size_t schedule_cache_size() const;

  /// Memoized full phase simulation. `key` is the engine's config signature
  /// (everything that determines the PhaseResult except the graph, which is
  /// this context's); `build` runs at most once per key. Concurrent misses
  /// on different keys build in parallel; a throwing build memoizes the
  /// exception and rethrows it on every call — same observable Error as the
  /// uncached path (builds are deterministic per key), built only once.
  /// Callers must bypass the memo for results whose chunk grid
  /// exceeds kPhaseMemoMaxChunks: giant grids are near-unique across
  /// candidates, and caching their multi-megabyte timelines trades memory
  /// (gigabytes over a long sweep) for hits that never come.
  [[nodiscard]] std::shared_ptr<const PhaseResult> phase_result(
      const std::string& key, const std::function<PhaseResult()>& build) const;

  /// Number of distinct phase simulations memoized so far.
  [[nodiscard]] std::size_t phase_cache_size() const;

  /// Builds that bypassed the memo because kPhaseMemoMaxEntries was
  /// reached (observability for long-lived service contexts).
  [[nodiscard]] std::size_t phase_memo_overflow() const;

  /// Memoized delta-evaluation plan. `signature` captures everything the
  /// plan depends on besides the graph (substrate + energy model + layer
  /// shape — see EvalPlan::obtain); `build` runs at most once per
  /// signature. Same once-entry discipline as phase_result: concurrent
  /// misses on different signatures build in parallel.
  [[nodiscard]] std::shared_ptr<EvalPlanBase> eval_plan(
      const std::string& signature,
      const std::function<std::shared_ptr<EvalPlanBase>()>& build) const;

  /// Number of distinct plans resident (observability / tests).
  [[nodiscard]] std::size_t eval_plan_count() const;

  /// Counter aggregate over the resident plans (service `stats` response).
  [[nodiscard]] ContextEvalStats eval_stats() const;

 private:
  struct Key {
    bool gather;
    std::size_t lanes;
    std::size_t lane_width;
    [[nodiscard]] bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = k.gather ? 0x9e3779b97f4a7c15ull : 0x2545f4914f6cdd1dull;
      h ^= k.lanes + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= k.lane_width + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return h;
    }
  };
  /// Map values are once-entries so a cache miss builds outside the map
  /// lock: concurrent misses on different keys proceed in parallel, and
  /// concurrent misses on the same key build exactly once.
  struct Entry {
    std::once_flag once;
    std::exception_ptr error;
    std::shared_ptr<const LaneSchedule> schedule;
  };
  struct PhaseEntry {
    std::once_flag once;
    std::exception_ptr error;
    std::shared_ptr<const PhaseResult> result;
  };
  struct PlanEntry {
    std::once_flag once;
    std::exception_ptr error;
    std::shared_ptr<EvalPlanBase> plan;
  };

  const CSRGraph* adjacency_;
  mutable std::shared_ptr<const CSRGraph> reverse_;  // pinned on first use
  mutable std::once_flag reverse_once_;
  mutable std::exception_ptr reverse_error_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> schedules_;
  mutable std::unordered_map<std::string, std::shared_ptr<PhaseEntry>>
      phase_results_;
  mutable std::unordered_map<std::string, std::shared_ptr<PlanEntry>>
      eval_plans_;
  mutable std::size_t phase_memo_overflow_ = 0;  // guarded by mutex_
};

}  // namespace omega
