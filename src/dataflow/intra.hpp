// Intra-phase dataflow descriptor (Section III-A, Fig. 4).
//
// A phase's dataflow is its temporal loop order plus a tile size per
// dimension; T_Dim > 1 means the dimension is unrolled spatially across PEs
// (subscript `s` in the paper's notation), T_Dim == 1 means purely temporal
// (`t`). `VtFsNt` with T_F = 4 therefore reads: loop order V->F->N, four
// features mapped across PEs, neighbors reduced temporally.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "dataflow/dims.hpp"

namespace omega {

/// Temporal loop order, outermost first.
class LoopOrder {
 public:
  LoopOrder() = default;
  LoopOrder(Dim outer, Dim middle, Dim inner);

  /// Parses e.g. "VFN" for Aggregation or "VGF" for Combination.
  static LoopOrder parse(const std::string& letters, GnnPhase phase);

  [[nodiscard]] Dim at(std::size_t depth) const { return dims_[depth]; }
  [[nodiscard]] const std::array<Dim, 3>& dims() const { return dims_; }

  /// Depth (0 = outermost .. 2 = innermost) of dimension `d`;
  /// throws if d is not in the order.
  [[nodiscard]] std::size_t depth_of(Dim d) const;
  [[nodiscard]] bool contains(Dim d) const;

  [[nodiscard]] std::string letters() const;

  /// Checks the order is a permutation of the given phase's dims.
  void validate(GnnPhase phase) const;

  [[nodiscard]] bool operator==(const LoopOrder& o) const {
    return dims_ == o.dims_;
  }

 private:
  std::array<Dim, 3> dims_{Dim::kV, Dim::kN, Dim::kF};
};

/// All six permutations of a phase's dimensions.
[[nodiscard]] std::array<LoopOrder, 6> all_loop_orders(GnnPhase phase);

/// Tile sizes (spatial unrolling degree per dimension). A dimension not used
/// by a phase keeps its default of 1.
struct TileSizes {
  std::size_t v = 1;
  std::size_t n = 1;
  std::size_t f = 1;
  std::size_t g = 1;

  [[nodiscard]] std::size_t get(Dim d) const {
    switch (d) {
      case Dim::kV: return v;
      case Dim::kN: return n;
      case Dim::kF: return f;
      case Dim::kG: return g;
    }
    return 1;
  }
  void set(Dim d, std::size_t value) {
    switch (d) {
      case Dim::kV: v = value; break;
      case Dim::kN: n = value; break;
      case Dim::kF: f = value; break;
      case Dim::kG: g = value; break;
    }
  }
  [[nodiscard]] bool operator==(const TileSizes&) const = default;
};

/// One phase's complete dataflow: order + tiles.
struct IntraPhaseDataflow {
  GnnPhase phase = GnnPhase::kAggregation;
  LoopOrder order;
  TileSizes tiles;

  [[nodiscard]] bool is_spatial(Dim d) const { return tiles.get(d) > 1; }

  /// Product of tile sizes over the phase's dims == PEs statically occupied.
  [[nodiscard]] std::size_t spatial_extent() const;

  /// Paper notation, e.g. "VtFsNt" (subscript from tile size).
  [[nodiscard]] std::string to_string() const;

  /// Parses "VtFsNt"-style strings; tile sizes are set to 1 (t) or 2 (s,
  /// placeholder — the tiler assigns real sizes later). 'x' subscripts are
  /// rejected here; patterns with 'x' live in dataflow/patterns.hpp.
  static IntraPhaseDataflow parse(const std::string& text, GnnPhase phase);

  /// Validates order against the phase and tile sizes >= 1; also checks
  /// unused dims keep tile 1.
  void validate() const;
};

}  // namespace omega
