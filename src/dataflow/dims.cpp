#include "dataflow/dims.hpp"

#include <cctype>

#include "util/error.hpp"

namespace omega {

const char* to_string(GnnPhase p) {
  return p == GnnPhase::kAggregation ? "Aggregation" : "Combination";
}

const char* to_string(PhaseOrder o) { return o == PhaseOrder::kAC ? "AC" : "CA"; }

Dim dim_from_letter(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'V': return Dim::kV;
    case 'N': return Dim::kN;
    case 'F': return Dim::kF;
    case 'G': return Dim::kG;
    default:
      throw InvalidArgumentError(std::string("unknown dimension letter: ") + c);
  }
}

}  // namespace omega
