#include "dataflow/intra.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace omega {

LoopOrder::LoopOrder(Dim outer, Dim middle, Dim inner)
    : dims_{outer, middle, inner} {}

LoopOrder LoopOrder::parse(const std::string& letters, GnnPhase phase) {
  OMEGA_CHECK(letters.size() == 3, "loop order needs exactly three letters");
  LoopOrder order(dim_from_letter(letters[0]), dim_from_letter(letters[1]),
                  dim_from_letter(letters[2]));
  order.validate(phase);
  return order;
}

std::size_t LoopOrder::depth_of(Dim d) const {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i] == d) return i;
  }
  throw InvalidArgumentError(std::string("dimension ") + dim_letter(d) +
                             " not in loop order " + letters());
}

bool LoopOrder::contains(Dim d) const {
  return std::find(dims_.begin(), dims_.end(), d) != dims_.end();
}

std::string LoopOrder::letters() const {
  std::string s;
  for (const Dim d : dims_) s.push_back(dim_letter(d));
  return s;
}

void LoopOrder::validate(GnnPhase phase) const {
  const auto expected = phase_dims(phase);
  for (const Dim d : expected) {
    OMEGA_CHECK(contains(d), "loop order " + letters() + " missing dim for " +
                                 std::string(to_string(phase)));
  }
  // A 3-array containing all three expected dims is necessarily a permutation.
}

std::array<LoopOrder, 6> all_loop_orders(GnnPhase phase) {
  auto d = phase_dims(phase);
  std::sort(d.begin(), d.end());
  std::array<LoopOrder, 6> out;
  std::size_t i = 0;
  do {
    out[i++] = LoopOrder(d[0], d[1], d[2]);
  } while (std::next_permutation(d.begin(), d.end()));
  return out;
}

std::size_t IntraPhaseDataflow::spatial_extent() const {
  std::size_t product = 1;
  for (const Dim d : phase_dims(phase)) product *= tiles.get(d);
  return product;
}

std::string IntraPhaseDataflow::to_string() const {
  std::string s;
  for (const Dim d : order.dims()) {
    s.push_back(dim_letter(d));
    s.push_back(is_spatial(d) ? 's' : 't');
  }
  return s;
}

IntraPhaseDataflow IntraPhaseDataflow::parse(const std::string& text,
                                             GnnPhase phase) {
  OMEGA_CHECK(text.size() == 6,
              "intra-phase dataflow must be six characters, e.g. VtFsNt");
  IntraPhaseDataflow df;
  df.phase = phase;
  std::string letters;
  for (std::size_t i = 0; i < 3; ++i) {
    const char dim_c = text[2 * i];
    const char sub = text[2 * i + 1];
    letters.push_back(dim_c);
    const Dim d = dim_from_letter(dim_c);
    if (sub == 's' || sub == 'S') {
      df.tiles.set(d, 2);  // placeholder spatial degree; tiler refines
    } else if (sub == 't' || sub == 'T') {
      df.tiles.set(d, 1);
    } else {
      throw InvalidArgumentError(
          "subscript must be 's' or 't' (got '" + std::string(1, sub) +
          "'); use DataflowPattern for 'x' wildcards");
    }
  }
  df.order = LoopOrder::parse(letters, phase);
  df.validate();
  return df;
}

void IntraPhaseDataflow::validate() const {
  order.validate(phase);
  OMEGA_CHECK(tiles.v >= 1 && tiles.n >= 1 && tiles.f >= 1 && tiles.g >= 1,
              "tile sizes must be >= 1");
  // Dims outside the phase must stay at 1 so spatial_extent() is meaningful.
  for (const Dim d : {Dim::kV, Dim::kN, Dim::kF, Dim::kG}) {
    if (!dim_in_phase(phase, d)) {
      OMEGA_CHECK(tiles.get(d) == 1,
                  std::string("tile for unused dim ") + dim_letter(d) +
                      " must be 1 in " + to_string());
    }
  }
}

}  // namespace omega
