// Dimension and phase vocabulary of the GNN dataflow taxonomy (Section III).
//
// Aggregation iterates (V, N, F): output vertices, neighbors (the sparse
// contraction), and features. Combination iterates (V, F, G): vertices,
// input features (the dense contraction), and output features. V and F
// appear in both phases, which is why tile sizes are written T_V_AGG /
// T_V_CMB etc. For CA phase order the Aggregation feature axis has extent G
// (the paper: "V×G matrix after Cmb becomes N×F for Agg") — the taxonomy
// labels stay the same, only the bound extent changes.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace omega {

enum class Dim : std::uint8_t { kV = 0, kN = 1, kF = 2, kG = 3 };

enum class GnnPhase : std::uint8_t { kAggregation = 0, kCombination = 1 };

/// Computation order: Aggregation-then-Combination computes (A·X)·W,
/// Combination-then-Aggregation computes A·(X·W).
enum class PhaseOrder : std::uint8_t { kAC = 0, kCA = 1 };

[[nodiscard]] constexpr char dim_letter(Dim d) {
  switch (d) {
    case Dim::kV: return 'V';
    case Dim::kN: return 'N';
    case Dim::kF: return 'F';
    case Dim::kG: return 'G';
  }
  return '?';
}

[[nodiscard]] const char* to_string(GnnPhase p);
[[nodiscard]] const char* to_string(PhaseOrder o);

/// The three loop dimensions of a phase, in canonical (not loop) order.
[[nodiscard]] constexpr std::array<Dim, 3> phase_dims(GnnPhase p) {
  return p == GnnPhase::kAggregation
             ? std::array<Dim, 3>{Dim::kV, Dim::kN, Dim::kF}
             : std::array<Dim, 3>{Dim::kV, Dim::kF, Dim::kG};
}

/// The contraction (reduction) dimension of a phase: N for Aggregation
/// (neighbor sum), F for Combination (input-feature dot product).
[[nodiscard]] constexpr Dim contraction_dim(GnnPhase p) {
  return p == GnnPhase::kAggregation ? Dim::kN : Dim::kF;
}

/// True if `d` is one of the phase's three loop dimensions.
[[nodiscard]] constexpr bool dim_in_phase(GnnPhase p, Dim d) {
  for (const Dim pd : phase_dims(p)) {
    if (pd == d) return true;
  }
  return false;
}

/// Parses 'V'/'N'/'F'/'G' (case-insensitive); throws on anything else.
[[nodiscard]] Dim dim_from_letter(char c);

}  // namespace omega
