// Dataflow *patterns*: descriptors whose per-dimension mapping may still be
// a wildcard (`x` in the paper's tables) and whose tile sizes are not yet
// bound. Table V's nine evaluation configurations are expressed as patterns
// plus a tile-selection style; omega/tiler.hpp binds them to a workload and
// an accelerator to produce concrete DataflowDescriptors.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "dataflow/descriptor.hpp"

namespace omega {

/// Spatial/temporal wildcard per loop position: s, t, or x (either).
enum class MapTag : std::uint8_t { kSpatial = 0, kTemporal = 1, kEither = 2 };

[[nodiscard]] char tag_letter(MapTag t);

struct IntraPhasePattern {
  GnnPhase phase = GnnPhase::kAggregation;
  LoopOrder order;
  std::array<MapTag, 3> tags{MapTag::kEither, MapTag::kEither, MapTag::kEither};

  /// Pattern string like "VxFsNt".
  [[nodiscard]] std::string to_string() const;
  static IntraPhasePattern parse(const std::string& text, GnnPhase phase);

  /// Tag for a dimension (by its position in the loop order).
  [[nodiscard]] MapTag tag_of(Dim d) const;

  /// True if `tiles` respects the pattern: s -> T > 1, t -> T == 1.
  [[nodiscard]] bool matches(const TileSizes& tiles) const;
};

/// Tile-selection style distinguishing the Table V configurations.
enum class TileStyle : std::uint8_t {
  kBalanced = 0,   // split PEs evenly over the spatial dims
  kSpatialN,       // give N a share near the average degree (Seq2/PP2/PP4)
  kHighF,          // SP1: most PEs on F
  kHighV,          // SP2: most PEs on V (but not all)
  kExtremeV,       // SPhighV: all PEs on V
  kLowRows,        // PP1/PP2: small T_V -> fine-grained pipeline rows
  kHighRows,       // PP3/PP4: large T_V_CMB -> coarse pipeline rows
};

[[nodiscard]] const char* to_string(TileStyle s);

/// A named dataflow configuration (one row of Table V).
struct DataflowPattern {
  std::string name;         // "SP2"
  std::string property;     // "Temporal Aggregation & high T_V"
  InterPhase inter = InterPhase::kSequential;
  PhaseOrder phase_order = PhaseOrder::kAC;
  IntraPhasePattern agg;
  IntraPhasePattern cmb;
  TileStyle style = TileStyle::kBalanced;
  double pp_agg_pe_fraction = 0.5;

  /// Taxonomy string, e.g. "PP_AC(VxFxNt, VsGxFx)".
  [[nodiscard]] std::string to_string() const;
};

/// The nine evaluation configurations of Table V (Seq1, Seq2, SP1, SP2,
/// SPhighV, PP1, PP2, PP3, PP4), in paper order.
[[nodiscard]] const std::vector<DataflowPattern>& table5_patterns();

/// Lookup by name (case-insensitive); throws InvalidArgumentError.
[[nodiscard]] const DataflowPattern& pattern_by_name(const std::string& name);

}  // namespace omega
