// Complete GNN dataflow descriptor (Section III-C):
//
//     <Inter><order>(<AggIntra>, <CmbIntra>)
//
// plus the machinery the paper's Table II encodes: which intra-phase loop
// order pairs can be pipelined, at what granularity (element / row / column),
// and which extra constraints SP-Optimized imposes (matched tile sizes,
// temporal reduction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dataflow/intra.hpp"

namespace omega {

/// Inter-phase strategy (Section III-B). SP-Generic stages Pel elements of
/// the intermediate through the global buffer; SP-Optimized keeps them in
/// the PE register files (Table II rows 2-3).
enum class InterPhase : std::uint8_t {
  kSequential = 0,
  kSPGeneric = 1,
  kSPOptimized = 2,
  kParallelPipeline = 3,
};

/// Pipelining granularity of the intermediate matrix (Section IV-D).
enum class Granularity : std::uint8_t {
  kElement = 0,
  kRow = 1,
  kColumn = 2,
  kNone = 3,  // Seq and SP-Optimized do not stage chunks through a buffer
};

[[nodiscard]] const char* to_string(InterPhase ip);
[[nodiscard]] const char* to_string(Granularity g);

/// Traversal major of the intermediate matrix: rows first (V-major for AC)
/// or columns first (F-major for AC). Producer and consumer must agree for
/// pipelined hand-off to be possible.
enum class TraversalMajor : std::uint8_t { kRowMajor = 0, kColumnMajor = 1 };

/// Result of analyzing whether an (Agg, Cmb) loop-order pair can be
/// pipelined, and at which granularity. `feasible == false` comes with a
/// human-readable reason (used in error messages and the Table II bench).
struct PipelineAnalysis {
  bool feasible = false;
  Granularity granularity = Granularity::kNone;
  TraversalMajor major = TraversalMajor::kRowMajor;
  std::string reason;
};

/// Analyzes pipelined hand-off feasibility for a loop-order pair under a
/// phase order, independent of tile sizes (Table II rows 4-9).
[[nodiscard]] PipelineAnalysis analyze_pipeline(const LoopOrder& agg,
                                                const LoopOrder& cmb,
                                                PhaseOrder order);

/// One side of an intermediate hand-off, expressed in the phase's own loop
/// vocabulary: which of its dims index the intermediate's rows and columns,
/// and which is its "third" loop (the contraction for a producer, the
/// streamed/output dim for a consumer). The N-phase pipeline API
/// (omega/pipeline.hpp) derives a HandoffRole per phase and engine kind;
/// the classic two-phase analyze_pipeline() is a wrapper over this.
struct HandoffRole {
  LoopOrder order;
  Dim row = Dim::kV;
  Dim col = Dim::kF;
  Dim third = Dim::kN;
};

/// Generalized Table II feasibility analysis for one adjacent phase pair:
/// each role must complete intermediate units (elements / rows / columns)
/// in a traversal order the other side can consume, and the two traversal
/// majors must agree.
[[nodiscard]] PipelineAnalysis analyze_handoff(const HandoffRole& producer,
                                               const HandoffRole& consumer);

/// The complete dataflow description.
struct DataflowDescriptor {
  InterPhase inter = InterPhase::kSequential;
  PhaseOrder phase_order = PhaseOrder::kAC;
  IntraPhaseDataflow agg;  // phase == kAggregation
  IntraPhaseDataflow cmb;  // phase == kCombination

  /// Fraction of PEs given to Aggregation under PP (Fig. 14's 25-75 /
  /// 50-50 / 75-25 sweeps); ignored by the other inter-phase strategies.
  double pp_agg_pe_fraction = 0.5;

  /// Granularity implied by the loop orders (kNone for Seq / SP-Optimized).
  [[nodiscard]] Granularity granularity() const;

  /// Number of intermediate elements pipelined per step (Pel, Table III),
  /// given the extents of the intermediate matrix. `rows`/`cols` are the
  /// intermediate dims: V x F for AC, V x G for CA.
  [[nodiscard]] std::size_t pipeline_elements(std::size_t rows,
                                              std::size_t cols) const;

  /// Intermediate buffering requirement in elements (Table III):
  /// Seq: rows*cols, SP-Generic: Pel, SP-Optimized: 0, PP: 2*Pel.
  [[nodiscard]] std::size_t intermediate_buffer_elements(
      std::size_t rows, std::size_t cols) const;

  /// Max tile size across phases for the intermediate row dimension
  /// (T_Vmax in the paper; for CA the consumer side indexes rows by N).
  [[nodiscard]] std::size_t t_row_max() const;
  /// Max tile size across phases for the intermediate column dimension
  /// (T_Fmax for AC; T_G/T_F_AGG for CA).
  [[nodiscard]] std::size_t t_col_max() const;

  /// Paper notation, e.g. "PP_AC(VtFsNt, VsGsFt)".
  [[nodiscard]] std::string to_string() const;

  /// Parses the canonical notation produced by to_string().
  static DataflowDescriptor parse(const std::string& text);

  /// Full Table II validation: intra-phase validity, inter-phase loop-order
  /// feasibility, SP-Optimized tile/reduction constraints, PP fraction.
  /// Throws InvalidDataflowError with a specific message on violation.
  void validate() const;

  /// Like validate() but returns the failure reason instead of throwing.
  [[nodiscard]] std::optional<std::string> validation_error() const;
};

/// Hardware support a dataflow needs (Table II "NoC/PE support" column),
/// used by the flexibility case study (Section V-D).
struct HardwareRequirements {
  bool needs_spatial_reduction = false;   // any contraction dim with T > 1
  bool needs_temporal_reduction = false;  // any contraction dim with T == 1
  bool needs_intermediate_noc = false;    // PP / SP-Generic chunk staging
  bool needs_local_accumulation = false;  // SP-Optimized RF residency
};

[[nodiscard]] HardwareRequirements hardware_requirements(
    const DataflowDescriptor& df);

}  // namespace omega
