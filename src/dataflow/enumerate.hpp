// Design-space enumeration (Table II and the paper's 6,656-choice count).
//
// The paper counts the product of all feasible loop orders, per-dimension
// spatial/temporal choices, and phase orders across the three inter-phase
// strategies: Seq admits every pair (4,608), SP and PP admit only the eight
// pipelineable loop-order pairs per phase order (1,024 each), for a total of
// 6,656. SP-Optimized is a tile-binding refinement of SP (Table II row 2)
// and is not counted separately.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dataflow/descriptor.hpp"

namespace omega {

/// One enumerated point: loop orders plus binary spatial/temporal choices
/// (tile sizes are represented as 1 or 2, matching the taxonomy's s/t view).
struct EnumeratedDataflow {
  InterPhase inter = InterPhase::kSequential;
  PhaseOrder phase_order = PhaseOrder::kAC;
  LoopOrder agg_order;
  LoopOrder cmb_order;
  std::uint8_t agg_spatial_mask = 0;  // bit i -> agg loop depth i is spatial
  std::uint8_t cmb_spatial_mask = 0;
  Granularity granularity = Granularity::kNone;

  [[nodiscard]] DataflowDescriptor to_descriptor() const;
};

struct DesignSpaceCounts {
  std::uint64_t seq = 0;
  std::uint64_t sp = 0;
  std::uint64_t pp = 0;
  std::uint64_t sp_optimized_refinements = 0;  // row-2 tile-bound variants
  // Per-granularity feasible loop-order pair counts (per phase order pair
  // summed over both orders).
  std::uint64_t element_pairs = 0;
  std::uint64_t row_pairs = 0;
  std::uint64_t column_pairs = 0;

  [[nodiscard]] std::uint64_t total() const { return seq + sp + pp; }
};

/// Enumerates the whole taxonomy space; if `visit` is non-null it is called
/// for every valid point (Seq, SP, PP). Returns the counts.
DesignSpaceCounts enumerate_design_space(
    const std::function<void(const EnumeratedDataflow&)>& visit = {});

/// All pipelineable (Agg, Cmb) loop-order pairs for a phase order, with
/// their granularity — Table II rows 4-9 for PP (and row 3 for SP-Generic).
struct FeasiblePair {
  LoopOrder agg;
  LoopOrder cmb;
  Granularity granularity = Granularity::kNone;
};
[[nodiscard]] std::vector<FeasiblePair> feasible_pipeline_pairs(PhaseOrder order);

}  // namespace omega
