#include "dataflow/patterns.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace omega {

char tag_letter(MapTag t) {
  switch (t) {
    case MapTag::kSpatial: return 's';
    case MapTag::kTemporal: return 't';
    case MapTag::kEither: return 'x';
  }
  return '?';
}

const char* to_string(TileStyle s) {
  switch (s) {
    case TileStyle::kBalanced: return "balanced";
    case TileStyle::kSpatialN: return "spatial-N";
    case TileStyle::kHighF: return "high-F";
    case TileStyle::kHighV: return "high-V";
    case TileStyle::kExtremeV: return "extreme-V";
    case TileStyle::kLowRows: return "low-rows";
    case TileStyle::kHighRows: return "high-rows";
  }
  return "?";
}

std::string IntraPhasePattern::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < 3; ++i) {
    s.push_back(dim_letter(order.at(i)));
    s.push_back(tag_letter(tags[i]));
  }
  return s;
}

IntraPhasePattern IntraPhasePattern::parse(const std::string& text,
                                           GnnPhase phase) {
  OMEGA_CHECK(text.size() == 6, "pattern must be six characters, e.g. VxFsNt");
  IntraPhasePattern p;
  p.phase = phase;
  std::string letters;
  for (std::size_t i = 0; i < 3; ++i) {
    letters.push_back(text[2 * i]);
    switch (text[2 * i + 1]) {
      case 's': case 'S': p.tags[i] = MapTag::kSpatial; break;
      case 't': case 'T': p.tags[i] = MapTag::kTemporal; break;
      case 'x': case 'X': p.tags[i] = MapTag::kEither; break;
      default:
        throw InvalidArgumentError("pattern subscript must be s/t/x");
    }
  }
  p.order = LoopOrder::parse(letters, phase);
  return p;
}

MapTag IntraPhasePattern::tag_of(Dim d) const {
  return tags[order.depth_of(d)];
}

bool IntraPhasePattern::matches(const TileSizes& tiles) const {
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t t = tiles.get(order.at(i));
    if (tags[i] == MapTag::kSpatial && t <= 1) return false;
    if (tags[i] == MapTag::kTemporal && t != 1) return false;
  }
  return true;
}

std::string DataflowPattern::to_string() const {
  std::ostringstream os;
  os << omega::to_string(inter) << "_" << omega::to_string(phase_order) << "("
     << agg.to_string() << ", " << cmb.to_string() << ")";
  return os.str();
}

namespace {

DataflowPattern make_pattern(std::string name, std::string property,
                             InterPhase inter, const std::string& agg,
                             const std::string& cmb, TileStyle style) {
  DataflowPattern p;
  p.name = std::move(name);
  p.property = std::move(property);
  p.inter = inter;
  p.phase_order = PhaseOrder::kAC;
  p.agg = IntraPhasePattern::parse(agg, GnnPhase::kAggregation);
  p.cmb = IntraPhasePattern::parse(cmb, GnnPhase::kCombination);
  p.style = style;
  return p;
}

}  // namespace

const std::vector<DataflowPattern>& table5_patterns() {
  // Table V verbatim. SP1/SP2/SPhighV are SP-Optimized instances (their
  // loop-order pairs are exactly the row-2 templates); the paper's G
  // subscript is effectively temporal there, which validate() enforces.
  static const std::vector<DataflowPattern> patterns = {
      make_pattern("Seq1", "Temporal Aggregation (T_N=1)",
                   InterPhase::kSequential, "VxFxNt", "VxGxFx",
                   TileStyle::kBalanced),
      make_pattern("Seq2", "Spatial Aggregation (T_N>1)",
                   InterPhase::kSequential, "VxFxNs", "VxGxFx",
                   TileStyle::kSpatialN),
      make_pattern("SP1", "Temporal Aggregation & high T_F",
                   InterPhase::kSPOptimized, "VxFsNt", "VxFsGt",
                   TileStyle::kHighF),
      make_pattern("SP2", "Temporal Aggregation & high T_V",
                   InterPhase::kSPOptimized, "VsFxNt", "VsFxGt",
                   TileStyle::kHighV),
      make_pattern("SPhighV", "SP dataflow; extremely high T_V",
                   InterPhase::kSPOptimized, "VsFxNt", "VsFxGt",
                   TileStyle::kExtremeV),
      make_pattern("PP1", "Temporal Aggregation & granularity of lower rows",
                   InterPhase::kParallelPipeline, "VxFxNt", "VxGxFx",
                   TileStyle::kLowRows),
      make_pattern("PP2", "Spatial Aggregation & low granularity",
                   InterPhase::kParallelPipeline, "VxFxNs", "VxGxFx",
                   TileStyle::kLowRows),
      make_pattern("PP3", "Temporal Aggregation & high granularity",
                   InterPhase::kParallelPipeline, "VxFxNt", "VsGxFx",
                   TileStyle::kHighRows),
      make_pattern("PP4", "Spatial Aggregation & high granularity",
                   InterPhase::kParallelPipeline, "VxFxNs", "VsGxFx",
                   TileStyle::kHighRows),
  };
  return patterns;
}

const DataflowPattern& pattern_by_name(const std::string& name) {
  const std::string needle = to_lower(name);
  for (const auto& p : table5_patterns()) {
    if (to_lower(p.name) == needle) return p;
  }
  throw InvalidArgumentError("unknown dataflow pattern: " + name);
}

}  // namespace omega
