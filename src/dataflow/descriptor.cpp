#include "dataflow/descriptor.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace omega {

const char* to_string(InterPhase ip) {
  switch (ip) {
    case InterPhase::kSequential: return "Seq";
    case InterPhase::kSPGeneric: return "SPg";
    case InterPhase::kSPOptimized: return "SP";
    case InterPhase::kParallelPipeline: return "PP";
  }
  return "?";
}

const char* to_string(Granularity g) {
  switch (g) {
    case Granularity::kElement: return "element";
    case Granularity::kRow: return "row";
    case Granularity::kColumn: return "column";
    case Granularity::kNone: return "none";
  }
  return "?";
}

namespace {

/// Per-role view of the intermediate matrix: which loop dim indexes its
/// rows, which its columns, and which is the "third" loop (contraction for
/// the producer, the streamed/output dim for the consumer).
struct RoleDims {
  Dim row;
  Dim col;
  Dim third;
};

/// Producer/consumer dim roles per phase order.
/// AC: Agg produces V x F (contraction N); Cmb consumes via (V, F), streams G.
/// CA: Cmb produces V x G (contraction F); Agg consumes rows by N, columns by
///     its F-labelled loop (extent G), scattering into outputs over V.
RoleDims producer_dims(PhaseOrder order) {
  return order == PhaseOrder::kAC ? RoleDims{Dim::kV, Dim::kF, Dim::kN}
                                  : RoleDims{Dim::kV, Dim::kG, Dim::kF};
}
RoleDims consumer_dims(PhaseOrder order) {
  return order == PhaseOrder::kAC ? RoleDims{Dim::kV, Dim::kF, Dim::kG}
                                  : RoleDims{Dim::kN, Dim::kF, Dim::kV};
}

enum class Unit { kElement, kRow, kColumn };

struct RoleAnalysis {
  bool feasible = false;
  Unit unit = Unit::kElement;
  TraversalMajor major = TraversalMajor::kRowMajor;
  std::string reason;
};

RoleDims role_dims(const HandoffRole& role) {
  return RoleDims{role.row, role.col, role.third};
}

/// Shared analysis for both roles: look at where the "third" loop sits.
/// third innermost  -> element-wise hand-off in (outermost-dim)-major order
/// third in middle  -> whole row/column completes (inner dim spans it)
/// third outermost  -> the full intermediate is revisited; not pipelineable
RoleAnalysis analyze_role(const LoopOrder& order, const RoleDims& dims,
                          const char* role_name) {
  RoleAnalysis out;
  const std::size_t third_depth = order.depth_of(dims.third);
  const Dim outer = order.at(0);
  if (third_depth == 2) {
    out.feasible = true;
    out.unit = Unit::kElement;
    out.major = (outer == dims.row) ? TraversalMajor::kRowMajor
                                    : TraversalMajor::kColumnMajor;
    return out;
  }
  if (third_depth == 1) {
    out.feasible = true;
    if (outer == dims.row) {
      out.unit = Unit::kRow;
      out.major = TraversalMajor::kRowMajor;
    } else {
      out.unit = Unit::kColumn;
      out.major = TraversalMajor::kColumnMajor;
    }
    return out;
  }
  out.feasible = false;
  out.reason = std::string(role_name) + " loop order " + order.letters() +
               " places " + dim_letter(dims.third) +
               " outermost: every intermediate element is revisited across "
               "the whole nest, so no chunk ever becomes final/consumable";
  return out;
}

}  // namespace

PipelineAnalysis analyze_pipeline(const LoopOrder& agg, const LoopOrder& cmb,
                                  PhaseOrder order) {
  const LoopOrder& producer_order = order == PhaseOrder::kAC ? agg : cmb;
  const LoopOrder& consumer_order = order == PhaseOrder::kAC ? cmb : agg;
  const RoleDims pd = producer_dims(order);
  const RoleDims cd = consumer_dims(order);
  return analyze_handoff(HandoffRole{producer_order, pd.row, pd.col, pd.third},
                         HandoffRole{consumer_order, cd.row, cd.col, cd.third});
}

PipelineAnalysis analyze_handoff(const HandoffRole& producer,
                                 const HandoffRole& consumer) {
  PipelineAnalysis out;
  const RoleAnalysis prod =
      analyze_role(producer.order, role_dims(producer), "producer");
  if (!prod.feasible) {
    out.reason = prod.reason;
    return out;
  }
  const RoleAnalysis cons =
      analyze_role(consumer.order, role_dims(consumer), "consumer");
  if (!cons.feasible) {
    out.reason = cons.reason;
    return out;
  }
  if (prod.major != cons.major) {
    out.reason = "producer traverses the intermediate " +
                 std::string(prod.major == TraversalMajor::kRowMajor
                                 ? "row-major"
                                 : "column-major") +
                 " but consumer needs it " +
                 (cons.major == TraversalMajor::kRowMajor ? "row-major"
                                                          : "column-major") +
                 "; chunks would be consumed out of production order";
    return out;
  }

  out.feasible = true;
  out.major = prod.major;
  if (prod.unit == Unit::kElement && cons.unit == Unit::kElement) {
    out.granularity = Granularity::kElement;
  } else if (out.major == TraversalMajor::kRowMajor) {
    out.granularity = Granularity::kRow;
  } else {
    out.granularity = Granularity::kColumn;
  }
  return out;
}

Granularity DataflowDescriptor::granularity() const {
  if (inter == InterPhase::kSequential || inter == InterPhase::kSPOptimized) {
    return Granularity::kNone;
  }
  const auto analysis = analyze_pipeline(agg.order, cmb.order, phase_order);
  return analysis.feasible ? analysis.granularity : Granularity::kNone;
}

std::size_t DataflowDescriptor::t_row_max() const {
  // Intermediate rows: produced over V; consumed over V (AC) or N (CA).
  if (phase_order == PhaseOrder::kAC) {
    return std::max(agg.tiles.v, cmb.tiles.v);
  }
  return std::max(cmb.tiles.v, agg.tiles.n);
}

std::size_t DataflowDescriptor::t_col_max() const {
  // Intermediate columns: F for AC (both phases), G/F_agg for CA.
  if (phase_order == PhaseOrder::kAC) {
    return std::max(agg.tiles.f, cmb.tiles.f);
  }
  return std::max(cmb.tiles.g, agg.tiles.f);
}

std::size_t DataflowDescriptor::pipeline_elements(std::size_t rows,
                                                  std::size_t cols) const {
  const std::size_t tr = std::min(t_row_max(), rows);
  const std::size_t tc = std::min(t_col_max(), cols);
  switch (granularity()) {
    case Granularity::kElement: return tr * tc;
    case Granularity::kRow: return tr * cols;
    case Granularity::kColumn: return rows * tc;
    case Granularity::kNone: return 0;
  }
  return 0;
}

std::size_t DataflowDescriptor::intermediate_buffer_elements(
    std::size_t rows, std::size_t cols) const {
  switch (inter) {
    case InterPhase::kSequential: return rows * cols;
    case InterPhase::kSPGeneric: return pipeline_elements(rows, cols);
    case InterPhase::kSPOptimized: return 0;
    case InterPhase::kParallelPipeline:
      return 2 * pipeline_elements(rows, cols);
  }
  return 0;
}

std::string DataflowDescriptor::to_string() const {
  std::ostringstream os;
  os << omega::to_string(inter) << "_" << omega::to_string(phase_order) << "("
     << agg.to_string() << ", " << cmb.to_string() << ")";
  return os.str();
}

DataflowDescriptor DataflowDescriptor::parse(const std::string& text) {
  const auto open = text.find('(');
  const auto comma = text.find(',');
  const auto close = text.find(')');
  OMEGA_CHECK(open != std::string::npos && comma != std::string::npos &&
                  close != std::string::npos && open < comma && comma < close,
              "dataflow must look like PP_AC(VtFsNt, VsGsFt)");
  const std::string head = trim(text.substr(0, open));
  const auto underscore = head.find('_');
  OMEGA_CHECK(underscore != std::string::npos, "missing _AC/_CA phase order");
  const std::string inter_s = head.substr(0, underscore);
  const std::string order_s = head.substr(underscore + 1);

  DataflowDescriptor df;
  if (inter_s == "Seq") df.inter = InterPhase::kSequential;
  else if (inter_s == "SPg") df.inter = InterPhase::kSPGeneric;
  else if (inter_s == "SP") df.inter = InterPhase::kSPOptimized;
  else if (inter_s == "PP") df.inter = InterPhase::kParallelPipeline;
  else throw InvalidDataflowError("unknown inter-phase strategy: " + inter_s);

  if (order_s == "AC") df.phase_order = PhaseOrder::kAC;
  else if (order_s == "CA") df.phase_order = PhaseOrder::kCA;
  else throw InvalidDataflowError("unknown phase order: " + order_s);

  df.agg = IntraPhaseDataflow::parse(trim(text.substr(open + 1, comma - open - 1)),
                                     GnnPhase::kAggregation);
  df.cmb = IntraPhaseDataflow::parse(trim(text.substr(comma + 1, close - comma - 1)),
                                     GnnPhase::kCombination);
  return df;
}

namespace {

std::optional<std::string> sp_optimized_error(const DataflowDescriptor& df) {
  // Table II row 2. The intermediate stays in the PE register files, so the
  // producer's contraction must be temporal (data never leaves the PE), the
  // consumer streams its third dim temporally over the stationary tile, and
  // the shared tile sizes must match between phases.
  if (df.phase_order == PhaseOrder::kAC) {
    const std::string a = df.agg.order.letters();
    const std::string c = df.cmb.order.letters();
    const bool pair_ok = (a == "VFN" && c == "VFG") || (a == "FVN" && c == "FVG");
    if (!pair_ok) {
      return "SP-Optimized (AC) requires loop-order pair (VFN,VFG) or "
             "(FVN,FVG); got (" + a + "," + c + ")";
    }
    if (df.agg.tiles.n != 1) {
      return "SP-Optimized requires temporal reduction in Aggregation "
             "(T_N = 1) so accumulated data stays inside the PEs";
    }
    if (df.cmb.tiles.g != 1) {
      return "SP-Optimized (AC) streams G temporally over the stationary "
             "intermediate (T_G = 1)";
    }
    if (df.agg.tiles.v != df.cmb.tiles.v || df.agg.tiles.f != df.cmb.tiles.f) {
      return "SP-Optimized requires matched tiles: T_V_AGG == T_V_CMB and "
             "T_F_AGG == T_F_CMB (same intermediate data stays in the PEs)";
    }
    return std::nullopt;
  }
  // CA: Combination produces V x G resident in PEs; Aggregation scatters
  // over output vertices with a temporal innermost V loop.
  const std::string a = df.agg.order.letters();
  const std::string c = df.cmb.order.letters();
  const bool pair_ok = (a == "NFV" && c == "VGF") || (a == "FNV" && c == "GVF");
  if (!pair_ok) {
    return "SP-Optimized (CA) requires loop-order pair (NFV,VGF) or "
           "(FNV,GVF); got (" + a + "," + c + ")";
  }
  if (df.cmb.tiles.f != 1) {
    return "SP-Optimized (CA) requires temporal reduction in Combination "
           "(T_F_CMB = 1)";
  }
  if (df.agg.tiles.v != 1) {
    return "SP-Optimized (CA) scatters outputs with a temporal V loop "
           "(T_V_AGG = 1)";
  }
  if (df.agg.tiles.n != df.cmb.tiles.v || df.agg.tiles.f != df.cmb.tiles.g) {
    return "SP-Optimized (CA) requires matched tiles: T_N_AGG == T_V_CMB "
           "and T_F_AGG == T_G";
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> DataflowDescriptor::validation_error() const {
  try {
    agg.validate();
    cmb.validate();
  } catch (const Error& e) {
    return std::string(e.what());
  }
  if (agg.phase != GnnPhase::kAggregation || cmb.phase != GnnPhase::kCombination) {
    return "descriptor phases mislabeled";
  }
  switch (inter) {
    case InterPhase::kSequential:
      return std::nullopt;  // any intra-phase pair runs sequentially
    case InterPhase::kSPOptimized:
      return sp_optimized_error(*this);
    case InterPhase::kSPGeneric:
    case InterPhase::kParallelPipeline: {
      const auto analysis = analyze_pipeline(agg.order, cmb.order, phase_order);
      if (!analysis.feasible) return analysis.reason;
      if (inter == InterPhase::kParallelPipeline &&
          (pp_agg_pe_fraction <= 0.0 || pp_agg_pe_fraction >= 1.0)) {
        return "PP needs 0 < pp_agg_pe_fraction < 1 (both engines need PEs)";
      }
      return std::nullopt;
    }
  }
  return "unknown inter-phase strategy";
}

void DataflowDescriptor::validate() const {
  if (const auto err = validation_error()) {
    throw InvalidDataflowError(to_string() + ": " + *err);
  }
}

HardwareRequirements hardware_requirements(const DataflowDescriptor& df) {
  HardwareRequirements req;
  const bool agg_spatial_n = df.agg.tiles.n > 1;
  const bool cmb_spatial_f = df.cmb.tiles.f > 1;
  req.needs_spatial_reduction = agg_spatial_n || cmb_spatial_f;
  req.needs_temporal_reduction = !agg_spatial_n || !cmb_spatial_f;
  req.needs_intermediate_noc = df.inter == InterPhase::kSPGeneric ||
                               df.inter == InterPhase::kParallelPipeline;
  req.needs_local_accumulation = df.inter == InterPhase::kSPOptimized;
  return req;
}

}  // namespace omega
