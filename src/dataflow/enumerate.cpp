#include "dataflow/enumerate.hpp"

namespace omega {

namespace {

TileSizes tiles_from_mask(const LoopOrder& order, std::uint8_t mask) {
  TileSizes t;
  for (std::size_t i = 0; i < 3; ++i) {
    t.set(order.at(i), (mask >> i) & 1u ? 2 : 1);
  }
  return t;
}

}  // namespace

DataflowDescriptor EnumeratedDataflow::to_descriptor() const {
  DataflowDescriptor df;
  df.inter = inter;
  df.phase_order = phase_order;
  df.agg.phase = GnnPhase::kAggregation;
  df.agg.order = agg_order;
  df.agg.tiles = tiles_from_mask(agg_order, agg_spatial_mask);
  df.cmb.phase = GnnPhase::kCombination;
  df.cmb.order = cmb_order;
  df.cmb.tiles = tiles_from_mask(cmb_order, cmb_spatial_mask);
  return df;
}

std::vector<FeasiblePair> feasible_pipeline_pairs(PhaseOrder order) {
  std::vector<FeasiblePair> out;
  for (const auto& agg : all_loop_orders(GnnPhase::kAggregation)) {
    for (const auto& cmb : all_loop_orders(GnnPhase::kCombination)) {
      const auto analysis = analyze_pipeline(agg, cmb, order);
      if (analysis.feasible) {
        out.push_back({agg, cmb, analysis.granularity});
      }
    }
  }
  return out;
}

DesignSpaceCounts enumerate_design_space(
    const std::function<void(const EnumeratedDataflow&)>& visit) {
  DesignSpaceCounts counts;

  for (const PhaseOrder po : {PhaseOrder::kAC, PhaseOrder::kCA}) {
    // Granularity histogram over feasible pairs (per phase order).
    for (const auto& pair : feasible_pipeline_pairs(po)) {
      switch (pair.granularity) {
        case Granularity::kElement: counts.element_pairs++; break;
        case Granularity::kRow: counts.row_pairs++; break;
        case Granularity::kColumn: counts.column_pairs++; break;
        case Granularity::kNone: break;
      }
    }

    for (const auto& agg : all_loop_orders(GnnPhase::kAggregation)) {
      for (const auto& cmb : all_loop_orders(GnnPhase::kCombination)) {
        const auto analysis = analyze_pipeline(agg, cmb, po);
        for (std::uint8_t am = 0; am < 8; ++am) {
          for (std::uint8_t cm = 0; cm < 8; ++cm) {
            // Seq admits everything.
            {
              EnumeratedDataflow e{InterPhase::kSequential, po, agg, cmb,
                                   am, cm, Granularity::kNone};
              counts.seq++;
              if (visit) visit(e);
            }
            if (!analysis.feasible) continue;
            {
              EnumeratedDataflow e{InterPhase::kSPGeneric, po, agg, cmb, am,
                                   cm, analysis.granularity};
              counts.sp++;
              if (visit) visit(e);
            }
            {
              EnumeratedDataflow e{InterPhase::kParallelPipeline, po, agg,
                                   cmb, am, cm, analysis.granularity};
              counts.pp++;
              if (visit) visit(e);
            }
            // SP-Optimized refinement: same point, intermediate bound to
            // the PE register files. Valid only for the Table II row-2
            // templates; count them without double-charging the total.
            {
              EnumeratedDataflow e{InterPhase::kSPOptimized, po, agg, cmb,
                                   am, cm, Granularity::kNone};
              const DataflowDescriptor df = e.to_descriptor();
              if (!df.validation_error()) counts.sp_optimized_refinements++;
            }
          }
        }
      }
    }
  }
  return counts;
}

}  // namespace omega
