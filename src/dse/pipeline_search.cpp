#include "dse/pipeline_search.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>

#include "dataflow/patterns.hpp"
#include "obs/trace.hpp"
#include "engine/eval_core.hpp"
#include "engine/schedule_cache.hpp"
#include "omega/tiler.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace omega {

namespace {

constexpr bool is_chunked(InterPhase k) {
  return k == InterPhase::kSPGeneric || k == InterPhase::kParallelPipeline;
}

std::size_t cap_of(std::size_t extent) {
  return std::max<std::size_t>(1,
                               std::bit_ceil(std::max<std::size_t>(extent, 1)));
}

std::uint64_t ceil_div_u64(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? a : (a + b - 1) / b;
}

double score_of(Objective obj, std::uint64_t cycles, double pj) {
  switch (obj) {
    case Objective::kRuntime: return static_cast<double>(cycles);
    case Objective::kEnergy: return pj;
    case Objective::kEnergyDelayProduct:
      return static_cast<double>(cycles) * pj;
  }
  return static_cast<double>(cycles);
}

/// Truncation PE split used when sizing tiling budgets at a PP boundary —
/// deliberately the same floor-based split the legacy enumerator uses for
/// its tiling budgets (the *evaluator* rounds with llround; generation has
/// always budgeted with truncation, and the adapter parity pins it).
std::size_t pp_budget_first(std::size_t pes, double frac) {
  return std::clamp<std::size_t>(
      static_cast<std::size_t>(static_cast<double>(pes) * frac), 1, pes - 1);
}

/// The legacy enumerator options a PipelineSearchOptions projects to.
SearchOptions legacy_enum_options(const PipelineSearchOptions& o) {
  SearchOptions s;
  s.include_seq = o.include_seq;
  s.include_sp_generic = o.include_sp_generic;
  s.include_sp_optimized = o.include_sp_optimized;
  s.include_pp = o.include_pp;
  s.pp_fractions = o.pp_fractions;
  s.min_static_utilization = o.min_static_utilization;
  return s;
}

/// Binding-invariant per-phase shape, resolved once per chain.
struct PhaseShape {
  PhaseEngine engine = PhaseEngine::kDenseDense;
  std::size_t in_w = 0;
  std::size_t out_w = 0;
  /// Loop orders admissible for this phase: the engine vocabulary's six,
  /// minus G-after-F orders for sparse-weight phases (which walk W^T
  /// G-major — PipelineSpec::validate would reject the rest).
  std::vector<LoopOrder> orders;
};

struct ChainInfo {
  const PipelineChainSpec* chain = nullptr;
  std::size_t index = 0;
  std::size_t n = 0;
  std::vector<PhaseShape> phases;
  std::vector<PipelinePhaseWork> work;
  double energy_lb = 0.0;
  /// Classic two-phase chain (one sparse-dense + one dense phase): the
  /// population delegates to the legacy enumerator so the two-phase adapter
  /// is bit-identical to the historic search_mappings.
  bool classic = false;
  PhaseOrder classic_po = PhaseOrder::kAC;
  LayerSpec classic_layer;
};

ChainInfo make_chain_info(const PipelineChainSpec& chain,
                          const GnnWorkload& workload, std::size_t index) {
  {
    const auto err = chain.chain_error();
    OMEGA_CHECK(!err, "pipeline search chain " + std::to_string(index) + ": " +
                          (err ? *err : std::string{}));
  }
  ChainInfo ci;
  ci.chain = &chain;
  ci.index = index;
  ci.n = chain.phases.size();
  ci.work = pipeline_phase_work(chain, workload);
  std::size_t width =
      chain.in_features > 0 ? chain.in_features : workload.in_features;
  for (std::size_t i = 0; i < ci.n; ++i) {
    const PhaseChainSpec& p = chain.phases[i];
    PhaseShape sh;
    sh.engine = p.engine;
    sh.in_w = width;
    sh.out_w =
        p.engine == PhaseEngine::kSparseDense ? width : p.out_features;
    for (const LoopOrder& o : all_loop_orders(taxonomy_phase(p.engine))) {
      if (p.engine == PhaseEngine::kSparseSparse &&
          o.depth_of(Dim::kG) > o.depth_of(Dim::kF)) {
        continue;
      }
      sh.orders.push_back(o);
    }
    width = sh.out_w;
    ci.phases.push_back(std::move(sh));
  }
  if (ci.n == 2) {
    const PhaseEngine e0 = chain.phases[0].engine;
    const PhaseEngine e1 = chain.phases[1].engine;
    if (e0 == PhaseEngine::kSparseDense && e1 == PhaseEngine::kDenseDense) {
      ci.classic = true;
      ci.classic_po = PhaseOrder::kAC;
      ci.classic_layer = LayerSpec{.out_features = chain.phases[1].out_features,
                                   .in_features = chain.in_features};
    } else if (e0 == PhaseEngine::kDenseDense &&
               e1 == PhaseEngine::kSparseDense) {
      ci.classic = true;
      ci.classic_po = PhaseOrder::kCA;
      ci.classic_layer = LayerSpec{.out_features = chain.phases[0].out_features,
                                   .in_features = chain.in_features};
    }
  }
  return ci;
}

/// Deterministic recursive enumerator of a general chain's candidate space:
/// boundary strategies (with PP fraction assignment) outermost, then per
/// phase a loop order and a maximal power-of-two tiling at the phase's PE
/// budget. Taxonomy rules PipelineSpec::validate would reject are applied
/// generatively (adjacent chunking, sparse-weight consumers of chunked
/// boundaries, hand-off feasibility, SPO tile tying), so every emitted
/// candidate binds to a valid spec. The walk calls `sink` once per
/// candidate; sinks can count on one pass and materialize on a second — the
/// order is identical.
class ChainWalker {
 public:
  ChainWalker(const ChainInfo& ci, const PipelineSearchOptions& opt,
              const WorkloadDims& dims, std::size_t pes)
      : ci_(ci), opt_(opt), dims_(dims), pes_(pes) {
    for (const double f : opt.pp_fractions) {
      if (std::isfinite(f) && f > 0.0 && f < 1.0) pp_fracs_.push_back(f);
    }
    const std::size_t nb = ci.n > 0 ? ci.n - 1 : 0;
    kinds_.assign(nb, InterPhase::kSequential);
    fracs_.assign(nb, 0.5);
    budgets_.assign(ci.n, pes);
    cur_.assign(ci.n, IntraPhaseDataflow{});
    tilings_.resize(ci.n);
  }

  /// Runs the walk; `sink` returns false to stop early.
  void walk(const std::function<bool()>& sink) {
    if (ci_.n == 0) return;
    sink_ = &sink;
    stop_ = false;
    choose_boundary(0);
    sink_ = nullptr;
  }

  /// The candidate at the current walk point (call from inside a sink).
  [[nodiscard]] PipelineCandidate materialize() const {
    PipelineCandidate c;
    c.chain_index = ci_.index;
    c.phases = cur_;
    c.boundaries = kinds_;
    bool has_pp = false;
    for (const InterPhase k : kinds_) {
      has_pp |= k == InterPhase::kParallelPipeline;
    }
    if (has_pp) {
      c.pe_fractions.assign(ci_.n, 1.0);
      for (std::size_t b = 0; b < kinds_.size(); ++b) {
        if (kinds_[b] != InterPhase::kParallelPipeline) continue;
        c.pe_fractions[b] = fracs_[b];
        c.pe_fractions[b + 1] = 1.0 - fracs_[b];
      }
    }
    return c;
  }

 private:
  void choose_boundary(std::size_t b) {
    if (stop_) return;
    if (b + 1 >= ci_.n) {
      apply_budgets();
      walk_phase(0);
      return;
    }
    const bool prev_chunked = b > 0 && is_chunked(kinds_[b - 1]);
    const PhaseEngine consumer = ci_.phases[b + 1].engine;
    // A sparse-weight phase streams W^T chunks itself and cannot also
    // consume from a chunked boundary; adjacent boundaries cannot both be
    // chunked (each phase stages through at most one).
    const bool chunk_ok =
        !prev_chunked && consumer != PhaseEngine::kSparseSparse;
    const auto try_kind = [&](InterPhase k, double frac) {
      kinds_[b] = k;
      fracs_[b] = frac;
      choose_boundary(b + 1);
    };
    if (opt_.include_seq) try_kind(InterPhase::kSequential, 0.5);
    if (opt_.include_sp_generic && chunk_ok) {
      try_kind(InterPhase::kSPGeneric, 0.5);
    }
    if (opt_.include_sp_optimized) try_kind(InterPhase::kSPOptimized, 0.5);
    if (opt_.include_pp && pes_ >= 2 && chunk_ok) {
      for (const double f : pp_fracs_) {
        try_kind(InterPhase::kParallelPipeline, f);
      }
    }
  }

  void apply_budgets() {
    std::fill(budgets_.begin(), budgets_.end(), pes_);
    for (std::size_t b = 0; b < kinds_.size(); ++b) {
      if (kinds_[b] != InterPhase::kParallelPipeline) continue;
      const std::size_t first = pp_budget_first(pes_, fracs_[b]);
      budgets_[b] = first;
      budgets_[b + 1] = pes_ - first;
    }
  }

  void walk_phase(std::size_t i) {
    if (stop_) return;
    if (i == ci_.n) {
      stop_ = !(*sink_)();
      return;
    }
    const PhaseShape& sh = ci_.phases[i];
    const GnnPhase vocab = taxonomy_phase(sh.engine);
    for (const LoopOrder& order : sh.orders) {
      if (stop_) return;
      if (i > 0) {
        const InterPhase up = kinds_[i - 1];
        if (up == InterPhase::kSPGeneric ||
            up == InterPhase::kParallelPipeline) {
          const HandoffRole prod =
              phase_producer_role(ci_.phases[i - 1].engine, cur_[i - 1].order);
          const HandoffRole cons = phase_consumer_role(sh.engine, order);
          if (!analyze_handoff(prod, cons).feasible) continue;
        }
        if (up == InterPhase::kSPOptimized) {
          // SPO ties the consumer's tiles to the producer's through the
          // hand-off roles; there is no independent tiling loop here.
          const HandoffRole prod =
              phase_producer_role(ci_.phases[i - 1].engine, cur_[i - 1].order);
          const HandoffRole cons = phase_consumer_role(sh.engine, order);
          IntraPhaseDataflow df;
          df.phase = vocab;
          df.order = order;
          df.tiles.set(cons.row, cur_[i - 1].tiles.get(prod.row));
          df.tiles.set(cons.col, cur_[i - 1].tiles.get(prod.col));
          if (!sp_optimized_pair_ok(ci_.phases[i - 1].engine, cur_[i - 1],
                                    sh.engine, df)) {
            continue;
          }
          if (df.spatial_extent() > budgets_[i]) continue;
          cur_[i] = df;
          walk_phase(i + 1);
          continue;
        }
      }
      for (const TileSizes& t : tilings(i, budgets_[i])) {
        if (stop_) return;
        cur_[i].phase = vocab;
        cur_[i].order = order;
        cur_[i].tiles = t;
        walk_phase(i + 1);
      }
    }
  }

  const std::vector<TileSizes>& tilings(std::size_t i, std::size_t budget) {
    auto& cache = tilings_[i];
    for (const auto& [b, list] : cache) {
      if (b == budget) return list;
    }
    const PhaseShape& sh = ci_.phases[i];
    const bool sparse_dense = sh.engine == PhaseEngine::kSparseDense;
    const auto triples =
        sparse_dense
            ? enumerate_tile_triples(
                  budget, cap_of(dims_.vertices),
                  cap_of(std::max<std::size_t>(dims_.max_degree, 1)),
                  cap_of(sh.in_w), opt_.min_static_utilization)
            : enumerate_tile_triples(budget, cap_of(dims_.vertices),
                                     cap_of(sh.in_w), cap_of(sh.out_w),
                                     opt_.min_static_utilization);
    std::vector<TileSizes> list;
    list.reserve(triples.size());
    for (const auto& [a, b, c] : triples) {
      TileSizes t;
      t.v = a;
      if (sparse_dense) {
        t.n = b;
        t.f = c;
      } else {
        t.f = b;
        t.g = c;
      }
      list.push_back(t);
    }
    cache.emplace_back(budget, std::move(list));
    return cache.back().second;
  }

  const ChainInfo& ci_;
  const PipelineSearchOptions& opt_;
  WorkloadDims dims_;
  std::size_t pes_;
  std::vector<double> pp_fracs_;
  std::vector<InterPhase> kinds_;
  std::vector<double> fracs_;
  std::vector<std::size_t> budgets_;
  std::vector<IntraPhaseDataflow> cur_;
  std::vector<std::vector<std::pair<std::size_t, std::vector<TileSizes>>>>
      tilings_;
  const std::function<bool()>* sink_ = nullptr;
  bool stop_ = false;
};

WorkloadDims chain_dims_of(const ChainInfo& ci, const GnnWorkload& workload) {
  return dims_of(workload,
                 ci.classic ? ci.classic_layer
                            : LayerSpec{.out_features = 1,
                                        .in_features = ci.chain->in_features});
}

/// The legacy candidate population of a classic chain, in legacy
/// enumeration order (CA chains enumerate both orders and keep kCA so the
/// relative order matches the include_ca=true legacy walk).
std::vector<DataflowDescriptor> classic_population(
    const ChainInfo& ci, const PipelineSearchOptions& options,
    const WorkloadDims& dims, std::size_t pes) {
  SearchOptions so = legacy_enum_options(options);
  so.include_ca = ci.classic_po == PhaseOrder::kCA;
  std::vector<DataflowDescriptor> pop =
      enumerate_search_candidates(so, dims, pes);
  if (ci.classic_po == PhaseOrder::kCA) {
    std::erase_if(pop, [](const DataflowDescriptor& df) {
      return df.phase_order != PhaseOrder::kCA;
    });
  }
  return pop;
}

}  // namespace

std::string PipelineCandidate::key() const {
  if (legacy) return legacy->to_string();
  std::string s = "c";
  s += std::to_string(chain_index);
  s += "|";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0 && i - 1 < boundaries.size()) {
      s += "->";
      s += to_string(boundaries[i - 1]);
      s += "->";
    }
    s += phases[i].to_string();
  }
  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    if (boundaries[b] != InterPhase::kParallelPipeline) continue;
    double share = 0.5;
    if (pe_fractions.size() == phases.size() && b + 1 < pe_fractions.size()) {
      const double a = pe_fractions[b];
      const double bb = pe_fractions[b + 1];
      if (std::isfinite(a) && std::isfinite(bb) && a > 0.0 && bb > 0.0) {
        share = a / (a + bb);
      }
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "|pp%zu=%.6g", b, share);
    s += buf;
  }
  return s;
}

bool pipeline_candidate_order(const RankedPipelineCandidate& a,
                              const RankedPipelineCandidate& b) {
  if (a.score != b.score) return a.score < b.score;
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  if (a.on_chip_pj != b.on_chip_pj) return a.on_chip_pj < b.on_chip_pj;
  return a.key < b.key;
}

const RankedPipelineCandidate& PipelineSearchResult::best() const {
  OMEGA_CHECK(!ranked.empty(), "pipeline search produced no feasible mapping");
  return ranked.front();
}

std::vector<PipelinePhaseWork> pipeline_phase_work(
    const PipelineChainSpec& chain, const GnnWorkload& workload) {
  {
    const auto err = chain.chain_error();
    OMEGA_CHECK(!err,
                "pipeline_phase_work: " + (err ? *err : std::string{}));
  }
  std::vector<PipelinePhaseWork> out;
  out.reserve(chain.phases.size());
  const std::uint64_t edges = workload.num_edges();
  const std::uint64_t vertices = workload.num_vertices();
  std::size_t width =
      chain.in_features > 0 ? chain.in_features : workload.in_features;
  for (const PhaseChainSpec& p : chain.phases) {
    PipelinePhaseWork w;
    switch (p.engine) {
      case PhaseEngine::kSparseDense:
        w.macs = edges * static_cast<std::uint64_t>(width);
        w.meta_gb_elems = edges + vertices;
        w.sparse = true;
        break;
      case PhaseEngine::kDenseDense:
        w.macs = vertices * static_cast<std::uint64_t>(width) *
                 p.out_features;
        width = p.out_features;
        break;
      case PhaseEngine::kSparseSparse: {
        // W^T walked transposed: out_features rows of nnz_per_row ids, one
        // MAC per (row nonzero, vertex) — see sparse_weight_csr.
        const std::uint64_t nnz =
            sparse_weight_nnz_per_row(width, p.weight_density);
        w.macs = p.out_features * nnz * vertices;
        w.meta_gb_elems = p.out_features * nnz + p.out_features;
        w.sparse = true;
        width = p.out_features;
        break;
      }
    }
    out.push_back(w);
  }
  return out;
}

std::uint64_t pipeline_mac_cycle_bound(std::span<const PipelinePhaseWork> work,
                                       const PipelineCandidate& c,
                                       std::size_t pes) {
  const std::size_t n = std::min(work.size(), c.phases.size());
  std::uint64_t total = 0;
  std::size_t i = 0;
  while (i < n) {
    const bool pp = i < c.boundaries.size() &&
                    c.boundaries[i] == InterPhase::kParallelPipeline &&
                    i + 1 < n && pes >= 2;
    if (pp) {
      // Same llround-then-clamp split the evaluator performs (the pair's
      // first phase anchors the rounding).
      double share = 0.5;
      if (c.pe_fractions.size() == c.phases.size()) {
        const double a = c.pe_fractions[i];
        const double b = c.pe_fractions[i + 1];
        if (std::isfinite(a) && std::isfinite(b) && a > 0.0 && b > 0.0) {
          share = a / (a + b);
        }
      } else if (c.legacy) {
        share = c.legacy->pp_agg_pe_fraction;
      }
      const std::size_t first = std::clamp<std::size_t>(
          static_cast<std::size_t>(
              std::llround(static_cast<double>(pes) * share)),
          1, pes - 1);
      total += std::max(ceil_div_u64(work[i].macs, first),
                        ceil_div_u64(work[i + 1].macs, pes - first));
      i += 2;
    } else {
      total += ceil_div_u64(work[i].macs, pes);
      i += 1;
    }
  }
  return total;
}

double pipeline_energy_lower_bound(std::span<const PipelinePhaseWork> work,
                                   const EnergyModel& em) {
  double pj = 0.0;
  for (const PipelinePhaseWork& w : work) {
    // Sparse walks charge 3 RF reads + 1 accumulator write per MAC and one
    // GB read per CSR id/pointer element regardless of the binding; dense
    // phases charge 2 RF reads per MAC. Everything else (spills, partition
    // traffic, output movement) is binding-dependent and >= 0, so this is a
    // true lower bound on on_chip_pj.
    const double rf_per_mac = w.sparse ? 4.0 : 2.0;
    // omega-lint: allow(float-accum): phase order is fixed; two terms per phase, deterministic
    pj += static_cast<double>(w.macs) * rf_per_mac * em.rf_access_pj;
    // omega-lint: allow(float-accum): phase order is fixed; two terms per phase, deterministic
    pj += static_cast<double>(w.meta_gb_elems) * em.gb_access_pj;
  }
  return pj;
}

PipelineCandidate lower_two_phase_candidate(const DataflowDescriptor& df,
                                            std::size_t chain_index,
                                            const LayerSpec& layer,
                                            std::size_t num_pes) {
  PipelineSpec spec = two_phase_pipeline(df, layer, num_pes);
  PipelineCandidate c;
  c.chain_index = chain_index;
  c.phases.reserve(spec.phases.size());
  for (const PhaseSpec& p : spec.phases) c.phases.push_back(p.dataflow);
  c.boundaries = std::move(spec.boundaries);
  c.pe_fractions = std::move(spec.pe_fractions);
  c.legacy = df;
  return c;
}

std::vector<PipelineCandidate> enumerate_pipeline_candidates(
    const PipelineChainSpec& chain, std::size_t chain_index,
    const GnnWorkload& workload, std::size_t pes,
    const PipelineSearchOptions& options) {
  const ChainInfo ci = make_chain_info(chain, workload, chain_index);
  const WorkloadDims dims = chain_dims_of(ci, workload);
  std::vector<PipelineCandidate> out;
  if (ci.classic) {
    for (const DataflowDescriptor& df :
         classic_population(ci, options, dims, pes)) {
      out.push_back(
          lower_two_phase_candidate(df, chain_index, ci.classic_layer, pes));
    }
    return out;
  }
  ChainWalker walker(ci, options, dims, pes);
  walker.walk([&] {
    out.push_back(walker.materialize());
    return true;
  });
  return out;
}

std::vector<PipelineCandidate> table5_pipeline_seeds(
    const Omega& omega, const GnnWorkload& workload,
    const PipelineChainSpec& chain, std::size_t chain_index) {
  std::vector<PipelineCandidate> out;
  const ChainInfo ci = make_chain_info(chain, workload, chain_index);
  const AcceleratorConfig& hw = omega.config();
  const std::size_t pes = hw.num_pes;

  if (ci.classic) {
    const WorkloadDims dims = dims_of(workload, ci.classic_layer);
    for (const DataflowPattern& pattern : table5_patterns()) {
      if (pattern.phase_order != ci.classic_po) continue;
      try {
        const DataflowDescriptor df = bind_tiles(pattern, dims, hw);
        if (df.validation_error()) continue;
        out.push_back(lower_two_phase_candidate(df, chain_index,
                                                ci.classic_layer, pes));
      } catch (const Error&) {
        // Pattern does not fit this workload/substrate; skip.
      }
    }
    return out;
  }

  const WorkloadDims base = chain_dims_of(ci, workload);
  const std::size_t nb = ci.n > 0 ? ci.n - 1 : 0;
  for (const DataflowPattern& pattern : table5_patterns()) {
    // Per-boundary strategy: the pattern's, demoted to Seq wherever the
    // chain cannot admit it (single-PE arrays, sparse-weight consumers,
    // adjacent chunked boundaries).
    std::vector<InterPhase> kinds(nb, InterPhase::kSequential);
    for (std::size_t b = 0; b < nb; ++b) {
      InterPhase k = pattern.inter;
      if (k == InterPhase::kParallelPipeline && pes < 2) {
        k = InterPhase::kSequential;
      }
      if (is_chunked(k) &&
          ci.phases[b + 1].engine == PhaseEngine::kSparseSparse) {
        k = InterPhase::kSequential;
      }
      if (is_chunked(k) && b > 0 && is_chunked(kinds[b - 1])) {
        k = InterPhase::kSequential;
      }
      kinds[b] = k;
    }
    double frac = pattern.pp_agg_pe_fraction;
    if (!(std::isfinite(frac) && frac > 0.0 && frac < 1.0)) frac = 0.5;
    std::vector<std::size_t> budgets(ci.n, pes);
    bool has_pp = false;
    for (std::size_t b = 0; b < nb; ++b) {
      if (kinds[b] != InterPhase::kParallelPipeline) continue;
      has_pp = true;
      const std::size_t first = pp_budget_first(pes, frac);
      budgets[b] = first;
      budgets[b + 1] = pes - first;
    }

    // Bind each phase by the pattern's style at the phase's PE budget.
    DataflowPattern bp = pattern;
    bp.inter = InterPhase::kSequential;
    bp.phase_order = PhaseOrder::kAC;
    std::vector<IntraPhaseDataflow> phases(ci.n);
    bool bound_ok = true;
    for (std::size_t i = 0; i < ci.n; ++i) {
      const PhaseShape& sh = ci.phases[i];
      WorkloadDims pd = base;
      pd.in_features = std::max<std::size_t>(sh.in_w, 1);
      pd.out_features = std::max<std::size_t>(sh.out_w, 1);
      if (sh.engine == PhaseEngine::kSparseSparse) {
        const std::size_t nnz = sparse_weight_nnz_per_row(
            sh.in_w, chain.phases[i].weight_density);
        pd.avg_degree = static_cast<double>(nnz);
        pd.max_degree = nnz;
      }
      AcceleratorConfig phw = hw;
      phw.num_pes = budgets[i];
      try {
        const DataflowDescriptor b = bind_tiles(bp, pd, phw);
        phases[i] = sh.engine == PhaseEngine::kSparseDense ? b.agg : b.cmb;
      } catch (const Error&) {
        bound_ok = false;
        break;
      }
      if (sh.engine == PhaseEngine::kSparseSparse &&
          phases[i].order.depth_of(Dim::kG) >
              phases[i].order.depth_of(Dim::kF)) {
        bound_ok = false;  // pattern's dense order walks G after F
        break;
      }
    }
    if (!bound_ok) continue;

    const auto build = [&](const std::vector<InterPhase>& ks, bool with_pp) {
      PipelineCandidate c;
      c.chain_index = chain_index;
      c.phases = phases;
      c.boundaries = ks;
      if (with_pp) {
        c.pe_fractions.assign(ci.n, 1.0);
        for (std::size_t b = 0; b < nb; ++b) {
          if (ks[b] != InterPhase::kParallelPipeline) continue;
          c.pe_fractions[b] = frac;
          c.pe_fractions[b + 1] = 1.0 - frac;
        }
      }
      return c;
    };
    const auto valid = [&](const PipelineCandidate& c) {
      try {
        return !chain.bind(c.view()).validation_error().has_value();
      } catch (const Error&) {
        return false;
      }
    };
    PipelineCandidate seeded = build(kinds, has_pp);
    if (valid(seeded)) {
      out.push_back(std::move(seeded));
      continue;
    }
    // The pattern's boundary strategy does not validate on this chain
    // (e.g. SPO tile tying across unlike engines); fall back to the pure
    // sequential composition of its per-phase mappings.
    PipelineCandidate seq =
        build(std::vector<InterPhase>(nb, InterPhase::kSequential), false);
    if (valid(seq)) out.push_back(std::move(seq));
  }
  return out;
}

PipelineSearchResult search_pipeline_mappings(
    const Omega& omega, const GnnWorkload& workload,
    std::span<const PipelineChainSpec> chains,
    const PipelineSearchOptions& options,
    const WorkloadContext* shared_context) {
  OMEGA_CHECK(!chains.empty(), "pipeline search needs at least one chain");
  const std::size_t pes = omega.config().num_pes;
  const std::size_t enumerated =
      options.enumerate_chains == 0
          ? chains.size()
          : std::min(options.enumerate_chains, chains.size());

  // Stage spans (enumerate / prune / evaluate / rank) — no-ops when
  // options.trace is null; optional<> gives each stage RAII close points
  // inside this straight-line function.
  std::optional<obs::ScopedSpan> span;
  span.emplace(options.trace, "enumerate", "dse");

  std::vector<ChainInfo> infos;
  infos.reserve(chains.size());
  for (std::size_t c = 0; c < chains.size(); ++c) {
    infos.push_back(make_chain_info(chains[c], workload, c));
    infos.back().energy_lb =
        pipeline_energy_lower_bound(infos.back().work, omega.energy_model());
  }

  // Per-chain populations: classic chains delegate to the legacy enumerator
  // (materialized up front — descriptors are small); general chains run the
  // walker in count mode and materialize only the sampled points below.
  std::vector<WorkloadDims> dims(chains.size());
  std::vector<std::vector<DataflowDescriptor>> legacy_pop(chains.size());
  std::vector<std::unique_ptr<ChainWalker>> walkers(chains.size());
  std::vector<std::size_t> prefix(chains.size() + 1, 0);
  for (std::size_t c = 0; c < chains.size(); ++c) {
    std::size_t population = 0;
    if (c < enumerated) {
      dims[c] = chain_dims_of(infos[c], workload);
      if (infos[c].classic) {
        legacy_pop[c] = classic_population(infos[c], options, dims[c], pes);
        population = legacy_pop[c].size();
      } else {
        walkers[c] =
            std::make_unique<ChainWalker>(infos[c], options, dims[c], pes);
        walkers[c]->walk([&] {
          ++population;
          return true;
        });
      }
    }
    prefix[c + 1] = prefix[c] + population;
  }
  const std::size_t total = prefix.back();

  std::vector<PipelineCandidate> extras;
  for (const PipelineCandidate& e : options.extra_candidates) {
    OMEGA_CHECK(e.chain_index < chains.size(),
                "extra candidate chain_index " +
                    std::to_string(e.chain_index) + " out of range");
    extras.push_back(e);
  }
  if (options.seed_table5) {
    for (std::size_t c = 0; c < chains.size(); ++c) {
      for (PipelineCandidate& s :
           table5_pipeline_seeds(omega, workload, chains[c], c)) {
        extras.push_back(std::move(s));
      }
    }
  }

  PipelineSearchResult result;
  result.generated = total + extras.size();

  // Deterministic stride subsampling under a candidate cap, over the
  // concatenated per-chain populations; extras ride along after the sample,
  // outside the cap.
  const bool capped =
      options.max_candidates > 0 && total > options.max_candidates;
  const std::size_t sampled = capped ? options.max_candidates : total;
  const std::size_t selected = sampled + extras.size();
  if (selected == 0) return result;

  std::vector<PipelineCandidate> cands(selected);
  {
    // Global sample index -> (chain, local index, destination slot). The
    // stride map is strictly increasing, so per-chain locals arrive sorted
    // and one materialize pass per chain suffices.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> targets(
        chains.size());
    for (std::size_t i = 0; i < sampled; ++i) {
      const std::size_t g =
          capped ? stride_sample_index(i, total, sampled) : i;
      const std::size_t c =
          static_cast<std::size_t>(
              std::upper_bound(prefix.begin(), prefix.end(), g) -
              prefix.begin()) -
          1;
      targets[c].emplace_back(g - prefix[c], i);
    }
    for (std::size_t c = 0; c < chains.size(); ++c) {
      if (targets[c].empty()) continue;
      if (infos[c].classic) {
        for (const auto& [local, slot] : targets[c]) {
          cands[slot] = lower_two_phase_candidate(
              legacy_pop[c][local], c, infos[c].classic_layer, pes);
        }
      } else {
        std::size_t counter = 0;
        std::size_t next = 0;
        walkers[c]->walk([&] {
          if (next < targets[c].size() &&
              counter == targets[c][next].first) {
            cands[targets[c][next].second] = walkers[c]->materialize();
            ++next;
          }
          ++counter;
          return next < targets[c].size();
        });
      }
    }
    for (std::size_t e = 0; e < extras.size(); ++e) {
      cands[sampled + e] = std::move(extras[e]);
    }
  }
  span->arg("generated", result.generated);
  span->arg("selected", selected);
  span.reset();

  std::optional<WorkloadContext> own_context;
  if (shared_context == nullptr) own_context.emplace(workload.adjacency);
  const WorkloadContext& context =
      shared_context != nullptr ? *shared_context : *own_context;
  // Pre-warm the reverse adjacency if any selected sparse phase scatters,
  // so sweep threads do not race to build it on first touch.
  for (std::size_t i = 0; i < selected; ++i) {
    const ChainInfo& ci = infos[cands[i].chain_index];
    bool scatter = false;
    const std::size_t n = std::min(cands[i].phases.size(), ci.n);
    for (std::size_t p = 0; p < n && !scatter; ++p) {
      if (ci.phases[p].engine == PhaseEngine::kDenseDense) continue;
      const LoopOrder& order = cands[i].phases[p].order;
      scatter = order.contains(Dim::kV) && order.contains(Dim::kN) &&
                order.depth_of(Dim::kV) > order.depth_of(Dim::kN);
    }
    if (scatter) {
      (void)context.reverse_graph();
      break;
    }
  }

  // Evaluation order: identity without pruning; with pruning, ascending
  // objective lower bound with index tie-break. The bounds are true lower
  // bounds for every objective (see the header comment), so the cull below
  // is lossless for runtime, energy, and EDP alike.
  const bool prune = options.prune && selected > 0;
  std::vector<std::size_t> eval_order(selected);
  std::iota(eval_order.begin(), eval_order.end(), std::size_t{0});
  std::vector<double> bounds;
  if (prune) {
    span.emplace(options.trace, "prune", "dse");
    span->arg("candidates", selected);
    bounds.resize(selected);
    for (std::size_t i = 0; i < selected; ++i) {
      if (i >= sampled) {
        // Extras sort to the front and can never be culled
        // (bound <= incumbent always holds for 0).
        bounds[i] = 0.0;
        continue;
      }
      const ChainInfo& ci = infos[cands[i].chain_index];
      const std::uint64_t cycle_lb =
          pipeline_mac_cycle_bound(ci.work, cands[i], pes);
      switch (options.objective) {
        case Objective::kRuntime:
          bounds[i] = static_cast<double>(cycle_lb);
          break;
        case Objective::kEnergy: bounds[i] = ci.energy_lb; break;
        case Objective::kEnergyDelayProduct:
          bounds[i] = static_cast<double>(cycle_lb) * ci.energy_lb;
          break;
      }
    }
    std::sort(eval_order.begin(), eval_order.end(),
              [&](std::size_t a, std::size_t b) {
                if (bounds[a] != bounds[b]) return bounds[a] < bounds[b];
                return a < b;
              });
    span.reset();
  }

  // One eval plan per chain, cached in the context; counters are cumulative
  // across sweeps, so snapshot them for this sweep's share.
  std::vector<std::shared_ptr<const PipelineEvalPlan>> plans(chains.size());
  std::vector<std::uint64_t> requests0(chains.size(), 0);
  std::vector<std::uint64_t> builds0(chains.size(), 0);
  if (options.eval_path != EvalPath::kScalar) {
    for (std::size_t c = 0; c < chains.size(); ++c) {
      plans[c] = PipelineEvalPlan::obtain(omega, workload, chains[c], context);
      requests0[c] = plans[c]->term_requests();
      builds0[c] = plans[c]->term_builds();
    }
  }
  std::atomic<std::uint64_t> delta_hits{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_candidates{0};
  std::atomic<std::uint64_t> max_batch{0};

  struct Metrics {
    std::uint64_t cycles = 0;
    double pj = 0.0;
  };
  std::vector<Metrics> metrics(selected);
  std::vector<char> ok(selected, 0);
  const auto evaluate_range = [&](std::size_t from, std::size_t to) {
    parallel_blocks(
        to - from,
        [&](std::size_t begin, std::size_t end) {
          if (options.eval_path == EvalPath::kScalar) {
            for (std::size_t j = begin; j < end; ++j) {
              const std::size_t i = eval_order[from + j];
              try {
                const PipelineSpec spec =
                    chains[cands[i].chain_index].bind(cands[i].view());
                const PipelineResult r =
                    omega.run_pipeline(workload, spec, &context);
                metrics[i] = {r.cycles, r.energy.on_chip_pj()};
                ok[i] = 1;
              } catch (const Error&) {
                ok[i] = 0;  // infeasible under this substrate; skip
              }
            }
            return;
          }
          // Per-block states (delta slots never cross threads), one per
          // chain so multi-chain sweeps keep per-position reuse.
          std::vector<PipelineDeltaState> states(chains.size());
          if (options.eval_path == EvalPath::kDelta) {
            for (std::size_t j = begin; j < end; ++j) {
              const std::size_t i = eval_order[from + j];
              const std::size_t c = cands[i].chain_index;
              const EvalOutcome o =
                  plans[c]->evaluate_one(cands[i].view(), states[c]);
              if (o.ok) {
                metrics[i] = {o.cycles, o.on_chip_pj};
                ok[i] = 1;
              }
            }
          } else {
            // Batched: group maximal runs of same-chain candidates so each
            // run flows through one evaluate_batch call.
            std::vector<PipelineBindingView> views;
            std::vector<EvalOutcome> outs;
            std::size_t j = begin;
            while (j < end) {
              const std::size_t run_begin = j;
              const std::size_t c =
                  cands[eval_order[from + j]].chain_index;
              while (j < end && cands[eval_order[from + j]].chain_index == c) {
                ++j;
              }
              const std::size_t m = j - run_begin;
              views.clear();
              views.reserve(m);
              for (std::size_t k = 0; k < m; ++k) {
                views.push_back(
                    cands[eval_order[from + run_begin + k]].view());
              }
              outs.assign(m, EvalOutcome{});
              plans[c]->evaluate_batch({views.data(), m}, outs.data(),
                                       states[c]);
              for (std::size_t k = 0; k < m; ++k) {
                const std::size_t i = eval_order[from + run_begin + k];
                if (outs[k].ok) {
                  metrics[i] = {outs[k].cycles, outs[k].on_chip_pj};
                  ok[i] = 1;
                }
              }
              batches.fetch_add(1, std::memory_order_relaxed);
              batched_candidates.fetch_add(m, std::memory_order_relaxed);
              std::uint64_t cur = max_batch.load(std::memory_order_relaxed);
              while (cur < m && !max_batch.compare_exchange_weak(
                                    cur, m, std::memory_order_relaxed)) {
              }
            }
          }
          for (const PipelineDeltaState& s : states) {
            delta_hits.fetch_add(s.delta_hits, std::memory_order_relaxed);
          }
        },
        options.threads);
  };

  span.emplace(options.trace, "evaluate", "dse");
  if (!prune) {
    evaluate_range(0, selected);
  } else {
    // Seed pass, incumbent reduced after the barrier in index order (thread
    // schedule independent), then the bound-ascending cull. Ties with the
    // incumbent survive, so tie-breaking matches the unpruned search.
    const std::size_t seed =
        std::min(std::max<std::size_t>(options.prune_seed, 1), selected);
    evaluate_range(0, seed);
    double incumbent = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < seed; ++j) {
      const std::size_t i = eval_order[j];
      if (ok[i]) {
        incumbent = std::min(
            incumbent,
            score_of(options.objective, metrics[i].cycles, metrics[i].pj));
      }
    }
    std::size_t keep = seed;
    while (keep < selected && bounds[eval_order[keep]] <= incumbent) ++keep;
    result.pruned = selected - keep;
    evaluate_range(seed, keep);
  }

  if (options.eval_path != EvalPath::kScalar) {
    for (std::size_t c = 0; c < chains.size(); ++c) {
      result.eval.term_requests += plans[c]->term_requests() - requests0[c];
      result.eval.term_builds += plans[c]->term_builds() - builds0[c];
    }
    result.eval.delta_hits = delta_hits.load(std::memory_order_relaxed);
    result.eval.batches = batches.load(std::memory_order_relaxed);
    result.eval.batched_candidates =
        batched_candidates.load(std::memory_order_relaxed);
    result.eval.max_batch = max_batch.load(std::memory_order_relaxed);
  }
  span->arg("pruned", result.pruned);
  span->arg("term_builds", result.eval.term_builds);
  span.reset();

  span.emplace(options.trace, "rank", "dse");
  std::vector<RankedPipelineCandidate> valid;
  valid.reserve(selected);
  for (std::size_t i = 0; i < selected; ++i) {
    if (!ok[i]) continue;
    RankedPipelineCandidate rc;
    rc.key = cands[i].key();
    rc.cycles = metrics[i].cycles;
    rc.on_chip_pj = metrics[i].pj;
    rc.score = score_of(options.objective, rc.cycles, rc.on_chip_pj);
    rc.candidate = std::move(cands[i]);
    valid.push_back(std::move(rc));
  }
  result.evaluated = valid.size();

  std::sort(valid.begin(), valid.end(), pipeline_candidate_order);
  // An extra/seed may duplicate a sampled candidate; identical bindings
  // produce identical metrics and sort adjacent, so one unique pass drops
  // the copies from the ranked list and the frontier.
  valid.erase(
      std::unique(valid.begin(), valid.end(),
                  [](const RankedPipelineCandidate& a,
                     const RankedPipelineCandidate& b) {
                    return a.cycles == b.cycles &&
                           a.on_chip_pj == b.on_chip_pj && a.key == b.key;
                  }),
      valid.end());

  // Pareto frontier over (cycles, energy); key tie-break keeps the frontier
  // representative deterministic across platforms.
  std::vector<RankedPipelineCandidate> by_cycles = valid;
  std::sort(by_cycles.begin(), by_cycles.end(),
            [](const RankedPipelineCandidate& a,
               const RankedPipelineCandidate& b) {
              if (a.cycles != b.cycles) return a.cycles < b.cycles;
              if (a.on_chip_pj != b.on_chip_pj) {
                return a.on_chip_pj < b.on_chip_pj;
              }
              return a.key < b.key;
            });
  double best_energy = std::numeric_limits<double>::infinity();
  for (const RankedPipelineCandidate& c : by_cycles) {
    if (c.on_chip_pj < best_energy) {
      best_energy = c.on_chip_pj;
      result.pareto.push_back(c);
    }
  }

  if (valid.size() > options.top_k) valid.resize(options.top_k);
  result.ranked = std::move(valid);
  span->arg("evaluated", result.evaluated);
  span->arg("pareto", result.pareto.size());
  return result;
}

PipelineSearchResult search_pipeline_mappings(
    const Omega& omega, const GnnWorkload& workload,
    const PipelineChainSpec& chain, const PipelineSearchOptions& options,
    const WorkloadContext* shared_context) {
  return search_pipeline_mappings(omega, workload, {&chain, 1}, options,
                                  shared_context);
}

}  // namespace omega
