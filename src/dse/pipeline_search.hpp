// Pipeline-space DSE: mapping search over N-phase PipelineSpecs.
//
// search_mappings (dse/search.hpp) answers the paper's Section VI question
// for the classic two-phase GNN layer; this header generalizes the whole
// search stack to the N-phase chains the evaluation core (omega/pipeline.*)
// can already cost. A search runs over one or more PipelineChainSpecs (the
// fixed engines/widths/densities), enumerating per-phase loop orders and
// power-of-two tilings, one InterPhase strategy per boundary, and a PE
// fraction grid for PP boundaries — the same taxonomy rules PipelineSpec::
// validate enforces, applied generatively so invalid combinations are never
// materialized.
//
// Two-phase adapter contract: for a classic chain (one sparse-dense + one
// dense phase), the candidate population is delegated to the legacy
// two-phase enumerator and each descriptor is lowered through
// two_phase_pipeline, so search_pipeline_mappings reproduces search_mappings
// bit-identically (ranked + Pareto, including subsample, prune, and
// tie-break behavior). search_mappings itself is now a thin adapter over
// this function (tests/pipeline_dse_test.cpp pins the parity).
//
// Lossless pruning extends from cycles to energy/EDP: every candidate gets
// a compulsory-work lower bound — the ideal-MAC cycle bound generalized
// over phase segments (PP pairs compose by max over the split PE array,
// everything else by sum) and a compulsory-traffic energy bound from the
// engines' unconditional charges (sparse walks pay >= 4 RF accesses per MAC
// plus CSR ids+pointers from the GB; dense phases pay >= 2 RF accesses per
// MAC). Both are true lower bounds on the evaluated metrics, so the pruned
// search returns the same best candidate as the unpruned one for every
// objective. Bounds compare as doubles: exact below 2^53, where every
// realistic sweep lives.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dse/search.hpp"
#include "omega/pipeline.hpp"

namespace omega {

/// One point of the pipeline design space: the binding half of a
/// PipelineSpec (per-phase dataflows, per-boundary strategies, PE
/// fractions) plus the chain it binds to. Candidates produced by lowering
/// a legacy two-phase descriptor keep it in `legacy` — the PP PE split is
/// lossy through two_phase_pipeline (fractions are resolved against the
/// array size), so the two-phase adapter needs the original descriptor to
/// return bit-identical results.
struct PipelineCandidate {
  std::size_t chain_index = 0;  // which searched chain this binds to
  std::vector<IntraPhaseDataflow> phases;
  std::vector<InterPhase> boundaries;   // phases.size() - 1
  std::vector<double> pe_fractions;     // empty (= equal) or one per phase
  std::optional<DataflowDescriptor> legacy;

  [[nodiscard]] PipelineBindingView view() const {
    return {phases, boundaries, pe_fractions};
  }
  /// Deterministic ranking key: the legacy descriptor string when lowered
  /// from one (so the two-phase adapter ties break exactly like
  /// search_mappings), otherwise the chain notation plus PP shares.
  [[nodiscard]] std::string key() const;
};

struct PipelineSearchOptions {
  Objective objective = Objective::kRuntime;
  bool include_seq = true;
  bool include_sp_generic = true;
  bool include_sp_optimized = true;
  bool include_pp = true;
  std::vector<double> pp_fractions = {0.25, 0.5, 0.75};
  /// Minimum static utilization of generated tilings (1.0 = exactly full).
  double min_static_utilization = 0.5;
  /// Cap on evaluated candidates (deterministic stride subsampling over the
  /// concatenated per-chain populations); 0 = all.
  std::size_t max_candidates = 0;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::size_t top_k = 16;
  /// Lossless lower-bound pruning for the chosen objective (see the header
  /// comment): a deterministic seed of `prune_seed` candidates with the
  /// smallest bounds is evaluated first, and every remaining candidate
  /// whose bound exceeds the seed incumbent's score is culled unevaluated.
  /// The best candidate (and all its score ties) is identical to the
  /// unpruned search; ranked entries strictly worse than the incumbent may
  /// be dropped. Deterministic across thread counts.
  bool prune = false;
  std::size_t prune_seed = 64;
  EvalPath eval_path = EvalPath::kBatched;
  /// Seed the population with the Table V pattern compositions per chain
  /// (boundaries take the pattern's strategy where the chain admits it,
  /// tiles are bound per phase by the pattern's style). Seeds ride along as
  /// extra candidates: always evaluated, never culled, outside the cap —
  /// a budgeted sweep can never lose to a Table V composition.
  bool seed_table5 = true;
  /// Fully bound candidates appended to the population, always evaluated
  /// (outside the cap, exempt from the cull — bound treated as zero).
  /// chain_index must address one of the searched chains.
  std::vector<PipelineCandidate> extra_candidates;
  /// Number of leading chains whose population is enumerated; chains at
  /// index >= this are bind-only targets for extra candidates. 0 = all.
  /// (The two-phase adapter uses this to evaluate CA extras without
  /// enumerating the CA space when include_ca is off.)
  std::size_t enumerate_chains = 0;
  /// When non-null, the sweep emits enumerate/prune/evaluate/rank stage
  /// spans (wall-clock, category "dse") into this collector. Null = zero
  /// instrumentation cost.
  obs::TraceCollector* trace = nullptr;
};

struct RankedPipelineCandidate {
  PipelineCandidate candidate;
  std::string key;  // PipelineCandidate::key(), cached for ranking
  std::uint64_t cycles = 0;
  double on_chip_pj = 0.0;
  double score = 0.0;
};

/// Total order used to rank candidates: (score, cycles, on_chip_pj, key) —
/// the N-phase mirror of candidate_order.
[[nodiscard]] bool pipeline_candidate_order(const RankedPipelineCandidate& a,
                                            const RankedPipelineCandidate& b);

struct PipelineSearchResult {
  std::vector<RankedPipelineCandidate> ranked;  // best first, top_k entries
  std::vector<RankedPipelineCandidate> pareto;  // cycles-ascending frontier
  std::size_t generated = 0;  // population + extras, before subsampling
  std::size_t evaluated = 0;  // candidates that produced a feasible result
  std::size_t pruned = 0;     // culled by the lower bound, never run
  EvalStats eval;             // evaluation-core counters for this sweep

  [[nodiscard]] const RankedPipelineCandidate& best() const;
};

/// Searches the pipeline mapping space of one or more chains on a workload.
/// The population is the concatenation of the per-chain populations in
/// chain order (classic two-phase chains delegate to the legacy enumerator;
/// general chains run the N-phase walker). `shared_context`, when non-null,
/// must be a WorkloadContext over `workload.adjacency`.
[[nodiscard]] PipelineSearchResult search_pipeline_mappings(
    const Omega& omega, const GnnWorkload& workload,
    std::span<const PipelineChainSpec> chains,
    const PipelineSearchOptions& options = {},
    const WorkloadContext* shared_context = nullptr);

/// Single-chain convenience overload.
[[nodiscard]] PipelineSearchResult search_pipeline_mappings(
    const Omega& omega, const GnnWorkload& workload,
    const PipelineChainSpec& chain, const PipelineSearchOptions& options = {},
    const WorkloadContext* shared_context = nullptr);

/// Chain-fixed per-phase quantities the pruning bounds consume.
struct PipelinePhaseWork {
  std::uint64_t macs = 0;           // compulsory MACs of the phase
  std::uint64_t meta_gb_elems = 0;  // compulsory CSR ids+pointers (GB reads)
  bool sparse = false;              // runs on the SpMM engine (spmm/spgemm)
};

/// Per-phase compulsory work of a chain on a workload: sparse-dense phases
/// do edges * width MACs and read >= edges + V CSR metadata elements;
/// dense phases do V * F * G MACs; sparse-weight phases walk the synthetic
/// W^T pattern (sparse_weight_nnz_per_row) transposed. Throws on a chain
/// that fails chain_error.
[[nodiscard]] std::vector<PipelinePhaseWork> pipeline_phase_work(
    const PipelineChainSpec& chain, const GnnWorkload& workload);

/// Ideal-MAC cycle lower bound generalized to N phases: each phase needs at
/// least ceil(macs / its PEs); a PP pair splits the array with the same
/// llround-then-clamp split the evaluator performs and composes by max,
/// everything else composes by sum. For a classic two-phase candidate this
/// reproduces ideal_mac_cycle_bound exactly.
[[nodiscard]] std::uint64_t pipeline_mac_cycle_bound(
    std::span<const PipelinePhaseWork> work, const PipelineCandidate& c,
    std::size_t pes);

/// Compulsory-traffic energy lower bound of a chain (candidate-independent:
/// MAC counts and CSR metadata do not depend on the binding): sparse phases
/// pay 4 RF accesses per MAC (3 reads + accumulator write) plus one GB read
/// per metadata element, dense phases 2 RF reads per MAC. Every evaluated
/// on_chip_pj is >= this bound, which is what makes energy/EDP pruning
/// lossless.
[[nodiscard]] double pipeline_energy_lower_bound(
    std::span<const PipelinePhaseWork> work, const EnergyModel& em);

/// The full candidate population of one chain, in enumeration order —
/// exactly what search_pipeline_mappings samples from. Exposed for tests
/// and benchmarks. `chain_index` is stamped on every candidate.
[[nodiscard]] std::vector<PipelineCandidate> enumerate_pipeline_candidates(
    const PipelineChainSpec& chain, std::size_t chain_index,
    const GnnWorkload& workload, std::size_t pes,
    const PipelineSearchOptions& options = {});

/// Lowers a legacy two-phase descriptor into a PipelineCandidate for
/// `chain_index` (the PP PE split resolved against `num_pes`, matching the
/// evaluator), keeping the descriptor in `legacy` so the two-phase adapter
/// can return it bit-identically.
[[nodiscard]] PipelineCandidate lower_two_phase_candidate(
    const DataflowDescriptor& df, std::size_t chain_index,
    const LayerSpec& layer, std::size_t num_pes);

/// The Table V seed compositions for a chain (what seed_table5 appends):
/// per pattern, each phase's dataflow is bound by the pattern's style at
/// the phase's PE budget, boundaries take the pattern's strategy demoted to
/// Seq where the chain cannot admit it (adjacent chunking, sparse-weight
/// consumers, single-PE arrays). Patterns that cannot bind or validate on
/// this chain are skipped.
[[nodiscard]] std::vector<PipelineCandidate> table5_pipeline_seeds(
    const Omega& omega, const GnnWorkload& workload,
    const PipelineChainSpec& chain, std::size_t chain_index);

}  // namespace omega
