#include "dse/model_search.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/saturate.hpp"

namespace omega {

namespace {

double model_score(Objective obj, std::uint64_t cycles, double pj) {
  switch (obj) {
    case Objective::kRuntime: return static_cast<double>(cycles);
    case Objective::kEnergy: return pj;
    case Objective::kEnergyDelayProduct:
      return static_cast<double>(cycles) * pj;
  }
  return static_cast<double>(cycles);
}

ModelCandidate make_combo(const std::vector<LayerSearchResult>& layers,
                          const std::vector<std::size_t>& idx, Objective obj) {
  ModelCandidate mc;
  mc.per_layer.reserve(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const Candidate& c = layers[l].search.ranked[idx[l]];
    mc.per_layer.push_back(c.dataflow);
    mc.total_cycles = sat_add_u64(mc.total_cycles, c.cycles);
    // omega-lint: allow(float-accum): layer order is fixed (sequential l loop), sum is deterministic
    mc.total_on_chip_pj += c.on_chip_pj;
  }
  mc.composed_cycles = mc.total_cycles;
  mc.score = model_score(obj, mc.composed_cycles, mc.total_on_chip_pj);
  return mc;
}

/// Deterministic total order on model candidates, mirroring
/// candidate_order for single layers. The composed makespan ranks before
/// the layer sum so pipelined and sequential modes share one order.
bool model_candidate_order(const ModelCandidate& a, const ModelCandidate& b) {
  if (a.score != b.score) return a.score < b.score;
  if (a.composed_cycles != b.composed_cycles) {
    return a.composed_cycles < b.composed_cycles;
  }
  if (a.total_cycles != b.total_cycles) return a.total_cycles < b.total_cycles;
  if (a.total_on_chip_pj != b.total_on_chip_pj) {
    return a.total_on_chip_pj < b.total_on_chip_pj;
  }
  return a.to_string() < b.to_string();
}

/// Best-first enumeration of per-layer ranked-list combinations: pops the
/// frontier assignment with the smallest sum of per-layer scores and pushes
/// its single-index successors. The per-layer score sum equals the model
/// score for the additive objectives (runtime, energy) and is the guide
/// heuristic for EDP; the emitted set is re-ranked by the true model score
/// afterwards either way.
std::vector<ModelCandidate> enumerate_combos(
    const std::vector<LayerSearchResult>& layers, Objective obj,
    std::size_t limit) {
  const std::size_t num_layers = layers.size();
  std::vector<ModelCandidate> out;
  for (const auto& l : layers) {
    if (l.search.ranked.empty()) return out;  // no feasible mapping somewhere
  }

  using Assignment = std::vector<std::size_t>;
  const auto cost = [&](const Assignment& idx) {
    double s = 0.0;
    for (std::size_t l = 0; l < num_layers; ++l) {
      s += layers[l].search.ranked[idx[l]].score;
    }
    return s;
  };

  // Ordered frontier (cost, assignment): lexicographic assignment tie-break
  // keeps the pop order deterministic.
  std::set<std::pair<double, Assignment>> frontier;
  std::set<Assignment> seen;
  const Assignment origin(num_layers, 0);
  frontier.emplace(cost(origin), origin);
  seen.insert(origin);
  while (!frontier.empty() && out.size() < limit) {
    const auto [c, idx] = *frontier.begin();
    frontier.erase(frontier.begin());
    out.push_back(make_combo(layers, idx, obj));
    for (std::size_t l = 0; l < num_layers; ++l) {
      Assignment next = idx;
      if (++next[l] >= layers[l].search.ranked.size()) continue;
      if (seen.insert(next).second) frontier.emplace(cost(next), next);
    }
  }
  return out;
}

}  // namespace

const char* to_string(BudgetAllocation a) {
  switch (a) {
    case BudgetAllocation::kEven: return "even";
    case BudgetAllocation::kMacWeighted: return "mac";
  }
  return "?";
}

std::string ModelCandidate::to_string() const {
  std::string s;
  for (std::size_t l = 0; l < per_layer.size(); ++l) {
    if (l > 0) s += " | ";
    s += per_layer[l].to_string();
  }
  return s;
}

const ModelCandidate& ModelSearchResult::best() const {
  OMEGA_CHECK(!ranked.empty(),
              "model search produced no feasible per-layer mapping");
  return ranked.front();
}

ModelSearchResult search_model_mappings(const Omega& omega,
                                        const GnnWorkload& workload,
                                        const GnnModelSpec& spec,
                                        const ModelSearchOptions& options,
                                        const WorkloadContext* shared_context) {
  const std::size_t num_layers = spec.num_layers();
  OMEGA_CHECK(num_layers >= 1, "model needs at least one layer");
  OMEGA_CHECK(workload.in_features == spec.feature_widths.front(),
              "workload feature width must match the model's first layer");

  ModelSearchResult out;
  out.compose = options.compose;
  out.layers.reserve(num_layers);

  // Per-layer feature widths ride in LayerSpec::in_features, so every
  // layer's sweep runs against the same workload object — which is what
  // lets one WorkloadContext (keyed by pointer identity to the adjacency)
  // serve all layers, whether built here or handed in warm by the caller.
  std::optional<WorkloadContext> own_context;
  if (shared_context == nullptr) own_context.emplace(workload.adjacency);
  const WorkloadContext& context =
      shared_context != nullptr ? *shared_context : *own_context;

  // MAC-weighted budget split: layer l's ideal MAC count under AC order,
  // E * F_l (Aggregation) + V * F_l * G_l (Combination). Proportions are
  // what matters, so the per-PE division of ideal_mac_cycle_bound cancels.
  // Saturating products: layer widths arrive untrusted from the service
  // protocol, and a wrapped weight would misdirect the whole model budget.
  std::vector<std::uint64_t> mac_weight(num_layers, 1);
  for (std::size_t l = 0; l < num_layers; ++l) {
    const GnnLayerSpec layer = spec.layer_spec(l);
    mac_weight[l] = std::max<std::uint64_t>(
        1, sat_add_u64(sat_mul_u64(workload.num_edges(), layer.in_features),
                       sat_mul_u64(sat_mul_u64(workload.num_vertices(),
                                               layer.in_features),
                                   layer.out_features)));
  }

  // omega-lint: allow(wall-clock): explicit user-supplied time budget; budget_ms=0 (the default) never reads it
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&] {
    return std::chrono::duration<double, std::milli>(
               // omega-lint: allow(wall-clock): explicit user-supplied time budget
               std::chrono::steady_clock::now() - start)
        .count();
  };

  std::size_t spent = 0;  // fully evaluated candidates so far
  for (std::size_t l = 0; l < num_layers; ++l) {
    const GnnLayerSpec layer = spec.layer_spec(l);
    const LayerSpec layer_shape{layer.out_features, layer.in_features};

    SearchOptions so = options.layer;
    so.prune = options.prune;
    if (!layer.allows_phase_order(PhaseOrder::kCA)) so.include_ca = false;
    if (options.seed_table5) {
      // A budgeted subsample can miss the exact binding a fixed pattern
      // would use; seeding the nine Table V bindings guarantees the
      // heterogeneous winner never loses to the homogeneous baseline.
      const WorkloadDims dims = dims_of(workload, layer_shape);
      for (const auto& pattern : table5_patterns()) {
        if (!layer.allows_phase_order(pattern.phase_order)) continue;
        try {
          so.extra_candidates.push_back(
              bind_tiles(pattern, dims, omega.config()));
        } catch (const Error&) {
          // pattern unbindable on this workload/substrate; skip
        }
      }
    }

    // The floor is clamped to >= 1: a 0 share would round-trip through
    // max_candidates == 0, which search_mappings reads as "unlimited" —
    // the exact opposite of an exhausted budget.
    const std::size_t floor_cap =
        std::max<std::size_t>(options.fallback_candidates, 1);
    if (options.max_total_candidates > 0) {
      const std::size_t remaining =
          options.max_total_candidates > spent
              ? options.max_total_candidates - spent
              : 0;
      if (remaining == 0) out.budget_exhausted = true;
      std::size_t share = remaining / (num_layers - l);
      if (options.budget_allocation == BudgetAllocation::kMacWeighted) {
        // Weight by the remaining layers' ideal MACs so the dominant layer
        // (typically layer 0 of a GCN, whose F is the raw feature width)
        // gets the search effort its share of the model cost warrants.
        // The budget arrives untrusted from the service protocol, so the
        // budget x MACs product runs in 128-bit — a u64 product would wrap
        // for huge budgets and hand the dominant layer a garbage share.
        // Recomputed against `remaining` each layer so unused floor slack
        // flows downstream.
        std::uint64_t rest = 0;
        for (std::size_t j = l; j < num_layers; ++j) {
          rest = sat_add_u64(rest, mac_weight[j]);
        }
        share = static_cast<std::size_t>(
            static_cast<unsigned __int128>(remaining) * mac_weight[l] /
            std::max<std::uint64_t>(rest, 1));
      }
      share = std::max(floor_cap, share);
      so.max_candidates =
          so.max_candidates > 0 ? std::min(so.max_candidates, share) : share;
    }
    if (options.time_budget_ms > 0.0 && l > 0 &&
        elapsed_ms() > options.time_budget_ms) {
      out.budget_exhausted = true;
      so.max_candidates = so.max_candidates > 0
                              ? std::min(so.max_candidates, floor_cap)
                              : floor_cap;
    }

    LayerSearchResult lr;
    lr.spec = layer;
    lr.search = search_mappings(omega, workload, layer_shape, so, &context);
    spent += lr.search.evaluated;
    out.generated += lr.search.generated;
    out.evaluated += lr.search.evaluated;
    out.pruned += lr.search.pruned;
    out.eval.merge(lr.search.eval);
    out.layers.push_back(std::move(lr));
  }

  // Model-level ranked list and Pareto frontier over the best-first
  // combination set. Enumerating a few multiples of top_k is enough to
  // expose the frontier's shape without walking the full cross product.
  // Pipelined composition re-scores combinations by composed makespan, for
  // which the layer-sum order is only a guide, so it widens the enumerated
  // prefix — a combination whose sum ranks below the prefix is still out of
  // reach (documented on ModelSearchOptions::compose).
  const std::size_t combo_limit =
      options.compose == ModelCompose::kPipelined
          ? std::max<std::size_t>(options.top_k * 32, 512)
          : std::max<std::size_t>(options.top_k * 8, 128);
  std::vector<ModelCandidate> combos =
      enumerate_combos(out.layers, options.layer.objective, combo_limit);

  if (options.compose == ModelCompose::kPipelined && !combos.empty()) {
    // Re-rank the enumerated combinations by their *composed* makespan:
    // the per-layer score sum that guided enumeration is only an upper
    // bound once boundaries overlap. Each combo's layers are re-run
    // through the warm context (the sweeps above already populated the
    // phase memo, so these are mostly cache hits) to recover the chunk
    // timelines the composer needs. Results are stored by index, so the
    // parallel evaluation is thread-count-invariant.
    const ModelComposer composer(omega.config(), workload.adjacency);
    std::vector<LayerSpec> shapes;
    shapes.reserve(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
      const GnnLayerSpec layer = spec.layer_spec(l);
      shapes.push_back(LayerSpec{layer.out_features, layer.in_features});
    }
    parallel_blocks(
        combos.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t c = begin; c < end; ++c) {
            ModelCandidate& mc = combos[c];
            std::vector<RunResult> runs;
            runs.reserve(num_layers);
            try {
              for (std::size_t l = 0; l < num_layers; ++l) {
                runs.push_back(
                    omega.run(workload, shapes[l], mc.per_layer[l], context));
              }
            } catch (const Error&) {
              // The sweep evaluated this descriptor successfully, so a
              // re-run cannot throw; keep the sequential sum if it somehow
              // does rather than losing the combo.
              continue;
            }
            const ModelComposition comp =
                composer.compose(runs, ModelCompose::kPipelined);
            mc.composed_cycles = comp.cycles;
            mc.overlapped_boundaries = comp.overlapped_boundaries;
            mc.score = model_score(options.layer.objective,
                                   mc.composed_cycles, mc.total_on_chip_pj);
          }
        },
        options.layer.threads);
  }
  std::sort(combos.begin(), combos.end(), model_candidate_order);

  std::vector<ModelCandidate> by_cycles = combos;
  std::sort(by_cycles.begin(), by_cycles.end(),
            [](const ModelCandidate& a, const ModelCandidate& b) {
              if (a.composed_cycles != b.composed_cycles) {
                return a.composed_cycles < b.composed_cycles;
              }
              if (a.total_on_chip_pj != b.total_on_chip_pj) {
                return a.total_on_chip_pj < b.total_on_chip_pj;
              }
              return a.to_string() < b.to_string();
            });
  double best_energy = std::numeric_limits<double>::infinity();
  for (auto& c : by_cycles) {
    if (c.total_on_chip_pj < best_energy) {
      best_energy = c.total_on_chip_pj;
      out.pareto.push_back(std::move(c));
    }
  }

  if (combos.size() > options.top_k) combos.resize(options.top_k);
  out.ranked = std::move(combos);
  return out;
}

std::optional<FixedPatternRun> best_fixed_pattern(const Omega& omega,
                                                  const GnnWorkload& workload,
                                                  const GnnModelSpec& spec,
                                                  ModelCompose compose) {
  std::optional<FixedPatternRun> best;
  for (const auto& pattern : table5_patterns()) {
    try {
      ModelRunResult r = run_model(omega, workload, spec, pattern, compose);
      if (!best || r.total_cycles < best->result.total_cycles) {
        best = FixedPatternRun{pattern.name, std::move(r)};
      }
    } catch (const Error&) {
      // Pattern infeasible on this substrate/model (e.g. a phase order the
      // model forbids); the baseline is the best of the ones that fit.
    }
  }
  return best;
}

}  // namespace omega
