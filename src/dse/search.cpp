#include "dse/search.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "dataflow/enumerate.hpp"
#include "dse/pipeline_search.hpp"
#include "util/error.hpp"

namespace omega {

const char* to_string(Objective o) {
  switch (o) {
    case Objective::kRuntime: return "runtime";
    case Objective::kEnergy: return "energy";
    case Objective::kEnergyDelayProduct: return "EDP";
  }
  return "?";
}

const char* to_string(EvalPath p) {
  switch (p) {
    case EvalPath::kBatched: return "batched";
    case EvalPath::kDelta: return "delta";
    case EvalPath::kScalar: return "scalar";
  }
  return "?";
}

void EvalStats::merge(const EvalStats& other) {
  term_requests += other.term_requests;
  term_builds += other.term_builds;
  delta_hits += other.delta_hits;
  batches += other.batches;
  batched_candidates += other.batched_candidates;
  max_batch = std::max(max_batch, other.max_batch);
}

const Candidate& SearchResult::best() const {
  OMEGA_CHECK(!ranked.empty(), "search produced no feasible mapping");
  return ranked.front();
}

std::vector<std::array<std::size_t, 3>> enumerate_tile_triples(
    std::size_t budget, std::size_t cap_a, std::size_t cap_b,
    std::size_t cap_c, double min_util) {
  std::vector<std::array<std::size_t, 3>> out;
  const auto floor_target =
      static_cast<double>(budget) * std::clamp(min_util, 0.0, 1.0);
  for (std::size_t a = 1; a <= std::min(budget, cap_a); a *= 2) {
    for (std::size_t b = 1; a * b <= budget && b <= cap_b; b *= 2) {
      for (std::size_t c = 1; a * b * c <= budget && c <= cap_c; c *= 2) {
        const std::size_t product = a * b * c;
        // Keep only maximal points: no dimension can grow further within
        // the budget and caps. The utilization floor filters among them but
        // is waived when the caps themselves block growth (tiny workloads).
        const bool cap_blocked =
            a * 2 > cap_a && b * 2 > cap_b && c * 2 > cap_c;
        const bool saturated = (2 * product > budget) || cap_blocked;
        if (!saturated) continue;
        if (static_cast<double>(product) >= floor_target || cap_blocked) {
          out.push_back({a, b, c});
        }
      }
    }
  }
  return out;
}

namespace {

std::size_t cap_of(std::size_t extent) {
  return std::max<std::size_t>(1, std::bit_ceil(std::max<std::size_t>(extent, 1)));
}

/// Generates bound descriptors for one (inter, order-pair) choice.
void generate_for_pair(const SearchOptions& opt, const WorkloadDims& dims,
                       std::size_t pes, InterPhase inter, PhaseOrder po,
                       const LoopOrder& agg_order, const LoopOrder& cmb_order,
                       std::vector<DataflowDescriptor>& out) {
  const std::size_t agg_feat =
      po == PhaseOrder::kAC ? dims.in_features : dims.out_features;
  auto make = [&](const TileSizes& at, const TileSizes& ct, double frac) {
    DataflowDescriptor df;
    df.inter = inter;
    df.phase_order = po;
    df.pp_agg_pe_fraction = frac;
    df.agg.phase = GnnPhase::kAggregation;
    df.agg.order = agg_order;
    df.agg.tiles = at;
    df.cmb.phase = GnnPhase::kCombination;
    df.cmb.order = cmb_order;
    df.cmb.tiles = ct;
    if (!df.validation_error()) out.push_back(df);
  };

  // PP splits the PE array between the phases, which needs at least one PE
  // on each side; on a single-PE accelerator the clamp below would be
  // clamp(x, 1, 0) — undefined behavior — so PP generation is skipped.
  if (inter == InterPhase::kParallelPipeline && pes < 2) return;

  const std::vector<double> fractions =
      inter == InterPhase::kParallelPipeline ? opt.pp_fractions
                                             : std::vector<double>{1.0};
  for (const double frac : fractions) {
    std::size_t pes_agg = pes;
    std::size_t pes_cmb = pes;
    if (inter == InterPhase::kParallelPipeline) {
      pes_agg = std::clamp<std::size_t>(
          static_cast<std::size_t>(static_cast<double>(pes) * frac), 1,
          pes - 1);
      pes_cmb = pes - pes_agg;
    }
    const auto agg_tilings = enumerate_tile_triples(
        pes_agg, cap_of(dims.vertices),
        cap_of(std::max<std::size_t>(dims.max_degree, 1)), cap_of(agg_feat),
        opt.min_static_utilization);
    if (inter == InterPhase::kSPOptimized) {
      // Tiles tied across phases: T_N = 1, T_G = 1 (AC row-2 template).
      for (const auto& [tv, tn, tf] : agg_tilings) {
        if (tn != 1) continue;
        TileSizes at;
        at.v = tv;
        at.n = 1;
        at.f = tf;
        TileSizes ct;
        ct.v = tv;
        ct.f = tf;
        ct.g = 1;
        make(at, ct, frac);
      }
      continue;
    }
    const auto cmb_tilings = enumerate_tile_triples(
        pes_cmb, cap_of(dims.vertices), cap_of(dims.in_features),
        cap_of(dims.out_features), opt.min_static_utilization);
    for (const auto& [av, an, af] : agg_tilings) {
      TileSizes at;
      at.v = av;
      at.n = an;
      at.f = af;
      for (const auto& [cv, cf, cg] : cmb_tilings) {
        TileSizes ct;
        ct.v = cv;
        ct.f = cf;
        ct.g = cg;
        make(at, ct, frac);
      }
    }
  }
}

std::uint64_t ceil_div_u64(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? a : (a + b - 1) / b;
}

}  // namespace

bool candidate_order(const Candidate& a, const Candidate& b) {
  if (a.score != b.score) return a.score < b.score;
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  if (a.on_chip_pj != b.on_chip_pj) return a.on_chip_pj < b.on_chip_pj;
  return a.dataflow.to_string() < b.dataflow.to_string();
}

std::uint64_t ideal_mac_cycle_bound(const DataflowDescriptor& df,
                                    std::size_t pes, std::uint64_t edges,
                                    const WorkloadDims& dims) {
  const bool ac = df.phase_order == PhaseOrder::kAC;
  const std::uint64_t agg_macs =
      edges * static_cast<std::uint64_t>(ac ? dims.in_features
                                            : dims.out_features);
  const std::uint64_t cmb_macs = static_cast<std::uint64_t>(dims.vertices) *
                                 dims.in_features * dims.out_features;
  if (df.inter == InterPhase::kParallelPipeline && pes >= 2) {
    // Same PE split Omega::run_impl performs.
    const std::size_t pes_agg = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(static_cast<double>(pes) *
                                              df.pp_agg_pe_fraction)),
        1, pes - 1);
    const std::size_t pes_cmb = pes - pes_agg;
    return std::max(ceil_div_u64(agg_macs, pes_agg),
                    ceil_div_u64(cmb_macs, pes_cmb));
  }
  return ceil_div_u64(agg_macs, pes) + ceil_div_u64(cmb_macs, pes);
}

std::vector<DataflowDescriptor> enumerate_search_candidates(
    const SearchOptions& options, const WorkloadDims& dims, std::size_t pes) {
  std::vector<DataflowDescriptor> candidates;
  std::vector<PhaseOrder> orders{PhaseOrder::kAC};
  if (options.include_ca) orders.push_back(PhaseOrder::kCA);

  for (const PhaseOrder po : orders) {
    if (options.include_seq) {
      for (const auto& ao : all_loop_orders(GnnPhase::kAggregation)) {
        for (const auto& co : all_loop_orders(GnnPhase::kCombination)) {
          generate_for_pair(options, dims, pes, InterPhase::kSequential, po,
                            ao, co, candidates);
        }
      }
    }
    const auto pairs = feasible_pipeline_pairs(po);
    for (const auto& pair : pairs) {
      if (options.include_sp_generic) {
        generate_for_pair(options, dims, pes, InterPhase::kSPGeneric, po,
                          pair.agg, pair.cmb, candidates);
      }
      if (options.include_pp) {
        generate_for_pair(options, dims, pes, InterPhase::kParallelPipeline,
                          po, pair.agg, pair.cmb, candidates);
      }
    }
    if (options.include_sp_optimized) {
      const std::vector<std::pair<std::string, std::string>> templates =
          po == PhaseOrder::kAC
              ? std::vector<std::pair<std::string, std::string>>{{"VFN", "VFG"},
                                                                 {"FVN", "FVG"}}
              : std::vector<std::pair<std::string, std::string>>{{"NFV", "VGF"},
                                                                 {"FNV", "GVF"}};
      for (const auto& [a, c] : templates) {
        generate_for_pair(options, dims, pes, InterPhase::kSPOptimized, po,
                          LoopOrder::parse(a, GnnPhase::kAggregation),
                          LoopOrder::parse(c, GnnPhase::kCombination),
                          candidates);
      }
    }
  }
  return candidates;
}

// Thin adapter over the N-phase pipeline searcher: the two-phase layer is
// expressed as one chain per phase order, the legacy options map onto
// PipelineSearchOptions, and ranked/Pareto entries come back through each
// candidate's preserved legacy descriptor — bit-identical to the historic
// implementation (tests/pipeline_dse_test.cpp pins the parity).
SearchResult search_mappings(const Omega& omega, const GnnWorkload& workload,
                             const LayerSpec& layer,
                             const SearchOptions& options,
                             const WorkloadContext* shared_context) {
  const std::size_t pes = omega.config().num_pes;

  // Chain projections of the two phase orders. The probe descriptor only
  // fixes engines and widths — Seq with all-temporal unit tiles is valid for
  // any workload, and only its chain projection survives.
  DataflowDescriptor probe;
  probe.inter = InterPhase::kSequential;
  probe.phase_order = PhaseOrder::kAC;
  probe.agg.phase = GnnPhase::kAggregation;
  probe.agg.order = LoopOrder(Dim::kV, Dim::kN, Dim::kF);
  probe.cmb.phase = GnnPhase::kCombination;
  probe.cmb.order = LoopOrder(Dim::kV, Dim::kF, Dim::kG);
  std::vector<PipelineChainSpec> chains;
  chains.push_back(PipelineChainSpec::of(two_phase_pipeline(probe, layer)));
  bool has_ca_extra = false;
  for (const DataflowDescriptor& df : options.extra_candidates) {
    has_ca_extra |= df.phase_order == PhaseOrder::kCA;
  }
  if (options.include_ca || has_ca_extra) {
    probe.phase_order = PhaseOrder::kCA;
    chains.push_back(PipelineChainSpec::of(two_phase_pipeline(probe, layer)));
  }

  PipelineSearchOptions popt;
  popt.objective = options.objective;
  popt.include_seq = options.include_seq;
  popt.include_sp_generic = options.include_sp_generic;
  popt.include_sp_optimized = options.include_sp_optimized;
  popt.include_pp = options.include_pp;
  popt.pp_fractions = options.pp_fractions;
  popt.min_static_utilization = options.min_static_utilization;
  popt.max_candidates = options.max_candidates;
  popt.threads = options.threads;
  popt.top_k = options.top_k;
  // The legacy contract prunes the runtime objective only; the pipeline
  // searcher prunes every objective, so gate here.
  popt.prune = options.prune && options.objective == Objective::kRuntime;
  popt.prune_seed = options.prune_seed;
  popt.eval_path = options.eval_path;
  popt.trace = options.trace;
  popt.seed_table5 = false;
  // CA extras without include_ca evaluate against a bind-only CA chain that
  // contributes no enumerated population.
  popt.enumerate_chains = options.include_ca ? 0 : 1;
  for (const DataflowDescriptor& df : options.extra_candidates) {
    const std::size_t chain_index = df.phase_order == PhaseOrder::kCA ? 1 : 0;
    popt.extra_candidates.push_back(
        lower_two_phase_candidate(df, chain_index, layer, pes));
  }

  const PipelineSearchResult pr = search_pipeline_mappings(
      omega, workload, chains, popt, shared_context);

  SearchResult result;
  result.generated = pr.generated;
  result.evaluated = pr.evaluated;
  result.pruned = pr.pruned;
  result.eval = pr.eval;
  const auto convert = [](const RankedPipelineCandidate& rc) {
    OMEGA_CHECK(rc.candidate.legacy.has_value(),
                "two-phase adapter: candidate without a legacy descriptor");
    Candidate c;
    c.dataflow = *rc.candidate.legacy;
    c.cycles = rc.cycles;
    c.on_chip_pj = rc.on_chip_pj;
    c.score = rc.score;
    return c;
  };
  result.ranked.reserve(pr.ranked.size());
  for (const RankedPipelineCandidate& rc : pr.ranked) {
    result.ranked.push_back(convert(rc));
  }
  result.pareto.reserve(pr.pareto.size());
  for (const RankedPipelineCandidate& rc : pr.pareto) {
    result.pareto.push_back(convert(rc));
  }
  return result;
}

}  // namespace omega
