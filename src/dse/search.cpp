#include "dse/search.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "dataflow/enumerate.hpp"
#include "engine/eval_core.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace omega {

const char* to_string(Objective o) {
  switch (o) {
    case Objective::kRuntime: return "runtime";
    case Objective::kEnergy: return "energy";
    case Objective::kEnergyDelayProduct: return "EDP";
  }
  return "?";
}

const char* to_string(EvalPath p) {
  switch (p) {
    case EvalPath::kBatched: return "batched";
    case EvalPath::kDelta: return "delta";
    case EvalPath::kScalar: return "scalar";
  }
  return "?";
}

void EvalStats::merge(const EvalStats& other) {
  term_requests += other.term_requests;
  term_builds += other.term_builds;
  delta_hits += other.delta_hits;
  batches += other.batches;
  batched_candidates += other.batched_candidates;
  max_batch = std::max(max_batch, other.max_batch);
}

const Candidate& SearchResult::best() const {
  OMEGA_CHECK(!ranked.empty(), "search produced no feasible mapping");
  return ranked.front();
}

std::vector<std::array<std::size_t, 3>> enumerate_tile_triples(
    std::size_t budget, std::size_t cap_a, std::size_t cap_b,
    std::size_t cap_c, double min_util) {
  std::vector<std::array<std::size_t, 3>> out;
  const auto floor_target =
      static_cast<double>(budget) * std::clamp(min_util, 0.0, 1.0);
  for (std::size_t a = 1; a <= std::min(budget, cap_a); a *= 2) {
    for (std::size_t b = 1; a * b <= budget && b <= cap_b; b *= 2) {
      for (std::size_t c = 1; a * b * c <= budget && c <= cap_c; c *= 2) {
        const std::size_t product = a * b * c;
        // Keep only maximal points: no dimension can grow further within
        // the budget and caps. The utilization floor filters among them but
        // is waived when the caps themselves block growth (tiny workloads).
        const bool cap_blocked =
            a * 2 > cap_a && b * 2 > cap_b && c * 2 > cap_c;
        const bool saturated = (2 * product > budget) || cap_blocked;
        if (!saturated) continue;
        if (static_cast<double>(product) >= floor_target || cap_blocked) {
          out.push_back({a, b, c});
        }
      }
    }
  }
  return out;
}

namespace {

std::size_t cap_of(std::size_t extent) {
  return std::max<std::size_t>(1, std::bit_ceil(std::max<std::size_t>(extent, 1)));
}

/// Generates bound descriptors for one (inter, order-pair) choice.
void generate_for_pair(const SearchOptions& opt, const WorkloadDims& dims,
                       std::size_t pes, InterPhase inter, PhaseOrder po,
                       const LoopOrder& agg_order, const LoopOrder& cmb_order,
                       std::vector<DataflowDescriptor>& out) {
  const std::size_t agg_feat =
      po == PhaseOrder::kAC ? dims.in_features : dims.out_features;
  auto make = [&](const TileSizes& at, const TileSizes& ct, double frac) {
    DataflowDescriptor df;
    df.inter = inter;
    df.phase_order = po;
    df.pp_agg_pe_fraction = frac;
    df.agg.phase = GnnPhase::kAggregation;
    df.agg.order = agg_order;
    df.agg.tiles = at;
    df.cmb.phase = GnnPhase::kCombination;
    df.cmb.order = cmb_order;
    df.cmb.tiles = ct;
    if (!df.validation_error()) out.push_back(df);
  };

  // PP splits the PE array between the phases, which needs at least one PE
  // on each side; on a single-PE accelerator the clamp below would be
  // clamp(x, 1, 0) — undefined behavior — so PP generation is skipped.
  if (inter == InterPhase::kParallelPipeline && pes < 2) return;

  const std::vector<double> fractions =
      inter == InterPhase::kParallelPipeline ? opt.pp_fractions
                                             : std::vector<double>{1.0};
  for (const double frac : fractions) {
    std::size_t pes_agg = pes;
    std::size_t pes_cmb = pes;
    if (inter == InterPhase::kParallelPipeline) {
      pes_agg = std::clamp<std::size_t>(
          static_cast<std::size_t>(static_cast<double>(pes) * frac), 1,
          pes - 1);
      pes_cmb = pes - pes_agg;
    }
    const auto agg_tilings = enumerate_tile_triples(
        pes_agg, cap_of(dims.vertices),
        cap_of(std::max<std::size_t>(dims.max_degree, 1)), cap_of(agg_feat),
        opt.min_static_utilization);
    if (inter == InterPhase::kSPOptimized) {
      // Tiles tied across phases: T_N = 1, T_G = 1 (AC row-2 template).
      for (const auto& [tv, tn, tf] : agg_tilings) {
        if (tn != 1) continue;
        TileSizes at;
        at.v = tv;
        at.n = 1;
        at.f = tf;
        TileSizes ct;
        ct.v = tv;
        ct.f = tf;
        ct.g = 1;
        make(at, ct, frac);
      }
      continue;
    }
    const auto cmb_tilings = enumerate_tile_triples(
        pes_cmb, cap_of(dims.vertices), cap_of(dims.in_features),
        cap_of(dims.out_features), opt.min_static_utilization);
    for (const auto& [av, an, af] : agg_tilings) {
      TileSizes at;
      at.v = av;
      at.n = an;
      at.f = af;
      for (const auto& [cv, cf, cg] : cmb_tilings) {
        TileSizes ct;
        ct.v = cv;
        ct.f = cf;
        ct.g = cg;
        make(at, ct, frac);
      }
    }
  }
}

double score_of(Objective obj, std::uint64_t cycles, double pj) {
  switch (obj) {
    case Objective::kRuntime: return static_cast<double>(cycles);
    case Objective::kEnergy: return pj;
    case Objective::kEnergyDelayProduct:
      return static_cast<double>(cycles) * pj;
  }
  return static_cast<double>(cycles);
}

std::uint64_t ceil_div_u64(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? a : (a + b - 1) / b;
}

}  // namespace

bool candidate_order(const Candidate& a, const Candidate& b) {
  if (a.score != b.score) return a.score < b.score;
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  if (a.on_chip_pj != b.on_chip_pj) return a.on_chip_pj < b.on_chip_pj;
  return a.dataflow.to_string() < b.dataflow.to_string();
}

std::uint64_t ideal_mac_cycle_bound(const DataflowDescriptor& df,
                                    std::size_t pes, std::uint64_t edges,
                                    const WorkloadDims& dims) {
  const bool ac = df.phase_order == PhaseOrder::kAC;
  const std::uint64_t agg_macs =
      edges * static_cast<std::uint64_t>(ac ? dims.in_features
                                            : dims.out_features);
  const std::uint64_t cmb_macs = static_cast<std::uint64_t>(dims.vertices) *
                                 dims.in_features * dims.out_features;
  if (df.inter == InterPhase::kParallelPipeline && pes >= 2) {
    // Same PE split Omega::run_impl performs.
    const std::size_t pes_agg = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(static_cast<double>(pes) *
                                              df.pp_agg_pe_fraction)),
        1, pes - 1);
    const std::size_t pes_cmb = pes - pes_agg;
    return std::max(ceil_div_u64(agg_macs, pes_agg),
                    ceil_div_u64(cmb_macs, pes_cmb));
  }
  return ceil_div_u64(agg_macs, pes) + ceil_div_u64(cmb_macs, pes);
}

std::vector<DataflowDescriptor> enumerate_search_candidates(
    const SearchOptions& options, const WorkloadDims& dims, std::size_t pes) {
  std::vector<DataflowDescriptor> candidates;
  std::vector<PhaseOrder> orders{PhaseOrder::kAC};
  if (options.include_ca) orders.push_back(PhaseOrder::kCA);

  for (const PhaseOrder po : orders) {
    if (options.include_seq) {
      for (const auto& ao : all_loop_orders(GnnPhase::kAggregation)) {
        for (const auto& co : all_loop_orders(GnnPhase::kCombination)) {
          generate_for_pair(options, dims, pes, InterPhase::kSequential, po,
                            ao, co, candidates);
        }
      }
    }
    const auto pairs = feasible_pipeline_pairs(po);
    for (const auto& pair : pairs) {
      if (options.include_sp_generic) {
        generate_for_pair(options, dims, pes, InterPhase::kSPGeneric, po,
                          pair.agg, pair.cmb, candidates);
      }
      if (options.include_pp) {
        generate_for_pair(options, dims, pes, InterPhase::kParallelPipeline,
                          po, pair.agg, pair.cmb, candidates);
      }
    }
    if (options.include_sp_optimized) {
      const std::vector<std::pair<std::string, std::string>> templates =
          po == PhaseOrder::kAC
              ? std::vector<std::pair<std::string, std::string>>{{"VFN", "VFG"},
                                                                 {"FVN", "FVG"}}
              : std::vector<std::pair<std::string, std::string>>{{"NFV", "VGF"},
                                                                 {"FNV", "GVF"}};
      for (const auto& [a, c] : templates) {
        generate_for_pair(options, dims, pes, InterPhase::kSPOptimized, po,
                          LoopOrder::parse(a, GnnPhase::kAggregation),
                          LoopOrder::parse(c, GnnPhase::kCombination),
                          candidates);
      }
    }
  }
  return candidates;
}

SearchResult search_mappings(const Omega& omega, const GnnWorkload& workload,
                             const LayerSpec& layer,
                             const SearchOptions& options,
                             const WorkloadContext* shared_context) {
  const WorkloadDims dims = dims_of(workload, layer);
  const std::size_t pes = omega.config().num_pes;
  const std::vector<DataflowDescriptor> candidates =
      enumerate_search_candidates(options, dims, pes);

  SearchResult result;
  result.generated = candidates.size() + options.extra_candidates.size();

  // Deterministic stride subsampling under a candidate cap — by index, so
  // no DataflowDescriptor is copied to build the sample. Caller-provided
  // extra candidates ride along after the sample, outside the cap.
  const bool capped = options.max_candidates > 0 &&
                      candidates.size() > options.max_candidates;
  const std::size_t sampled =
      capped ? options.max_candidates : candidates.size();
  const std::size_t selected = sampled + options.extra_candidates.size();
  const auto candidate_at = [&](std::size_t i) -> const DataflowDescriptor& {
    if (i >= sampled) return options.extra_candidates[i - sampled];
    return candidates[capped ? stride_sample_index(i, candidates.size(),
                                                   sampled)
                             : i];
  };

  // Per-workload evaluation-reuse memo: one transpose, one lane schedule per
  // (walk, lanes, lane_width) across every candidate. Pre-warm the reverse
  // adjacency so sweep threads do not race to build it on first touch.
  // Model-level search hands in one context shared across every layer.
  std::optional<WorkloadContext> own_context;
  if (shared_context == nullptr) {
    own_context.emplace(workload.adjacency);
  }
  const WorkloadContext& context =
      shared_context != nullptr ? *shared_context : *own_context;
  for (std::size_t i = 0; i < selected; ++i) {
    const LoopOrder& order = candidate_at(i).agg.order;
    if (order.depth_of(Dim::kV) > order.depth_of(Dim::kN)) {  // scatter
      (void)context.reverse_graph();
      break;
    }
  }

  // Evaluation order: identity without pruning; with pruning, ascending
  // ideal-MAC bound with index tie-break, so the seed pass sees the most
  // promising candidates first and the incumbent is tight. Both orders are
  // deterministic functions of the candidate population alone.
  const bool prune =
      options.prune && options.objective == Objective::kRuntime && selected > 0;
  std::vector<std::size_t> eval_order(selected);
  std::iota(eval_order.begin(), eval_order.end(), std::size_t{0});
  std::vector<std::uint64_t> bounds;
  if (prune) {
    const std::uint64_t edges = workload.num_edges();
    bounds.resize(selected);
    for (std::size_t i = 0; i < selected; ++i) {
      // Extra candidates carry a zero bound: they sort to the front of the
      // evaluation order and the cull condition (bound <= incumbent) can
      // never drop them, honoring their "always evaluated" contract.
      bounds[i] = i >= sampled
                      ? 0
                      : ideal_mac_cycle_bound(candidate_at(i), pes, edges,
                                              dims);
    }
    std::sort(eval_order.begin(), eval_order.end(),
              [&](std::size_t a, std::size_t b) {
                if (bounds[a] != bounds[b]) return bounds[a] < bounds[b];
                return a < b;
              });
  }

  // Delta/batched evaluation core: one plan per (substrate, layer), cached
  // in the context, so model-level searches reuse terms across calls. The
  // plan-level counters are cumulative; snapshot them so result.eval reports
  // this sweep's share only.
  std::shared_ptr<const EvalPlan> plan;
  std::uint64_t plan_requests0 = 0;
  std::uint64_t plan_builds0 = 0;
  if (options.eval_path != EvalPath::kScalar) {
    plan = EvalPlan::obtain(omega, workload, layer, context);
    plan_requests0 = plan->term_requests();
    plan_builds0 = plan->term_builds();
  }
  std::atomic<std::uint64_t> delta_hits{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_candidates{0};
  std::atomic<std::uint64_t> max_batch{0};

  std::vector<Candidate> evaluated(selected);
  std::vector<char> ok(selected, 0);
  const auto record = [&](std::size_t i, const DataflowDescriptor& df,
                          std::uint64_t cycles, double pj) {
    evaluated[i].dataflow = df;
    evaluated[i].cycles = cycles;
    evaluated[i].on_chip_pj = pj;
    evaluated[i].score = score_of(options.objective, cycles, pj);
    ok[i] = 1;
  };
  const auto evaluate_range = [&](std::size_t from, std::size_t to) {
    parallel_blocks(
        to - from,
        [&](std::size_t begin, std::size_t end) {
          if (options.eval_path == EvalPath::kScalar) {
            for (std::size_t j = begin; j < end; ++j) {
              const std::size_t i = eval_order[from + j];
              try {
                const DataflowDescriptor& df = candidate_at(i);
                const RunResult r = omega.run(workload, layer, df, context);
                record(i, df, r.cycles, r.energy.on_chip_pj());
              } catch (const Error&) {
                ok[i] = 0;  // infeasible under this substrate; skip
              }
            }
            return;
          }
          DeltaState state;  // per-block: delta slots never cross threads
          if (options.eval_path == EvalPath::kDelta) {
            for (std::size_t j = begin; j < end; ++j) {
              const std::size_t i = eval_order[from + j];
              const DataflowDescriptor& df = candidate_at(i);
              const EvalOutcome o = plan->evaluate_one(df, state);
              if (o.ok) record(i, df, o.cycles, o.on_chip_pj);
            }
          } else {
            const std::size_t n = end - begin;
            std::vector<const DataflowDescriptor*> dfs(n);
            std::vector<EvalOutcome> outs(n);
            for (std::size_t j = 0; j < n; ++j) {
              dfs[j] = &candidate_at(eval_order[from + begin + j]);
            }
            plan->evaluate_batch({dfs.data(), n}, outs.data(), state);
            for (std::size_t j = 0; j < n; ++j) {
              const std::size_t i = eval_order[from + begin + j];
              if (outs[j].ok) record(i, *dfs[j], outs[j].cycles,
                                     outs[j].on_chip_pj);
            }
            batches.fetch_add(1, std::memory_order_relaxed);
            batched_candidates.fetch_add(n, std::memory_order_relaxed);
            std::uint64_t cur = max_batch.load(std::memory_order_relaxed);
            while (cur < n && !max_batch.compare_exchange_weak(
                                  cur, n, std::memory_order_relaxed)) {
            }
          }
          delta_hits.fetch_add(state.delta_hits, std::memory_order_relaxed);
        },
        options.threads);
  };

  if (!prune) {
    evaluate_range(0, selected);
  } else {
    // Seed pass: the prune_seed candidates with the smallest bounds, fully
    // evaluated. The incumbent is reduced after the barrier, in index order,
    // so it does not depend on thread scheduling.
    const std::size_t seed =
        std::min(std::max<std::size_t>(options.prune_seed, 1), selected);
    evaluate_range(0, seed);
    std::uint64_t incumbent = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t j = 0; j < seed; ++j) {
      const std::size_t i = eval_order[j];
      if (ok[i]) incumbent = std::min(incumbent, evaluated[i].cycles);
    }
    // Cull pass: a candidate whose *lower bound* already exceeds the
    // incumbent's achieved cycles cannot beat the best (ties survive, so
    // tie-breaking stays identical to the unpruned search). eval_order is
    // bound-ascending, so survivors are a prefix.
    std::size_t keep = seed;
    while (keep < selected && bounds[eval_order[keep]] <= incumbent) ++keep;
    result.pruned = selected - keep;
    evaluate_range(seed, keep);
  }

  if (plan != nullptr) {
    result.eval.term_requests = plan->term_requests() - plan_requests0;
    result.eval.term_builds = plan->term_builds() - plan_builds0;
    result.eval.delta_hits = delta_hits.load(std::memory_order_relaxed);
    result.eval.batches = batches.load(std::memory_order_relaxed);
    result.eval.batched_candidates =
        batched_candidates.load(std::memory_order_relaxed);
    result.eval.max_batch = max_batch.load(std::memory_order_relaxed);
  }

  std::vector<Candidate> valid;
  valid.reserve(evaluated.size());
  for (std::size_t i = 0; i < evaluated.size(); ++i) {
    if (ok[i]) valid.push_back(std::move(evaluated[i]));
  }
  result.evaluated = valid.size();

  std::sort(valid.begin(), valid.end(), candidate_order);
  // An extra candidate may duplicate a sampled one; identical descriptors
  // produce identical metrics and sort adjacent, so one unique pass drops
  // the copies from the ranked list and the frontier.
  valid.erase(std::unique(valid.begin(), valid.end(),
                          [](const Candidate& a, const Candidate& b) {
                            return a.cycles == b.cycles &&
                                   a.on_chip_pj == b.on_chip_pj &&
                                   a.dataflow.to_string() ==
                                       b.dataflow.to_string();
                          }),
              valid.end());

  // Pareto frontier over (cycles, energy). The candidate_order tail keeps
  // the frontier's representative for tied (cycles, energy) points
  // deterministic across platforms.
  std::vector<Candidate> by_cycles = valid;
  std::sort(by_cycles.begin(), by_cycles.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.cycles != b.cycles) return a.cycles < b.cycles;
              if (a.on_chip_pj != b.on_chip_pj)
                return a.on_chip_pj < b.on_chip_pj;
              return a.dataflow.to_string() < b.dataflow.to_string();
            });
  double best_energy = std::numeric_limits<double>::infinity();
  for (const auto& c : by_cycles) {
    if (c.on_chip_pj < best_energy) {
      best_energy = c.on_chip_pj;
      result.pareto.push_back(c);
    }
  }

  if (valid.size() > options.top_k) valid.resize(options.top_k);
  result.ranked = std::move(valid);
  return result;
}

}  // namespace omega
