// Mapping search over the GNN dataflow design space (Section VI "Mapping
// Optimizer"): enumerates loop-order pairs from the taxonomy, binds
// power-of-two tile splits with near-100% static utilization, evaluates
// each candidate through the OMEGA cost model, and ranks by the chosen
// objective. Evaluations run in parallel (Omega::run is const/thread-safe).
#pragma once

#include <cstdint>
#include <vector>

#include "omega/omega.hpp"

namespace omega {

enum class Objective : std::uint8_t {
  kRuntime = 0,
  kEnergy = 1,          // on-chip pJ
  kEnergyDelayProduct = 2,
};

[[nodiscard]] const char* to_string(Objective o);

struct SearchOptions {
  Objective objective = Objective::kRuntime;
  bool include_seq = true;
  bool include_sp_generic = true;
  bool include_sp_optimized = true;
  bool include_pp = true;
  bool include_ca = false;  // CA doubles the space; AC is the paper's focus
  std::vector<double> pp_fractions = {0.25, 0.5, 0.75};
  /// Minimum static utilization of generated tilings (1.0 = exactly full).
  double min_static_utilization = 0.5;
  /// Cap on evaluated candidates (deterministic stride subsampling); 0 = all.
  std::size_t max_candidates = 0;
  std::size_t threads = 0;  // 0 = hardware concurrency
  /// Keep at most this many ranked results (best first).
  std::size_t top_k = 16;
};

struct Candidate {
  DataflowDescriptor dataflow;
  std::uint64_t cycles = 0;
  double on_chip_pj = 0.0;
  double score = 0.0;
};

struct SearchResult {
  std::vector<Candidate> ranked;  // best first, top_k entries
  std::vector<Candidate> pareto;  // runtime/energy frontier, cycles ascending
  std::size_t generated = 0;      // candidates produced by the generator
  std::size_t evaluated = 0;      // candidates actually run

  [[nodiscard]] const Candidate& best() const;
};

[[nodiscard]] SearchResult search_mappings(const Omega& omega,
                                           const GnnWorkload& workload,
                                           const LayerSpec& layer,
                                           const SearchOptions& options = {});

/// The candidate generator behind search_mappings: every valid descriptor
/// for the enabled inter-phase strategies / phase orders / tilings, before
/// subsampling. Exposed so benchmarks and tests can sweep the exact
/// candidate population through their own evaluation harness.
[[nodiscard]] std::vector<DataflowDescriptor> enumerate_search_candidates(
    const SearchOptions& options, const WorkloadDims& dims, std::size_t pes);

/// Index of sample i in the deterministic stride subsample of `population`
/// candidates down to `selected` (i < selected <= population). The single
/// definition search_mappings and the sweep benchmarks share, so their
/// sampled populations stay identical.
[[nodiscard]] constexpr std::size_t stride_sample_index(
    std::size_t i, std::size_t population, std::size_t selected) {
  return selected == 0 ? 0 : i * population / selected;
}

/// All power-of-two tile triples (a, b, c) with a*b*c <= budget,
/// a <= cap_a etc., and a*b*c >= min_util * budget. Exposed for tests.
[[nodiscard]] std::vector<std::array<std::size_t, 3>> enumerate_tile_triples(
    std::size_t budget, std::size_t cap_a, std::size_t cap_b,
    std::size_t cap_c, double min_util);

}  // namespace omega
