// Mapping search over the GNN dataflow design space (Section VI "Mapping
// Optimizer"): enumerates loop-order pairs from the taxonomy, binds
// power-of-two tile splits with near-100% static utilization, evaluates
// each candidate through the OMEGA cost model, and ranks by the chosen
// objective. Evaluations run in parallel (Omega::run is const/thread-safe).
#pragma once

#include <cstdint>
#include <vector>

#include "omega/omega.hpp"

namespace omega::obs {
class TraceCollector;
}  // namespace omega::obs

namespace omega {

enum class Objective : std::uint8_t {
  kRuntime = 0,
  kEnergy = 1,          // on-chip pJ
  kEnergyDelayProduct = 2,
};

[[nodiscard]] const char* to_string(Objective o);

/// Which evaluation core the sweep drives. All three return bit-identical
/// candidate metrics (and therefore identical ranked/Pareto output) across
/// thread counts — the scalar path is kept alive as the differential oracle
/// for the delta/batched cores (tests/eval_core_test.cpp).
enum class EvalPath : std::uint8_t {
  kBatched = 0,  // SoA batch evaluation over each parallel block (default)
  kDelta = 1,    // per-candidate delta evaluation through the term cache
  kScalar = 2,   // full Omega::run per candidate (the oracle)
};

[[nodiscard]] const char* to_string(EvalPath p);

/// Evaluation-core observability for one sweep (SearchResult::eval).
/// term_requests/term_builds are deterministic for a given candidate set;
/// delta_hits and the batch stats depend on the parallel block layout and
/// therefore on the thread count / machine (report them, never golden them).
struct EvalStats {
  std::uint64_t term_requests = 0;  // phase-term lookups issued
  std::uint64_t term_builds = 0;    // lookups that ran a phase simulation
  std::uint64_t delta_hits = 0;     // lookups served by a delta slot (L1)
  std::uint64_t batches = 0;        // evaluate_batch calls
  std::uint64_t batched_candidates = 0;  // candidates routed through batches
  std::uint64_t max_batch = 0;      // largest single batch
  void merge(const EvalStats& other);
};

struct SearchOptions {
  Objective objective = Objective::kRuntime;
  bool include_seq = true;
  bool include_sp_generic = true;
  bool include_sp_optimized = true;
  bool include_pp = true;
  bool include_ca = false;  // CA doubles the space; AC is the paper's focus
  std::vector<double> pp_fractions = {0.25, 0.5, 0.75};
  /// Minimum static utilization of generated tilings (1.0 = exactly full).
  double min_static_utilization = 0.5;
  /// Cap on evaluated candidates (deterministic stride subsampling); 0 = all.
  std::size_t max_candidates = 0;
  std::size_t threads = 0;  // 0 = hardware concurrency
  /// Keep at most this many ranked results (best first).
  std::size_t top_k = 16;
  /// Lower-bound pruning (runtime objective only; ignored otherwise):
  /// a deterministic seed of `prune_seed` candidates — the ones with the
  /// smallest ideal-MAC cycle bounds — is evaluated first, and every
  /// remaining candidate whose bound exceeds the seed incumbent's score is
  /// culled without a full Omega::run. The bound is a true lower bound, so
  /// the pruned search returns a bit-identical best candidate (including
  /// all score ties); ranked entries strictly worse than the seed incumbent
  /// may be dropped. The survivor set depends only on the bounds and the
  /// seed scores, so results are identical across thread counts.
  bool prune = false;
  std::size_t prune_seed = 64;
  /// Evaluation core (see EvalPath). Batched/delta require no caller setup:
  /// the plan is obtained from (and cached in) the sweep's WorkloadContext.
  EvalPath eval_path = EvalPath::kBatched;
  /// Fully bound descriptors appended to the candidate population and
  /// always evaluated: they bypass the max_candidates subsample and are
  /// exempt from the lower-bound cull (their bound is treated as zero).
  /// Model-level search seeds these with the Table V pattern bindings so a
  /// budgeted sweep can never lose to a fixed pattern it did not sample.
  std::vector<DataflowDescriptor> extra_candidates;
  /// When non-null, the sweep emits enumerate/prune/evaluate/rank stage
  /// spans (wall-clock, category "dse") into this collector. Null = zero
  /// instrumentation cost.
  obs::TraceCollector* trace = nullptr;
};

struct Candidate;

/// Total order used to rank candidates: (score, cycles, on_chip_pj,
/// descriptor key). The descriptor-key tail makes ranking deterministic
/// across platforms and thread counts even for exact score/cycles/energy
/// ties (distinct dataflows can genuinely tie on all three metrics).
[[nodiscard]] bool candidate_order(const Candidate& a, const Candidate& b);

struct Candidate {
  DataflowDescriptor dataflow;
  std::uint64_t cycles = 0;
  double on_chip_pj = 0.0;
  double score = 0.0;
};

struct SearchResult {
  std::vector<Candidate> ranked;  // best first, top_k entries
  std::vector<Candidate> pareto;  // runtime/energy frontier, cycles ascending
  std::size_t generated = 0;      // candidates produced by the generator
  std::size_t evaluated = 0;      // candidates actually run
  std::size_t pruned = 0;         // culled by the lower bound, never run
  EvalStats eval;                 // evaluation-core counters for this sweep

  [[nodiscard]] const Candidate& best() const;
};

/// `shared_context`, when non-null, must be a WorkloadContext over
/// `workload.adjacency`; the search then reuses its transpose / schedule /
/// phase memos instead of building a fresh context. Model-level search
/// passes one context across every layer's sweep (the memo is keyed on
/// quantities that are layer-invariant or layer-tagged), so per-layer
/// sweeps after the first pay only the engine math.
[[nodiscard]] SearchResult search_mappings(
    const Omega& omega, const GnnWorkload& workload, const LayerSpec& layer,
    const SearchOptions& options = {},
    const WorkloadContext* shared_context = nullptr);

/// Ideal-MAC cycle lower bound for a candidate on a workload: each phase
/// needs at least ceil(phase MACs / phase PEs) cycles, phases compose by sum
/// (Seq / SP) or max (PP, which splits the PE array). Every engine cycle
/// count is >= this bound for candidates whose spatial tile footprint fits
/// the phase's PE budget (all generated candidates do), which is what makes
/// bound-based pruning lossless. `edges` is workload.num_edges().
[[nodiscard]] std::uint64_t ideal_mac_cycle_bound(const DataflowDescriptor& df,
                                                  std::size_t pes,
                                                  std::uint64_t edges,
                                                  const WorkloadDims& dims);

/// The candidate generator behind search_mappings: every valid descriptor
/// for the enabled inter-phase strategies / phase orders / tilings, before
/// subsampling. Exposed so benchmarks and tests can sweep the exact
/// candidate population through their own evaluation harness.
[[nodiscard]] std::vector<DataflowDescriptor> enumerate_search_candidates(
    const SearchOptions& options, const WorkloadDims& dims, std::size_t pes);

/// Index of sample i in the deterministic stride subsample of `population`
/// candidates down to `selected` (i < selected <= population). The single
/// definition search_mappings and the sweep benchmarks share, so their
/// sampled populations stay identical.
[[nodiscard]] constexpr std::size_t stride_sample_index(
    std::size_t i, std::size_t population, std::size_t selected) {
  return selected == 0 ? 0 : i * population / selected;
}

/// All power-of-two tile triples (a, b, c) with a*b*c <= budget,
/// a <= cap_a etc., and a*b*c >= min_util * budget. Exposed for tests.
[[nodiscard]] std::vector<std::array<std::size_t, 3>> enumerate_tile_triples(
    std::size_t budget, std::size_t cap_a, std::size_t cap_b,
    std::size_t cap_c, double min_util);

}  // namespace omega
