// Model-level design-space search (Fig. 10 runs whole multi-layer GCN/GIN
// models): searches a — possibly different — dataflow for every layer of a
// GnnModelSpec instead of replaying one fixed pattern, the per-layer
// flexibility argument of VersaGNN / Dynasparse. One WorkloadContext is
// shared across all layers and candidates (the adjacency transpose and lane
// schedules are layer-invariant), so each extra layer costs only the engine
// math, and an ideal-MAC lower bound culls candidates that cannot beat the
// incumbent before they reach a full Omega::run.
#pragma once

#include <optional>

#include "dse/search.hpp"
#include "gnn/inference.hpp"

namespace omega {

/// How a model-wide candidate budget is split across layers.
enum class BudgetAllocation : std::uint8_t {
  /// Even split over the remaining layers (the historical behaviour).
  kEven = 0,
  /// Proportional to each remaining layer's ideal MAC count
  /// (E * F_l + V * F_l * G_l) — layer 0 of a GCN dominates the model cost
  /// by orders of magnitude, and an even split wastes most of its budget on
  /// the narrow tail layers (ROADMAP "Smarter model-level budget
  /// allocation").
  kMacWeighted = 1,
};

[[nodiscard]] const char* to_string(BudgetAllocation a);

struct ModelSearchOptions {
  /// Per-layer search knobs (objective, strategy filters, max_candidates,
  /// threads, top_k). `layer.prune` is overridden by `prune` below;
  /// `layer.include_ca` is additionally masked per layer by the model's
  /// allowed phase orders (GraphSAGE pins AC).
  SearchOptions layer;
  /// Ideal-MAC lower-bound pruning inside every layer sweep (runtime
  /// objective only; lossless for the best candidate — see SearchOptions).
  bool prune = true;
  /// Model-wide cap on fully evaluated candidates, split over the remaining
  /// layers as the sweep proceeds (0 = unlimited). Every layer is guaranteed
  /// at least `fallback_candidates` so it always has a winner.
  std::size_t max_total_candidates = 0;
  /// Split policy for `max_total_candidates` (ignored when it is 0).
  BudgetAllocation budget_allocation = BudgetAllocation::kMacWeighted;
  /// Soft wall-clock budget; checked before each layer's sweep (never
  /// mid-sweep, so results under a generous budget stay deterministic).
  /// Layers starting past the deadline fall back to `fallback_candidates`.
  double time_budget_ms = 0.0;
  /// Per-layer candidate floor once a budget trips.
  std::size_t fallback_candidates = 64;
  /// Seed every layer's sweep with the Table V pattern bindings (as
  /// always-evaluated extra candidates), so a budgeted heterogeneous search
  /// is >= the best fixed pattern by construction.
  bool seed_table5 = true;
  /// Length of the model-level ranked list.
  std::size_t top_k = 16;
  /// How layer cycles combine into the model objective. kPipelined ranks
  /// combinations by their *composed* makespan (cross-layer chunk overlap,
  /// omega/compose.hpp) instead of the plain layer sum, so a per-layer
  /// assignment whose boundaries pipeline well can outrank one whose layer
  /// sum is marginally smaller. Scope bound: combinations are drawn from a
  /// best-first enumeration ordered by layer-sum (max(top_k*32, 512)
  /// entries under kPipelined); an assignment whose sum ranks below that
  /// prefix is never composed, so the reported best is exact over the
  /// enumerated prefix, not the full cross product.
  ModelCompose compose = ModelCompose::kSequential;
};

/// One layer's sweep output.
struct LayerSearchResult {
  GnnLayerSpec spec;
  SearchResult search;  // per-layer ranked list / Pareto / counters
};

/// A complete per-layer mapping assignment for the model.
struct ModelCandidate {
  std::vector<DataflowDescriptor> per_layer;  // one descriptor per layer
  std::uint64_t total_cycles = 0;      // saturating sum of layer cycles
  /// Composed model makespan (== total_cycles under kSequential; <= it
  /// under kPipelined). The score is computed on this.
  std::uint64_t composed_cycles = 0;
  std::size_t overlapped_boundaries = 0;
  double total_on_chip_pj = 0.0;
  double score = 0.0;  // model-level objective on the composed totals

  /// Concatenated per-layer descriptor notation, e.g.
  /// "Seq_AC(...) | PP_AC(...)".
  [[nodiscard]] std::string to_string() const;
};

struct ModelSearchResult {
  ModelCompose compose = ModelCompose::kSequential;
  std::vector<LayerSearchResult> layers;  // layer order
  std::vector<ModelCandidate> ranked;     // best first, top_k entries
  std::vector<ModelCandidate> pareto;     // cycles/energy frontier
  std::size_t generated = 0;              // sum over layers
  std::size_t evaluated = 0;              // candidates fully run
  std::size_t pruned = 0;                 // culled by the lower bound
  EvalStats eval;                         // merged eval-core counters
  bool budget_exhausted = false;          // a candidate/time budget tripped

  [[nodiscard]] const ModelCandidate& best() const;
};

/// Searches a dataflow per layer of `spec` on `workload`'s graph. The layer
/// cost model is independent across layers and total cycles/energy are sums,
/// so the per-layer winners compose into the model-level winner for the
/// additive objectives (runtime, energy); the ranked list is built by
/// best-first combination of the per-layer ranked lists, and the Pareto
/// frontier is taken over the enumerated combinations.
/// `workload.in_features` must equal `spec.feature_widths.front()`.
/// `shared_context`, when non-null, must be a WorkloadContext over
/// `workload.adjacency` (pointer identity — the engines check). The mapping
/// service passes the registry's warmed context here so repeated
/// search-model requests skip the transpose/schedule warm-up entirely;
/// without one, a context is built locally and lives for the call.
[[nodiscard]] ModelSearchResult search_model_mappings(
    const Omega& omega, const GnnWorkload& workload, const GnnModelSpec& spec,
    const ModelSearchOptions& options = {},
    const WorkloadContext* shared_context = nullptr);

/// The strongest homogeneous baseline: every Table V pattern replayed over
/// all layers through run_model, keeping the lowest total cycles. Infeasible
/// patterns are skipped; nullopt if none fits the substrate.
struct FixedPatternRun {
  std::string name;  // Table V config name
  ModelRunResult result;
};
[[nodiscard]] std::optional<FixedPatternRun> best_fixed_pattern(
    const Omega& omega, const GnnWorkload& workload, const GnnModelSpec& spec,
    ModelCompose compose = ModelCompose::kSequential);

}  // namespace omega
