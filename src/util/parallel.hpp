// Shared-memory parallelism for design-space sweeps (the cost model itself
// is deterministic and single-threaded per evaluation, so evaluations across
// mappings are embarrassingly parallel).
//
// The primitive is a persistent ThreadPool with fork-join block dispatch:
// workers are spawned once per process and jobs hand each participant
// (begin, end) ranges through a raw function pointer + context, so the hot
// sweep loop pays no thread spawn and no std::function call per iteration.
// This is plain std::thread rather than OpenMP so the library builds with no
// extra toolchain flags.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>

namespace omega {

/// Number of worker threads a default-constructed pool dispatch will use:
/// hardware_concurrency, clamped to at least 1.
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Persistent fork-join pool. Workers sleep on a condition variable between
/// jobs; a job partitions [0, n) into blocks claimed dynamically through an
/// atomic cursor, which keeps unevenly priced iterations (e.g. scatter vs
/// gather dataflow candidates) load-balanced. The calling thread always
/// participates, so a pool with W workers serves up to W+1 participants.
class ThreadPool {
 public:
  /// Raw block callback: fn(ctx, begin, end). No allocation per dispatch.
  using BlockFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  /// Spawns `workers` threads (0 = default_thread_count() - 1, so that pool
  /// workers plus the caller saturate the machine).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, started lazily on first use.
  [[nodiscard]] static ThreadPool& global();

  [[nodiscard]] std::size_t worker_count() const noexcept;

  /// Runs fn(ctx, begin, end) over disjoint blocks covering [0, n) on up to
  /// `max_threads` participants (0 = all; the caller counts as one and always
  /// participates). `grain` is the block length (0 = auto). Blocks are
  /// claimed dynamically; the first exception is rethrown on the caller once
  /// every participant has drained.
  void run_blocks(std::size_t n, BlockFn fn, void* ctx,
                  std::size_t max_threads = 0, std::size_t grain = 0);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Dispatches body(begin, end) blocks of [0, n) on the global pool without
/// allocating: the callable is passed by reference through a function
/// pointer. Blocks together cover every index exactly once.
template <typename Body>
void parallel_blocks(std::size_t n, Body&& body, std::size_t threads = 0,
                     std::size_t grain = 0) {
  using Fn = std::remove_reference_t<Body>;
  ThreadPool::global().run_blocks(
      n,
      [](void* ctx, std::size_t begin, std::size_t end) {
        (*static_cast<Fn*>(ctx))(begin, end);
      },
      const_cast<std::remove_const_t<Fn>*>(std::addressof(body)), threads,
      grain);
}

/// Runs body(i) for i in [0, n) across up to `threads` participants of the
/// global pool. Exceptions thrown by `body` are rethrown on the calling
/// thread (first one wins). With threads <= 1 (or n small) runs inline.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Runs body(begin, end) over disjoint blocks covering [0, n); useful when
/// per-iteration dispatch cost matters.
void parallel_for_blocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threads = 0);

}  // namespace omega
