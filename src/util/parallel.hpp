// Minimal shared-memory parallel loop used to parallelize design-space
// sweeps (the cost model itself is deterministic and single-threaded per
// evaluation, so evaluations across mappings are embarrassingly parallel).
//
// This is a plain std::thread fork-join helper rather than OpenMP so the
// library builds with no extra toolchain flags; the interface mirrors
// `#pragma omp parallel for schedule(static)`.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>

namespace omega {

/// Number of worker threads parallel_for will use by default:
/// hardware_concurrency, clamped to at least 1.
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Runs body(i) for i in [0, n) across up to `threads` workers with a static
/// block partition. Exceptions thrown by `body` are rethrown on the calling
/// thread (first one wins). With threads <= 1 (or n small) runs inline.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Runs body(begin, end) per worker over a static partition of [0, n);
/// useful when per-iteration dispatch cost matters.
void parallel_for_blocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threads = 0);

}  // namespace omega
