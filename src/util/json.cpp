#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace omega {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unescaped
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

// ---- JsonWriter -------------------------------------------------------------

void JsonWriter::comma_and_newline() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key": — no comma, no newline
  }
  if (stack_.empty()) return;
  if (!stack_.back().first) out_ += ',';
  stack_.back().first = false;
  if (indent_ > 0) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) * stack_.size(), ' ');
  }
}

void JsonWriter::open(char bracket) {
  comma_and_newline();
  out_ += bracket;
  stack_.push_back(Level{true, bracket == '{'});
}

void JsonWriter::close(char bracket) {
  OMEGA_CHECK(!stack_.empty() && !after_key_, "unbalanced JSON container");
  OMEGA_CHECK(stack_.back().is_object == (bracket == '}'),
              "mismatched JSON container close");
  const bool was_empty = stack_.back().first;
  stack_.pop_back();
  if (indent_ > 0 && !was_empty) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) * stack_.size(), ' ');
  }
  out_ += bracket;
}

JsonWriter& JsonWriter::begin_object() {
  open('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  OMEGA_CHECK(!stack_.empty() && stack_.back().is_object && !after_key_,
              "JSON key outside an object");
  comma_and_newline();
  out_ += '"';
  out_ += json_escape(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_and_newline();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_and_newline();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_and_newline();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_and_newline();
  out_ += "null";
  return *this;
}

// ---- JsonValue parser -------------------------------------------------------

namespace {
constexpr std::size_t kMaxDepth = 64;
}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw InvalidArgumentError("JSON parse error at byte " +
                               std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.str_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char n = peek();
      ++pos_;
      if (n == '}') return v;
      if (n != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(parse_value(depth + 1));
      skip_ws();
      const char n = peek();
      ++pos_;
      if (n == ']') return v;
      if (n != ',') fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    const auto [dptr, dec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v.num_);
    if (dec != std::errc{} || dptr != tok.data() + tok.size()) {
      fail("bad number '" + std::string(tok) + "'");
    }
    // Plain unsigned integers additionally keep their exact 64-bit value.
    if (!tok.empty() && tok[0] != '-' &&
        tok.find_first_of(".eE") == std::string_view::npos) {
      const auto [uptr, uec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v.u64_);
      v.u64_exact_ = uec == std::errc{} && uptr == tok.data() + tok.size();
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

namespace {
const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  throw InvalidArgumentError(std::string("expected JSON ") + want + ", got " +
                             kind_name(got));
}
}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  if (!u64_exact_) {
    throw InvalidArgumentError("expected an unsigned integer, got " +
                               json_number(num_));
  }
  return u64_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace omega
