// Small string-formatting helpers shared across the framework.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace omega {

/// Joins the elements of `parts` with `sep` ("a, b, c").
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Human-readable engineering suffix: 1536 -> "1.54K", 2.1e9 -> "2.10G".
[[nodiscard]] std::string si_suffix(double value, int precision = 2);

/// Fixed-precision double ("%.3f" style) without locale surprises.
[[nodiscard]] std::string fixed(double value, int precision = 3);

/// Left/right padding to a fixed width (truncates if longer).
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);

/// Lower-cases ASCII.
[[nodiscard]] std::string to_lower(std::string s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix);

/// Splits on a single character, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string trim(const std::string& s);

}  // namespace omega
