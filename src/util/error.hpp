// Error-handling primitives for the OMEGA framework.
//
// We follow the C++ Core Guidelines: exceptions for errors that callers are
// expected to handle (invalid dataflow configurations, bad inputs), and
// `OMEGA_ASSERT`-style checks for programming errors that indicate a bug in
// the framework itself.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace omega {

/// Base class for all errors raised by the framework.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a dataflow/mapping description violates the taxonomy rules
/// (Table II of the paper), e.g. SP-Optimized with a spatial N dimension.
class InvalidDataflowError : public Error {
 public:
  explicit InvalidDataflowError(const std::string& what) : Error(what) {}
};

/// Raised when an input (graph, matrix, configuration) is malformed.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Raised when a requested resource exceeds the modeled hardware
/// (e.g. tile footprint larger than the register file).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const std::string& msg,
                                      const std::source_location& loc);
}  // namespace detail

/// Throws InvalidArgumentError with file/line context when `cond` is false.
/// Used to validate user-facing inputs; always enabled (not compiled out).
inline void check(bool cond, const char* expr, const std::string& msg = {},
                  const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::throw_check_failure(expr, msg, loc);
}

#define OMEGA_CHECK(cond, ...) ::omega::check((cond), #cond, ##__VA_ARGS__)

}  // namespace omega
