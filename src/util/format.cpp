#include "util/format.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace omega {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string si_suffix(double value, int precision) {
  static constexpr std::array<const char*, 7> suffixes = {"", "K", "M", "G",
                                                          "T", "P", "E"};
  double v = std::abs(value);
  std::size_t idx = 0;
  while (v >= 1000.0 && idx + 1 < suffixes.size()) {
    v /= 1000.0;
    ++idx;
  }
  std::ostringstream os;
  if (value < 0) os << '-';
  os << fixed(v, precision) << suffixes[idx];
  return os.str();
}

std::string fixed(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string(buf.data());
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace omega
