#include "util/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace omega {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OMEGA_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  OMEGA_CHECK(row.size() == header_.size(),
              "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << pad_right(row[c], widths[c]);
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

bool write_file_if_possible(const std::string& path, const std::string& content) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return false;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace omega
