// Saturating 64-bit arithmetic for cycle and byte accounting.
//
// Cycle counts, MAC counts and buffer-size products are computed from
// quantities that can arrive untrusted (service requests choose feature
// widths and bandwidths freely), so the additive/multiplicative paths must
// not wrap silently: a wrapped u64 reads as a *small* cycle count and would
// make an adversarial workload rank as the best mapping. The overflow
// contract (DESIGN.md "Overflow contract") is saturation: any quantity that
// would exceed UINT64_MAX clamps to UINT64_MAX, which keeps every ordering
// comparison (composed <= summed, bound <= incumbent) valid at the extreme
// instead of inverting it.
#pragma once

#include <cstdint>
#include <limits>

namespace omega {

[[nodiscard]] constexpr std::uint64_t sat_add_u64(std::uint64_t a,
                                                  std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
}

[[nodiscard]] constexpr std::uint64_t sat_mul_u64(std::uint64_t a,
                                                  std::uint64_t b) {
  const unsigned __int128 p =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return p > std::numeric_limits<std::uint64_t>::max()
             ? std::numeric_limits<std::uint64_t>::max()
             : static_cast<std::uint64_t>(p);
}

/// a - b, clamped at 0 (the "how much later must this start" pattern).
[[nodiscard]] constexpr std::uint64_t sat_sub_u64(std::uint64_t a,
                                                  std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace omega
