// Minimal JSON layer shared by the mapping service, the CLI and the
// benchmark emitters.
//
// The writer replaces the ad-hoc `ofstream << "{\"key\": ..."` emitters that
// used to live in tools/omega_cli.cpp and bench/bench_simulator_perf.cpp —
// those interpolated workload names and dataflow notations unescaped, so a
// name containing a quote or backslash produced invalid JSON. JsonWriter
// escapes every string and manages commas/indentation, and formats doubles
// with shortest-round-trip precision (std::to_chars), which is both
// locale-independent and deterministic across runs.
//
// The reader is a small recursive-descent parser for the service protocol:
// strict JSON (no comments, no trailing commas), a bounded nesting depth,
// and exact unsigned-integer retrieval for cycle counts that exceed the
// 2^53 double mantissa.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omega {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \ and control characters become their escape sequences.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest-round-trip decimal rendering of a double ("1.25", "1e30"); emits
/// "null" for NaN/Inf, which JSON cannot represent.
[[nodiscard]] std::string json_number(double value);

/// Streaming JSON document builder with automatic comma/indent management.
/// `indent` 0 emits a single line (NDJSON-safe); > 0 pretty-prints.
class JsonWriter {
 public:
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the member key; must be followed by a value or begin_*().
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  // size_t differs from uint64_t on some ABIs only; keep one overload set by
  // funneling through the fixed-width types at call sites when ambiguous.
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Finished document. Valid once every container has been closed.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma_and_newline();
  void open(char bracket);
  void close(char bracket);

  struct Level {
    bool first = true;
    bool is_object = false;
  };
  std::string out_;
  std::vector<Level> stack_;
  int indent_ = 0;
  bool after_key_ = false;
};

/// Parsed JSON tree. Numbers keep both the double value and, when the token
/// was an unsigned integer, its exact 64-bit value.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// Parses a complete JSON document; throws InvalidArgumentError on
  /// malformed input (with a byte offset) or trailing garbage.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw InvalidArgumentError on a kind mismatch (the
  /// message names the expected kind, so protocol errors read well).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Exact for integer tokens in [0, 2^64); negative / fractional numbers
  /// throw rather than truncate.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;

  [[nodiscard]] const std::vector<JsonValue>& items() const;  // array
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;  // object, in document order

  /// Object member lookup; null if absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  bool u64_exact_ = false;  // token was a plain unsigned integer
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace omega
