// Leveled logging for the simulator. Off (Warn) by default so library users
// and tests stay quiet; bench binaries raise it to Info for progress lines.
#pragma once

#include <sstream>
#include <string>

namespace omega {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line to stderr as "[level] message" if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style one-shot logger: Log(kInfo) << "x=" << x; flushes on
/// destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() {
  return detail::LogLine(LogLevel::kDebug);
}
[[nodiscard]] inline detail::LogLine log_info() {
  return detail::LogLine(LogLevel::kInfo);
}
[[nodiscard]] inline detail::LogLine log_warn() {
  return detail::LogLine(LogLevel::kWarn);
}
[[nodiscard]] inline detail::LogLine log_error() {
  return detail::LogLine(LogLevel::kError);
}

}  // namespace omega
