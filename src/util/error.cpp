#include "util/error.hpp"

#include <sstream>

namespace omega::detail {

void throw_check_failure(const char* expr, const std::string& msg,
                         const std::source_location& loc) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << loc.file_name() << ":"
     << loc.line();
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgumentError(os.str());
}

}  // namespace omega::detail
