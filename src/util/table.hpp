// ASCII table and CSV writers used by the benchmark harness to print the
// rows/series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace omega {

/// Column-aligned ASCII table with a header row, in the style of the result
/// tables printed by the bench binaries. Cells are strings; callers format
/// numbers with util/format helpers so alignment stays stable.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }

  /// Renders with column padding and a separator rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `content` to `path`, creating parent directories if needed.
/// Returns false (without throwing) if the file cannot be written, so bench
/// binaries can run in read-only sandboxes.
bool write_file_if_possible(const std::string& path, const std::string& content);

}  // namespace omega
