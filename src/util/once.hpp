// Exception-safe std::call_once.
//
// Letting the callback throw across the pthread_once boundary is
// ABI-fragile: glibc resets the flag (retry semantics), but ThreadSanitizer's
// pthread_once interceptor never releases its guard word on an exceptional
// exit, so the next call_once on the same flag futex-waits forever — a
// single-threaded self-deadlock. Other runtimes (musl, older libstdc++
// configurations) have their own behaviors; POSIX says nothing.
//
// call_once_caching never lets the callback throw across the boundary:
// a throwing `fn` is memoized as an exception_ptr on the entry and rethrown
// to this and every later caller. For the deterministic builders behind our
// memo entries (same key -> same build -> same Error) this is observably
// identical to retry semantics, minus the repeated failed builds.
#pragma once

#include <exception>
#include <mutex>
#include <utility>

namespace omega {

/// Runs `fn` at most once per flag, like std::call_once, but captures a
/// throwing run into `error` instead of resetting the flag. The stored
/// exception is rethrown to every caller (including the first). `error` must
/// live alongside `flag` (same entry); writes to it are ordered by the
/// call_once barrier, so reading it after the call is race-free.
template <typename Fn>
void call_once_caching(std::once_flag& flag, std::exception_ptr& error,
                       Fn&& fn) {
  std::call_once(flag, [&] {
    try {
      std::forward<Fn>(fn)();
    } catch (...) {
      error = std::current_exception();
    }
  });
  if (error) std::rethrow_exception(error);
}

}  // namespace omega
