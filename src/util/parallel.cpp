#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace omega {

std::size_t default_thread_count() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

namespace {

/// One fork-join dispatch. Lives on the caller's stack; workers may only
/// touch it between registering (under the pool mutex, while the job is
/// published) and signalling completion.
struct Job {
  ThreadPool::BlockFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t max_extra = 0;          // helpers beyond the caller
  std::size_t joined = 0;             // helpers admitted (pool mutex)
  std::atomic<std::size_t> cursor{0}; // next unclaimed index
  std::size_t active = 0;             // helpers still running (pool mutex)
  std::exception_ptr error;           // first failure (pool mutex)
};

void drain_job(Job& job, std::exception_ptr* error_slot, std::mutex& mutex) {
  // Claim blocks until the cursor passes n. Any participant's exception is
  // recorded once; remaining blocks still get claimed (cheaply skipped) so
  // the join cannot deadlock.
  for (;;) {
    const std::size_t begin =
        job.cursor.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.n) break;
    const std::size_t end = std::min(job.n, begin + job.grain);
    try {
      job.fn(job.ctx, begin, end);
    } catch (...) {
      const std::scoped_lock lock(mutex);
      if (!*error_slot) *error_slot = std::current_exception();
    }
  }
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;  // workers wait for a published job
  std::condition_variable done_cv;  // caller waits for helpers to drain
  Job* job = nullptr;               // currently published job (or null)
  std::uint64_t job_version = 0;
  bool stopping = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock lock(mutex);
    for (;;) {
      work_cv.wait(lock, [&] {
        return stopping || (job != nullptr && job_version != seen &&
                            job->joined < job->max_extra);
      });
      if (stopping) return;
      Job& j = *job;
      seen = job_version;
      j.joined++;
      j.active++;
      lock.unlock();
      drain_job(j, &j.error, mutex);
      lock.lock();
      if (--j.active == 0) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(std::make_unique<Impl>()) {
  if (workers == 0) {
    workers = default_thread_count() > 1 ? default_thread_count() - 1 : 0;
  }
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

std::size_t ThreadPool::worker_count() const noexcept {
  return impl_->workers.size();
}

void ThreadPool::run_blocks(std::size_t n, BlockFn fn, void* ctx,
                            std::size_t max_threads, std::size_t grain) {
  if (n == 0) return;
  std::size_t participants =
      std::min(n, max_threads == 0 ? impl_->workers.size() + 1
                                   : std::max<std::size_t>(max_threads, 1));
  if (grain == 0) {
    // Aim for several blocks per participant so dynamic claiming can absorb
    // unevenly priced iterations without per-index dispatch overhead.
    grain = std::max<std::size_t>(1, n / (participants * 8));
  }
  // A caller-provided grain can leave fewer blocks than participants
  // (e.g. n=40, grain=32 -> 2 blocks). Waking more workers than blocks
  // wastes slots: the surplus workers claim nothing but still contend on
  // the job counter and must be drained before the barrier releases.
  participants = std::min(participants, (n + grain - 1) / grain);
  if (participants <= 1 || impl_->workers.empty()) {
    fn(ctx, 0, n);
    return;
  }

  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.n = n;
  job.grain = grain;
  job.max_extra = participants - 1;

  {
    const std::scoped_lock lock(impl_->mutex);
    impl_->job = &job;
    impl_->job_version++;
  }
  impl_->work_cv.notify_all();

  drain_job(job, &job.error, impl_->mutex);

  {
    std::unique_lock lock(impl_->mutex);
    // Late wakers must not register anymore — but another caller may have
    // published its own job meanwhile (the global pool is shared), so only
    // clear our own publication.
    if (impl_->job == &job) impl_->job = nullptr;
    impl_->done_cv.wait(lock, [&] { return job.active == 0; });
    if (job.error) std::rethrow_exception(job.error);
  }
}

void parallel_for_blocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threads) {
  if (n == 0) return;
  if (threads == 1) {
    body(0, n);
    return;
  }
  parallel_blocks(
      n, [&](std::size_t begin, std::size_t end) { body(begin, end); },
      threads);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  parallel_for_blocks(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      threads);
}

}  // namespace omega
