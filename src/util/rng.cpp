#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace omega {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  OMEGA_CHECK(bound > 0, "next_below bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OMEGA_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  OMEGA_CHECK(!weights.empty(), "sampler requires weights");
  prefix_.reserve(weights.size());
  double running = 0.0;
  for (const double w : weights) {
    OMEGA_CHECK(w >= 0.0, "weights must be non-negative");
    running += w;
    prefix_.push_back(running);
  }
  OMEGA_CHECK(running > 0.0, "weights must not all be zero");
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double x = rng.uniform() * prefix_.back();
  const auto it = std::lower_bound(prefix_.begin(), prefix_.end(), x);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - prefix_.begin(),
      static_cast<std::ptrdiff_t>(prefix_.size()) - 1));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  OMEGA_CHECK(!weights.empty(), "weighted_index requires weights");
  double total = 0.0;
  for (const double w : weights) {
    OMEGA_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  OMEGA_CHECK(total > 0.0, "weights must not all be zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace omega
