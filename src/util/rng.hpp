// Deterministic random-number generation for synthetic workloads.
//
// All generators in the framework are seeded explicitly so that every
// experiment (and every test) is exactly reproducible across runs and
// platforms. We use xoshiro256** rather than std::mt19937 because its state
// is small, it is fast, and its output sequence is fully specified (libstdc++
// distributions are not portable across implementations, so we also provide
// our own distribution helpers).
#pragma once

#include <cstdint>
#include <vector>

namespace omega {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic given the state).
  double normal();

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev);

  /// Lognormal sample: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Samples an index i with probability weights[i] / sum(weights).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(next_below(i + 1));
      std::swap(v[i], v[j]);
    }
  }

 private:
  std::uint64_t s_[4]{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples indices with probability proportional to fixed weights in
/// O(log n) per draw (prefix sums + binary search). Use this instead of
/// Rng::weighted_index when drawing many samples from the same distribution.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return prefix_.size(); }

 private:
  std::vector<double> prefix_;  // inclusive prefix sums
};

}  // namespace omega
