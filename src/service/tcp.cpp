#include "service/tcp.hpp"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OMEGA_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <cerrno>
#include <cstring>
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: no flag; EPIPE still surfaces via SO_NOSIGPIPE
#endif
#endif

namespace omega::service {

#if OMEGA_HAVE_SOCKETS

namespace {

/// Hard cap on one framed request line: a peer streaming garbage without a
/// newline must exhaust this, not the heap (the legacy read_all path had no
/// bound at all).
constexpr std::size_t kMaxLineBytes = 64ull << 20;

/// Disarms SIGPIPE for writes on this socket where MSG_NOSIGNAL does not
/// exist (macOS): without it an early-disconnecting peer would kill the
/// process instead of surfacing EPIPE to the per-connection handler.
void disarm_sigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;  // linux: write_all's MSG_NOSIGNAL covers it
#endif
}

/// Reads everything the peer sends until write-shutdown/close (batch
/// clients only; the server side frames incrementally).
std::string read_all(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return data;
    } else if (errno != EINTR) {
      throw Error(std::string("socket read failed: ") + std::strerror(errno));
    }
  }
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that disconnected before reading must surface
    // as EPIPE (caught per-connection) — the default SIGPIPE disposition
    // would kill the whole daemon.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (errno != EINTR) {
      throw Error(std::string("socket write failed: ") + std::strerror(errno));
    }
  }
}

/// Incremental NDJSON framing over a socket fd: yields one line at a time
/// as bytes arrive, so dispatch starts at the first newline instead of at
/// connection close.
class LineFramer {
 public:
  explicit LineFramer(int fd) : fd_(fd) {}

  /// Next complete line (newline stripped); a trailing unterminated line is
  /// yielded at EOF; nullopt once the stream is exhausted.
  std::optional<std::string> next_line() {
    for (;;) {
      const std::size_t nl = buf_.find('\n', scan_);
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        scan_ = 0;
        return line;
      }
      scan_ = buf_.size();
      if (eof_) {
        if (buf_.empty()) return std::nullopt;
        std::string line = std::move(buf_);
        buf_.clear();
        return line;
      }
      if (buf_.size() > kMaxLineBytes) {
        throw Error("request line exceeds " +
                    std::to_string(kMaxLineBytes) + " bytes");
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        eof_ = true;
      } else if (errno != EINTR) {
        throw Error(std::string("socket read failed: ") +
                    std::strerror(errno));
      }
    }
  }

 private:
  int fd_;
  std::string buf_;
  std::size_t scan_ = 0;  // '\n' search resumes here (no rescan)
  bool eof_ = false;
};

/// Per-connection emission state. Completions land here from scheduler
/// threads; responses are written in per-band submission order (the
/// transport's ordering contract — see tcp.hpp).
struct Session {
  Session(int fd_in, std::size_t bands)
      : fd(fd_in), next_submit(bands, 0), next_emit(bands, 0),
        pending(bands) {}

  const int fd;
  std::mutex mu;
  std::condition_variable drained;  // in_flight reached 0
  std::vector<std::uint64_t> next_submit;  // per band
  std::vector<std::uint64_t> next_emit;    // per band
  /// Out-of-order completions parked until their band's emission cursor
  /// reaches them, keyed by submission sequence.
  std::vector<std::map<std::uint64_t, std::string>> pending;
  std::size_t in_flight = 0;  // submitted, not yet emitted
  bool write_failed = false;  // peer gone: drain silently, daemon lives
};

/// Writes every response that is next in its band's submission order.
/// Session mutex must be held (serializes writes across bands so frames
/// never interleave).
void emit_ready_locked(Session& s, std::size_t band) {
  auto& slots = s.pending[band];
  while (!slots.empty() && slots.begin()->first == s.next_emit[band]) {
    if (!s.write_failed) {
      try {
        std::string frame = std::move(slots.begin()->second);
        frame.push_back('\n');
        write_all(s.fd, frame);
      } catch (const std::exception&) {
        s.write_failed = true;
      }
    }
    slots.erase(slots.begin());
    ++s.next_emit[band];
    --s.in_flight;
  }
  if (s.in_flight == 0) s.drained.notify_all();
}

void wait_drained(Session& s) {
  std::unique_lock lock(s.mu);
  s.drained.wait(lock, [&s] { return s.in_flight == 0; });
}

/// One connection: read lines, submit to the shared scheduler, stream
/// completions back. Owns the fd; never throws (a dropped connection must
/// not take down the accept loop).
void run_session(RequestScheduler& scheduler, int fd) {
  const std::size_t bands = scheduler.options().bands;
  Session s(fd, bands);
  try {
    LineFramer framer(fd);
    std::optional<std::string> line;
    while ((line = framer.next_line()).has_value()) {
      if (trim(*line).empty()) continue;  // batch separators: no-ops here
      // Barriers (stats/metrics) keep their handle_batch determinism per
      // connection: every prior request finishes and emits before the
      // barrier dispatches, and the barrier emits before anything after it
      // is submitted.
      const bool barrier = is_barrier_request(*line);
      if (barrier) wait_drained(s);
      const RequestScheduling sched = peek_request_scheduling(*line);
      SubmitMeta meta;
      meta.id = sched.id;
      meta.version = sched.version;
      meta.priority = sched.priority;
      meta.deadline_ms = sched.deadline_ms;
      const std::uint64_t band =
          std::min<std::uint64_t>(sched.priority, bands - 1);
      std::uint64_t seq = 0;
      {
        const std::scoped_lock lock(s.mu);
        seq = s.next_submit[band]++;
        ++s.in_flight;
      }
      // Shed completions flow through the same path as handled responses,
      // so they too respect per-band order and reach the client as
      // structured errors rather than a dropped connection.
      (void)scheduler.submit(
          std::move(*line), meta,
          [&s, band, seq](std::string response, bool /*shed*/) {
            const std::scoped_lock lock(s.mu);
            s.pending[band].emplace(seq, std::move(response));
            emit_ready_locked(s, band);
          });
      if (barrier) wait_drained(s);
    }
  } catch (const std::exception&) {
    // Connection-level failure (peer vanished, oversized line); fall
    // through to the drain so no in-flight completion touches a dead
    // session, then drop the connection. The daemon lives on.
  }
  wait_drained(s);
  ::close(fd);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Connects a TCP socket to host:port (name resolution via getaddrinfo).
int connect_tcp_fd(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    throw Error("cannot resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string why = "no addresses";
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      why = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    why = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw Error("cannot connect to " + host + ":" + std::to_string(port) +
                ": " + why);
  }
  disarm_sigpipe(fd);
  return fd;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgumentError("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return addr;
}

int connect_unix_fd(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");
  disarm_sigpipe(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("cannot connect to " + path + ": " + why);
  }
  return fd;
}

}  // namespace

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      unlink_path_(std::move(other.unlink_path_)) {
  other.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    unlink_path_ = std::move(other.unlink_path_);
    other.unlink_path_.clear();
  }
  return *this;
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

Listener Listener::tcp(const std::string& bind_addr, std::uint16_t port,
                       int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");
  // SO_REUSEADDR: a restarted server must not wait out TIME_WAIT of its
  // previous incarnation's connections.
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw InvalidArgumentError("invalid bind address: " + bind_addr);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("cannot listen on " + bind_addr + ":" +
                std::to_string(port) + ": " + why);
  }
  Listener l;
  l.fd_ = fd;
  // Resolve the bound port (meaningful when the caller asked for port 0).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    l.port_ = ntohs(bound.sin_port);
  }
  return l;
}

Listener Listener::unix_socket(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");

  // Bind first; only reclaim the path when it is provably stale. The
  // legacy unlink-then-bind would silently steal the socket of a live
  // server (and two racing starts could each believe they own it).
  int rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr));
  if (rc != 0 && errno == EADDRINUSE) {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool live = ::connect(probe, reinterpret_cast<const sockaddr*>(
                                              &addr),
                                  sizeof(addr)) == 0;
      const bool stale = !live && errno == ECONNREFUSED;
      ::close(probe);
      if (live) {
        ::close(fd);
        throw Error("another server is already listening on " + path);
      }
      if (stale) {
        ::unlink(path.c_str());
        rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr));
      }
    }
  }
  if (rc != 0 || ::listen(fd, backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("cannot listen on " + path + ": " + why);
  }
  Listener l;
  l.fd_ = fd;
  l.unlink_path_ = path;
  return l;
}

int serve_on(MappingService& service, Listener& listener,
             const ServeOptions& options) {
  SchedulerOptions so;
  so.workers = options.scheduler_threads;
  so.max_queue_depth = options.queue_depth;
  so.min_feasible_deadline_ms = options.min_feasible_deadline_ms;
  so.metrics = &service.metrics_mut();
  RequestScheduler scheduler(
      [&service](const std::string& line) { return service.handle_line(line); },
      so);
  scheduler.start();

  // Session threads are reaped as they finish (a long-lived daemon must not
  // accumulate one joinable thread per past connection): each session
  // pushes its id when done, the accept loop joins those before spawning
  // the next session.
  std::mutex reap_mu;
  std::vector<std::uint64_t> done;
  std::map<std::uint64_t, std::thread> active;
  std::uint64_t next_id = 0;
  const auto reap = [&](bool all) {
    std::vector<std::uint64_t> finished;
    {
      const std::scoped_lock lock(reap_mu);
      finished.swap(done);
    }
    if (all) {
      for (auto& [id, t] : active) t.join();
      active.clear();
      return;
    }
    for (const std::uint64_t id : finished) {
      const auto it = active.find(id);
      if (it != active.end()) {
        it->second.join();
        active.erase(it);
      }
    }
  };

  std::string failure;
  std::size_t accepted = 0;
  while (options.max_connections == 0 ||
         accepted < options.max_connections) {
    const int conn = ::accept(listener.fd(), nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      failure = std::string("accept() failed: ") + std::strerror(errno);
      break;
    }
    disarm_sigpipe(conn);
    ++accepted;
    reap(/*all=*/false);
    const std::uint64_t id = next_id++;
    active.emplace(id, std::thread([&scheduler, &reap_mu, &done, conn, id] {
                     run_session(scheduler, conn);
                     const std::scoped_lock lock(reap_mu);
                     done.push_back(id);
                   }));
  }
  reap(/*all=*/true);
  scheduler.stop();
  if (!failure.empty()) throw Error(failure);
  return 0;
}

int serve_tcp(MappingService& service, const std::string& bind_addr,
              std::uint16_t port, const ServeOptions& options) {
  Listener listener = Listener::tcp(bind_addr, port, options.backlog);
  return serve_on(service, listener, options);
}

int serve_unix_socket(MappingService& service, const std::string& path,
                      const ServeOptions& options) {
  Listener listener = Listener::unix_socket(path, options.backlog);
  return serve_on(service, listener, options);
}

int serve_unix_socket(MappingService& service, const std::string& path,
                      std::size_t max_connections) {
  ServeOptions options;
  options.max_connections = max_connections;
  return serve_unix_socket(service, path, options);
}

StreamClient::StreamClient(StreamClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {
  other.buffer_.clear();
}

StreamClient& StreamClient::operator=(StreamClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    other.buffer_.clear();
  }
  return *this;
}

StreamClient::~StreamClient() {
  if (fd_ >= 0) ::close(fd_);
}

StreamClient StreamClient::connect_tcp(const std::string& host,
                                       std::uint16_t port) {
  return StreamClient(connect_tcp_fd(host, port));
}

StreamClient StreamClient::connect_unix(const std::string& path) {
  return StreamClient(connect_unix_fd(path));
}

void StreamClient::send_line(const std::string& line) {
  write_all(fd_, line + "\n");
}

void StreamClient::shutdown_writes() { (void)::shutdown(fd_, SHUT_WR); }

std::optional<std::string> StreamClient::read_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      if (buffer_.empty()) return std::nullopt;
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    } else if (errno != EINTR) {
      throw Error(std::string("socket read failed: ") +
                  std::strerror(errno));
    }
  }
}

std::string send_to_tcp(const std::string& host, std::uint16_t port,
                        const std::string& requests) {
  const int fd = connect_tcp_fd(host, port);
  try {
    write_all(fd, requests);
    (void)::shutdown(fd, SHUT_WR);  // signals end-of-stream to the daemon
    std::string responses = read_all(fd);
    ::close(fd);
    return responses;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

std::string send_to_unix_socket(const std::string& path,
                                const std::string& requests) {
  const int fd = connect_unix_fd(path);
  try {
    write_all(fd, requests);
    (void)::shutdown(fd, SHUT_WR);  // signals end-of-stream to the daemon
    std::string responses = read_all(fd);
    ::close(fd);
    return responses;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

#else  // !OMEGA_HAVE_SOCKETS

namespace {
[[noreturn]] void no_sockets() {
  throw Error("sockets are not supported on this platform");
}
}  // namespace

Listener::Listener(Listener&&) noexcept = default;
Listener& Listener::operator=(Listener&&) noexcept = default;
Listener::~Listener() = default;
Listener Listener::tcp(const std::string&, std::uint16_t, int) {
  no_sockets();
}
Listener Listener::unix_socket(const std::string&, int) { no_sockets(); }

int serve_on(MappingService&, Listener&, const ServeOptions&) {
  no_sockets();
}
int serve_tcp(MappingService&, const std::string&, std::uint16_t,
              const ServeOptions&) {
  no_sockets();
}
int serve_unix_socket(MappingService&, const std::string&,
                      const ServeOptions&) {
  no_sockets();
}
int serve_unix_socket(MappingService&, const std::string&, std::size_t) {
  no_sockets();
}

StreamClient::StreamClient(StreamClient&&) noexcept = default;
StreamClient& StreamClient::operator=(StreamClient&&) noexcept = default;
StreamClient::~StreamClient() = default;
StreamClient StreamClient::connect_tcp(const std::string&, std::uint16_t) {
  no_sockets();
}
StreamClient StreamClient::connect_unix(const std::string&) { no_sockets(); }
void StreamClient::send_line(const std::string&) { no_sockets(); }
void StreamClient::shutdown_writes() { no_sockets(); }
std::optional<std::string> StreamClient::read_line() { no_sockets(); }

std::string send_to_tcp(const std::string&, std::uint16_t,
                        const std::string&) {
  no_sockets();
}
std::string send_to_unix_socket(const std::string&, const std::string&) {
  no_sockets();
}

#endif

}  // namespace omega::service
