// Streaming socket transports of the serving core (see DESIGN.md "Serving
// core").
//
// Unlike the legacy Unix-socket exchange — which buffered a connection's
// entire request stream before dispatching and wrote every response back in
// one piece — these transports frame NDJSON incrementally: a connection
// thread reads one line at a time, submits it to the shared request
// scheduler, and completions stream back the moment each request finishes.
// A fast request no longer waits behind a slow search at a batch barrier.
//
// Concurrency model:
//
//  * one accept loop per server; every accepted connection gets its own
//    session thread (reads + submits), and the scheduler's dispatch threads
//    execute requests and write responses back;
//  * the server-wide scheduler spans connections, so priority bands and the
//    admission bound apply to total load, not per-connection load.
//
// Ordering contract (changed from the batch transports, pinned by tests):
// responses stream in **per-connection request order within a priority
// band**. Requests of one connection and band emit in submission order even
// when they execute out of order or concurrently; requests in different
// bands (or on different connections) may interleave freely. Since v1
// requests carry no priority they all share band 0, so a v1 request stream
// over one connection still yields byte-identical response order to the
// stdio batch path. Barrier requests (stats/metrics) drain the connection's
// in-flight requests before and after dispatch, keeping their counters
// deterministic per connection exactly as handle_batch's segment barriers
// do per batch.
//
// Backpressure caveat: responses are written under a per-session mutex from
// scheduler threads; a peer that stops reading eventually blocks those
// writes. Well-behaved streaming clients read concurrently with sending
// (StreamClient does); the legacy send-all-then-read exchange stays safe
// for batches that fit the socket buffers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace omega::service {

class MappingService;

/// Transport + scheduling knobs of a streaming server (TCP or Unix socket).
struct ServeOptions {
  /// Accept this many connections then return (0 = serve until killed).
  std::size_t max_connections = 0;
  /// listen() backlog (pending-accept queue length).
  int backlog = 64;
  /// Scheduler admission bound: requests waiting across all connections.
  std::size_t queue_depth = 256;
  /// Scheduler dispatch threads (0 = one per hardware thread).
  std::size_t scheduler_threads = 0;
  /// Deadlines below this are shed at admission (0 = disabled).
  std::uint64_t min_feasible_deadline_ms = 0;
};

/// A bound+listening server socket (RAII: closes, and unlinks a Unix socket
/// path, on destruction). Two-step construction — bind first, serve_on
/// later — lets in-process callers bind TCP port 0 and read the resolved
/// port before any client races the server.
class Listener {
 public:
  /// Binds and listens on `bind_addr:port` (IPv4 dotted quad; port 0 picks
  /// an ephemeral port, readable via port()). Throws Error on failure.
  static Listener tcp(const std::string& bind_addr, std::uint16_t port,
                      int backlog = 64);

  /// Binds and listens on a Unix-domain socket at `path`. A stale socket
  /// file (no listener behind it) is detected by a connect probe and
  /// replaced; a live server at `path` is an error — the unlink-then-bind
  /// of the legacy path silently stole live sockets. Throws Error on
  /// failure.
  static Listener unix_socket(const std::string& path, int backlog = 64);

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// The bound TCP port (resolved — meaningful after tcp() with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  Listener() = default;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string unlink_path_;  // non-empty: unix socket file to remove
};

/// Runs the streaming accept loop on an already-bound listener: concurrent
/// per-connection sessions feeding one shared request scheduler. Returns 0
/// after `options.max_connections` connections have been accepted and fully
/// served (0 = loops until the process is killed). The listener's backlog
/// was fixed at bind time; options.backlog is ignored here.
int serve_on(MappingService& service, Listener& listener,
             const ServeOptions& options = {});

/// Binds `bind_addr:port` and runs serve_on. Convenience for the CLI.
int serve_tcp(MappingService& service, const std::string& bind_addr,
              std::uint16_t port, const ServeOptions& options = {});

/// Streaming Unix-socket server with full options. The legacy
/// `serve_unix_socket(service, path, max_connections)` signature in
/// server.hpp wraps this with default options (no default argument here —
/// it would make two-argument calls ambiguous against that overload).
int serve_unix_socket(MappingService& service, const std::string& path,
                      const ServeOptions& options);

/// Streaming client: sends request lines and reads response lines
/// incrementally on one connection — responses arrive as the server
/// completes them, concurrently with further sends.
class StreamClient {
 public:
  static StreamClient connect_tcp(const std::string& host,
                                  std::uint16_t port);
  static StreamClient connect_unix(const std::string& path);

  StreamClient(StreamClient&& other) noexcept;
  StreamClient& operator=(StreamClient&& other) noexcept;
  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;
  ~StreamClient();

  /// Sends one request line (the newline is appended).
  void send_line(const std::string& line);
  /// Half-closes the write side: tells the server no more requests follow.
  void shutdown_writes();
  /// Blocks for the next full response line; nullopt once the server
  /// closes the connection.
  [[nodiscard]] std::optional<std::string> read_line();

 private:
  explicit StreamClient(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buffer_;  // framing carry-over between read_line calls
};

/// Batch-exchange TCP client (mirrors send_to_unix_socket): connects, sends
/// `requests`, half-closes, returns every response byte.
[[nodiscard]] std::string send_to_tcp(const std::string& host,
                                      std::uint16_t port,
                                      const std::string& requests);

}  // namespace omega::service
