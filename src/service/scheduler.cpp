#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "util/parallel.hpp"

namespace omega::service {

namespace {

constexpr std::uint64_t kNoDeadline = std::numeric_limits<std::uint64_t>::max();

std::string band_metric(const char* stem, std::uint64_t band) {
  return std::string(stem) + std::to_string(band);
}

}  // namespace

RequestScheduler::RequestScheduler(Handler handler, SchedulerOptions options)
    : handler_(std::move(handler)), options_(options) {
  if (options_.bands == 0) options_.bands = 1;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  bands_.resize(options_.bands);
}

RequestScheduler::~RequestScheduler() { stop(); }

std::uint64_t RequestScheduler::now_us() const {
  if (options_.now_us) return options_.now_us();
  // omega-lint: allow(wall-clock): deadline scheduling is inherently wall-clock; tests inject options_.now_us
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          // omega-lint: allow(wall-clock): monotonic dispatch clock, metrics-only, never goldened
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RequestScheduler::start() {
  const std::size_t n =
      options_.workers > 0 ? options_.workers : default_thread_count();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void RequestScheduler::stop() {
  std::vector<Entry> orphans;
  {
    std::unique_lock lock(mutex_);
    if (stopped_) return;
    draining_ = true;
    if (workers_.empty()) {
      // Manual-drive mode (tests; start() never called): nothing will drain
      // the queue, so shed whatever is still waiting.
      for (BandQueue& band : bands_) {
        for (auto& [key, entry] : band) orphans.push_back(std::move(entry));
        band.clear();
      }
      depth_ = 0;
      update_depth_gauge_locked();
    } else {
      // Every admitted entry still completes: workers keep dispatching
      // until the queue is empty, then the stop flag releases them.
      drain_cv_.wait(lock, [this] { return depth_ == 0 && active_ == 0; });
    }
    stopped_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  for (Entry& e : orphans) {
    shed(std::move(e), "scheduler is shutting down",
         "service.sched.shed.shutdown");
  }
}

std::size_t RequestScheduler::queue_depth() const {
  const std::scoped_lock lock(mutex_);
  return depth_;
}

void RequestScheduler::update_depth_gauge_locked() {
  if (options_.metrics != nullptr) {
    options_.metrics->set_gauge("service.sched.queue_depth",
                                static_cast<double>(depth_));
  }
}

void RequestScheduler::shed(Entry e, const char* reason, const char* counter) {
  if (options_.metrics != nullptr) {
    options_.metrics->add("service.sched.shed", 1);
    options_.metrics->add(counter, 1);
  }
  e.done(error_response(e.meta.id, "overloaded", reason, e.meta.version),
         /*shed=*/true);
}

SubmitOutcome RequestScheduler::submit(std::string line,
                                       const SubmitMeta& meta,
                                       Completion done) {
  Entry entry;
  entry.line = std::move(line);
  entry.meta = meta;
  entry.meta.priority =
      std::min<std::uint64_t>(meta.priority, options_.bands - 1);
  entry.done = std::move(done);
  entry.admit_us = now_us();
  entry.deadline_us = meta.deadline_ms == 0
                          ? kNoDeadline
                          : entry.admit_us + meta.deadline_ms * 1000;
  if (options_.metrics != nullptr) {
    options_.metrics->add("service.sched.submitted", 1);
  }

  if (meta.deadline_ms != 0 &&
      meta.deadline_ms < options_.min_feasible_deadline_ms) {
    shed(std::move(entry), "deadline below the feasible-service threshold",
         "service.sched.shed.deadline");
    return SubmitOutcome::kShedInfeasible;
  }

  // Decide under the lock; fire completions outside it (a completion writes
  // to the transport and must never run while holding the queue mutex).
  SubmitOutcome outcome = SubmitOutcome::kAdmitted;
  Entry victim;
  bool have_victim = false;
  {
    const std::scoped_lock lock(mutex_);
    if (draining_) {
      outcome = SubmitOutcome::kShedShutdown;
    } else {
      if (depth_ >= options_.max_queue_depth) {
        // Full queue: evict the worst lower-band entry (latest deadline,
        // newest admission within it) if the incoming request outranks it;
        // otherwise the incoming request is the one shed. A low-priority
        // flood therefore sheds itself, never queued high-priority work.
        for (std::size_t b = 0; b < entry.meta.priority; ++b) {
          if (bands_[b].empty()) continue;
          const auto last = std::prev(bands_[b].end());
          victim = std::move(last->second);
          bands_[b].erase(last);
          --depth_;
          have_victim = true;
          break;
        }
        if (!have_victim) outcome = SubmitOutcome::kShedQueueFull;
      }
      if (outcome == SubmitOutcome::kAdmitted) {
        bands_[entry.meta.priority].emplace(
            std::make_pair(entry.deadline_us, next_seq_++), std::move(entry));
        ++depth_;
        update_depth_gauge_locked();
        work_cv_.notify_one();
      }
    }
  }
  if (have_victim) {
    shed(std::move(victim), "evicted by a higher-priority request",
         "service.sched.shed.queue_full");
  }
  if (outcome == SubmitOutcome::kShedQueueFull) {
    shed(std::move(entry), "admission queue is full",
         "service.sched.shed.queue_full");
  } else if (outcome == SubmitOutcome::kShedShutdown) {
    shed(std::move(entry), "scheduler is shutting down",
         "service.sched.shed.shutdown");
  }
  return outcome;
}

RequestScheduler::Entry RequestScheduler::pop_best_locked() {
  for (std::size_t b = bands_.size(); b-- > 0;) {
    if (bands_[b].empty()) continue;
    const auto it = bands_[b].begin();
    Entry e = std::move(it->second);
    bands_[b].erase(it);
    --depth_;
    update_depth_gauge_locked();
    return e;
  }
  return {};  // unreachable while depth_ > 0 under the lock
}

void RequestScheduler::process(Entry e) {
  const std::uint64_t band = e.meta.priority;
  const std::uint64_t start = now_us();
  if (e.deadline_us <= start) {
    shed(std::move(e), "deadline expired before dispatch",
         "service.sched.shed.deadline");
    return;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->add("service.sched.dispatched", 1);
    options_.metrics->observe(band_metric("service.sched.queue_us.band", band),
                              start - e.admit_us);
  }
  std::string response;
  try {
    response = handler_(e.line);
  } catch (const std::exception& ex) {
    // Backstop: MappingService::handle_line never throws, but the scheduler
    // is generic over its handler and a dispatch thread must not die.
    response =
        error_response(e.meta.id, "Internal", ex.what(), e.meta.version);
  }
  e.done(std::move(response), /*shed=*/false);
  if (options_.metrics != nullptr) {
    options_.metrics->observe(
        band_metric("service.sched.latency_us.band", band),
        now_us() - e.admit_us);
  }
}

bool RequestScheduler::run_one() {
  Entry e;
  {
    const std::scoped_lock lock(mutex_);
    if (depth_ == 0) return false;
    e = pop_best_locked();
    ++active_;
  }
  process(std::move(e));
  {
    const std::scoped_lock lock(mutex_);
    --active_;
    if (depth_ == 0 && active_ == 0) drain_cv_.notify_all();
  }
  return true;
}

void RequestScheduler::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return depth_ > 0 || stopped_; });
    if (depth_ == 0) {
      if (stopped_) return;
      continue;
    }
    Entry e = pop_best_locked();
    ++active_;
    lock.unlock();
    process(std::move(e));
    lock.lock();
    --active_;
    if (depth_ == 0 && active_ == 0) drain_cv_.notify_all();
  }
}

}  // namespace omega::service
