// Priority/deadline request scheduler of the serving core (see DESIGN.md
// "Serving core").
//
// The streaming transports (TCP and the Unix-socket path) do not dispatch
// batch-concurrently like the stdio path; every request line is submitted
// here instead. The scheduler is a bounded admission queue in front of the
// request handler:
//
//  * requests carry a priority band (0 = lowest .. bands-1 = highest) and an
//    optional relative deadline; dispatch picks the highest non-empty band
//    and, within a band, the earliest absolute deadline
//    (earliest-deadline-first; requests without a deadline sort last, FIFO
//    by admission order);
//  * admission is bounded: once `max_queue_depth` requests are waiting, a
//    newly submitted request is shed — unless it outranks a queued
//    lower-band request, in which case that victim is shed instead (a
//    low-priority flood can never push high-priority work out, and a full
//    queue never blocks the transport's reader thread);
//  * sheds are structured responses, not closed connections: the completion
//    callback fires with {"ok":false,"error":{"type":"overloaded",...}} so
//    the client can tell load shedding from a crash;
//  * a request whose deadline has already expired when a worker picks it up
//    is shed without executing (the response could only arrive late, so the
//    cycles are better spent on feasible work). `min_feasible_deadline_ms`
//    optionally sheds at admission instead.
//
// Execution happens on the scheduler's dispatch threads; each request's
// internal sweep still parallelizes on the process-wide ThreadPool, so the
// dispatch threads are cheap waiters, not a second compute pool.
//
// Determinism: dispatch order between concurrent workers is scheduling-
// dependent, but the transports re-order responses per (connection,
// band) — see tcp.hpp — so client-visible bytes stay deterministic. The
// policy itself is exact and testable single-threaded through run_one(),
// and the clock is injectable so deadline sheds are reproducible in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace omega::obs {
class MetricsRegistry;
}  // namespace omega::obs

namespace omega::service {

/// Scheduling metadata of one submitted request. `id`/`version` are only
/// used to shape a structured shed response; `priority` is clamped into the
/// configured band range.
struct SubmitMeta {
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  std::uint64_t priority = 0;
  std::uint64_t deadline_ms = 0;  // relative to admission; 0 = none
};

enum class SubmitOutcome : std::uint8_t {
  kAdmitted = 0,
  /// Queue full and no lower-band victim to evict; the completion already
  /// fired with the overloaded response.
  kShedQueueFull = 1,
  /// Deadline below min_feasible_deadline_ms; completion already fired.
  kShedInfeasible = 2,
  /// Scheduler is draining/stopped; completion already fired.
  kShedShutdown = 3,
};

struct SchedulerOptions {
  /// Dispatch threads (0 = one per hardware thread). Each executes one
  /// request at a time; request-internal sweeps use the global ThreadPool.
  std::size_t workers = 0;
  /// Bounded admission: maximum requests waiting (excluding executing).
  std::size_t max_queue_depth = 256;
  /// Priority bands; submissions clamp into [0, bands).
  std::size_t bands = 8;
  /// Deadlines shorter than this are shed at admission (0 = disabled; the
  /// dispatch-time expiry check always applies).
  std::uint64_t min_feasible_deadline_ms = 0;
  /// Counter/gauge/histogram sink (service.sched.* namespace); may be null.
  obs::MetricsRegistry* metrics = nullptr;
  /// Monotonic microsecond clock; null = steady_clock. Injectable so tests
  /// pin deadline sheds deterministically.
  std::function<std::uint64_t()> now_us;
};

/// Bounded priority/deadline admission queue in front of a request handler.
/// Thread-safe; completions fire exactly once per submission, on a worker
/// thread (or on the submitting thread when shed at admission).
class RequestScheduler {
 public:
  /// handler(line) -> response; must not throw (MappingService::handle_line
  /// already maps failures to structured errors; a throwing handler is
  /// caught and mapped to an internal error response as a backstop).
  using Handler = std::function<std::string(const std::string&)>;
  /// completion(response, shed): `shed` is true when `response` is a
  /// scheduler-generated overloaded error (the handler never ran).
  using Completion = std::function<void(std::string, bool)>;

  RequestScheduler(Handler handler, SchedulerOptions options);
  ~RequestScheduler();
  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Spawns the dispatch threads (no-op when options.workers resolves to a
  /// manual-drive configuration of 0 via explicit `workers = 0` + start()
  /// never called; tests drive run_one() instead).
  void start();

  /// Drains the queue (every admitted request completes or sheds), then
  /// stops and joins the dispatch threads. Submissions arriving after stop
  /// began are shed with kShedShutdown. Idempotent.
  void stop();

  /// Submits one request. Always results in exactly one completion call —
  /// either the handler's response or a structured overloaded shed.
  SubmitOutcome submit(std::string line, const SubmitMeta& meta,
                       Completion done);

  /// Pops and processes the single best queued request on the calling
  /// thread (same policy as a worker: highest band, then earliest
  /// deadline). Returns false when the queue is empty. Test hook — gives
  /// single-threaded deterministic dispatch order.
  bool run_one();

  /// Requests currently waiting (excludes executing).
  [[nodiscard]] std::size_t queue_depth() const;

  [[nodiscard]] const SchedulerOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string line;
    SubmitMeta meta;
    Completion done;
    std::uint64_t admit_us = 0;
    std::uint64_t deadline_us = 0;  // absolute; UINT64_MAX = none
  };
  /// EDF order within a band: (absolute deadline, admission sequence).
  using BandQueue = std::map<std::pair<std::uint64_t, std::uint64_t>, Entry>;

  [[nodiscard]] std::uint64_t now_us() const;
  void worker_loop();
  /// Executes or deadline-sheds `e` (outside the queue lock).
  void process(Entry e);
  void shed(Entry e, const char* reason, const char* counter);
  /// Pops the policy-best entry; queue lock must be held.
  [[nodiscard]] Entry pop_best_locked();
  void update_depth_gauge_locked();

  Handler handler_;
  SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for queue items
  std::condition_variable drain_cv_;  // stop() waits for depth==0 && active==0
  std::vector<BandQueue> bands_;
  std::size_t depth_ = 0;
  std::size_t active_ = 0;
  std::uint64_t next_seq_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace omega::service
