#include "service/protocol.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/format.hpp"

namespace omega::service {

namespace {

/// Field accessors with protocol-grade messages. All throw
/// InvalidArgumentError so the server maps them to structured errors.
std::uint64_t u64_field(const JsonValue& v, const char* what) {
  // omega-lint: allow(uncaught-escape): narrow Error->InvalidArgumentError rewrap; anything else reaches the handle_line catch-all
  try {
    return v.as_u64();
  } catch (const Error&) {
    throw InvalidArgumentError(std::string(what) +
                               " must be an unsigned integer");
  }
}

double double_field(const JsonValue& v, const char* what) {
  if (!v.is_number()) {
    throw InvalidArgumentError(std::string(what) + " must be a number");
  }
  return v.as_double();
}

bool bool_field(const JsonValue& v, const char* what) {
  if (!v.is_bool()) {
    throw InvalidArgumentError(std::string(what) + " must be a boolean");
  }
  return v.as_bool();
}

std::string string_field(const JsonValue& v, const char* what) {
  if (!v.is_string()) {
    throw InvalidArgumentError(std::string(what) + " must be a string");
  }
  return v.as_string();
}

WorkloadRef parse_workload(const JsonValue& v) {
  WorkloadRef w;
  if (!v.is_object()) {
    throw InvalidArgumentError("workload must be an object");
  }
  bool saw_scale = false;
  bool saw_seed = false;
  for (const auto& [key, value] : v.members()) {
    if (key == "dataset") w.dataset = string_field(value, "workload.dataset");
    else if (key == "mtx") w.mtx_path = string_field(value, "workload.mtx");
    else if (key == "scale") {
      w.scale = double_field(value, "workload.scale");
      saw_scale = true;
    } else if (key == "seed") {
      w.seed = u64_field(value, "workload.seed");
      saw_seed = true;
    } else if (key == "in_features") {
      w.in_features =
          static_cast<std::size_t>(u64_field(value, "workload.in_features"));
    } else if (key == "self_loops") {
      w.add_self_loops = bool_field(value, "workload.self_loops");
    } else if (key == "normalize") {
      w.gcn_normalize = bool_field(value, "workload.normalize");
    } else {
      throw InvalidArgumentError("unknown workload key: " + key);
    }
  }
  if (w.dataset.empty() == w.mtx_path.empty()) {
    throw InvalidArgumentError(
        "workload wants exactly one of \"dataset\" or \"mtx\"");
  }
  if (!w.mtx_path.empty()) {
    if (w.in_features == 0) {
      throw InvalidArgumentError(
          "mtx workloads need \"in_features\" (the file carries no features)");
    }
    // Synthesis-only knobs would be silently ignored (and would fragment
    // the registry into duplicate entries for the same file); reject them.
    if (saw_scale || saw_seed) {
      throw InvalidArgumentError(
          "mtx workloads do not take \"scale\"/\"seed\" (the file is loaded "
          "as-is)");
    }
  }
  if (!(w.scale > 0.0)) {
    throw InvalidArgumentError("workload.scale must be positive");
  }
  return w;
}

Objective parse_objective(const std::string& s) {
  const std::string o = to_lower(s);
  if (o == "runtime") return Objective::kRuntime;
  if (o == "energy") return Objective::kEnergy;
  if (o == "edp") return Objective::kEnergyDelayProduct;
  throw InvalidArgumentError("unknown objective: " + s);
}

/// Shared knobs of search_mappings and the per-layer half of search_model.
void parse_search_option(const std::string& key, const JsonValue& value,
                         SearchOptions& so, bool* known) {
  *known = true;
  if (key == "objective") {
    so.objective = parse_objective(string_field(value, "options.objective"));
  } else if (key == "max_candidates") {
    so.max_candidates =
        static_cast<std::size_t>(u64_field(value, "options.max_candidates"));
  } else if (key == "top_k") {
    so.top_k = static_cast<std::size_t>(u64_field(value, "options.top_k"));
  } else if (key == "prune") {
    so.prune = bool_field(value, "options.prune");
  } else if (key == "include_ca") {
    so.include_ca = bool_field(value, "options.include_ca");
  } else if (key == "threads") {
    so.threads = static_cast<std::size_t>(u64_field(value, "options.threads"));
  } else {
    *known = false;
  }
}

void parse_mapping_options(const JsonValue& v, SearchOptions& so) {
  if (!v.is_object()) {
    throw InvalidArgumentError("options must be an object");
  }
  for (const auto& [key, value] : v.members()) {
    bool known = false;
    parse_search_option(key, value, so, &known);
    if (!known) throw InvalidArgumentError("unknown options key: " + key);
  }
}

void parse_model_options(const JsonValue& v, ModelSearchOptions& mo) {
  if (!v.is_object()) {
    throw InvalidArgumentError("options must be an object");
  }
  for (const auto& [key, value] : v.members()) {
    if (key == "prune") {
      // One switch for the model-level search: ModelSearchOptions::prune
      // overrides the per-layer flag inside search_model_mappings.
      mo.prune = bool_field(value, "options.prune");
      continue;
    }
    bool known = false;
    parse_search_option(key, value, mo.layer, &known);
    if (known) continue;
    if (key == "budget") {
      mo.layer.max_candidates =
          static_cast<std::size_t>(u64_field(value, "options.budget"));
    } else if (key == "total_budget") {
      mo.max_total_candidates =
          static_cast<std::size_t>(u64_field(value, "options.total_budget"));
    } else if (key == "allocation") {
      const std::string a = to_lower(string_field(value, "options.allocation"));
      if (a == "even") mo.budget_allocation = BudgetAllocation::kEven;
      else if (a == "mac") mo.budget_allocation = BudgetAllocation::kMacWeighted;
      else throw InvalidArgumentError("unknown allocation: " + a);
    } else if (key == "seed_table5") {
      mo.seed_table5 = bool_field(value, "options.seed_table5");
    } else if (key == "compose") {
      // Absent => kSequential (the ModelSearchOptions default): request
      // lines written before cross-layer composition existed keep their
      // historical ranking semantics. (Responses did grow the
      // compose/composed_cycles fields — the goldens were regenerated.)
      mo.compose =
          compose_from_string(to_lower(string_field(value, "options.compose")));
    } else {
      throw InvalidArgumentError("unknown options key: " + key);
    }
  }
}

/// v2 evaluate: {"phases":[{"name","engine","dataflow","tiles","out_features",
/// "density"},...],"boundaries":["Seq",...],"pe_fractions":[...],
/// "in_features":N}. Tile arrays hold one entry per canonical phase dim
/// (V,N,F for spmm; V,F,G for gemm/spgemm).
PipelineSpec parse_pipeline(const JsonValue& v) {
  if (!v.is_object()) {
    throw InvalidArgumentError("pipeline must be an object");
  }
  PipelineSpec spec;
  bool saw_phases = false;
  for (const auto& [key, value] : v.members()) {
    if (key == "phases") {
      saw_phases = true;
      if (!value.is_array()) {
        throw InvalidArgumentError("pipeline.phases must be an array");
      }
      for (const auto& pv : value.items()) {
        if (!pv.is_object()) {
          throw InvalidArgumentError("pipeline.phases[] must be objects");
        }
        std::string name;
        PhaseEngine engine = PhaseEngine::kDenseDense;
        std::string dataflow_text;
        std::vector<std::size_t> tiles;
        std::size_t out_features = 0;
        double density = 1.0;
        bool saw_engine = false;
        for (const auto& [pk, pval] : pv.members()) {
          if (pk == "name") {
            name = string_field(pval, "phases[].name");
          } else if (pk == "engine") {
            engine = phase_engine_from_string(
                string_field(pval, "phases[].engine"));
            saw_engine = true;
          } else if (pk == "dataflow") {
            dataflow_text = string_field(pval, "phases[].dataflow");
          } else if (pk == "tiles") {
            for (const auto& t : pval.items()) {
              tiles.push_back(
                  static_cast<std::size_t>(u64_field(t, "phases[].tiles[]")));
            }
          } else if (pk == "out_features") {
            out_features = static_cast<std::size_t>(
                u64_field(pval, "phases[].out_features"));
          } else if (pk == "density") {
            density = double_field(pval, "phases[].density");
          } else {
            throw InvalidArgumentError("unknown phases[] key: " + pk);
          }
        }
        if (!saw_engine || dataflow_text.empty()) {
          throw InvalidArgumentError(
              "each pipeline phase needs \"engine\" and \"dataflow\"");
        }
        spec.phases.push_back(assemble_phase_spec(
            std::move(name), engine, dataflow_text, tiles, out_features,
            density, spec.phases.size()));
      }
    } else if (key == "boundaries") {
      if (!value.is_array()) {
        throw InvalidArgumentError("pipeline.boundaries must be an array");
      }
      for (const auto& b : value.items()) {
        spec.boundaries.push_back(
            inter_phase_from_string(string_field(b, "pipeline.boundaries[]")));
      }
    } else if (key == "pe_fractions") {
      if (!value.is_array()) {
        throw InvalidArgumentError("pipeline.pe_fractions must be an array");
      }
      for (const auto& f : value.items()) {
        spec.pe_fractions.push_back(
            double_field(f, "pipeline.pe_fractions[]"));
      }
    } else if (key == "in_features") {
      spec.in_features = static_cast<std::size_t>(
          u64_field(value, "pipeline.in_features"));
    } else {
      throw InvalidArgumentError("unknown pipeline key: " + key);
    }
  }
  if (!saw_phases || spec.phases.empty()) {
    throw InvalidArgumentError("pipeline needs a non-empty \"phases\" array");
  }
  return spec;
}

/// v2 search_pipeline: {"phases":[{"name","engine","out_features",
/// "density"},...],"in_features":N}. The binding half (orders, tiles,
/// boundaries, fractions) is what the search enumerates, so the chain
/// carries none of it.
PipelineChainSpec parse_chain(const JsonValue& v) {
  if (!v.is_object()) {
    throw InvalidArgumentError("chain must be an object");
  }
  PipelineChainSpec chain;
  bool saw_phases = false;
  for (const auto& [key, value] : v.members()) {
    if (key == "phases") {
      saw_phases = true;
      if (!value.is_array()) {
        throw InvalidArgumentError("chain.phases must be an array");
      }
      for (const auto& pv : value.items()) {
        if (!pv.is_object()) {
          throw InvalidArgumentError("chain.phases[] must be objects");
        }
        PhaseChainSpec phase;
        bool saw_engine = false;
        for (const auto& [pk, pval] : pv.members()) {
          if (pk == "name") {
            phase.name = string_field(pval, "chain.phases[].name");
          } else if (pk == "engine") {
            phase.engine = phase_engine_from_string(
                string_field(pval, "chain.phases[].engine"));
            saw_engine = true;
          } else if (pk == "out_features") {
            phase.out_features = static_cast<std::size_t>(
                u64_field(pval, "chain.phases[].out_features"));
          } else if (pk == "density") {
            phase.weight_density =
                double_field(pval, "chain.phases[].density");
          } else {
            throw InvalidArgumentError("unknown chain.phases[] key: " + pk);
          }
        }
        if (!saw_engine) {
          throw InvalidArgumentError("each chain phase needs \"engine\"");
        }
        chain.phases.push_back(std::move(phase));
      }
    } else if (key == "in_features") {
      chain.in_features =
          static_cast<std::size_t>(u64_field(value, "chain.in_features"));
    } else {
      throw InvalidArgumentError("unknown chain key: " + key);
    }
  }
  if (!saw_phases || chain.phases.empty()) {
    throw InvalidArgumentError("chain needs a non-empty \"phases\" array");
  }
  return chain;
}

void parse_pipeline_search_options(const JsonValue& v,
                                   PipelineSearchOptions& po) {
  if (!v.is_object()) {
    throw InvalidArgumentError("options must be an object");
  }
  for (const auto& [key, value] : v.members()) {
    if (key == "objective") {
      po.objective = parse_objective(string_field(value, "options.objective"));
    } else if (key == "max_candidates") {
      po.max_candidates =
          static_cast<std::size_t>(u64_field(value, "options.max_candidates"));
    } else if (key == "top_k") {
      po.top_k = static_cast<std::size_t>(u64_field(value, "options.top_k"));
    } else if (key == "prune") {
      po.prune = bool_field(value, "options.prune");
    } else if (key == "prune_seed") {
      po.prune_seed =
          static_cast<std::size_t>(u64_field(value, "options.prune_seed"));
    } else if (key == "threads") {
      po.threads = static_cast<std::size_t>(u64_field(value, "options.threads"));
    } else if (key == "seed_table5") {
      po.seed_table5 = bool_field(value, "options.seed_table5");
    } else {
      throw InvalidArgumentError("unknown options key: " + key);
    }
  }
}

GnnModel parse_model_arch(const std::string& s) {
  const std::string m = to_lower(s);
  if (m == "gcn") return GnnModel::kGCN;
  if (m == "sage" || m == "graphsage") return GnnModel::kGraphSAGE;
  if (m == "gin") return GnnModel::kGIN;
  throw InvalidArgumentError("unknown model arch: " + s);
}

void write_workload_summary(JsonWriter& w, const GnnWorkload& workload) {
  w.key("workload").begin_object();
  w.member("name", workload.name);
  w.member("vertices", static_cast<std::uint64_t>(workload.num_vertices()));
  w.member("edges", static_cast<std::uint64_t>(workload.num_edges()));
  w.member("in_features",
           static_cast<std::uint64_t>(workload.in_features));
  w.end_object();
}

void write_candidate(JsonWriter& w, const Candidate& c) {
  w.begin_object();
  w.member("dataflow", c.dataflow.to_string());
  w.member("cycles", c.cycles);
  w.member("on_chip_pj", c.on_chip_pj);
  w.member("score", c.score);
  w.end_object();
}

}  // namespace

std::string WorkloadRef::signature() const {
  // Canonical, collision-free key: field=value pairs in fixed order, with
  // the double rendered shortest-round-trip so 0.25 and 0.250 coincide only
  // when they are the same value.
  std::string s;
  s += dataset.empty() ? "mtx=" + mtx_path : "dataset=" + to_lower(dataset);
  s += ";scale=" + json_number(scale);
  s += ";seed=" + std::to_string(seed);
  s += ";f=" + std::to_string(in_features);
  s += ";loops=" + std::string(add_self_loops ? "1" : "0");
  s += ";norm=" + std::string(gcn_normalize ? "1" : "0");
  return s;
}

const char* to_string(RequestKind k) {
  switch (k) {
    case RequestKind::kEvaluate: return "evaluate";
    case RequestKind::kSearchMappings: return "search_mappings";
    case RequestKind::kSearchModel: return "search_model";
    case RequestKind::kStats: return "stats";
    case RequestKind::kSearchPipeline: return "search_pipeline";
    case RequestKind::kMetrics: return "metrics";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  const JsonValue root = JsonValue::parse(line);
  if (!root.is_object()) {
    throw InvalidArgumentError("request must be a JSON object");
  }

  Request r;
  const JsonValue* kind = root.find("kind");
  if (kind == nullptr) {
    throw InvalidArgumentError("request needs a \"kind\"");
  }
  const std::string k = string_field(*kind, "kind");
  if (k == "evaluate") r.kind = RequestKind::kEvaluate;
  else if (k == "search_mappings") r.kind = RequestKind::kSearchMappings;
  else if (k == "search_model") r.kind = RequestKind::kSearchModel;
  else if (k == "search_pipeline") r.kind = RequestKind::kSearchPipeline;
  else if (k == "stats") r.kind = RequestKind::kStats;
  else if (k == "metrics") r.kind = RequestKind::kMetrics;
  else throw InvalidArgumentError("unknown request kind: " + k);

  // Keys irrelevant to the request kind are rejected, not ignored: a field
  // that cannot affect the response is almost certainly a client mistake.
  const auto only_for = [&](const char* key, bool allowed) {
    if (!allowed) {
      throw InvalidArgumentError(std::string("\"") + key +
                                 "\" does not apply to " +
                                 to_string(r.kind) + " requests");
    }
  };
  const bool is_evaluate = r.kind == RequestKind::kEvaluate;
  // Workload-free kinds: stats and metrics take no substrate either.
  const bool is_bare = r.kind == RequestKind::kStats ||
                       r.kind == RequestKind::kMetrics;
  const bool is_search_pipeline = r.kind == RequestKind::kSearchPipeline;

  bool saw_workload = false;
  bool saw_out_features = false;
  bool saw_pp_fraction = false;
  bool saw_chain = false;
  bool saw_scheduling = false;
  for (const auto& [key, value] : root.members()) {
    if (key == "kind") continue;
    if (key == "id") {
      r.id = u64_field(value, "id");
    } else if (key == "priority") {
      // Scheduling fields apply to every kind (the transports schedule all
      // requests, barriers included); validated against the version after
      // the loop since "version" may appear in any member position.
      r.priority = u64_field(value, "priority");
      saw_scheduling = true;
      if (r.priority > kMaxRequestPriority) {
        throw InvalidArgumentError(
            "priority must be in [0, " +
            std::to_string(kMaxRequestPriority) + "]");
      }
    } else if (key == "deadline_ms") {
      r.deadline_ms = u64_field(value, "deadline_ms");
      saw_scheduling = true;
    } else if (key == "version") {
      r.version = u64_field(value, "version");
      if (r.version < 1 || r.version > 2) {
        throw InvalidArgumentError(
            "unsupported protocol version: " + std::to_string(r.version) +
            " (this server speaks versions 1 and 2)");
      }
    } else if (key == "pipeline") {
      only_for("pipeline", is_evaluate);
      r.pipeline = parse_pipeline(value);
      r.has_pipeline = true;
    } else if (key == "chain") {
      only_for("chain", is_search_pipeline);
      r.chain = parse_chain(value);
      saw_chain = true;
    } else if (key == "workload") {
      only_for("workload", !is_bare);
      r.workload = parse_workload(value);
      saw_workload = true;
    } else if (key == "pes") {
      only_for("pes", !is_bare);
      r.pes = static_cast<std::size_t>(u64_field(value, "pes"));
      if (r.pes == 0) throw InvalidArgumentError("pes must be >= 1");
    } else if (key == "bandwidth") {
      only_for("bandwidth", !is_bare);
      r.bandwidth = static_cast<std::size_t>(u64_field(value, "bandwidth"));
    } else if (key == "out_features") {
      // search_model derives every layer's widths from the model spec.
      only_for("out_features",
               is_evaluate || r.kind == RequestKind::kSearchMappings);
      r.out_features =
          static_cast<std::size_t>(u64_field(value, "out_features"));
      saw_out_features = true;
      if (r.out_features == 0) {
        throw InvalidArgumentError("out_features must be >= 1");
      }
    } else if (key == "dataflow") {
      only_for("dataflow", is_evaluate);
      r.dataflow = string_field(value, "dataflow");
    } else if (key == "pattern") {
      only_for("pattern", is_evaluate);
      r.pattern = string_field(value, "pattern");
    } else if (key == "tiles") {
      only_for("tiles", is_evaluate);
      for (const auto& t : value.items()) {
        r.tiles.push_back(static_cast<std::size_t>(u64_field(t, "tiles[]")));
      }
      if (r.tiles.size() != 6) {
        throw InvalidArgumentError(
            "tiles wants 6 values: T_VAGG,T_N,T_FAGG,T_VCMB,T_G,T_FCMB");
      }
    } else if (key == "pp_fraction") {
      only_for("pp_fraction", is_evaluate);
      r.pp_fraction = double_field(value, "pp_fraction");
      saw_pp_fraction = true;
    } else if (key == "options") {
      if (r.kind == RequestKind::kSearchModel) {
        parse_model_options(value, r.model_options);
      } else if (r.kind == RequestKind::kSearchMappings) {
        parse_mapping_options(value, r.search);
      } else if (is_search_pipeline) {
        parse_pipeline_search_options(value, r.pipeline_search);
      } else {
        throw InvalidArgumentError(
            "options only applies to search_mappings / search_model / "
            "search_pipeline");
      }
    } else if (key == "model") {
      only_for("model", r.kind == RequestKind::kSearchModel);
      if (!value.is_object()) {
        throw InvalidArgumentError("model must be an object");
      }
      for (const auto& [mk, mv] : value.members()) {
        if (mk == "arch") {
          r.model = parse_model_arch(string_field(mv, "model.arch"));
        } else if (mk == "widths") {
          for (const auto& width : mv.items()) {
            r.widths.push_back(
                static_cast<std::size_t>(u64_field(width, "model.widths[]")));
          }
        } else {
          throw InvalidArgumentError("unknown model key: " + mk);
        }
      }
    } else {
      throw InvalidArgumentError("unknown request key: " + key);
    }
  }

  if (!is_bare && !saw_workload) {
    throw InvalidArgumentError(std::string(to_string(r.kind)) +
                               " needs a \"workload\"");
  }
  if (is_evaluate) {
    if (r.has_pipeline) {
      // The N-phase shape is a v2 addition; a v1 (or unversioned) client
      // sending one is a mistake, not a silent upgrade.
      if (r.version < 2) {
        throw InvalidArgumentError(
            "\"pipeline\" requires \"version\":2 (unversioned requests "
            "speak the v1 two-phase shape)");
      }
      // Every two-phase-shape field is rejected, not ignored: the phases
      // carry their own widths and PE fractions, and a silently-discarded
      // out_features is exactly the defaulted-field failure the strict
      // parser exists to surface.
      if (!r.dataflow.empty() || !r.pattern.empty() || !r.tiles.empty() ||
          saw_out_features || saw_pp_fraction) {
        throw InvalidArgumentError(
            "\"pipeline\" replaces \"dataflow\"/\"pattern\"/\"tiles\"/"
            "\"out_features\"/\"pp_fraction\" — send one shape or the "
            "other");
      }
    } else if (r.dataflow.empty() == r.pattern.empty()) {
      // Wording kept stable: unversioned clients see byte-identical
      // responses, including this error.
      throw InvalidArgumentError(
          "evaluate wants exactly one of \"dataflow\" or \"pattern\"");
    }
    // Explicit tiles only bind onto an explicit descriptor; a pattern's
    // tiles come from bind_tiles and would silently win otherwise.
    if (!r.pattern.empty() && !r.tiles.empty()) {
      throw InvalidArgumentError(
          "\"tiles\" applies to \"dataflow\" requests, not \"pattern\"");
    }
  }
  if (r.kind == RequestKind::kSearchModel && r.widths.empty()) {
    throw InvalidArgumentError(
        "search_model needs model.widths (hidden layer widths)");
  }
  if (is_search_pipeline) {
    // Like evaluate's "pipeline", the N-phase search is a v2 addition.
    if (r.version < 2) {
      throw InvalidArgumentError(
          "search_pipeline requires \"version\":2 (unversioned requests "
          "speak the v1 two-phase shape)");
    }
    if (!saw_chain) {
      throw InvalidArgumentError("search_pipeline needs a \"chain\"");
    }
  }
  if (r.kind == RequestKind::kMetrics && r.version < 2) {
    throw InvalidArgumentError(
        "metrics requires \"version\":2 (v1 observability is the stats "
        "request)");
  }
  if (saw_scheduling && r.version < 2) {
    throw InvalidArgumentError(
        "\"priority\"/\"deadline_ms\" require \"version\":2 (unversioned "
        "requests keep the v1 unscheduled shape)");
  }
  return r;
}

namespace {

bool kind_is(const std::string& line, std::initializer_list<const char*> any) {
  // omega-lint: allow(uncaught-escape): parse probe; malformed lines return false, non-Error escapes reach the handler catch-all
  try {
    const JsonValue root = JsonValue::parse(line);
    const JsonValue* kind = root.find("kind");
    if (kind == nullptr || !kind->is_string()) return false;
    for (const char* k : any) {
      if (kind->as_string() == k) return true;
    }
    return false;
  } catch (const Error&) {
    return false;  // malformed lines get their error response concurrently
  }
}

}  // namespace

bool is_stats_request(const std::string& line) {
  return kind_is(line, {"stats"});
}

bool is_barrier_request(const std::string& line) {
  return kind_is(line, {"stats", "metrics"});
}

std::uint64_t peek_request_id(const std::string& line) {
  // omega-lint: allow(uncaught-escape): parse probe; only Error means "no id to recover"
  try {
    const JsonValue root = JsonValue::parse(line);
    if (const JsonValue* id = root.find("id");
        id != nullptr && id->is_number()) {
      return id->as_u64();
    }
  } catch (const Error&) {
    // Malformed JSON: no id to recover.
  }
  return 0;
}

RequestScheduling peek_request_scheduling(const std::string& line) {
  RequestScheduling s;
  // omega-lint: allow(uncaught-escape): parse probe; malformed lines schedule at band 0 and fail properly at parse_request
  try {
    const JsonValue root = JsonValue::parse(line);
    if (!root.is_object()) return s;
    if (const JsonValue* id = root.find("id");
        id != nullptr && id->is_number()) {
      s.id = id->as_u64();
    }
    if (const JsonValue* v = root.find("version");
        v != nullptr && v->is_number()) {
      const std::uint64_t version = v->as_u64();
      if (version >= 1 && version <= 2) s.version = version;
    }
    // Scheduling fields are a v2 addition; on v1 lines they are a protocol
    // error that parse_request reports, so the probe leaves them unset.
    if (s.version >= 2) {
      if (const JsonValue* p = root.find("priority");
          p != nullptr && p->is_number()) {
        const std::uint64_t priority = p->as_u64();
        if (priority <= kMaxRequestPriority) s.priority = priority;
      }
      if (const JsonValue* d = root.find("deadline_ms");
          d != nullptr && d->is_number()) {
        s.deadline_ms = d->as_u64();
      }
    }
  } catch (const Error&) {
    // Malformed JSON: band 0, no deadline; parse_request reports the error.
  }
  return s;
}

std::uint64_t peek_request_version(const std::string& line) {
  // omega-lint: allow(uncaught-escape): parse probe; only Error means "no version to recover"
  try {
    const JsonValue root = JsonValue::parse(line);
    if (const JsonValue* v = root.find("version");
        v != nullptr && v->is_number()) {
      const std::uint64_t version = v->as_u64();
      if (version >= 1 && version <= 2) return version;
    }
  } catch (const Error&) {
    // Malformed JSON: no version to recover.
  }
  return 0;
}

std::string error_response(std::uint64_t id, const std::string& type,
                           const std::string& message,
                           std::uint64_t version) {
  JsonWriter w;
  w.begin_object();
  w.member("id", id);
  if (version > 0) w.member("version", version);
  w.member("ok", false);
  w.key("error").begin_object();
  w.member("type", type);
  w.member("message", message);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string evaluate_response(std::uint64_t id, const GnnWorkload& workload,
                              const RunResult& result,
                              std::uint64_t version) {
  JsonWriter w;
  w.begin_object();
  w.member("id", id);
  if (version > 0) w.member("version", version);
  w.member("ok", true);
  w.member("kind", "evaluate");
  write_workload_summary(w, workload);
  w.key("result").begin_object();
  w.member("dataflow", result.dataflow.to_string());
  if (!result.config_name.empty()) w.member("pattern", result.config_name);
  w.member("cycles", result.cycles);
  w.member("agg_cycles", result.agg.cycles);
  w.member("cmb_cycles", result.cmb.cycles);
  w.member("pes_agg", static_cast<std::uint64_t>(result.pes_agg));
  w.member("pes_cmb", static_cast<std::uint64_t>(result.pes_cmb));
  w.member("granularity", to_string(result.granularity));
  w.member("pipeline_elements",
           static_cast<std::uint64_t>(result.pipeline_elements));
  w.member("intermediate_buffer_elements",
           static_cast<std::uint64_t>(result.intermediate_buffer_elements));
  w.member("intermediate_spilled", result.intermediate_spilled);
  w.member("on_chip_pj", result.energy.on_chip_pj());
  w.member("dram_pj", result.energy.dram_pj);
  w.member("agg_utilization", result.agg_dynamic_utilization());
  w.member("cmb_utilization", result.cmb_dynamic_utilization());
  w.key("traffic_gb").begin_object();
  for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
    const auto& a = result.traffic.gb[c];
    w.key(to_string(static_cast<TrafficCategory>(c))).begin_object();
    w.member("reads", a.reads);
    w.member("writes", a.writes);
    w.end_object();
  }
  w.end_object();  // traffic_gb
  w.end_object();  // result
  w.end_object();
  return w.str();
}

std::string search_mappings_response(std::uint64_t id,
                                     const GnnWorkload& workload,
                                     const SearchResult& result,
                                     std::uint64_t version) {
  JsonWriter w;
  w.begin_object();
  w.member("id", id);
  if (version > 0) w.member("version", version);
  w.member("ok", true);
  w.member("kind", "search_mappings");
  write_workload_summary(w, workload);
  w.member("generated", static_cast<std::uint64_t>(result.generated));
  w.member("evaluated", static_cast<std::uint64_t>(result.evaluated));
  w.member("pruned", static_cast<std::uint64_t>(result.pruned));
  w.key("best");
  write_candidate(w, result.best());
  w.key("ranked").begin_array();
  for (const auto& c : result.ranked) write_candidate(w, c);
  w.end_array();
  w.key("pareto").begin_array();
  for (const auto& c : result.pareto) write_candidate(w, c);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string search_model_response(std::uint64_t id, const GnnWorkload& workload,
                                  const GnnModelSpec& spec,
                                  const ModelSearchResult& result,
                                  std::uint64_t version) {
  JsonWriter w;
  w.begin_object();
  w.member("id", id);
  if (version > 0) w.member("version", version);
  w.member("ok", true);
  w.member("kind", "search_model");
  write_workload_summary(w, workload);
  w.key("model").begin_object();
  w.member("arch", to_string(spec.model));
  w.key("widths").begin_array();
  for (const std::size_t width : spec.feature_widths) {
    w.value(static_cast<std::uint64_t>(width));
  }
  w.end_array();
  w.end_object();
  w.key("layers").begin_array();
  for (std::size_t l = 0; l < result.layers.size(); ++l) {
    const auto& lr = result.layers[l];
    const Candidate& best = lr.search.best();
    w.begin_object();
    w.member("layer", static_cast<std::uint64_t>(l));
    w.member("in_features", static_cast<std::uint64_t>(lr.spec.in_features));
    w.member("out_features",
             static_cast<std::uint64_t>(lr.spec.out_features));
    w.member("dataflow", best.dataflow.to_string());
    w.member("cycles", best.cycles);
    w.member("on_chip_pj", best.on_chip_pj);
    w.member("evaluated", static_cast<std::uint64_t>(lr.search.evaluated));
    w.member("pruned", static_cast<std::uint64_t>(lr.search.pruned));
    w.end_object();
  }
  w.end_array();
  const ModelCandidate& best = result.best();
  w.member("total_cycles", best.total_cycles);
  // composed_cycles == total_cycles under sequential composition; under
  // "compose":"pipelined" it is the cross-layer makespan (<= the sum).
  w.member("compose", to_string(result.compose));
  w.member("composed_cycles", best.composed_cycles);
  w.member("overlapped_boundaries",
           static_cast<std::uint64_t>(best.overlapped_boundaries));
  w.member("total_on_chip_pj", best.total_on_chip_pj);
  w.member("evaluated", static_cast<std::uint64_t>(result.evaluated));
  w.member("pruned", static_cast<std::uint64_t>(result.pruned));
  w.member("generated", static_cast<std::uint64_t>(result.generated));
  w.member("budget_exhausted", result.budget_exhausted);
  w.end_object();
  return w.str();
}

std::string evaluate_pipeline_response(std::uint64_t id,
                                       const GnnWorkload& workload,
                                       const PipelineSpec& spec,
                                       const PipelineResult& result,
                                       std::uint64_t version) {
  JsonWriter w;
  w.begin_object();
  w.member("id", id);
  if (version > 0) w.member("version", version);
  w.member("ok", true);
  w.member("kind", "evaluate");
  write_workload_summary(w, workload);
  w.key("result").begin_object();
  w.member("pipeline", spec.to_string());
  w.member("cycles", result.cycles);
  w.member("num_phases", static_cast<std::uint64_t>(result.phases.size()));
  w.member("in_features", static_cast<std::uint64_t>(result.in_features));
  w.member("out_features", static_cast<std::uint64_t>(result.out_features));
  w.key("phases").begin_array();
  for (const PhaseOutcome& p : result.phases) {
    w.begin_object();
    w.member("name", p.name);
    w.member("engine", to_string(p.engine));
    w.member("cycles", p.result.cycles);
    w.member("macs", p.result.macs);
    w.member("pes", static_cast<std::uint64_t>(p.pes));
    w.member("in_features", static_cast<std::uint64_t>(p.in_features));
    w.member("out_features", static_cast<std::uint64_t>(p.out_features));
    w.member("utilization", p.dynamic_utilization());
    w.end_object();
  }
  w.end_array();
  w.key("boundaries").begin_array();
  for (const BoundaryOutcome& b : result.boundaries) {
    w.begin_object();
    w.member("inter", to_string(b.inter));
    w.member("granularity", to_string(b.granularity));
    w.member("pipeline_chunks", static_cast<std::uint64_t>(b.pipeline_chunks));
    w.member("pipeline_elements",
             static_cast<std::uint64_t>(b.pipeline_elements));
    w.member("buffer_elements", static_cast<std::uint64_t>(b.buffer_elements));
    w.member("spilled", b.spilled);
    w.member("overlapped", b.overlapped);
    w.end_object();
  }
  w.end_array();
  w.member("on_chip_pj", result.energy.on_chip_pj());
  w.member("dram_pj", result.energy.dram_pj);
  w.key("traffic_gb").begin_object();
  for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
    const auto& a = result.traffic.gb[c];
    w.key(to_string(static_cast<TrafficCategory>(c))).begin_object();
    w.member("reads", a.reads);
    w.member("writes", a.writes);
    w.end_object();
  }
  w.end_object();  // traffic_gb
  w.end_object();  // result
  w.end_object();
  return w.str();
}

std::string search_pipeline_response(std::uint64_t id,
                                     const GnnWorkload& workload,
                                     const PipelineChainSpec& chain,
                                     const PipelineSearchResult& result,
                                     std::uint64_t version) {
  const auto write_ranked = [](JsonWriter& w,
                               const RankedPipelineCandidate& c) {
    w.begin_object();
    w.member("pipeline", c.key);
    w.member("cycles", c.cycles);
    w.member("on_chip_pj", c.on_chip_pj);
    w.member("score", c.score);
    w.end_object();
  };
  JsonWriter w;
  w.begin_object();
  w.member("id", id);
  if (version > 0) w.member("version", version);
  w.member("ok", true);
  w.member("kind", "search_pipeline");
  write_workload_summary(w, workload);
  w.member("chain", chain.to_string());
  w.member("generated", static_cast<std::uint64_t>(result.generated));
  w.member("evaluated", static_cast<std::uint64_t>(result.evaluated));
  w.member("pruned", static_cast<std::uint64_t>(result.pruned));
  // Deterministic eval-core counters only (delta hits / batch shapes are
  // thread-layout dependent and stay out of goldens).
  w.key("eval").begin_object();
  w.member("term_requests", result.eval.term_requests);
  w.member("term_builds", result.eval.term_builds);
  w.end_object();
  w.key("best");
  write_ranked(w, result.best());
  w.key("ranked").begin_array();
  for (const RankedPipelineCandidate& c : result.ranked) write_ranked(w, c);
  w.end_array();
  w.key("pareto").begin_array();
  for (const RankedPipelineCandidate& c : result.pareto) write_ranked(w, c);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace omega::service
