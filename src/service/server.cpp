#include "service/server.hpp"

#include <chrono>
#include <istream>
#include <optional>
#include <ostream>

#include "obs/trace.hpp"
#include "util/format.hpp"
#include "util/parallel.hpp"

namespace omega::service {

MappingService::MappingService(ServiceOptions options)
    : options_(options),
      registry_(options.registry_capacity, options.registry_shards) {}

std::string MappingService::handle(const Request& request) {
  if (request.kind == RequestKind::kStats) {
    const RegistryStats s = registry_.stats();
    JsonWriter w;
    w.begin_object();
    w.member("id", request.id);
    if (request.version > 0) w.member("version", request.version);
    w.member("ok", true);
    w.member("kind", "stats");
    w.key("registry").begin_object();
    w.member("hits", s.hits);
    w.member("misses", s.misses);
    w.member("evictions", s.evictions);
    w.member("resident", static_cast<std::uint64_t>(s.resident));
    w.member("capacity", static_cast<std::uint64_t>(s.capacity));
    w.end_object();
    // Evaluation-core counters (only the deterministic ones: delta hits,
    // batch shapes, and term timeline bytes depend on the serving machine's
    // thread layout and stay out of golden-able responses — the metrics
    // request reports those instead).
    const ContextEvalStats e = registry_.eval_stats();
    w.key("eval").begin_object();
    w.member("plans", e.plans);
    w.member("terms", e.terms);
    w.member("term_requests", e.term_requests);
    w.member("term_builds", e.term_builds);
    w.end_object();
    if (request.version >= 2) {
      // v2 extension: the acquire-recency epoch plus one signature-sorted
      // row per resident entry. Hit counts and epochs are deterministic for
      // a given request sequence (the batch dispatcher serializes stats
      // requests against the surrounding segments).
      w.member("epoch", registry_.epoch());
      w.key("entries").begin_array();
      for (const RegistryEntryStats& entry : registry_.entry_stats()) {
        w.begin_object();
        w.member("signature", entry.signature);
        w.member("hits", entry.hits);
        w.member("last_hit_epoch", entry.last_hit_epoch);
        w.member("warm", entry.warm);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
    registry_.advance_epoch();
    return w.str();
  }
  if (request.kind == RequestKind::kMetrics) {
    const std::string response = metrics_response(request);
    registry_.advance_epoch();
    return response;
  }

  std::optional<obs::ScopedSpan> span;
  span.emplace(options_.trace, "registry_lookup", "service");
  const std::shared_ptr<const WorkloadEntry> entry =
      registry_.acquire(request.workload);
  span.reset();
  const GnnWorkload& workload = entry->workload;

  AcceleratorConfig hw;
  hw.num_pes = request.pes;
  if (request.bandwidth > 0) {
    hw.distribution_bandwidth = request.bandwidth;
    hw.reduction_bandwidth = request.bandwidth;
  }
  const Omega omega(hw);

  span.emplace(options_.trace, "evaluate", "service");
  switch (request.kind) {
    case RequestKind::kEvaluate: {
      if (request.has_pipeline) {
        // v2 N-phase shape: evaluate through the pipeline core, reusing the
        // registry's warmed context for the phases bound to the adjacency.
        const PipelineResult pr =
            omega.run_pipeline(workload, request.pipeline, &entry->context);
        span.reset();
        const obs::ScopedSpan ser(options_.trace, "serialize", "service");
        return evaluate_pipeline_response(request.id, workload,
                                          request.pipeline, pr,
                                          request.version);
      }
      const LayerSpec layer{request.out_features};
      RunResult r;
      if (!request.pattern.empty()) {
        DataflowPattern p = pattern_by_name(request.pattern);
        p.pp_agg_pe_fraction = request.pp_fraction;
        const DataflowDescriptor df =
            bind_tiles(p, dims_of(workload, layer), hw);
        r = omega.run(workload, layer, df, entry->context);
        r.config_name = p.name;
      } else {
        DataflowDescriptor df = DataflowDescriptor::parse(request.dataflow);
        df.pp_agg_pe_fraction = request.pp_fraction;
        if (!request.tiles.empty()) {
          df.agg.tiles = {.v = request.tiles[0],
                          .n = request.tiles[1],
                          .f = request.tiles[2],
                          .g = 1};
          df.cmb.tiles = {.v = request.tiles[3],
                          .n = 1,
                          .f = request.tiles[5],
                          .g = request.tiles[4]};
        }
        r = omega.run(workload, layer, df, entry->context);
      }
      span.reset();
      const obs::ScopedSpan ser(options_.trace, "serialize", "service");
      return evaluate_response(request.id, workload, r, request.version);
    }
    case RequestKind::kSearchMappings: {
      const SearchResult r =
          search_mappings(omega, workload, LayerSpec{request.out_features},
                          request.search, &entry->context);
      span.reset();
      const obs::ScopedSpan ser(options_.trace, "serialize", "service");
      return search_mappings_response(request.id, workload, r,
                                     request.version);
    }
    case RequestKind::kSearchPipeline: {
      const PipelineSearchResult r = search_pipeline_mappings(
          omega, workload, request.chain, request.pipeline_search,
          &entry->context);
      span.reset();
      const obs::ScopedSpan ser(options_.trace, "serialize", "service");
      return search_pipeline_response(request.id, workload, request.chain, r,
                                      request.version);
    }
    case RequestKind::kSearchModel: {
      GnnModelSpec spec;
      spec.model = request.model;
      spec.feature_widths.push_back(workload.in_features);
      spec.feature_widths.insert(spec.feature_widths.end(),
                                 request.widths.begin(), request.widths.end());
      const ModelSearchResult r = search_model_mappings(
          omega, workload, spec, request.model_options, &entry->context);
      span.reset();
      const obs::ScopedSpan ser(options_.trace, "serialize", "service");
      return search_model_response(request.id, workload, spec, r,
                                  request.version);
    }
    case RequestKind::kStats:
    case RequestKind::kMetrics: break;  // handled above
  }
  return error_response(request.id, "Error", "unreachable request kind");
}

std::string MappingService::metrics_response(const Request& request) {
  // One snapshot unifying the three counter sources: the service's own obs
  // registry (request counters + latency histograms), the workload
  // registry, and the eval-core counters of the resident contexts. The
  // registry/eval values are overlaid as point-in-time counters so the
  // response is a single namespace (DESIGN.md "Observability").
  obs::MetricsSnapshot snap = metrics_.snapshot();
  const RegistryStats s = registry_.stats();
  snap.counters["registry.hits"] = s.hits;
  snap.counters["registry.misses"] = s.misses;
  snap.counters["registry.evictions"] = s.evictions;
  snap.gauges["registry.resident"] = static_cast<double>(s.resident);
  snap.gauges["registry.capacity"] = static_cast<double>(s.capacity);
  const ContextEvalStats e = registry_.eval_stats();
  snap.counters["eval.plans"] = e.plans;
  snap.counters["eval.terms"] = e.terms;
  snap.counters["eval.term_requests"] = e.term_requests;
  snap.counters["eval.term_builds"] = e.term_builds;
  // Thread-schedule-dependent near the admission budget; metrics-only.
  snap.gauges["eval.term_timeline_bytes"] = static_cast<double>(e.term_bytes);

  JsonWriter w;
  w.begin_object();
  w.member("id", request.id);
  w.member("version", request.version);  // kMetrics is v2+ by construction
  w.member("ok", true);
  w.member("kind", "metrics");
  w.key("metrics");
  write_metrics_json(snap, w);
  w.end_object();
  return w.str();
}

std::string MappingService::handle_line(const std::string& line) {
  // omega-lint: allow(wall-clock): latency histograms are metrics-only, never goldened
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t id = 0;
  // parse_request is all-or-nothing, so a parse-time error leaves no
  // Request to read the version from; peek it straight off the line (like
  // the id) so versioned clients get a consistent error shape.
  const std::uint64_t version = peek_request_version(line);
  // Counter labels: the request kind once parsed, "error" for responses
  // that became structured errors. Counters are deterministic per request
  // sequence; the latency histograms are wall-clock (metrics-only, never
  // goldened).
  const char* kind = nullptr;
  bool ok = false;
  std::string response;
  try {
    std::optional<obs::ScopedSpan> span;
    span.emplace(options_.trace, "parse", "service");
    const Request request = parse_request(line);
    span.reset();
    id = request.id;
    kind = to_string(request.kind);
    response = handle(request);
    ok = true;
  } catch (const InvalidDataflowError& e) {
    response = error_response(id > 0 ? id : peek_request_id(line),
                              "InvalidDataflowError", e.what(), version);
  } catch (const ResourceError& e) {
    response = error_response(id > 0 ? id : peek_request_id(line),
                              "ResourceError", e.what(), version);
  } catch (const InvalidArgumentError& e) {
    response = error_response(id > 0 ? id : peek_request_id(line),
                              "InvalidArgumentError", e.what(), version);
  } catch (const Error& e) {
    response = error_response(id > 0 ? id : peek_request_id(line), "Error",
                              e.what(), version);
  } catch (const std::exception& e) {
    response = error_response(id > 0 ? id : peek_request_id(line), "Internal",
                              e.what(), version);
  }
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          // omega-lint: allow(wall-clock): latency histograms are metrics-only, never goldened
          std::chrono::steady_clock::now() - t0)
          .count());
  metrics_.add("service.requests", 1);
  metrics_.add(ok ? "service.responses.ok" : "service.responses.error", 1);
  if (kind != nullptr) {
    metrics_.add(std::string("service.requests.") + kind, 1);
    metrics_.observe(std::string("service.latency_us.") + kind, us);
  }
  metrics_.observe("service.latency_us", us);
  return response;
}

std::vector<std::string> MappingService::handle_batch(
    const std::vector<std::string>& lines) {
  std::vector<std::string> responses(lines.size());
  // Concurrent dispatch, ordered emission: each response slot is written by
  // exactly one participant, and every response is a deterministic function
  // of its own request, so the emitted bytes do not depend on the thread
  // count. Requests additionally parallelize internally on the same pool —
  // the pool tolerates nested dispatch (a nested publication simply recruits
  // whatever workers are idle).
  const auto run_segment = [&](std::size_t from, std::size_t to) {
    if (from >= to) return;
    parallel_blocks(
        to - from,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t j = begin; j < end; ++j) {
            responses[from + j] = handle_line(lines[from + j]);
          }
        },
        options_.threads, /*grain=*/1);
  };
  // Stats and metrics requests are dispatch barriers: their counters must
  // reflect exactly the requests that precede them in the batch, which a
  // free-for-all concurrent dispatch cannot guarantee (the tiny handler
  // would race the workload acquires it is meant to observe).
  std::size_t segment_start = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!is_barrier_request(lines[i])) continue;
    run_segment(segment_start, i);
    responses[i] = handle_line(lines[i]);
    segment_start = i + 1;
  }
  run_segment(segment_start, lines.size());
  return responses;
}

std::size_t MappingService::serve(std::istream& in, std::ostream& out) {
  std::size_t served = 0;
  std::vector<std::string> batch;
  const auto flush = [&] {
    if (batch.empty()) return;
    for (const std::string& response : handle_batch(batch)) {
      out << response << '\n';
    }
    out.flush();
    served += batch.size();
    batch.clear();
  };
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) {
      flush();  // blank line = batch boundary
      continue;
    }
    batch.push_back(line);
  }
  flush();
  return served;
}

// The socket transports (streaming Unix-socket + TCP serve loops and their
// clients) live in tcp.cpp; this translation unit is the service itself
// plus the stdio batch transport.

}  // namespace omega::service
