// Long-lived mapping service: answers batched NDJSON requests from the
// warmed workload registry (see DESIGN.md "Mapping service").
//
// Dispatch model: requests accumulate until a batch boundary (a blank line,
// or end of input / connection write-shutdown), then the whole batch is
// dispatched concurrently on the persistent ThreadPool and the responses
// are emitted strictly in request order. Every individual response is a
// deterministic function of its request (the underlying searches are
// thread-count-invariant by construction), so a batch's output bytes are
// identical across thread counts and across warm/cold registry states.
//
// Errors never tear down the service: engine ResourceError, taxonomy
// violations and malformed requests all map to {"ok":false,"error":{...}}
// responses carrying the request id.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "service/shard.hpp"

namespace omega::obs {
class TraceCollector;
}  // namespace omega::obs

namespace omega::service {

struct ServiceOptions {
  /// Workloads kept warm; 0 disables caching (cold per-request builds).
  std::size_t registry_capacity = 8;
  /// Independent registry partitions (consistent-hash on the workload
  /// signature; see shard.hpp). 1 = the classic single registry, with
  /// byte-identical stats responses.
  std::size_t registry_shards = 1;
  /// Concurrent in-flight requests per batch (0 = pool default). Each
  /// request's internal sweep additionally parallelizes on the same pool.
  std::size_t threads = 0;
  /// When non-null, every request emits parse / registry_lookup / evaluate /
  /// serialize spans (wall-clock, category "service") into this collector.
  /// Null = zero instrumentation cost.
  obs::TraceCollector* trace = nullptr;
};

class MappingService {
 public:
  explicit MappingService(ServiceOptions options = {});

  /// Handles one request line; always returns a single-line JSON response
  /// (never throws — failures become structured error responses).
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Handles a batch concurrently; responses are in request order.
  [[nodiscard]] std::vector<std::string> handle_batch(
      const std::vector<std::string>& lines);

  /// NDJSON loop: reads request lines from `in`, flushes a batch of
  /// responses at every blank line and at EOF. Returns the number of
  /// requests served.
  std::size_t serve(std::istream& in, std::ostream& out);

  [[nodiscard]] const ShardedRegistry& registry() const { return registry_; }

  /// Service-level metrics (request/response counters, latency histograms;
  /// naming convention in DESIGN.md "Observability"). The v2 `metrics`
  /// request snapshots this together with registry and eval-core counters.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  /// Mutable sink for transport-level instrumentation (the request
  /// scheduler records its service.sched.* series here so one metrics
  /// response covers the whole serving core).
  [[nodiscard]] obs::MetricsRegistry& metrics_mut() { return metrics_; }

 private:
  [[nodiscard]] std::string handle(const Request& request);
  [[nodiscard]] std::string metrics_response(const Request& request);

  ServiceOptions options_;
  ShardedRegistry registry_;
  obs::MetricsRegistry metrics_;
};

/// Serves streaming NDJSON over a Unix domain socket at `path` (a provably
/// stale socket file is replaced; a live server there is an error).
/// Connections are concurrent and responses stream incrementally in
/// per-connection per-band request order — the full contract, and the
/// tunable ServeOptions overload, live in tcp.hpp (this wrapper keeps the
/// legacy signature: default options, accept `max_connections` then
/// return, 0 = loop until the process is killed). Returns 0 on orderly
/// shutdown; throws Error when the socket cannot be created.
int serve_unix_socket(MappingService& service, const std::string& path,
                      std::size_t max_connections = 0);

/// Client half of the socket protocol: connects to a `serve --socket`
/// daemon, sends `requests` (NDJSON), half-closes the write side, and
/// returns every response byte the daemon sends back.
[[nodiscard]] std::string send_to_unix_socket(const std::string& path,
                                              const std::string& requests);

}  // namespace omega::service
