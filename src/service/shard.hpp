// Registry sharding of the serving core (see DESIGN.md "Serving core").
//
// A single WorkloadRegistry serializes every acquire on one LRU mutex; under
// concurrent connections the warm-hit path — a map lookup plus a splice —
// becomes a contention point long before the engine math does. Sharding
// splits the registry into N independent partitions selected by a consistent
// hash on `WorkloadRef::signature()`:
//
//  * each shard is a full WorkloadRegistry (own lock, own LRU, own
//    counters), so acquires of different signatures on different shards
//    never touch the same mutex;
//  * the router is a consistent-hash ring (FNV-1a plus a 64-bit avalanche
//    finalizer over virtual-node labels — raw FNV clusters short similar
//    strings in the upper bits, which would collapse the ring) rather than
//    `hash % N`, so growing the shard count later — including
//    to multi-process shards fronted by the same router — remaps only
//    ~1/N of the signature space instead of nearly all of it;
//  * routing is deterministic and platform-independent: FNV-1a is defined
//    bytewise, no std::hash involved, so a signature maps to the same shard
//    on every build (pinned by tests/shard_test.cpp).
//
// With shards == 1 (the default) every signature routes to the single
// partition and the aggregate stats are bit-identical to the unsharded
// registry — the legacy service goldens do not move.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "service/registry.hpp"

namespace omega::service {

/// FNV-1a 64-bit over the bytes of `s`. Deterministic across platforms and
/// builds (unlike std::hash); the shard router keys on it.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s);

/// Consistent-hash ring over `shards` partitions. Each shard contributes
/// `replicas` virtual nodes; a key routes to the owner of the first ring
/// point at or after its hash (wrapping).
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards, std::size_t replicas = 16);

  /// Shard index owning `signature`, in [0, shards()).
  [[nodiscard]] std::size_t route(std::string_view signature) const;

  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] std::size_t replicas() const { return replicas_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };
  std::size_t shards_;
  std::size_t replicas_;
  std::vector<Point> ring_;  // hash-sorted
};

/// N independent WorkloadRegistry partitions behind a ShardRouter. Mirrors
/// the WorkloadRegistry observable surface; stats aggregate over shards and
/// entry rows merge signature-sorted, so with shards == 1 every response is
/// byte-identical to the unsharded registry.
class ShardedRegistry {
 public:
  /// `capacity` is the total LRU capacity, split evenly across shards
  /// (ceil division; capacity 0 disables caching on every shard).
  explicit ShardedRegistry(std::size_t capacity = 8, std::size_t shards = 1);

  [[nodiscard]] std::shared_ptr<const WorkloadEntry> acquire(
      const WorkloadRef& ref);

  /// Aggregate over shards; `capacity` is the sum of per-shard capacities.
  [[nodiscard]] RegistryStats stats() const;
  [[nodiscard]] ContextEvalStats eval_stats() const;
  /// Merged over shards, signature-sorted (same order as unsharded).
  [[nodiscard]] std::vector<RegistryEntryStats> entry_stats() const;

  /// Barrier epoch; all shards advance together, so any shard's epoch is
  /// the registry epoch.
  [[nodiscard]] std::uint64_t epoch() const;
  void advance_epoch();

  [[nodiscard]] std::size_t shards() const { return shards_.size(); }
  /// Routing probe (tests / DESIGN examples).
  [[nodiscard]] std::size_t shard_of(std::string_view signature) const {
    return router_.route(signature);
  }

 private:
  ShardRouter router_;
  std::vector<std::unique_ptr<WorkloadRegistry>> shards_;
};

}  // namespace omega::service
