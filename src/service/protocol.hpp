// Wire protocol of the mapping service (see DESIGN.md "Mapping service").
//
// Requests and responses are single-line JSON objects (NDJSON). A request
// names a workload (a Table IV dataset to synthesize, or a MatrixMarket
// file to load), the hardware substrate, and one of four operations:
//
//   {"id":1,"kind":"evaluate","workload":{"dataset":"Cora","scale":0.25},
//    "out_features":16,"dataflow":"Seq_AC(VtNtFt, VtFtGt)"}
//   {"id":2,"kind":"search_mappings","workload":{...},"out_features":16,
//    "options":{"max_candidates":512,"objective":"runtime","top_k":4}}
//   {"id":3,"kind":"search_model","workload":{...},
//    "model":{"arch":"gcn","widths":[16,8]},"options":{"budget":400}}
//   {"id":4,"kind":"stats"}
//
// Responses echo the id: {"id":1,"ok":true,"kind":"evaluate","result":{...}}
// or {"id":1,"ok":false,"error":{"type":"ResourceError","message":"..."}}.
// Parsing is strict — unknown top-level keys are rejected so client typos
// surface as structured errors rather than silently-defaulted fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/model_search.hpp"
#include "graph/datasets.hpp"
#include "util/json.hpp"

namespace omega::service {

/// Which workload a request runs against. `signature()` is the registry
/// cache key: two requests with equal signatures share one synthesized
/// graph and one warmed WorkloadContext.
struct WorkloadRef {
  std::string dataset;   // Table IV name (exclusive with mtx_path)
  std::string mtx_path;  // MatrixMarket adjacency file
  double scale = 1.0;
  std::uint64_t seed = 7;
  std::size_t in_features = 0;  // 0 = dataset default; required for mtx
  bool add_self_loops = true;
  bool gcn_normalize = true;

  [[nodiscard]] std::string signature() const;
};

enum class RequestKind : std::uint8_t {
  kEvaluate = 0,
  kSearchMappings = 1,
  kSearchModel = 2,
  kStats = 3,
};

[[nodiscard]] const char* to_string(RequestKind k);

/// A parsed protocol request. Defaults mirror the CLI's.
struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kStats;
  WorkloadRef workload;

  // Substrate.
  std::size_t pes = 512;
  std::size_t bandwidth = 0;  // 0 = unbounded distribution/reduction

  // evaluate / search_mappings: the layer's output width G.
  std::size_t out_features = 16;

  // evaluate: either a fully bound descriptor (with optional explicit
  // tiles) or a Table V pattern name to auto-bind.
  std::string dataflow;             // descriptor notation
  std::string pattern;              // Table V config name
  std::vector<std::size_t> tiles;   // optional: 6 values, CLI --tiles order
  double pp_fraction = 0.5;

  // search_mappings / search_model.
  SearchOptions search;

  // search_model.
  GnnModel model = GnnModel::kGCN;
  std::vector<std::size_t> widths;  // hidden widths appended to F
  ModelSearchOptions model_options;
};

/// Parses one NDJSON request line. Throws InvalidArgumentError on malformed
/// JSON, unknown keys, or invalid field values.
[[nodiscard]] Request parse_request(const std::string& line);

/// Extracts just the "id" member from a (possibly malformed) request line so
/// error responses can still be correlated; 0 when unavailable.
[[nodiscard]] std::uint64_t peek_request_id(const std::string& line);

/// True when the line is a well-formed stats request. The server treats
/// these as dispatch barriers so their registry counters deterministically
/// reflect every request preceding them in the batch.
[[nodiscard]] bool is_stats_request(const std::string& line);

/// Structured error response: {"id":..,"ok":false,"error":{...}}.
[[nodiscard]] std::string error_response(std::uint64_t id,
                                         const std::string& type,
                                         const std::string& message);

/// Response body builders (single-line JSON, deterministic field order).
[[nodiscard]] std::string evaluate_response(std::uint64_t id,
                                            const GnnWorkload& workload,
                                            const RunResult& result);
[[nodiscard]] std::string search_mappings_response(std::uint64_t id,
                                                   const GnnWorkload& workload,
                                                   const SearchResult& result);
[[nodiscard]] std::string search_model_response(std::uint64_t id,
                                                const GnnWorkload& workload,
                                                const GnnModelSpec& spec,
                                                const ModelSearchResult& result);

}  // namespace omega::service
