// Wire protocol of the mapping service (see DESIGN.md "Mapping service").
//
// Requests and responses are single-line JSON objects (NDJSON). A request
// names a workload (a Table IV dataset to synthesize, or a MatrixMarket
// file to load), the hardware substrate, and one of four operations:
//
//   {"id":1,"kind":"evaluate","workload":{"dataset":"Cora","scale":0.25},
//    "out_features":16,"dataflow":"Seq_AC(VtNtFt, VtFtGt)"}
//   {"id":2,"kind":"search_mappings","workload":{...},"out_features":16,
//    "options":{"max_candidates":512,"objective":"runtime","top_k":4}}
//   {"id":3,"kind":"search_model","workload":{...},
//    "model":{"arch":"gcn","widths":[16,8]},"options":{"budget":400}}
//   {"id":4,"kind":"stats"}
//
// Responses echo the id: {"id":1,"ok":true,"kind":"evaluate","result":{...}}
// or {"id":1,"ok":false,"error":{"type":"ResourceError","message":"..."}}.
// Parsing is strict — unknown top-level keys are rejected so client typos
// surface as structured errors rather than silently-defaulted fields.
//
// Versioning: requests may carry "version" (1 or 2), echoed back in the
// response; an absent version means v1 and keeps responses byte-identical
// to pre-versioned clients. Version 2 additionally accepts an N-phase
// pipeline on evaluate requests (omega/pipeline.hpp):
//
//   {"id":5,"version":2,"kind":"evaluate","workload":{...},
//    "pipeline":{"phases":[{"name":"score","engine":"gemm",
//      "dataflow":"VsFtGs","tiles":[8,1,8],"out_features":16},
//      {"engine":"spmm","dataflow":"NtFsVt","tiles":[1,4,16]},
//      {"engine":"spgemm","dataflow":"GsVtFt","out_features":8,
//       "density":0.5}],"boundaries":["SPg","Seq"]}}
//
// and an N-phase mapping search over a chain (dse/pipeline_search.hpp) —
// the chain fixes engines/widths/densities, the searcher supplies loop
// orders, tilings, boundary strategies, and PE fractions:
//
//   {"id":6,"version":2,"kind":"search_pipeline","workload":{...},
//    "chain":{"phases":[{"name":"score","engine":"gemm","out_features":16},
//      {"engine":"spmm"},{"engine":"spgemm","out_features":8,
//       "density":0.5}]},
//    "options":{"max_candidates":256,"objective":"edp","prune":true}}
//
// and a full metrics snapshot (src/obs/metrics.hpp namespace — counters,
// gauges, latency histograms, registry + eval-core counters):
//
//   {"id":7,"version":2,"kind":"metrics"}
//
// and per-request scheduling fields on every kind (the streaming transports
// feed these to the request scheduler; the stdio batch path accepts them so
// one request file replays identically over every transport, but dispatches
// batch-concurrently as before):
//
//   {"id":8,"version":2,"kind":"evaluate","priority":7,"deadline_ms":250,...}
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/model_search.hpp"
#include "dse/pipeline_search.hpp"
#include "graph/datasets.hpp"
#include "omega/pipeline.hpp"
#include "util/json.hpp"

namespace omega::service {

/// Which workload a request runs against. `signature()` is the registry
/// cache key: two requests with equal signatures share one synthesized
/// graph and one warmed WorkloadContext.
struct WorkloadRef {
  std::string dataset;   // Table IV name (exclusive with mtx_path)
  std::string mtx_path;  // MatrixMarket adjacency file
  double scale = 1.0;
  std::uint64_t seed = 7;
  std::size_t in_features = 0;  // 0 = dataset default; required for mtx
  bool add_self_loops = true;
  bool gcn_normalize = true;

  [[nodiscard]] std::string signature() const;
};

enum class RequestKind : std::uint8_t {
  kEvaluate = 0,
  kSearchMappings = 1,
  kSearchModel = 2,
  kStats = 3,
  kSearchPipeline = 4,
  /// v2 only: full metrics snapshot (counters / gauges / latency
  /// histograms from the service's obs registry, plus registry and
  /// eval-core counters). Latency values are wall-clock and never part of
  /// goldened output; the counter namespace is deterministic.
  kMetrics = 5,
};

[[nodiscard]] const char* to_string(RequestKind k);

/// Highest priority band the protocol accepts ("priority" in [0, 7];
/// 0 = lowest = default). Matches the scheduler's default band count.
inline constexpr std::uint64_t kMaxRequestPriority = 7;

/// A parsed protocol request. Defaults mirror the CLI's.
struct Request {
  std::uint64_t id = 0;
  /// Protocol version. 0 = the request carried no "version" member, which
  /// means v1 (the classic two-phase shape) and keeps responses
  /// byte-identical to pre-versioned clients. An explicit "version" is
  /// echoed back in the response; v2 additionally accepts an N-phase
  /// "pipeline" object on evaluate requests.
  std::uint64_t version = 0;
  RequestKind kind = RequestKind::kStats;
  WorkloadRef workload;

  // Scheduling (version >= 2, any kind). Absent means band 0 with no
  // deadline — exactly today's behavior. The streaming transports hand
  // these to the request scheduler; the stdio batch path parses and
  // ignores them (batch-concurrent dispatch, documented above).
  std::uint64_t priority = 0;     // [0, kMaxRequestPriority], 7 = highest
  std::uint64_t deadline_ms = 0;  // relative deadline; 0 = none

  // Substrate.
  std::size_t pes = 512;
  std::size_t bandwidth = 0;  // 0 = unbounded distribution/reduction

  // evaluate / search_mappings: the layer's output width G.
  std::size_t out_features = 16;

  // evaluate: either a fully bound descriptor (with optional explicit
  // tiles) or a Table V pattern name to auto-bind.
  std::string dataflow;             // descriptor notation
  std::string pattern;              // Table V config name
  std::vector<std::size_t> tiles;   // optional: 6 values, CLI --tiles order
  double pp_fraction = 0.5;

  // evaluate, version >= 2: an N-phase pipeline instead of the two-phase
  // dataflow/pattern shape. Exclusive with dataflow/pattern/tiles.
  bool has_pipeline = false;
  PipelineSpec pipeline;

  // search_pipeline (version >= 2): the N-phase chain to search and its
  // options. The chain carries the engines/widths/densities; the searcher
  // supplies loop orders, tilings, boundary strategies, and PE fractions.
  PipelineChainSpec chain;
  PipelineSearchOptions pipeline_search;

  // search_mappings / search_model.
  SearchOptions search;

  // search_model.
  GnnModel model = GnnModel::kGCN;
  std::vector<std::size_t> widths;  // hidden widths appended to F
  ModelSearchOptions model_options;
};

/// Parses one NDJSON request line. Throws InvalidArgumentError on malformed
/// JSON, unknown keys, or invalid field values.
[[nodiscard]] Request parse_request(const std::string& line);

/// Extracts just the "id" member from a (possibly malformed) request line so
/// error responses can still be correlated; 0 when unavailable.
[[nodiscard]] std::uint64_t peek_request_id(const std::string& line);

/// Likewise for the "version" member, so parse-time errors on versioned
/// requests still echo the version; 0 when absent, malformed, or not a
/// version this server speaks.
[[nodiscard]] std::uint64_t peek_request_version(const std::string& line);

/// Scheduling metadata recovered from a request line without full parsing.
/// The transports admit every line through the scheduler — including lines
/// that will fail parse_request — so this probe must never throw: malformed
/// or v1 lines yield band 0 / no deadline (id and version still recovered
/// when present, for shaping a shed response).
struct RequestScheduling {
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  std::uint64_t priority = 0;
  std::uint64_t deadline_ms = 0;
};
[[nodiscard]] RequestScheduling peek_request_scheduling(
    const std::string& line);

/// True when the line is a well-formed stats request. The server treats
/// these as dispatch barriers so their registry counters deterministically
/// reflect every request preceding them in the batch.
[[nodiscard]] bool is_stats_request(const std::string& line);

/// True for any request kind the server serializes against the surrounding
/// parallel batch segments (stats and metrics): both read cumulative
/// counters whose values must deterministically reflect every preceding
/// request.
[[nodiscard]] bool is_barrier_request(const std::string& line);

/// Structured error response: {"id":..,"ok":false,"error":{...}}. A
/// non-zero `version` (the request carried one and parsed far enough to
/// recover it) is echoed after the id.
[[nodiscard]] std::string error_response(std::uint64_t id,
                                         const std::string& type,
                                         const std::string& message,
                                         std::uint64_t version = 0);

/// Response body builders (single-line JSON, deterministic field order).
/// `version` 0 omits the member — pre-versioned clients keep receiving
/// byte-identical responses.
[[nodiscard]] std::string evaluate_response(std::uint64_t id,
                                            const GnnWorkload& workload,
                                            const RunResult& result,
                                            std::uint64_t version = 0);
[[nodiscard]] std::string evaluate_pipeline_response(
    std::uint64_t id, const GnnWorkload& workload, const PipelineSpec& spec,
    const PipelineResult& result, std::uint64_t version);
[[nodiscard]] std::string search_mappings_response(std::uint64_t id,
                                                   const GnnWorkload& workload,
                                                   const SearchResult& result,
                                                   std::uint64_t version = 0);
[[nodiscard]] std::string search_model_response(std::uint64_t id,
                                                const GnnWorkload& workload,
                                                const GnnModelSpec& spec,
                                                const ModelSearchResult& result,
                                                std::uint64_t version = 0);
/// v2 N-phase search response. Only the deterministic eval-core counters
/// (term requests/builds) are emitted; delta hits and batch shapes depend
/// on the serving machine's thread layout and stay out of goldens.
[[nodiscard]] std::string search_pipeline_response(
    std::uint64_t id, const GnnWorkload& workload,
    const PipelineChainSpec& chain, const PipelineSearchResult& result,
    std::uint64_t version);

}  // namespace omega::service
