// Warmed workload registry of the mapping service.
//
// Graph synthesis (or .mtx parsing) plus WorkloadContext warm-up dominate
// the cost of a one-shot evaluation — the engine math is microseconds while
// synthesis is milliseconds. The registry amortizes that across requests:
// workloads are keyed by WorkloadRef::signature() and held in an LRU-bounded
// cache together with their warmed context, so every request after the first
// pays only the engine math. Entries are handed out as shared_ptr: an
// eviction never invalidates a request that is still computing against the
// entry, it only drops the cache's own reference.
#pragma once

#include <cstdint>
#include <exception>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/schedule_cache.hpp"
#include "service/protocol.hpp"

namespace omega::service {

/// One resident workload: the synthesized/loaded graph plus its warmed
/// evaluation-reuse context. The context points into `workload.adjacency`,
/// so the pair lives and dies together (heap-pinned, never moved).
struct WorkloadEntry {
  explicit WorkloadEntry(GnnWorkload w)
      : workload(std::move(w)), context(workload.adjacency) {
    // Pre-warm the reverse adjacency: scatter-order candidates are part of
    // every search sweep, and warming here keeps the first request's
    // threads from racing to build it.
    (void)context.reverse_graph();
  }
  WorkloadEntry(const WorkloadEntry&) = delete;
  WorkloadEntry& operator=(const WorkloadEntry&) = delete;

  GnnWorkload workload;
  WorkloadContext context;
};

struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t resident = 0;
  std::size_t capacity = 0;
};

/// Per-resident-entry observability row (v2 stats response / CLI). Hit
/// counts are deterministic for a given request sequence; last_hit_epoch is
/// quantized to the registry's stats-barrier epoch (see advance_epoch), so
/// it too is thread-schedule-invariant.
struct RegistryEntryStats {
  std::string signature;
  std::uint64_t hits = 0;            // acquires served by this entry
  std::uint64_t last_hit_epoch = 0;  // epoch of the most recent acquire
  bool warm = false;                 // build completed (vs. mid-build)
};

/// Thread-safe LRU cache of WorkloadEntry keyed by workload signature.
/// Capacity 0 disables caching entirely (every acquire builds fresh) — the
/// service benchmark uses that as its cold baseline.
class WorkloadRegistry {
 public:
  explicit WorkloadRegistry(std::size_t capacity = 8);

  /// Returns the resident entry for `ref`, building (and caching) it on a
  /// miss. Concurrent misses on the same signature build once; concurrent
  /// misses on different signatures build in parallel. A build failure
  /// (unknown dataset, unreadable .mtx) propagates to every waiter of that
  /// acquire and caches nothing, so transient failures retry.
  [[nodiscard]] std::shared_ptr<const WorkloadEntry> acquire(
      const WorkloadRef& ref);

  [[nodiscard]] RegistryStats stats() const;

  /// Evaluation-core counters summed over the resident entries' contexts
  /// (plans / terms / term requests / term builds — all deterministic for a
  /// given request sequence; see EvalPlanBase). Entries still mid-build
  /// contribute nothing yet.
  [[nodiscard]] ContextEvalStats eval_stats() const;

  /// Per-entry rows, signature-sorted (deterministic emission order).
  [[nodiscard]] std::vector<RegistryEntryStats> entry_stats() const;

  /// Acquire-recency epoch. Starts at 1 and advances only at barrier
  /// requests (the service calls advance_epoch after serving a stats or
  /// metrics request, which handle_batch serializes against the
  /// surrounding parallel segments) — every acquire within a segment
  /// stamps the same epoch regardless of thread schedule.
  [[nodiscard]] std::uint64_t epoch() const;
  void advance_epoch();

 private:
  struct Slot {
    std::once_flag once;
    std::exception_ptr error;
    std::shared_ptr<const WorkloadEntry> entry;
  };

  /// Builds the workload named by `ref` (synthesis or .mtx load).
  [[nodiscard]] static GnnWorkload build_workload(const WorkloadRef& ref);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// MRU-first recency list; map values point into it.
  std::list<std::string> recency_;
  struct MapEntry {
    std::shared_ptr<Slot> slot;
    std::list<std::string>::iterator lru;
    std::uint64_t hits = 0;            // acquires served by this entry
    std::uint64_t last_hit_epoch = 0;  // epoch_ at the most recent acquire
  };
  std::unordered_map<std::string, MapEntry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t epoch_ = 1;  // advanced only at stats barriers
};

}  // namespace omega::service
