#include "service/registry.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/once.hpp"

namespace omega::service {

WorkloadRegistry::WorkloadRegistry(std::size_t capacity)
    : capacity_(capacity) {}

GnnWorkload WorkloadRegistry::build_workload(const WorkloadRef& ref) {
  SynthesisOptions so;
  so.seed = ref.seed;
  so.scale = ref.scale;
  so.add_self_loops = ref.add_self_loops;
  so.gcn_normalize = ref.gcn_normalize;
  if (!ref.mtx_path.empty()) {
    return workload_from_matrix_market(ref.mtx_path, ref.in_features, so);
  }
  GnnWorkload w = synthesize_workload(dataset_by_name(ref.dataset), so);
  if (ref.in_features > 0) w.in_features = ref.in_features;
  return w;
}

std::shared_ptr<const WorkloadEntry> WorkloadRegistry::acquire(
    const WorkloadRef& ref) {
  const std::string key = ref.signature();

  if (capacity_ == 0) {
    // Caching disabled: build fresh, count the miss, cache nothing.
    {
      const std::scoped_lock lock(mutex_);
      ++misses_;
    }
    return std::make_shared<const WorkloadEntry>(build_workload(ref));
  }

  std::shared_ptr<Slot> slot;
  {
    const std::scoped_lock lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++hits_;
      ++it->second.hits;
      it->second.last_hit_epoch = epoch_;
      recency_.splice(recency_.begin(), recency_, it->second.lru);
      slot = it->second.slot;
    } else {
      ++misses_;
      recency_.push_front(key);
      slot = std::make_shared<Slot>();
      entries_.emplace(key, MapEntry{slot, recency_.begin(), 0, epoch_});
      while (entries_.size() > capacity_) {
        // Evict the least-recently-used signature. In-flight acquires hold
        // the slot's shared_ptr, so eviction only drops the cache's ref.
        const std::string victim = recency_.back();
        recency_.pop_back();
        entries_.erase(victim);
        ++evictions_;
      }
    }
  }

  // Build outside the registry lock: concurrent misses on different
  // signatures synthesize in parallel; same-signature waiters block on the
  // once_flag and share one build. A throwing build memoizes its exception
  // on the slot (call_once_caching — exceptions must not cross the
  // pthread_once boundary), and the slot is dropped from the map so a later
  // acquire retries with a fresh slot instead of hitting a permanently-empty
  // cache entry.
  try {
    call_once_caching(slot->once, slot->error, [&] {
      slot->entry = std::make_shared<const WorkloadEntry>(build_workload(ref));
    });
  } catch (...) {
    const std::scoped_lock lock(mutex_);
    if (const auto it = entries_.find(key);
        it != entries_.end() && it->second.slot == slot) {
      recency_.erase(it->second.lru);
      entries_.erase(it);
    }
    throw;
  }
  return slot->entry;
}

RegistryStats WorkloadRegistry::stats() const {
  const std::scoped_lock lock(mutex_);
  RegistryStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident = entries_.size();
  s.capacity = capacity_;
  return s;
}

std::vector<RegistryEntryStats> WorkloadRegistry::entry_stats() const {
  std::vector<RegistryEntryStats> out;
  {
    const std::scoped_lock lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& [key, e] : entries_) {
      RegistryEntryStats r;
      r.signature = key;
      r.hits = e.hits;
      r.last_hit_epoch = e.last_hit_epoch;
      r.warm = e.slot != nullptr && e.slot->entry != nullptr;
      out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RegistryEntryStats& a, const RegistryEntryStats& b) {
              return a.signature < b.signature;
            });
  return out;
}

std::uint64_t WorkloadRegistry::epoch() const {
  const std::scoped_lock lock(mutex_);
  return epoch_;
}

void WorkloadRegistry::advance_epoch() {
  const std::scoped_lock lock(mutex_);
  ++epoch_;
}

ContextEvalStats WorkloadRegistry::eval_stats() const {
  // Snapshot the entry pointers under the lock, then aggregate outside it:
  // each context's eval_stats() takes that context's own mutex.
  std::vector<std::shared_ptr<const WorkloadEntry>> resident;
  {
    const std::scoped_lock lock(mutex_);
    resident.reserve(entries_.size());
    // omega-lint: allow(unordered-iter): commutative fold (counter sums), no emission order
    for (const auto& [key, e] : entries_) {
      if (e.slot != nullptr && e.slot->entry != nullptr) {
        resident.push_back(e.slot->entry);
      }
    }
  }
  ContextEvalStats total;
  for (const auto& entry : resident) {
    const ContextEvalStats s = entry->context.eval_stats();
    total.plans += s.plans;
    total.terms += s.terms;
    total.term_requests += s.term_requests;
    total.term_builds += s.term_builds;
    total.term_bytes += s.term_bytes;
  }
  return total;
}

}  // namespace omega::service
