#include "service/shard.hpp"

#include <algorithm>
#include <utility>

namespace omega::service {

namespace {

/// 64-bit avalanche finalizer (MurmurHash3 fmix64 constants). Raw FNV-1a
/// diffuses short, similar strings — exactly what vnode labels and workload
/// signatures are — into a narrow band of the upper bits, which collapses
/// the ring: neighboring keys all land on the same successor vnode. The
/// finalizer spreads them uniformly; applied to both ring points and lookup
/// keys it preserves the consistent-hashing contract.
std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

std::uint64_t ring_hash(std::string_view s) { return mix64(fnv1a64(s)); }

}  // namespace

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

ShardRouter::ShardRouter(std::size_t shards, std::size_t replicas)
    : shards_(shards == 0 ? 1 : shards),
      replicas_(replicas == 0 ? 1 : replicas) {
  ring_.reserve(shards_ * replicas_);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t r = 0; r < replicas_; ++r) {
      // Virtual-node label; hashing the label (not s*replicas+r arithmetic)
      // keeps ring positions stable when the replica count changes.
      const std::string label =
          "shard:" + std::to_string(s) + ":vnode:" + std::to_string(r);
      ring_.push_back(Point{ring_hash(label), static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
  });
}

std::size_t ShardRouter::route(std::string_view signature) const {
  if (shards_ == 1) return 0;
  const std::uint64_t h = ring_hash(signature);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

ShardedRegistry::ShardedRegistry(std::size_t capacity, std::size_t shards)
    : router_(shards) {
  const std::size_t n = router_.shards();
  // Ceil split so the total never shrinks below the requested capacity;
  // capacity 0 (caching disabled) stays 0 on every shard.
  const std::size_t per_shard = capacity == 0 ? 0 : (capacity + n - 1) / n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<WorkloadRegistry>(per_shard));
  }
}

std::shared_ptr<const WorkloadEntry> ShardedRegistry::acquire(
    const WorkloadRef& ref) {
  return shards_[router_.route(ref.signature())]->acquire(ref);
}

RegistryStats ShardedRegistry::stats() const {
  RegistryStats total;
  for (const auto& shard : shards_) {
    const RegistryStats s = shard->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.resident += s.resident;
    total.capacity += s.capacity;
  }
  return total;
}

ContextEvalStats ShardedRegistry::eval_stats() const {
  ContextEvalStats total;
  for (const auto& shard : shards_) {
    const ContextEvalStats s = shard->eval_stats();
    total.plans += s.plans;
    total.terms += s.terms;
    total.term_requests += s.term_requests;
    total.term_builds += s.term_builds;
    total.term_bytes += s.term_bytes;
  }
  return total;
}

std::vector<RegistryEntryStats> ShardedRegistry::entry_stats() const {
  std::vector<RegistryEntryStats> out;
  for (const auto& shard : shards_) {
    std::vector<RegistryEntryStats> rows = shard->entry_stats();
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  // Signatures are unique across shards (each routes to exactly one), so
  // this is a strict total order — same emission order as unsharded.
  std::sort(out.begin(), out.end(),
            [](const RegistryEntryStats& a, const RegistryEntryStats& b) {
              return a.signature < b.signature;
            });
  return out;
}

std::uint64_t ShardedRegistry::epoch() const { return shards_.front()->epoch(); }

void ShardedRegistry::advance_epoch() {
  for (const auto& shard : shards_) shard->advance_epoch();
}

}  // namespace omega::service
