// OMEGA: Observing Mapping Efficiency over GNN Accelerators (Fig. 10).
//
// The facade wires the two intra-phase engines (STONNE-style SpMM and GEMM
// cost models) to the inter-phase cost model of Section IV / Table III and
// returns runtime, buffering, per-matrix traffic and energy for a complete
// GNN-layer dataflow on the modeled spatial accelerator.
#pragma once

#include <string>

#include "arch/accelerator.hpp"
#include "arch/energy.hpp"
#include "dataflow/patterns.hpp"
#include "engine/gemm_engine.hpp"
#include "engine/spmm_engine.hpp"
#include "graph/datasets.hpp"
#include "omega/tiler.hpp"

namespace omega {

struct PipelineSpec;    // omega/pipeline.hpp
struct PipelineResult;  // omega/pipeline.hpp

/// Energy roll-up (Section V-B2). On-chip = GB + RF + the PP intermediate
/// partition; DRAM (Seq spill) is reported separately, matching the paper's
/// on-chip characterization.
struct EnergyBreakdown {
  std::array<double, kNumTrafficCategories> gb_by_category_pj{};
  double gb_pj = 0.0;
  double rf_pj = 0.0;
  double partition_pj = 0.0;  // PP ping-pong buffer accesses
  double dram_pj = 0.0;

  [[nodiscard]] double on_chip_pj() const {
    return gb_pj + rf_pj + partition_pj;
  }
  [[nodiscard]] double total_pj() const { return on_chip_pj() + dram_pj; }
};

/// Complete result of evaluating one dataflow on one workload.
struct RunResult {
  std::string config_name;  // Table V name when run via run_pattern
  DataflowDescriptor dataflow;

  std::uint64_t cycles = 0;
  PhaseResult agg;
  PhaseResult cmb;
  std::size_t pes_agg = 0;
  std::size_t pes_cmb = 0;

  Granularity granularity = Granularity::kNone;
  std::size_t pipeline_chunks = 1;
  std::size_t pipeline_elements = 0;            // Pel
  std::size_t intermediate_buffer_elements = 0; // Table III buffering
  bool intermediate_spilled = false;            // Seq: V x F exceeded the GB

  /// Layer shape this result was evaluated for (V rows, F -> G features);
  /// the inter-layer composer (omega/compose.hpp) reads the output extent
  /// and the chunk grid off the result instead of re-deriving them.
  std::size_t num_rows = 0;      // V
  std::size_t in_features = 0;   // F
  std::size_t out_features = 0;  // G
  /// The chunk grid both phases share (Section IV-D). For non-chunked
  /// strategies (Seq / SP-Optimized) this is the single all-covering chunk.
  ChunkSpec chunk_grid;

  TrafficCounters traffic;
  EnergyBreakdown energy;

  double agg_static_utilization = 0.0;
  double cmb_static_utilization = 0.0;
  [[nodiscard]] double agg_dynamic_utilization() const {
    return agg.utilization(pes_agg);
  }
  [[nodiscard]] double cmb_dynamic_utilization() const {
    return cmb.utilization(pes_cmb);
  }
};

/// The analytical framework. Immutable after construction; run() is const
/// and thread-safe, so design-space sweeps can evaluate mappings in
/// parallel.
class Omega {
 public:
  explicit Omega(AcceleratorConfig hw = default_accelerator(),
                 EnergyModel energy = EnergyModel{});

  /// Evaluates a fully bound dataflow descriptor.
  [[nodiscard]] RunResult run(const GnnWorkload& workload,
                              const LayerSpec& layer,
                              const DataflowDescriptor& df) const;

  /// Same evaluation through a per-workload memo (engine/schedule_cache.hpp):
  /// the adjacency transpose and lane schedules shared across candidates are
  /// computed once and reused, which is what makes exhaustive sweeps fast.
  /// `context` must be constructed over `workload.adjacency`. Results are
  /// bit-identical to the context-free overload.
  [[nodiscard]] RunResult run(const GnnWorkload& workload,
                              const LayerSpec& layer,
                              const DataflowDescriptor& df,
                              const WorkloadContext& context) const;

  /// Binds a pattern's tile sizes (omega/tiler.hpp) and evaluates it.
  [[nodiscard]] RunResult run_pattern(const GnnWorkload& workload,
                                      const LayerSpec& layer,
                                      const DataflowPattern& pattern) const;

  /// The N-phase evaluation core (omega/pipeline.hpp): evaluates an
  /// arbitrary chain of sparse-dense / dense / sparse-weight phases with
  /// one inter-phase strategy per adjacent pair. run() is a two-phase
  /// adapter over this (bit-identical to the historic two-phase model).
  /// `context`, when non-null, must be bound to `workload.adjacency`.
  [[nodiscard]] PipelineResult run_pipeline(
      const GnnWorkload& workload, const PipelineSpec& spec,
      const WorkloadContext* context = nullptr) const;

  [[nodiscard]] const AcceleratorConfig& config() const { return hw_; }
  [[nodiscard]] const EnergyModel& energy_model() const { return energy_; }

 private:
  [[nodiscard]] RunResult run_impl(const GnnWorkload& workload,
                                   const LayerSpec& layer,
                                   const DataflowDescriptor& df,
                                   const WorkloadContext* context) const;

  /// Shared core behind run_pipeline and the two-phase adapter;
  /// `validated` skips PipelineSpec::validate for specs lowered from an
  /// already-validated DataflowDescriptor (the sweep hot path).
  [[nodiscard]] PipelineResult run_pipeline_impl(
      const GnnWorkload& workload, const PipelineSpec& spec,
      const WorkloadContext* context, bool validated) const;

  AcceleratorConfig hw_;
  EnergyModel energy_;
};

/// Pipeline composition (exposed for unit tests): the consumer starts chunk
/// i once the producer has COMPLETED it and the consumer finished chunk i-1:
///   cons_done[i] = max(producer_completion[i], cons_done[i-1]) + cons[i]
/// Producer completions are absolute cycle stamps (PhaseResult::
/// chunk_completion), which correctly handles producers that revisit chunks
/// across sweeps. Returns cons_done.back(). The recurrence saturates at
/// UINT64_MAX instead of wrapping (DESIGN.md "Overflow contract"): a wrapped
/// sum would report a near-zero makespan for an adversarially huge workload.
[[nodiscard]] std::uint64_t compose_parallel_pipeline(
    const std::vector<std::uint64_t>& producer_completion,
    const std::vector<std::uint64_t>& consumer_chunk_cycles);

/// Same recurrence, returning the whole cons_done vector — the per-chunk
/// consumer completion timeline the inter-layer composer re-tiles into the
/// next layer's start times (omega/compose.hpp). `consumer_start` floors
/// the consumer's clock (the cycle its array partition frees in cross-layer
/// composition); 0 reproduces the scalar overload's timeline exactly.
[[nodiscard]] std::vector<std::uint64_t> compose_parallel_pipeline_timeline(
    const std::vector<std::uint64_t>& producer_completion,
    const std::vector<std::uint64_t>& consumer_chunk_cycles,
    std::uint64_t consumer_start = 0);

/// Share of a GB port bandwidth granted to a phase owning `part` of `total`
/// PEs under PP (Section V-C3), floored at 1 element/cycle. Computed in
/// 128-bit: `bw * part` can wrap std::size_t for large configured
/// bandwidths, which used to hand a phase a tiny garbage share. Exposed for
/// the overflow regression test.
[[nodiscard]] std::size_t scaled_bandwidth(std::size_t bw, std::size_t part,
                                           std::size_t total);

}  // namespace omega
