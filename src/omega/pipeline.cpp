#include "omega/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/saturate.hpp"

namespace omega {

const char* to_string(PhaseEngine e) {
  switch (e) {
    case PhaseEngine::kSparseDense: return "spmm";
    case PhaseEngine::kDenseDense: return "gemm";
    case PhaseEngine::kSparseSparse: return "spgemm";
  }
  return "?";
}

PhaseEngine phase_engine_from_string(const std::string& s) {
  const std::string e = to_lower(s);
  if (e == "spmm" || e == "sparse_dense") return PhaseEngine::kSparseDense;
  if (e == "gemm" || e == "dense") return PhaseEngine::kDenseDense;
  if (e == "spgemm" || e == "sparse_weight") return PhaseEngine::kSparseSparse;
  throw InvalidArgumentError("unknown phase engine: " + s +
                             " (want spmm | gemm | spgemm)");
}

InterPhase inter_phase_from_string(const std::string& s) {
  const std::string i = to_lower(s);
  if (i == "seq" || i == "sequential") return InterPhase::kSequential;
  if (i == "spg" || i == "sp-generic") return InterPhase::kSPGeneric;
  if (i == "sp" || i == "spo" || i == "sp-optimized") {
    return InterPhase::kSPOptimized;
  }
  if (i == "pp" || i == "parallel-pipeline") {
    return InterPhase::kParallelPipeline;
  }
  throw InvalidArgumentError("unknown inter-phase strategy: " + s +
                             " (want Seq | SPg | SP | PP)");
}

HandoffRole phase_producer_role(PhaseEngine e, const LoopOrder& order) {
  // What the phase PRODUCES: the sparse-dense phase emits V x Feat with
  // contraction N; the dense/sparse-weight phases emit V x G with
  // contraction F (same role split as the classic AC/CA analysis).
  return e == PhaseEngine::kSparseDense
             ? HandoffRole{order, Dim::kV, Dim::kF, Dim::kN}
             : HandoffRole{order, Dim::kV, Dim::kG, Dim::kF};
}

HandoffRole phase_consumer_role(PhaseEngine e, const LoopOrder& order) {
  // What the phase CONSUMES: the sparse-dense phase reads intermediate
  // rows through its N loop and columns through its feature loop (the
  // classic CA consumer); the dense phases read V x F as their A operand.
  return e == PhaseEngine::kSparseDense
             ? HandoffRole{order, Dim::kN, Dim::kF, Dim::kV}
             : HandoffRole{order, Dim::kV, Dim::kF, Dim::kG};
}

HandoffRole PhaseSpec::producer_role() const {
  return phase_producer_role(engine, dataflow.order);
}

HandoffRole PhaseSpec::consumer_role() const {
  return phase_consumer_role(engine, dataflow.order);
}

std::string PhaseSpec::to_string() const {
  std::string s = name.empty() ? std::string("phase") : name;
  s += "=";
  s += omega::to_string(engine);
  s += "(";
  s += dataflow.to_string();
  if (out_features > 0) s += ",G=" + std::to_string(out_features);
  if (engine == PhaseEngine::kSparseSparse) {
    s += ",d=" + fixed(weight_density, 3);
  }
  s += ")";
  return s;
}

double PipelineSpec::pp_first_share(std::size_t b) const {
  if (pe_fractions.size() != phases.size()) return 0.5;
  const double first = pe_fractions[b];
  const double second = pe_fractions[b + 1];
  return first / (first + second);
}

std::string PipelineSpec::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) {
      s += " ->";
      s += omega::to_string(boundaries[i - 1]);
      s += "-> ";
    }
    s += phases[i].to_string();
  }
  return s;
}

namespace {

/// Which generalized SP-Optimized constraint (Table II row 2) a pair
/// violates. The single rule set behind both the boolean hot-path check and
/// the message-building validation path, so the two cannot drift.
enum class SpoViolation : std::uint8_t {
  kNone = 0,
  kProducerContractionNotInnermost,
  kConsumerThirdNotInnermost,
  kMajorMismatch,
  kProducerContractionSpatial,
  kConsumerThirdSpatial,
  kTileMismatch,
};

SpoViolation spo_pair_violation(PhaseEngine prod_engine,
                                const IntraPhaseDataflow& prod,
                                PhaseEngine cons_engine,
                                const IntraPhaseDataflow& cons) {
  const HandoffRole p = phase_producer_role(prod_engine, prod.order);
  const HandoffRole c = phase_consumer_role(cons_engine, cons.order);
  if (p.order.depth_of(p.third) != 2) {
    return SpoViolation::kProducerContractionNotInnermost;
  }
  if (c.order.depth_of(c.third) != 2) {
    return SpoViolation::kConsumerThirdNotInnermost;
  }
  const bool p_row_major = p.order.at(0) == p.row;
  const bool c_row_major = c.order.at(0) == c.row;
  if (p_row_major != c_row_major) return SpoViolation::kMajorMismatch;
  if (prod.tiles.get(p.third) != 1) {
    return SpoViolation::kProducerContractionSpatial;
  }
  if (cons.tiles.get(c.third) != 1) return SpoViolation::kConsumerThirdSpatial;
  if (prod.tiles.get(p.row) != cons.tiles.get(c.row) ||
      prod.tiles.get(p.col) != cons.tiles.get(c.col)) {
    return SpoViolation::kTileMismatch;
  }
  return SpoViolation::kNone;
}

/// Message path over spo_pair_violation: both phases keep the intermediate
/// tile resident in the PE register files, so the producer must accumulate
/// temporally, the consumer must stream its third dim temporally, both must
/// traverse the shared tile in the same major with the third dim innermost,
/// and the row/col tiles must match across the pair. Reduces exactly to the
/// classic sp_optimized_error pairs for the two-phase descriptor. `b` is
/// the boundary index, named in the message; the prefix is built only on
/// failure (this runs per candidate in validation-heavy callers).
std::optional<std::string> sp_optimized_pair_error(const PhaseSpec& prod,
                                                   const PhaseSpec& cons,
                                                   std::size_t b) {
  const SpoViolation v = spo_pair_violation(prod.engine, prod.dataflow,
                                            cons.engine, cons.dataflow);
  if (v == SpoViolation::kNone) return std::nullopt;
  const HandoffRole p = phase_producer_role(prod.engine, prod.dataflow.order);
  const HandoffRole c = phase_consumer_role(cons.engine, cons.dataflow.order);
  const std::string where = "boundary " + std::to_string(b) + " (" +
                            prod.to_string() + " ->SP-> " + cons.to_string() +
                            "): ";
  switch (v) {
    case SpoViolation::kNone:
      break;
    case SpoViolation::kProducerContractionNotInnermost:
      return where + "SP-Optimized needs the producer's contraction (" +
             std::string(1, dim_letter(p.third)) +
             ") innermost so accumulated data never leaves the PEs";
    case SpoViolation::kConsumerThirdNotInnermost:
      return where + "SP-Optimized streams the consumer's third dim (" +
             std::string(1, dim_letter(c.third)) +
             ") temporally over the stationary intermediate (innermost loop)";
    case SpoViolation::kMajorMismatch:
      return where + "producer and consumer must traverse the RF-resident "
                     "intermediate in the same major";
    case SpoViolation::kProducerContractionSpatial:
      return where + "SP-Optimized requires a temporal producer contraction "
                     "(T_" + std::string(1, dim_letter(p.third)) + " = 1)";
    case SpoViolation::kConsumerThirdSpatial:
      return where + "SP-Optimized streams the consumer's third dim "
                     "temporally (T_" + std::string(1, dim_letter(c.third)) +
             " = 1)";
    case SpoViolation::kTileMismatch:
      return where + "SP-Optimized requires matched row/col tiles across the "
                     "pair (the same intermediate tile stays in the PEs)";
  }
  return std::nullopt;
}

bool is_chunked(InterPhase ip) {
  return ip == InterPhase::kSPGeneric || ip == InterPhase::kParallelPipeline;
}

/// Max tile across the pair for the intermediate's row / column dimension —
/// the N-phase generalization of DataflowDescriptor::t_row_max/t_col_max.
std::size_t pair_t_row(const PhaseSpec& prod, const PhaseSpec& cons) {
  return std::max(prod.dataflow.tiles.get(prod.producer_role().row),
                  cons.dataflow.tiles.get(cons.consumer_role().row));
}
std::size_t pair_t_col(const PhaseSpec& prod, const PhaseSpec& cons) {
  return std::max(prod.dataflow.tiles.get(prod.producer_role().col),
                  cons.dataflow.tiles.get(cons.consumer_role().col));
}

}  // namespace

// Out^T swaps rows/columns, and flipping the traversal major keeps the
// FLATTENED chunk order identical (row-major over (R, C) and column-major
// over (C, R) enumerate the same (r, c) sequence), which is what lets a
// transposed producer timeline compose index-by-index with an untransposed
// consumer.
ChunkSpec transpose_chunks(const ChunkSpec& c) {
  ChunkSpec t;
  t.rows = c.cols;
  t.cols = c.rows;
  t.row_block = c.col_block;
  t.col_block = c.row_block;
  t.major = c.major == TraversalMajor::kRowMajor ? TraversalMajor::kColumnMajor
                                                 : TraversalMajor::kRowMajor;
  return t;
}

bool sp_optimized_pair_ok(PhaseEngine prod_engine,
                          const IntraPhaseDataflow& prod,
                          PhaseEngine cons_engine,
                          const IntraPhaseDataflow& cons) {
  return spo_pair_violation(prod_engine, prod, cons_engine, cons) ==
         SpoViolation::kNone;
}

EnergyBreakdown compute_energy(const TrafficCounters& traffic,
                               const EnergyModel& em,
                               std::size_t partition_bytes) {
  EnergyBreakdown e;
  for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
    e.gb_by_category_pj[c] =
        static_cast<double>(traffic.gb[c].total()) * em.gb_access_pj;
    e.gb_pj += e.gb_by_category_pj[c];
  }
  e.rf_pj = static_cast<double>(traffic.rf.total()) * em.rf_access_pj;
  e.partition_pj = static_cast<double>(traffic.intermediate_partition.total()) *
                   em.buffer_access_pj(partition_bytes);
  e.dram_pj = static_cast<double>(traffic.dram.total()) * em.dram_access_pj;
  return e;
}

std::optional<std::string> PipelineSpec::validation_error() const {
  if (phases.empty()) return "pipeline needs at least one phase";
  if (boundaries.size() + 1 != phases.size()) {
    return "pipeline wants exactly one boundary per adjacent phase pair (" +
           std::to_string(phases.size()) + " phases, " +
           std::to_string(boundaries.size()) + " boundaries)";
  }
  if (!pe_fractions.empty() && pe_fractions.size() != phases.size()) {
    return "pe_fractions must be empty or hold one entry per phase";
  }
  for (const double f : pe_fractions) {
    if (!std::isfinite(f) || f <= 0.0) {
      return "pe_fractions entries must be finite and > 0";
    }
  }
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpec& p = phases[i];
    // Prefix built lazily (failure path only): validation runs per candidate
    // in pipeline sweeps, and the index names WHICH of N phases failed.
    const auto who = [&] {
      return "phase " + std::to_string(i) + " (" + p.to_string() + "): ";
    };
    if (p.dataflow.phase != taxonomy_phase(p.engine)) {
      return who() + "dataflow is expressed in the wrong loop vocabulary for "
                     "the engine (sparse-dense phases loop over V/N/F, dense "
                     "and sparse-weight phases over V/F/G)";
    }
    try {
      p.dataflow.validate();
    } catch (const Error& e) {
      return who() + e.what();
    }
    if (p.engine == PhaseEngine::kSparseDense) {
      if (p.out_features != 0) {
        return who() + "sparse-dense phases preserve the feature width; "
                       "leave out_features 0";
      }
    } else if (p.out_features == 0) {
      return who() + "dense and sparse-weight phases need out_features >= 1";
    }
    if (p.engine == PhaseEngine::kSparseSparse) {
      if (!(p.weight_density > 0.0 && p.weight_density <= 1.0)) {
        return who() + "weight_density must lie in (0, 1]";
      }
      if (p.dataflow.order.depth_of(Dim::kG) >
          p.dataflow.order.depth_of(Dim::kF)) {
        return who() + "sparse-weight phases walk the compressed W rows "
                       "G-major over the F contraction; the loop order must "
                       "place G outside F (got " +
               p.dataflow.order.letters() + ")";
      }
      // omega-lint: allow(float-eq): 1.0 is the exact dense-default sentinel
    } else if (p.weight_density != 1.0) {
      return who() + "weight_density only applies to sparse-weight phases";
    }
  }
  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    const PhaseSpec& prod = phases[b];
    const PhaseSpec& cons = phases[b + 1];
    switch (boundaries[b]) {
      case InterPhase::kSequential:
        break;
      case InterPhase::kSPOptimized:
        if (const auto err = sp_optimized_pair_error(prod, cons, b)) {
          return err;
        }
        break;
      case InterPhase::kSPGeneric:
      case InterPhase::kParallelPipeline: {
        const PipelineAnalysis a =
            analyze_handoff(prod.producer_role(), cons.consumer_role());
        if (!a.feasible) {
          return "boundary " + std::to_string(b) + " (" + prod.to_string() +
                 " ->" + omega::to_string(boundaries[b]) + "-> " +
                 cons.to_string() + "): " + a.reason;
        }
        break;
      }
    }
    if (is_chunked(boundaries[b]) &&
        cons.engine == PhaseEngine::kSparseSparse) {
      return "boundary " + std::to_string(b) + " (" + cons.to_string() +
             "): a sparse-weight phase cannot consume a chunked intermediate "
             "(its walked rows are W rows, not intermediate rows); use Seq "
             "or SP-Optimized upstream";
    }
  }
  for (std::size_t b = 1; b < boundaries.size(); ++b) {
    if (is_chunked(boundaries[b - 1]) && is_chunked(boundaries[b])) {
      return "phase " + std::to_string(b) + " (" + phases[b].to_string() +
             "): a phase can stage chunks through at most one adjacent "
             "boundary (both neighbors are SP-Generic/PP); separate the "
             "chunked boundaries with Seq or SP-Optimized";
    }
  }
  return std::nullopt;
}

void PipelineSpec::validate() const {
  if (const auto err = validation_error()) {
    throw InvalidDataflowError("pipeline " + to_string() + ": " + *err);
  }
}

PipelineChainSpec PipelineChainSpec::of(const PipelineSpec& spec) {
  PipelineChainSpec c;
  c.in_features = spec.in_features;
  c.phases.reserve(spec.phases.size());
  for (const PhaseSpec& p : spec.phases) {
    c.phases.push_back({p.name, p.engine, p.out_features, p.weight_density});
  }
  return c;
}

std::optional<std::string> PipelineChainSpec::chain_error() const {
  if (phases.empty()) return "pipeline needs at least one phase";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseChainSpec& p = phases[i];
    const auto who = [&] {
      return "phase " + std::to_string(i) + " (" +
             (p.name.empty() ? std::string("phase") : p.name) + "=" +
             std::string(omega::to_string(p.engine)) + "): ";
    };
    if (p.engine == PhaseEngine::kSparseDense) {
      if (p.out_features != 0) {
        return who() + "sparse-dense phases preserve the feature width; "
                       "leave out_features 0";
      }
    } else if (p.out_features == 0) {
      return who() + "dense and sparse-weight phases need out_features >= 1";
    }
    if (p.engine == PhaseEngine::kSparseSparse) {
      if (!(p.weight_density > 0.0 && p.weight_density <= 1.0)) {
        return who() + "weight_density must lie in (0, 1]";
      }
      // omega-lint: allow(float-eq): 1.0 is the exact dense-default sentinel
    } else if (p.weight_density != 1.0) {
      return who() + "weight_density only applies to sparse-weight phases";
    }
  }
  return std::nullopt;
}

PipelineSpec PipelineChainSpec::bind(const PipelineBindingView& b) const {
  const std::size_t n = phases.size();
  if (b.phases.size() != n || b.boundaries.size() + 1 != n ||
      (!b.pe_fractions.empty() && b.pe_fractions.size() != n)) {
    throw InvalidArgumentError(
        "pipeline binding arity does not match the chain (" +
        std::to_string(n) + " phases want " + std::to_string(n) +
        " dataflows, " + std::to_string(n > 0 ? n - 1 : 0) +
        " boundaries, and 0 or " + std::to_string(n) + " pe_fractions; got " +
        std::to_string(b.phases.size()) + " / " +
        std::to_string(b.boundaries.size()) + " / " +
        std::to_string(b.pe_fractions.size()) + ")");
  }
  PipelineSpec s;
  s.in_features = in_features;
  s.phases.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.phases[i].name = phases[i].name;
    s.phases[i].engine = phases[i].engine;
    s.phases[i].out_features = phases[i].out_features;
    s.phases[i].weight_density = phases[i].weight_density;
    s.phases[i].dataflow = b.phases[i];
  }
  s.boundaries.assign(b.boundaries.begin(), b.boundaries.end());
  s.pe_fractions.assign(b.pe_fractions.begin(), b.pe_fractions.end());
  return s;
}

std::string PipelineChainSpec::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseChainSpec& p = phases[i];
    if (i > 0) s += " -> ";
    s += p.name.empty() ? std::string("phase") : p.name;
    s += "=";
    s += omega::to_string(p.engine);
    if (p.out_features > 0 || p.engine == PhaseEngine::kSparseSparse) {
      s += "(";
      if (p.out_features > 0) s += "G=" + std::to_string(p.out_features);
      if (p.engine == PhaseEngine::kSparseSparse) {
        if (p.out_features > 0) s += ",";
        s += "d=" + fixed(p.weight_density, 3);
      }
      s += ")";
    }
  }
  return s;
}

PhaseSpec assemble_phase_spec(std::string name, PhaseEngine engine,
                              const std::string& dataflow,
                              const std::vector<std::size_t>& tiles,
                              std::size_t out_features, double weight_density,
                              std::size_t index) {
  if (dataflow.empty()) {
    throw InvalidArgumentError("each phase needs a dataflow (loop order)");
  }
  PhaseSpec p;
  p.engine = engine;
  p.dataflow = IntraPhaseDataflow::parse(dataflow, taxonomy_phase(engine));
  if (!tiles.empty()) {
    if (tiles.size() != 3) {
      throw InvalidArgumentError(
          "phase tiles want 3 values, one per canonical phase dim (V,N,F "
          "for spmm; V,F,G otherwise)");
    }
    const auto dims = phase_dims(taxonomy_phase(engine));
    for (std::size_t d = 0; d < 3; ++d) p.dataflow.tiles.set(dims[d], tiles[d]);
  }
  p.out_features = out_features;
  p.weight_density = weight_density;
  p.name = name.empty() ? "phase" + std::to_string(index) : std::move(name);
  return p;
}

std::size_t sparse_weight_nnz_per_row(std::size_t in_features,
                                      double density) {
  return std::min<std::size_t>(
      in_features,
      std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(density * static_cast<double>(in_features)))));
}

CSRGraph sparse_weight_csr(std::size_t in_features, std::size_t out_features,
                           double density) {
  OMEGA_CHECK(in_features >= 1 && out_features >= 1,
              "weight matrix extents must be >= 1");
  OMEGA_CHECK(density > 0.0 && density <= 1.0,
              "weight density must lie in (0, 1]");
  const std::size_t nnz_per_row =
      sparse_weight_nnz_per_row(in_features, density);
  // W^T pattern: out_features rows of max(1, round(density * F)) entries.
  // Only the degree profile feeds the cost model (the engines never
  // dereference neighbor ids — traffic is counted per (edge, feature)), so
  // the evenly spaced F-space column ids are folded into the row space to
  // satisfy the square-CSR container; duplicates are legal in from_rows and
  // preserve the nonzero count.
  std::vector<std::vector<VertexId>> rows(out_features);
  for (auto& row : rows) {
    row.reserve(nnz_per_row);
    for (std::size_t j = 0; j < nnz_per_row; ++j) {
      row.push_back(
          static_cast<VertexId>(j * in_features / nnz_per_row % out_features));
    }
  }
  return CSRGraph::from_rows(std::move(rows));
}

PipelineSpec two_phase_pipeline(const DataflowDescriptor& df,
                                const LayerSpec& layer, std::size_t num_pes) {
  PipelineSpec s;
  s.in_features = layer.in_features;
  PhaseSpec agg;
  agg.name = "agg";
  agg.engine = PhaseEngine::kSparseDense;
  agg.dataflow = df.agg;
  PhaseSpec cmb;
  cmb.name = "cmb";
  cmb.engine = PhaseEngine::kDenseDense;
  cmb.dataflow = df.cmb;
  cmb.out_features = layer.out_features;
  const bool ac = df.phase_order == PhaseOrder::kAC;
  if (ac) {
    s.phases = {std::move(agg), std::move(cmb)};
  } else {
    s.phases = {std::move(cmb), std::move(agg)};
  }
  s.boundaries = {df.inter};
  if (df.inter == InterPhase::kParallelPipeline) {
    double first = ac ? df.pp_agg_pe_fraction : 1.0 - df.pp_agg_pe_fraction;
    if (num_pes >= 2 && df.pp_agg_pe_fraction > 0.0 &&
        df.pp_agg_pe_fraction < 1.0) {
      // Resolve the split the way the historic two-phase model did — round
      // the AGGREGATION share and give Combination the remainder — then
      // express it as an exact first-phase share. llround(num_pes * (1-f))
      // is NOT always num_pes - llround(num_pes * f), so a CA pair fed the
      // raw complement would drift by one PE on rounding ties.
      const std::size_t pes_agg = std::clamp<std::size_t>(
          static_cast<std::size_t>(std::llround(
              static_cast<double>(num_pes) * df.pp_agg_pe_fraction)),
          1, num_pes - 1);
      const std::size_t first_pes = ac ? pes_agg : num_pes - pes_agg;
      first = static_cast<double>(first_pes) / static_cast<double>(num_pes);
    }
    s.pe_fractions = {first, 1.0 - first};
  }
  return s;
}

RunResult to_run_result(PipelineResult&& pr, const DataflowDescriptor& df) {
  OMEGA_CHECK(pr.phases.size() == 2 && pr.boundaries.size() == 1,
              "RunResult is a two-phase view; N-phase results stay "
              "PipelineResults");
  const bool ac = pr.phases[0].engine == PhaseEngine::kSparseDense;
  PhaseOutcome& agg = ac ? pr.phases[0] : pr.phases[1];
  PhaseOutcome& cmb = ac ? pr.phases[1] : pr.phases[0];
  OMEGA_CHECK(agg.engine == PhaseEngine::kSparseDense &&
                  cmb.engine != PhaseEngine::kSparseDense,
              "two-phase view wants one sparse-dense and one dense phase");
  const BoundaryOutcome& b = pr.boundaries[0];

  RunResult r;
  r.dataflow = df;
  r.cycles = pr.cycles;
  r.agg = std::move(agg.result);
  r.cmb = std::move(cmb.result);
  r.pes_agg = agg.pes;
  r.pes_cmb = cmb.pes;
  r.granularity = b.granularity;
  r.pipeline_chunks = b.pipeline_chunks;
  r.pipeline_elements = b.pipeline_elements;
  r.intermediate_buffer_elements = b.buffer_elements;
  r.intermediate_spilled = b.spilled;
  r.num_rows = pr.num_rows;
  r.in_features = pr.in_features;
  r.out_features = pr.out_features;
  r.chunk_grid = b.chunk_grid;
  r.traffic = pr.traffic;
  r.energy = pr.energy;
  r.agg_static_utilization = agg.static_utilization;
  r.cmb_static_utilization = cmb.static_utilization;
  return r;
}

PipelineResult Omega::run_pipeline(const GnnWorkload& workload,
                                   const PipelineSpec& spec,
                                   const WorkloadContext* context) const {
  return run_pipeline_impl(workload, spec, context, /*validated=*/false);
}

PipelineResult Omega::run_pipeline_impl(const GnnWorkload& workload,
                                        const PipelineSpec& spec,
                                        const WorkloadContext* context,
                                        bool validated) const {
  if (!validated) spec.validate();
  const std::size_t n = spec.phases.size();
  const std::size_t v = workload.num_vertices();
  OMEGA_CHECK(v >= 1, "workload needs at least one vertex");

  // ---- Feature widths along the chain --------------------------------------
  std::vector<std::size_t> in_w(n);
  std::vector<std::size_t> out_w(n);
  std::size_t width =
      spec.in_features > 0 ? spec.in_features : workload.in_features;
  OMEGA_CHECK(width >= 1, "first-phase input width must be >= 1");
  for (std::size_t i = 0; i < n; ++i) {
    const PhaseSpec& p = spec.phases[i];
    in_w[i] = width;
    out_w[i] = p.engine == PhaseEngine::kSparseDense ? width : p.out_features;
    width = out_w[i];
  }

  // ---- Substrate capability checks (Table II NoC/PE support column) --------
  // Skipped on the pre-validated adapter path: Omega::run already performed
  // the equivalent hardware_requirements() checks (with the legacy
  // descriptor-notation messages) before lowering, and this loop runs once
  // per candidate in sweep hot loops.
  if (!validated) {
    for (const PhaseSpec& p : spec.phases) {
      const Dim contraction =
          p.engine == PhaseEngine::kSparseDense ? Dim::kN : Dim::kF;
      const bool spatial = p.dataflow.tiles.get(contraction) > 1;
      if (spatial && !hw_.supports_spatial_reduction) {
        throw ResourceError(p.to_string() +
                            ": substrate has no spatial-reduction support "
                            "(adder tree / store-and-forward)");
      }
      if (!spatial && !hw_.supports_temporal_reduction) {
        throw ResourceError(p.to_string() +
                            ": substrate has no temporal-reduction support "
                            "(in-place accumulators)");
      }
    }
  }

  // ---- PE and bandwidth allocation -----------------------------------------
  // Phases default to the whole array; each PP boundary splits it between
  // its pair (validation caps every phase at one chunked boundary, so PP
  // groups are exactly pairs) and both sides share the GB ports
  // proportionally (Section V-C3).
  std::vector<std::size_t> pes(n, hw_.num_pes);
  std::vector<std::size_t> bw_dist(n, hw_.distribution_bandwidth);
  std::vector<std::size_t> bw_red(n, hw_.reduction_bandwidth);
  for (std::size_t b = 0; b + 1 < n; ++b) {
    if (spec.boundaries[b] != InterPhase::kParallelPipeline) continue;
    if (hw_.num_pes < 2) {
      throw ResourceError(spec.to_string() +
                          ": parallel pipeline needs >= 2 PEs to split the "
                          "array between the phases");
    }
    const double share = spec.pp_first_share(b);
    if (!(share > 0.0 && share < 1.0)) {
      throw ResourceError(spec.to_string() +
                          ": PP PE shares must lie strictly inside (0, 1) — "
                          "0, 1 or NaN would starve a phase of PEs");
    }
    const std::size_t first = std::clamp<std::size_t>(
        static_cast<std::size_t>(
            std::llround(static_cast<double>(hw_.num_pes) * share)),
        1, hw_.num_pes - 1);
    pes[b] = first;
    pes[b + 1] = hw_.num_pes - first;
    bw_dist[b] =
        scaled_bandwidth(hw_.distribution_bandwidth, pes[b], hw_.num_pes);
    bw_dist[b + 1] =
        scaled_bandwidth(hw_.distribution_bandwidth, pes[b + 1], hw_.num_pes);
    bw_red[b] = scaled_bandwidth(hw_.reduction_bandwidth, pes[b], hw_.num_pes);
    bw_red[b + 1] =
        scaled_bandwidth(hw_.reduction_bandwidth, pes[b + 1], hw_.num_pes);
  }

  // ---- Boundary plans (Table III generalized to adjacent pairs) ------------
  PipelineResult result;
  result.boundaries.resize(n > 0 ? n - 1 : 0);
  for (std::size_t b = 0; b + 1 < n; ++b) {
    BoundaryOutcome& bo = result.boundaries[b];
    bo.inter = spec.boundaries[b];
    bo.rows = v;
    bo.cols = out_w[b];
    bo.chunk_grid = ChunkSpec::whole(bo.rows, bo.cols);
    const PhaseSpec& prod = spec.phases[b];
    const PhaseSpec& cons = spec.phases[b + 1];
    std::size_t t_row = 0;
    std::size_t t_col = 0;
    if (bo.inter != InterPhase::kSequential &&
        bo.inter != InterPhase::kSPOptimized) {
      const PipelineAnalysis analysis =
          analyze_handoff(prod.producer_role(), cons.consumer_role());
      OMEGA_CHECK(analysis.feasible, "validated pipeline must be chunkable");
      bo.granularity = analysis.granularity;
      bo.chunk_grid.major = analysis.major;
      t_row = std::min(pair_t_row(prod, cons), bo.rows);
      t_col = std::min(pair_t_col(prod, cons), bo.cols);
      switch (bo.granularity) {
        case Granularity::kElement:
          bo.chunk_grid.row_block = t_row;
          bo.chunk_grid.col_block = t_col;
          bo.pipeline_elements = t_row * t_col;
          break;
        case Granularity::kRow:
          bo.chunk_grid.row_block = t_row;
          bo.pipeline_elements = t_row * bo.cols;
          break;
        case Granularity::kColumn:
          bo.chunk_grid.col_block = t_col;
          bo.pipeline_elements = bo.rows * t_col;
          break;
        case Granularity::kNone:
          break;
      }
    }
    switch (bo.inter) {
      case InterPhase::kSequential:
        bo.buffer_elements = bo.rows * bo.cols;
        break;
      case InterPhase::kSPGeneric:
        bo.buffer_elements = bo.pipeline_elements;
        break;
      case InterPhase::kSPOptimized:
        bo.buffer_elements = 0;
        break;
      case InterPhase::kParallelPipeline:
        bo.buffer_elements = 2 * bo.pipeline_elements;
        break;
    }
    bo.pipeline_chunks = is_chunked(bo.inter) ? bo.chunk_grid.num_chunks() : 1;
    // Seq spill decision: the product saturates so an astronomically large
    // intermediate cannot wrap into "fits on chip" (DESIGN.md "Overflow
    // contract").
    const std::uint64_t int_bytes =
        sat_mul_u64(sat_mul_u64(bo.rows, bo.cols), hw_.element_bytes);
    bo.spilled =
        bo.inter == InterPhase::kSequential && int_bytes > hw_.gb_bytes;
  }

  // ---- Per-phase engine evaluation -----------------------------------------
  result.phases.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const PhaseSpec& p = spec.phases[i];
    const BoundaryOutcome* up = i > 0 ? &result.boundaries[i - 1] : nullptr;
    const BoundaryOutcome* down =
        i + 1 < n ? &result.boundaries[i] : nullptr;
    const bool in_from_rf = up != nullptr && up->inter == InterPhase::kSPOptimized;
    const bool in_dram = up != nullptr && up->spilled;
    const bool in_via_partition =
        up != nullptr && up->inter == InterPhase::kParallelPipeline;
    const bool out_to_rf =
        down != nullptr && down->inter == InterPhase::kSPOptimized;
    const bool out_in_dram = down != nullptr && down->spilled;
    const bool out_via_partition =
        down != nullptr && down->inter == InterPhase::kParallelPipeline;
    const TrafficCategory in_cat =
        up != nullptr ? TrafficCategory::kIntermediate : TrafficCategory::kInput;
    const TrafficCategory out_cat = down != nullptr
                                        ? TrafficCategory::kIntermediate
                                        : TrafficCategory::kOutput;
    const bool up_chunked = up != nullptr && is_chunked(up->inter);
    const bool down_chunked = down != nullptr && is_chunked(down->inter);

    PhaseOutcome& po = result.phases[i];
    po.name = p.name;
    po.engine = p.engine;
    po.pes = pes[i];
    po.in_features = in_w[i];
    po.out_features = out_w[i];
    po.static_utilization = static_utilization(p.dataflow, pes[i]);

    switch (p.engine) {
      case PhaseEngine::kSparseDense: {
        SpmmPhaseConfig cfg;
        cfg.graph = &workload.adjacency;
        cfg.context = context;
        cfg.order = p.dataflow.order;
        cfg.tiles = p.dataflow.tiles;
        cfg.feat = in_w[i];
        cfg.pes = pes[i];
        cfg.bw_dist = bw_dist[i];
        cfg.bw_red = bw_red[i];
        cfg.rf_elements = hw_.rf_elements_per_pe();
        cfg.b_category = in_cat;
        cfg.b_from_rf = in_from_rf;
        cfg.b_in_dram = in_dram;
        cfg.b_stream_bw = in_dram ? hw_.dram_bandwidth : 0;
        cfg.b_via_partition = in_via_partition;
        cfg.out_category = out_cat;
        cfg.out_to_rf = out_to_rf;
        cfg.out_in_dram = out_in_dram;
        cfg.out_drain_bw = out_in_dram ? hw_.dram_bandwidth : 0;
        cfg.out_via_partition = out_via_partition;
        if (up_chunked) {
          cfg.chunks = up->chunk_grid;
          cfg.chunk_target = ChunkTarget::kMatrixA;
        } else if (down_chunked) {
          cfg.chunks = down->chunk_grid;
          cfg.chunk_target = ChunkTarget::kMatrixOut;
        }
        po.result = run_spmm_phase(cfg);
        break;
      }
      case PhaseEngine::kDenseDense: {
        GemmPhaseConfig cfg;
        cfg.context = context;
        cfg.rows = v;
        cfg.inner = in_w[i];
        cfg.cols = out_w[i];
        cfg.order = p.dataflow.order;
        cfg.tiles = p.dataflow.tiles;
        cfg.pes = pes[i];
        cfg.bw_dist = bw_dist[i];
        cfg.bw_red = bw_red[i];
        cfg.rf_elements = hw_.rf_elements_per_pe();
        cfg.a_category = in_cat;
        cfg.a_from_rf = in_from_rf;
        cfg.a_in_dram = in_dram;
        cfg.a_stream_bw = in_dram ? hw_.dram_bandwidth : 0;
        cfg.a_via_partition = in_via_partition;
        cfg.out_category = out_cat;
        cfg.out_to_rf = out_to_rf;
        cfg.out_in_dram = out_in_dram;
        cfg.out_drain_bw = out_in_dram ? hw_.dram_bandwidth : 0;
        cfg.out_via_partition = out_via_partition;
        if (up_chunked) {
          cfg.chunks = up->chunk_grid;
          cfg.chunk_target = ChunkTarget::kMatrixA;
        } else if (down_chunked) {
          cfg.chunks = down->chunk_grid;
          cfg.chunk_target = ChunkTarget::kMatrixOut;
        }
        po.result = run_gemm_phase(cfg);
        break;
      }
      case PhaseEngine::kSparseSparse: {
        // Transposed problem Out^T[G,V] = W^T[G,F] x X^T[F,V]: the SpMM
        // engine walks W^T rows exactly like adjacency rows — fewer
        // nonzeros per row (lower density) mean fewer neighbor steps and
        // less metadata/operand traffic. Loop dims translate G->V, F->N,
        // V->Feat; the consumed X^T becomes the engine's B operand.
        const CSRGraph wcsr =
            sparse_weight_csr(in_w[i], out_w[i], p.weight_density);
        const auto translate = [](Dim d) {
          switch (d) {
            case Dim::kG: return Dim::kV;
            case Dim::kF: return Dim::kN;
            case Dim::kV: return Dim::kF;
            case Dim::kN: break;
          }
          throw InvalidDataflowError(
              "sparse-weight phases loop over V/F/G only");
        };
        SpmmPhaseConfig cfg;
        cfg.graph = &wcsr;
        cfg.context = nullptr;  // the workload context is bound to the graph
        cfg.order = LoopOrder(translate(p.dataflow.order.at(0)),
                              translate(p.dataflow.order.at(1)),
                              translate(p.dataflow.order.at(2)));
        cfg.tiles.v = p.dataflow.tiles.g;
        cfg.tiles.n = p.dataflow.tiles.f;
        cfg.tiles.f = p.dataflow.tiles.v;
        cfg.feat = v;
        cfg.pes = pes[i];
        cfg.bw_dist = bw_dist[i];
        cfg.bw_red = bw_red[i];
        cfg.rf_elements = hw_.rf_elements_per_pe();
        cfg.b_category = in_cat;
        cfg.b_from_rf = in_from_rf;
        cfg.b_in_dram = in_dram;
        cfg.b_stream_bw = in_dram ? hw_.dram_bandwidth : 0;
        cfg.b_via_partition = in_via_partition;
        cfg.out_category = out_cat;
        cfg.out_to_rf = out_to_rf;
        cfg.out_in_dram = out_in_dram;
        cfg.out_drain_bw = out_in_dram ? hw_.dram_bandwidth : 0;
        cfg.out_via_partition = out_via_partition;
        if (down_chunked) {
          cfg.chunks = transpose_chunks(down->chunk_grid);
          cfg.chunk_target = ChunkTarget::kMatrixOut;
        }
        po.result = run_spmm_phase(cfg);
        break;
      }
    }
  }

  // ---- Compose cycles, traffic and energy ----------------------------------
  // PP pairs overlap chunk-by-chunk (the consumer starts chunk i once the
  // producer completed it); everything else serializes, so the makespan is
  // the saturating sum over segments.
  result.cycles = 0;
  for (std::size_t i = 0; i < n;) {
    if (i + 1 < n &&
        spec.boundaries[i] == InterPhase::kParallelPipeline) {
      result.boundaries[i].overlapped = true;
      result.cycles = sat_add_u64(
          result.cycles,
          compose_parallel_pipeline(result.phases[i].result.chunk_completion,
                                    result.phases[i + 1].result.chunk_cycles));
      i += 2;
    } else {
      result.cycles = sat_add_u64(result.cycles, result.phases[i].result.cycles);
      i += 1;
    }
  }

  for (const PhaseOutcome& po : result.phases) {
    result.traffic += po.result.traffic;
  }
  std::size_t partition_bytes = 0;
  for (const BoundaryOutcome& bo : result.boundaries) {
    if (bo.inter == InterPhase::kParallelPipeline) {
      partition_bytes = std::max(partition_bytes,
                                 bo.buffer_elements * hw_.element_bytes);
    }
  }
  result.energy = compute_energy(result.traffic, energy_, partition_bytes);

  result.num_rows = v;
  result.in_features = in_w.empty() ? 0 : in_w.front();
  result.out_features = out_w.empty() ? 0 : out_w.back();
  return result;
}

}  // namespace omega
