// Phase-pluggable pipeline API: the N-phase sparse/dense evaluation core.
//
// The paper's two-phase GNN layer (Aggregation + Combination) is one point
// in a larger space of multiphase sparse/dense dataflows: Dynasparse re-maps
// each kernel by measured operand sparsity, VersaGNN treats both GNN phases
// as interchangeable sparse/dense GEMM stages, and pruned/quantized models
// make the Combination weights sparse. This header generalizes the
// evaluation core to an arbitrary chain of phases:
//
//   PipelineSpec{phases[], boundaries[], pe_fractions[]}
//     phase    = engine kind (sparse-dense SpMM / dense GEMM / sparse-weight
//                SpGEMM) + intra-phase dataflow + output width
//     boundary = one InterPhase strategy per adjacent pair, analyzed with
//                the same Table II machinery as the two-phase model
//
// Omega::run_pipeline evaluates a spec end-to-end; the classic
// Omega::run/RunResult pair is now a thin two-phase adapter over it (see
// two_phase_pipeline / to_run_result below), bit-identical to the historic
// implementation (tests/pipeline_test.cpp pins the parity).
//
// Validation rules (PipelineSpec::validate):
//  * every phase's loop order/tiles must be valid for its engine's loop
//    vocabulary (V,N,F for sparse-dense; V,F,G otherwise);
//  * SP-Generic / PP boundaries need a feasible hand-off (analyze_handoff)
//    between the producer's and consumer's traversal of the intermediate;
//  * SP-Optimized boundaries need both phases to stream their third dim
//    innermost with matching traversal major, a temporal producer
//    contraction, a temporal consumer third dim, and matched row/col tiles
//    (the RF-resident tile is shared);
//  * a phase can stage chunks through at most ONE adjacent boundary (its
//    engine tracks a single chunk grid), so PP groups are pairs and a
//    chunked boundary must be flanked by Seq / SP-Optimized ones;
//  * sparse-weight phases walk the rows of the compressed W (G-major over
//    the F contraction), so their loop order must place G before F, and
//    they can produce into a chunked boundary but not consume from one.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "omega/omega.hpp"

namespace omega {

/// Which cost engine evaluates a phase.
///  kSparseDense:  Out[V,W] = A[V,V] x B[V,W], A = the workload adjacency in
///                 CSR (the classic Aggregation phase); preserves the
///                 feature width.
///  kDenseDense:   Out[V,G] = X[V,F] x W[F,G], dense weights (the classic
///                 Combination phase).
///  kSparseSparse: Out[V,G] = X[V,F] x W[F,G] with W CSR-compressed at
///                 PhaseSpec::weight_density — pruned/quantized models. The
///                 cost model is the SpMM engine run on the transposed
///                 problem Out^T = W^T x X^T (W^T rows are walked like
///                 adjacency rows; W's ids/values are charged to the
///                 adjacency traffic category as CSR metadata).
enum class PhaseEngine : std::uint8_t {
  kSparseDense = 0,
  kDenseDense = 1,
  kSparseSparse = 2,
};

[[nodiscard]] const char* to_string(PhaseEngine e);
/// Parses "spmm"/"sparse_dense", "gemm"/"dense", "spgemm"/"sparse_weight"
/// (case-insensitive); throws InvalidArgumentError.
[[nodiscard]] PhaseEngine phase_engine_from_string(const std::string& s);

/// Parses "Seq", "SPg", "SP"/"SPO", "PP" (case-insensitive — the notation
/// to_string(InterPhase) emits); throws InvalidArgumentError. The single
/// parser behind the CLI run-pipeline flags and the service v2 protocol.
[[nodiscard]] InterPhase inter_phase_from_string(const std::string& s);

/// The loop vocabulary a phase engine uses (which GnnPhase its
/// IntraPhaseDataflow must be expressed in).
[[nodiscard]] constexpr GnnPhase taxonomy_phase(PhaseEngine e) {
  return e == PhaseEngine::kSparseDense ? GnnPhase::kAggregation
                                        : GnnPhase::kCombination;
}

/// One phase of a pipeline.
struct PhaseSpec {
  std::string name;  // free-form label echoed in results ("agg", "score", …)
  PhaseEngine engine = PhaseEngine::kDenseDense;
  /// Loop order + tile sizes in the engine's vocabulary; `dataflow.phase`
  /// must equal taxonomy_phase(engine).
  IntraPhaseDataflow dataflow;
  /// Output feature width. Must be 0 for kSparseDense (the sparse-dense
  /// phase preserves its input width); >= 1 otherwise.
  std::size_t out_features = 0;
  /// kSparseSparse only: density of W in (0, 1]; every W^T row keeps
  /// max(1, round(density * F)) evenly spaced nonzeros. Must stay 1.0 for
  /// the other engines.
  double weight_density = 1.0;

  /// Hand-off role dims when this phase produces / consumes an intermediate.
  [[nodiscard]] HandoffRole producer_role() const;
  [[nodiscard]] HandoffRole consumer_role() const;

  /// e.g. "score=gemm(VtFtGt,G=16)" / "cmb=spgemm(GtVtFt,G=16,d=0.5)".
  [[nodiscard]] std::string to_string() const;
};

/// Hand-off roles derived from the engine kind and loop order alone —
/// PhaseSpec::producer_role/consumer_role delegate here, and the DSE eval
/// core derives boundary plans per candidate without materializing
/// PhaseSpecs (no name strings on the hot path).
[[nodiscard]] HandoffRole phase_producer_role(PhaseEngine e,
                                              const LoopOrder& order);
[[nodiscard]] HandoffRole phase_consumer_role(PhaseEngine e,
                                              const LoopOrder& order);

/// Allocation-free SP-Optimized boundary check: true iff
/// PipelineSpec::validation_error would accept this producer/consumer pair
/// (same rules as the message-building path, shared so they cannot drift).
[[nodiscard]] bool sp_optimized_pair_ok(PhaseEngine prod_engine,
                                        const IntraPhaseDataflow& prod,
                                        PhaseEngine cons_engine,
                                        const IntraPhaseDataflow& cons);

/// A complete N-phase pipeline description.
struct PipelineSpec {
  std::vector<PhaseSpec> phases;          // execution order, >= 1 phase
  std::vector<InterPhase> boundaries;     // phases.size() - 1 entries
  /// Relative PE weights per phase (empty = all equal). A PP boundary
  /// splits the array between its pair in proportion
  /// fractions[i] : fractions[i+1]; phases outside PP pairs get the whole
  /// array. Each entry must be finite and > 0.
  std::vector<double> pe_fractions;
  /// First-phase input width override; 0 = the workload's feature width.
  std::size_t in_features = 0;

  /// PE share of the first phase of PP boundary `b`'s pair.
  [[nodiscard]] double pp_first_share(std::size_t b) const;

  /// Like DataflowDescriptor: returns the failure reason, or throws
  /// InvalidDataflowError with it.
  [[nodiscard]] std::optional<std::string> validation_error() const;
  void validate() const;

  /// e.g. "agg=spmm(VtFsNt) ->PP-> cmb=gemm(VsGsFt,G=16)".
  [[nodiscard]] std::string to_string() const;
};

/// The per-candidate ("binding") half of a PipelineSpec: everything a DSE
/// sweep varies. The chain half (engines, widths, densities — see
/// PipelineChainSpec) stays fixed across a sweep, which is what lets the
/// eval core precompute widths and sparse-weight CSRs once per search.
struct PipelineBindingView {
  std::span<const IntraPhaseDataflow> phases;  // one per chain phase
  std::span<const InterPhase> boundaries;      // phases.size() - 1
  std::span<const double> pe_fractions;        // empty or one per phase
};

/// The binding-invariant half of one phase (PhaseSpec minus the dataflow).
struct PhaseChainSpec {
  std::string name;  // echoed into bound specs; "phase<i>" when empty
  PhaseEngine engine = PhaseEngine::kDenseDense;
  std::size_t out_features = 0;   // 0 for kSparseDense (width-preserving)
  double weight_density = 1.0;    // kSparseSparse only
};

/// An N-phase chain: the search-space *shape* a pipeline DSE sweep runs
/// over. `bind` assembles a full PipelineSpec from a candidate binding.
struct PipelineChainSpec {
  std::vector<PhaseChainSpec> phases;
  std::size_t in_features = 0;  // first-phase input width; 0 = workload's

  /// Chain projection of a full spec (drops the per-phase dataflows).
  [[nodiscard]] static PipelineChainSpec of(const PipelineSpec& spec);

  /// Binding-invariant validation (arity, per-phase width/density rules —
  /// the chain-level subset of PipelineSpec::validation_error, with the
  /// same phase-indexed messages). Dataflow- and boundary-dependent rules
  /// can only be checked on a bound spec.
  [[nodiscard]] std::optional<std::string> chain_error() const;

  /// Full spec from a candidate binding; throws InvalidArgumentError on an
  /// arity mismatch between the binding and the chain.
  [[nodiscard]] PipelineSpec bind(const PipelineBindingView& binding) const;

  /// e.g. "score=gemm(G=16) -> agg=spmm -> xform=spgemm(G=8,d=0.500)".
  [[nodiscard]] std::string to_string() const;
};

/// Per-phase evaluation outcome.
struct PhaseOutcome {
  std::string name;
  PhaseEngine engine = PhaseEngine::kDenseDense;
  PhaseResult result;
  std::size_t pes = 0;
  std::size_t in_features = 0;
  std::size_t out_features = 0;
  double static_utilization = 0.0;

  [[nodiscard]] double dynamic_utilization() const {
    return result.utilization(pes);
  }
};

/// Per-adjacent-pair boundary outcome (Table III generalized).
struct BoundaryOutcome {
  InterPhase inter = InterPhase::kSequential;
  Granularity granularity = Granularity::kNone;
  /// The chunk grid both sides share; whole(rows, cols) when unchunked.
  ChunkSpec chunk_grid;
  std::size_t rows = 0;  // intermediate extents: V x producer out width
  std::size_t cols = 0;
  std::size_t pipeline_chunks = 1;
  std::size_t pipeline_elements = 0;   // Pel
  std::size_t buffer_elements = 0;     // Table III buffering
  bool spilled = false;                // Seq: intermediate exceeded the GB
  bool overlapped = false;             // PP: pair composed chunk-by-chunk
};

/// Complete result of evaluating one PipelineSpec on one workload.
struct PipelineResult {
  std::uint64_t cycles = 0;
  std::vector<PhaseOutcome> phases;
  std::vector<BoundaryOutcome> boundaries;  // phases.size() - 1 entries
  std::size_t num_rows = 0;      // V
  std::size_t in_features = 0;   // first phase's input width
  std::size_t out_features = 0;  // last phase's output width
  TrafficCounters traffic;
  EnergyBreakdown energy;
};

/// Lowers the classic two-phase descriptor into a PipelineSpec (phases in
/// execution order per df.phase_order). When `num_pes` > 0 the PP PE split
/// is resolved against that array size so the generalized allocator
/// reproduces the legacy llround-then-clamp split bit-for-bit for BOTH
/// phase orders (the legacy formula anchors the rounding on Aggregation;
/// the pipeline allocator anchors it on the first phase of the pair).
/// Omega::run uses this with its own PE count — pass the same value when
/// checking parity.
[[nodiscard]] PipelineSpec two_phase_pipeline(const DataflowDescriptor& df,
                                              const LayerSpec& layer = {},
                                              std::size_t num_pes = 0);

/// Collapses a two-phase PipelineResult back into the legacy RunResult view
/// (requires exactly one kSparseDense and one non-sparse-dense phase).
/// `df` is echoed into RunResult::dataflow.
[[nodiscard]] RunResult to_run_result(PipelineResult&& pr,
                                      const DataflowDescriptor& df);

/// Assembles a PhaseSpec from front-end fields — the single path behind the
/// CLI `--phase` flag and the service v2 "phases[]" parser, so the tile-dim
/// convention cannot drift between them. `dataflow` is the intra-phase
/// notation (parsed in the engine's vocabulary); `tiles` is empty or holds
/// one size per canonical phase dim (V,N,F for spmm; V,F,G otherwise);
/// an empty `name` defaults to "phase<index>". Throws InvalidArgumentError
/// on an empty dataflow or a wrong-arity tile list.
[[nodiscard]] PhaseSpec assemble_phase_spec(std::string name,
                                            PhaseEngine engine,
                                            const std::string& dataflow,
                                            const std::vector<std::size_t>& tiles,
                                            std::size_t out_features,
                                            double weight_density,
                                            std::size_t index);

/// Prices a traffic profile through the energy model: per-category GB
/// accesses, RF, DRAM, and the PP intermediate-partition buffer (sized
/// `partition_bytes`; 0 when no boundary buffers). This is the single
/// energy-accounting function behind Omega::run, run_pipeline, and the
/// delta-evaluation core (engine/eval_core.hpp) — their parity contract
/// requires pricing summed traffic identically.
[[nodiscard]] EnergyBreakdown compute_energy(const TrafficCounters& traffic,
                                             const EnergyModel& em,
                                             std::size_t partition_bytes);

/// Synthetic CSR pattern of W^T for a sparse-weight phase: `out_features`
/// rows, each holding max(1, round(density * in_features)) evenly spaced
/// column ids in [0, in_features). Deterministic — the cost model only
/// consumes the degree profile. Exposed for tests and benches.
[[nodiscard]] CSRGraph sparse_weight_csr(std::size_t in_features,
                                         std::size_t out_features,
                                         double density);

/// Nonzeros per W^T row in sparse_weight_csr's pattern:
/// min(F, max(1, round(density * F))). The sparse-weight MAC count is
/// out_features * nnz_per_row * V — the quantity compulsory-work lower
/// bounds (DSE pruning) need without materializing the CSR.
[[nodiscard]] std::size_t sparse_weight_nnz_per_row(std::size_t in_features,
                                                    double density);

/// Engine-facing chunk grid for the transposed sparse-weight problem: Out^T
/// swaps rows/columns, and flipping the traversal major keeps the FLATTENED
/// chunk order identical, which is what lets a transposed producer timeline
/// compose index-by-index with an untransposed consumer. Shared with the
/// DSE eval core, whose boundary plans must mirror run_pipeline exactly.
[[nodiscard]] ChunkSpec transpose_chunks(const ChunkSpec& chunks);

}  // namespace omega
