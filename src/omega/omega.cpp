#include "omega/omega.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/saturate.hpp"

namespace omega {

Omega::Omega(AcceleratorConfig hw, EnergyModel energy)
    : hw_(hw), energy_(energy) {
  hw_.validate();
}

std::uint64_t compose_parallel_pipeline(
    const std::vector<std::uint64_t>& producer_completion,
    const std::vector<std::uint64_t>& consumer_chunk_cycles) {
  // Allocation-free twin of compose_parallel_pipeline_timeline (floor 0):
  // this runs once per PP candidate in sweep hot loops. Keep the two
  // recurrences in lockstep.
  OMEGA_CHECK(producer_completion.size() == consumer_chunk_cycles.size(),
              "producer and consumer must agree on the chunk grid");
  OMEGA_CHECK(!producer_completion.empty(), "pipeline needs >= 1 chunk");
  std::uint64_t cons_done = 0;
  for (std::size_t i = 0; i < producer_completion.size(); ++i) {
    const std::uint64_t start = std::max(producer_completion[i], cons_done);
    cons_done = sat_add_u64(start, consumer_chunk_cycles[i]);
  }
  return cons_done;
}

std::vector<std::uint64_t> compose_parallel_pipeline_timeline(
    const std::vector<std::uint64_t>& producer_completion,
    const std::vector<std::uint64_t>& consumer_chunk_cycles,
    std::uint64_t consumer_start) {
  OMEGA_CHECK(producer_completion.size() == consumer_chunk_cycles.size(),
              "producer and consumer must agree on the chunk grid");
  OMEGA_CHECK(!producer_completion.empty(), "pipeline needs >= 1 chunk");
  std::vector<std::uint64_t> done(producer_completion.size());
  std::uint64_t cons_done = consumer_start;
  for (std::size_t i = 0; i < producer_completion.size(); ++i) {
    const std::uint64_t start = std::max(producer_completion[i], cons_done);
    cons_done = sat_add_u64(start, consumer_chunk_cycles[i]);
    done[i] = cons_done;
  }
  return done;
}

std::size_t scaled_bandwidth(std::size_t bw, std::size_t part,
                             std::size_t total) {
  if (bw == AcceleratorConfig::kUnbounded) return bw;
  const unsigned __int128 share = static_cast<unsigned __int128>(bw) * part /
                                  std::max<std::size_t>(total, 1);
  const std::size_t capped =
      share > std::numeric_limits<std::size_t>::max()
          ? std::numeric_limits<std::size_t>::max()
          : static_cast<std::size_t>(share);
  return std::max<std::size_t>(1, capped);
}

namespace {

EnergyBreakdown compute_energy(const TrafficCounters& traffic,
                               const EnergyModel& em,
                               std::size_t partition_bytes) {
  EnergyBreakdown e;
  for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
    e.gb_by_category_pj[c] =
        static_cast<double>(traffic.gb[c].total()) * em.gb_access_pj;
    e.gb_pj += e.gb_by_category_pj[c];
  }
  e.rf_pj = static_cast<double>(traffic.rf.total()) * em.rf_access_pj;
  e.partition_pj = static_cast<double>(traffic.intermediate_partition.total()) *
                   em.buffer_access_pj(partition_bytes);
  e.dram_pj = static_cast<double>(traffic.dram.total()) * em.dram_access_pj;
  return e;
}

}  // namespace

RunResult Omega::run(const GnnWorkload& workload, const LayerSpec& layer,
                     const DataflowDescriptor& df) const {
  return run_impl(workload, layer, df, nullptr);
}

RunResult Omega::run(const GnnWorkload& workload, const LayerSpec& layer,
                     const DataflowDescriptor& df,
                     const WorkloadContext& context) const {
  return run_impl(workload, layer, df, &context);
}

RunResult Omega::run_impl(const GnnWorkload& workload, const LayerSpec& layer,
                          const DataflowDescriptor& df,
                          const WorkloadContext* context) const {
  df.validate();
  const HardwareRequirements req = hardware_requirements(df);
  if (req.needs_spatial_reduction && !hw_.supports_spatial_reduction) {
    throw ResourceError(df.to_string() +
                        ": substrate has no spatial-reduction support "
                        "(adder tree / store-and-forward)");
  }
  if (req.needs_temporal_reduction && !hw_.supports_temporal_reduction) {
    throw ResourceError(df.to_string() +
                        ": substrate has no temporal-reduction support "
                        "(in-place accumulators)");
  }

  const std::size_t v = workload.num_vertices();
  const std::size_t f =
      layer.in_features > 0 ? layer.in_features : workload.in_features;
  const std::size_t g = layer.out_features;
  OMEGA_CHECK(v >= 1 && f >= 1 && g >= 1, "workload dims must be positive");

  const bool ac = df.phase_order == PhaseOrder::kAC;
  const std::size_t int_rows = v;
  const std::size_t int_cols = ac ? f : g;

  RunResult result;
  result.dataflow = df;
  result.granularity = df.granularity();

  // PE and bandwidth allocation.
  const bool pp = df.inter == InterPhase::kParallelPipeline;
  result.pes_agg = hw_.num_pes;
  result.pes_cmb = hw_.num_pes;
  std::size_t bw_dist_agg = hw_.distribution_bandwidth;
  std::size_t bw_dist_cmb = hw_.distribution_bandwidth;
  std::size_t bw_red_agg = hw_.reduction_bandwidth;
  std::size_t bw_red_cmb = hw_.reduction_bandwidth;
  if (pp) {
    // Splitting the array needs a PE on each side; clamp(x, 1, 0) below
    // would be UB on a single-PE substrate.
    if (hw_.num_pes < 2) {
      throw ResourceError(df.to_string() +
                          ": parallel pipeline needs >= 2 PEs to split the "
                          "array between the phases");
    }
    result.pes_agg = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(
            static_cast<double>(hw_.num_pes) * df.pp_agg_pe_fraction)),
        1, hw_.num_pes - 1);
    result.pes_cmb = hw_.num_pes - result.pes_agg;
    // Both phases run concurrently and share the GB ports (Section V-C3).
    bw_dist_agg = scaled_bandwidth(hw_.distribution_bandwidth, result.pes_agg,
                                   hw_.num_pes);
    bw_dist_cmb = scaled_bandwidth(hw_.distribution_bandwidth, result.pes_cmb,
                                   hw_.num_pes);
    bw_red_agg =
        scaled_bandwidth(hw_.reduction_bandwidth, result.pes_agg, hw_.num_pes);
    bw_red_cmb =
        scaled_bandwidth(hw_.reduction_bandwidth, result.pes_cmb, hw_.num_pes);
  }

  // Chunk grid for pipelined strategies.
  const bool chunked =
      df.inter == InterPhase::kSPGeneric || pp;
  ChunkSpec chunks = ChunkSpec::whole(int_rows, int_cols);
  if (chunked) {
    const auto analysis = analyze_pipeline(df.agg.order, df.cmb.order,
                                           df.phase_order);
    OMEGA_CHECK(analysis.feasible, "validated dataflow must be pipelineable");
    chunks.major = analysis.major;
    switch (analysis.granularity) {
      case Granularity::kElement:
        chunks.row_block = std::min(df.t_row_max(), int_rows);
        chunks.col_block = std::min(df.t_col_max(), int_cols);
        break;
      case Granularity::kRow:
        chunks.row_block = std::min(df.t_row_max(), int_rows);
        break;
      case Granularity::kColumn:
        chunks.col_block = std::min(df.t_col_max(), int_cols);
        break;
      case Granularity::kNone:
        break;
    }
  }

  // Table III buffering requirement and Seq spill decision. The V*F*bytes
  // product saturates: a service request can choose feature widths freely,
  // and a wrapped product would read as "fits on chip" for a matrix that is
  // astronomically too large (DESIGN.md "Overflow contract").
  result.pipeline_elements = df.pipeline_elements(int_rows, int_cols);
  result.intermediate_buffer_elements =
      df.intermediate_buffer_elements(int_rows, int_cols);
  const std::uint64_t int_bytes = sat_mul_u64(
      sat_mul_u64(int_rows, int_cols), hw_.element_bytes);
  result.intermediate_spilled =
      df.inter == InterPhase::kSequential && int_bytes > hw_.gb_bytes;

  result.num_rows = v;
  result.in_features = f;
  result.out_features = g;
  result.chunk_grid = chunks;

  const bool sp_opt = df.inter == InterPhase::kSPOptimized;
  const bool via_partition = pp;

  // Bind the two engines according to phase order.
  SpmmPhaseConfig agg_cfg;
  agg_cfg.graph = &workload.adjacency;
  agg_cfg.context = context;
  agg_cfg.order = df.agg.order;
  agg_cfg.tiles = df.agg.tiles;
  agg_cfg.pes = result.pes_agg;
  agg_cfg.bw_dist = bw_dist_agg;
  agg_cfg.bw_red = bw_red_agg;
  agg_cfg.rf_elements = hw_.rf_elements_per_pe();

  GemmPhaseConfig cmb_cfg;
  cmb_cfg.context = context;
  cmb_cfg.rows = v;
  cmb_cfg.inner = f;
  cmb_cfg.cols = g;
  cmb_cfg.order = df.cmb.order;
  cmb_cfg.tiles = df.cmb.tiles;
  cmb_cfg.pes = result.pes_cmb;
  cmb_cfg.bw_dist = bw_dist_cmb;
  cmb_cfg.bw_red = bw_red_cmb;
  cmb_cfg.rf_elements = hw_.rf_elements_per_pe();

  if (ac) {
    // Aggregation produces the V x F intermediate; Combination consumes it.
    agg_cfg.feat = f;
    agg_cfg.b_category = TrafficCategory::kInput;
    agg_cfg.out_category = TrafficCategory::kIntermediate;
    agg_cfg.out_to_rf = sp_opt;
    agg_cfg.out_in_dram = result.intermediate_spilled;
    agg_cfg.out_drain_bw =
        result.intermediate_spilled ? hw_.dram_bandwidth : 0;
    agg_cfg.out_via_partition = via_partition;
    if (chunked) {
      agg_cfg.chunks = chunks;
      agg_cfg.chunk_target = ChunkTarget::kMatrixOut;
    }
    cmb_cfg.a_category = TrafficCategory::kIntermediate;
    cmb_cfg.a_from_rf = sp_opt;
    cmb_cfg.a_in_dram = result.intermediate_spilled;
    cmb_cfg.a_stream_bw =
        result.intermediate_spilled ? hw_.dram_bandwidth : 0;
    cmb_cfg.a_via_partition = via_partition;
    if (chunked) {
      cmb_cfg.chunks = chunks;
      cmb_cfg.chunk_target = ChunkTarget::kMatrixA;
    }
  } else {
    // Combination produces the V x G intermediate; Aggregation consumes it.
    cmb_cfg.a_category = TrafficCategory::kInput;
    cmb_cfg.out_category = TrafficCategory::kIntermediate;
    cmb_cfg.out_to_rf = sp_opt;
    cmb_cfg.out_in_dram = result.intermediate_spilled;
    cmb_cfg.out_drain_bw =
        result.intermediate_spilled ? hw_.dram_bandwidth : 0;
    cmb_cfg.out_via_partition = via_partition;
    if (chunked) {
      cmb_cfg.chunks = chunks;
      cmb_cfg.chunk_target = ChunkTarget::kMatrixOut;
    }
    agg_cfg.feat = g;
    agg_cfg.b_category = TrafficCategory::kIntermediate;
    agg_cfg.b_from_rf = sp_opt;
    agg_cfg.b_in_dram = result.intermediate_spilled;
    agg_cfg.b_stream_bw =
        result.intermediate_spilled ? hw_.dram_bandwidth : 0;
    agg_cfg.b_via_partition = via_partition;
    agg_cfg.out_category = TrafficCategory::kOutput;
    if (chunked) {
      agg_cfg.chunks = chunks;
      agg_cfg.chunk_target = ChunkTarget::kMatrixA;
    }
  }

  result.agg = run_spmm_phase(agg_cfg);
  result.cmb = run_gemm_phase(cmb_cfg);
  result.agg_static_utilization = static_utilization(df.agg, result.pes_agg);
  result.cmb_static_utilization = static_utilization(df.cmb, result.pes_cmb);

  const PhaseResult& producer = ac ? result.agg : result.cmb;
  const PhaseResult& consumer = ac ? result.cmb : result.agg;

  if (pp) {
    result.pipeline_chunks = chunks.num_chunks();
    result.cycles = compose_parallel_pipeline(producer.chunk_completion,
                                              consumer.chunk_cycles);
  } else {
    // Seq, SP-Generic and SP-Optimized all serialize the phases; the
    // SP-Optimized t_load credit is already reflected inside the consumer
    // (no loads for the RF-resident intermediate) and producer (no drains).
    // Saturating: phase cycles on adversarial dims can each approach 2^63.
    result.pipeline_chunks = chunked ? chunks.num_chunks() : 1;
    result.cycles = sat_add_u64(result.agg.cycles, result.cmb.cycles);
  }

  result.traffic = result.agg.traffic;
  result.traffic += result.cmb.traffic;
  const std::size_t partition_bytes =
      pp ? result.intermediate_buffer_elements * hw_.element_bytes : 0;
  result.energy = compute_energy(result.traffic, energy_, partition_bytes);
  return result;
}

RunResult Omega::run_pattern(const GnnWorkload& workload,
                             const LayerSpec& layer,
                             const DataflowPattern& pattern) const {
  const DataflowDescriptor df =
      bind_tiles(pattern, dims_of(workload, layer), hw_);
  RunResult r = run(workload, layer, df);
  r.config_name = pattern.name;
  return r;
}

}  // namespace omega
