#include "omega/omega.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "omega/pipeline.hpp"
#include "util/error.hpp"
#include "util/saturate.hpp"

namespace omega {

Omega::Omega(AcceleratorConfig hw, EnergyModel energy)
    : hw_(hw), energy_(energy) {
  hw_.validate();
}

std::uint64_t compose_parallel_pipeline(
    const std::vector<std::uint64_t>& producer_completion,
    const std::vector<std::uint64_t>& consumer_chunk_cycles) {
  // Allocation-free twin of compose_parallel_pipeline_timeline (floor 0):
  // this runs once per PP candidate in sweep hot loops. Keep the two
  // recurrences in lockstep.
  OMEGA_CHECK(producer_completion.size() == consumer_chunk_cycles.size(),
              "producer and consumer must agree on the chunk grid");
  OMEGA_CHECK(!producer_completion.empty(), "pipeline needs >= 1 chunk");
  std::uint64_t cons_done = 0;
  for (std::size_t i = 0; i < producer_completion.size(); ++i) {
    const std::uint64_t start = std::max(producer_completion[i], cons_done);
    cons_done = sat_add_u64(start, consumer_chunk_cycles[i]);
  }
  return cons_done;
}

std::vector<std::uint64_t> compose_parallel_pipeline_timeline(
    const std::vector<std::uint64_t>& producer_completion,
    const std::vector<std::uint64_t>& consumer_chunk_cycles,
    std::uint64_t consumer_start) {
  OMEGA_CHECK(producer_completion.size() == consumer_chunk_cycles.size(),
              "producer and consumer must agree on the chunk grid");
  OMEGA_CHECK(!producer_completion.empty(), "pipeline needs >= 1 chunk");
  std::vector<std::uint64_t> done(producer_completion.size());
  std::uint64_t cons_done = consumer_start;
  for (std::size_t i = 0; i < producer_completion.size(); ++i) {
    const std::uint64_t start = std::max(producer_completion[i], cons_done);
    cons_done = sat_add_u64(start, consumer_chunk_cycles[i]);
    done[i] = cons_done;
  }
  return done;
}

std::size_t scaled_bandwidth(std::size_t bw, std::size_t part,
                             std::size_t total) {
  if (bw == AcceleratorConfig::kUnbounded) return bw;
  const unsigned __int128 share = static_cast<unsigned __int128>(bw) * part /
                                  std::max<std::size_t>(total, 1);
  const std::size_t capped =
      share > std::numeric_limits<std::size_t>::max()
          ? std::numeric_limits<std::size_t>::max()
          : static_cast<std::size_t>(share);
  return std::max<std::size_t>(1, capped);
}

RunResult Omega::run(const GnnWorkload& workload, const LayerSpec& layer,
                     const DataflowDescriptor& df) const {
  return run_impl(workload, layer, df, nullptr);
}

RunResult Omega::run(const GnnWorkload& workload, const LayerSpec& layer,
                     const DataflowDescriptor& df,
                     const WorkloadContext& context) const {
  return run_impl(workload, layer, df, &context);
}

RunResult Omega::run_impl(const GnnWorkload& workload, const LayerSpec& layer,
                          const DataflowDescriptor& df,
                          const WorkloadContext* context) const {
  df.validate();
  const HardwareRequirements req = hardware_requirements(df);
  if (req.needs_spatial_reduction && !hw_.supports_spatial_reduction) {
    throw ResourceError(df.to_string() +
                        ": substrate has no spatial-reduction support "
                        "(adder tree / store-and-forward)");
  }
  if (req.needs_temporal_reduction && !hw_.supports_temporal_reduction) {
    throw ResourceError(df.to_string() +
                        ": substrate has no temporal-reduction support "
                        "(in-place accumulators)");
  }
  if (df.inter == InterPhase::kParallelPipeline) {
    // Bind-time fraction validation: descriptor validation rejects
    // out-of-range fractions, but a NaN passes both range comparisons and
    // used to reach llround() — undefined behavior that could hand a phase
    // a garbage PE count. Reject it the moment the descriptor binds to
    // hardware. (Outside PP the fraction stays documented-ignored; the
    // pattern binder, omega/tiler.cpp, guards its own PP split the same
    // way.)
    if (!(df.pp_agg_pe_fraction > 0.0 && df.pp_agg_pe_fraction < 1.0)) {
      throw ResourceError(
          df.to_string() +
          ": pp_agg_pe_fraction must lie strictly inside (0, 1); 0, 1 or "
          "NaN would starve a phase of PEs before the allocation clamp");
    }
    if (hw_.num_pes < 2) {
      // Splitting the array needs a PE on each side; clamp(x, 1, 0) in the
      // allocator would be UB on a single-PE substrate.
      throw ResourceError(df.to_string() +
                          ": parallel pipeline needs >= 2 PEs to split the "
                          "array between the phases");
    }
  }

  // Dims guard kept from the monolithic implementation: the pre-validated
  // core trusts the spec's widths, and a zero G would otherwise reach the
  // GEMM engine's tile math as a division by zero instead of a clean throw.
  const std::size_t f =
      layer.in_features > 0 ? layer.in_features : workload.in_features;
  OMEGA_CHECK(workload.num_vertices() >= 1 && f >= 1 && layer.out_features >= 1,
              "workload dims must be positive");

  // The two-phase GNN layer is a special case of the N-phase pipeline core
  // (omega/pipeline.hpp): lower the descriptor, evaluate, and view the
  // result through the legacy RunResult shape. Bit-identical to the
  // historic monolithic implementation (tests/pipeline_test.cpp).
  const PipelineSpec spec = two_phase_pipeline(df, layer, hw_.num_pes);
  PipelineResult pr =
      run_pipeline_impl(workload, spec, context, /*validated=*/true);
  return to_run_result(std::move(pr), df);
}

RunResult Omega::run_pattern(const GnnWorkload& workload,
                             const LayerSpec& layer,
                             const DataflowPattern& pattern) const {
  const DataflowDescriptor df =
      bind_tiles(pattern, dims_of(workload, layer), hw_);
  RunResult r = run(workload, layer, df);
  r.config_name = pattern.name;
  return r;
}

}  // namespace omega
