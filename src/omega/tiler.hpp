// Tile-size selection: binds a DataflowPattern (loop orders + s/t/x tags +
// a TileStyle) to a workload and an accelerator, producing a concrete
// DataflowDescriptor whose static utilization is as close to 100% of the
// phase's PEs as the pattern allows (Section V-A3: "tile sizes are chosen
// such that ... the static utilization is nearly 100% of the PEs").
#pragma once

#include "arch/accelerator.hpp"
#include "dataflow/patterns.hpp"
#include "graph/datasets.hpp"

namespace omega {

/// GNN layer shape: the workload supplies V/E/F, the layer supplies G.
/// `in_features` (0 = use the workload's width) lets multi-layer callers
/// evaluate layer l > 0 against the same GnnWorkload object without copying
/// it — which is what allows a shared WorkloadContext (keyed by pointer
/// identity to the adjacency) to serve every layer of a model search.
struct LayerSpec {
  std::size_t out_features = 16;  // GCN hidden width
  std::size_t in_features = 0;    // F override; 0 = workload.in_features
};

/// Dimensions the tiler works against.
struct WorkloadDims {
  std::size_t vertices = 0;
  std::size_t in_features = 0;   // F
  std::size_t out_features = 0;  // G
  double avg_degree = 0.0;
  std::size_t max_degree = 0;
};

[[nodiscard]] WorkloadDims dims_of(const GnnWorkload& w, const LayerSpec& layer);

/// Largest power of two <= x (x >= 1).
[[nodiscard]] std::size_t pow2_floor(std::size_t x);
/// Smallest power of two >= x (x >= 1).
[[nodiscard]] std::size_t pow2_ceil(std::size_t x);

/// Binds tile sizes for both phases. For PP the PE budget is split by
/// `pattern.pp_agg_pe_fraction`; SP-Optimized ties the shared dims across
/// phases. Throws InvalidDataflowError if the pattern cannot be satisfied.
[[nodiscard]] DataflowDescriptor bind_tiles(const DataflowPattern& pattern,
                                            const WorkloadDims& dims,
                                            const AcceleratorConfig& hw);

/// Static utilization of a bound phase: spatial tile footprint / phase PEs.
[[nodiscard]] double static_utilization(const IntraPhaseDataflow& phase,
                                        std::size_t phase_pes);

}  // namespace omega
