// Cross-layer pipelined model composition (DESIGN.md "Cross-layer
// pipelining").
//
// run_model and the model-level search historically composed layers as a
// plain cycle sum. But when consecutive layers both use the Parallel
// Pipeline inter-phase strategy, layer l+1's Aggregation can start
// consuming layer l's output rows while layer l's Combination is still
// draining its tail — the chunk-granular inter-layer overlap VersaGNN
// exploits across its systolic phases. The ModelComposer chains layer l's
// per-chunk output-row completion profile into layer l+1's first-phase
// start times, re-tiling between mismatched chunk grids and gating the
// overlap on global-buffer residency of the inter-layer intermediate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "omega/omega.hpp"

namespace omega {

/// How a multi-layer model's cycles compose.
enum class ModelCompose : std::uint8_t {
  /// Layers serialize: model cycles = (saturating) sum of layer cycles.
  kSequential = 0,
  /// Chunk-granular overlap across eligible layer boundaries; model cycles
  /// = the composed makespan, never larger than the sequential sum.
  kPipelined = 1,
};

[[nodiscard]] const char* to_string(ModelCompose c);
/// Inverse of to_string ("sequential" / "pipelined", case already lowered
/// by callers); throws InvalidArgumentError on anything else. The single
/// parser behind the CLI flags and the service protocol option.
[[nodiscard]] ModelCompose compose_from_string(const std::string& s);

/// One layer boundary's composition outcome.
struct BoundaryComposition {
  bool overlapped = false;   // layer l+1 started before layer l finished
  bool resident = false;     // inter-layer intermediate + partitions fit GB
  std::uint64_t saved_cycles = 0;  // sequential start - composed start
  std::string reason;        // why the boundary stayed sequential (or empty)
};

/// Composed model timeline. `cycles <= sequential_cycles` always holds; the
/// two coincide under kSequential or when no boundary is overlappable.
struct ModelComposition {
  ModelCompose compose = ModelCompose::kSequential;
  std::uint64_t cycles = 0;             // composed makespan (saturating)
  std::uint64_t sequential_cycles = 0;  // saturating sum of layer cycles
  std::size_t overlapped_boundaries = 0;
  std::vector<std::uint64_t> layer_start;   // absolute start per layer
  std::vector<std::uint64_t> layer_finish;  // absolute finish per layer
  std::vector<BoundaryComposition> boundaries;  // num_layers - 1 entries
};

/// The plain serialized timeline (prefix sums of layer cycles, saturating):
/// what ModelCompose::kSequential composes to, without paying the
/// ModelComposer's O(V) dependency-prefix scan.
[[nodiscard]] ModelComposition sequential_composition(
    const std::vector<RunResult>& layers);

/// Re-tiles a producer's per-row-block completion profile onto consumer
/// dependency rows: result[i] is the completion cycle of the producer row
/// block containing dep_rows[i], prefix-maxed over preceding blocks so the
/// ready function is monotone even when the producer's blocks complete out
/// of order (column-major revisits). `producer_row_block` is the producer
/// grid's row-block size over `rows` rows (0 / oversized both mean one
/// block); dep rows at or beyond `rows` clamp to the last block. This is
/// the mismatched-chunk-grid re-tiling rule: consecutive layers choosing
/// different c_f factors (hence different row blocks) meet here.
[[nodiscard]] std::vector<std::uint64_t> retile_row_completion(
    const std::vector<std::uint64_t>& producer_block_completion,
    std::size_t rows, std::size_t producer_row_block,
    const std::vector<std::size_t>& dep_rows);

/// Composes per-layer RunResults into a model timeline. Construct once per
/// (substrate, workload) and reuse across candidates — the constructor
/// precomputes the graph-dependency prefix (O(V)) that every boundary
/// analysis shares.
class ModelComposer {
 public:
  /// `adjacency` must be the workload's adjacency: Aggregation-first layers
  /// gather neighbor rows, so a consumer chunk's dependency row is the
  /// largest neighbor id over its rows (prefix-maxed; exact for the
  /// row-major traversals the feasibility analysis produces, conservative
  /// otherwise).
  ModelComposer(const AcceleratorConfig& hw, const CSRGraph& adjacency);

  /// `layers` are the per-layer results in model order, each evaluated on
  /// the composer's substrate and workload. Under kSequential the timeline
  /// is the plain prefix sum; under kPipelined each boundary is analyzed
  /// for chunk-granular overlap (see DESIGN.md for the eligibility rules).
  [[nodiscard]] ModelComposition compose(const std::vector<RunResult>& layers,
                                         ModelCompose mode) const;

 private:
  AcceleratorConfig hw_;
  /// dep_prefix_[v] = max over u <= v of max(u, largest neighbor of u):
  /// the highest producer row any Aggregation consuming rows [0, v] needs.
  std::vector<VertexId> dep_prefix_;
};

}  // namespace omega
