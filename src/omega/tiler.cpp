#include "omega/tiler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "graph/stats.hpp"
#include "util/error.hpp"

namespace omega {

WorkloadDims dims_of(const GnnWorkload& w, const LayerSpec& layer) {
  WorkloadDims d;
  d.vertices = w.num_vertices();
  d.in_features = layer.in_features > 0 ? layer.in_features : w.in_features;
  d.out_features = layer.out_features;
  d.avg_degree = w.adjacency.avg_degree();
  d.max_degree = w.adjacency.max_degree();
  return d;
}

std::size_t pow2_floor(std::size_t x) {
  return x == 0 ? 1 : std::bit_floor(x);
}

std::size_t pow2_ceil(std::size_t x) {
  return x == 0 ? 1 : std::bit_ceil(x);
}

double static_utilization(const IntraPhaseDataflow& phase,
                          std::size_t phase_pes) {
  if (phase_pes == 0) return 0.0;
  return static_cast<double>(phase.spatial_extent()) /
         static_cast<double>(phase_pes);
}

namespace {

/// Splits a multiplicative PE budget between two dimensions: dim A is grown
/// toward `a_target` first, B fills the rest, then A reclaims any leftover.
/// All quantities are powers of two; caps bound the useful tile size.
struct TwoWaySplit {
  std::size_t a = 1;
  std::size_t b = 1;
};

TwoWaySplit split_two(std::size_t budget, std::size_t a_cap, std::size_t b_cap,
                      std::size_t a_target) {
  TwoWaySplit s;
  s.a = std::min({pow2_floor(a_cap), pow2_floor(std::max<std::size_t>(a_target, 1)),
                  budget});
  s.b = std::min(pow2_floor(b_cap), budget / s.a);
  s.a = std::min(pow2_floor(a_cap), budget / s.b);
  return s;
}

std::size_t style_v_target(TileStyle style, std::size_t budget) {
  switch (style) {
    case TileStyle::kBalanced: return 32;
    case TileStyle::kSpatialN: return 16;
    case TileStyle::kHighF: return 1;
    case TileStyle::kHighV: return std::max<std::size_t>(budget / 4, 1);
    case TileStyle::kExtremeV: return budget;
    case TileStyle::kLowRows: return 8;
    case TileStyle::kHighRows: return 16;
  }
  return 16;
}

TileSizes bind_agg_tiles(const DataflowPattern& pattern,
                         const WorkloadDims& dims, std::size_t budget) {
  TileSizes t;
  // The Aggregation feature axis spans F for AC but only G for CA (the
  // intermediate handed over is V x G; Table II row 7 note).
  const std::size_t agg_feat = pattern.phase_order == PhaseOrder::kCA
                                   ? dims.out_features
                                   : dims.in_features;
  const bool spatial_n = pattern.agg.tag_of(Dim::kN) == MapTag::kSpatial;
  if (spatial_n) {
    // Neighbor lanes sized toward the average degree but capped at 8: the
    // ceil(deg/T_N) rounding wastes a growing share of lanes as T_N
    // approaches the mean degree, while dense rows still gain most of the
    // spatial-reduction benefit from the first few lanes.
    const auto deg = static_cast<std::size_t>(
        std::llround(std::clamp(dims.avg_degree, 2.0, 8.0)));
    t.n = std::clamp<std::size_t>(pow2_ceil(deg), 2,
                                  std::max<std::size_t>(budget / 2, 2));
    t.n = std::min(t.n, pow2_ceil(std::max<std::size_t>(dims.max_degree, 2)));
  }
  const std::size_t rem = std::max<std::size_t>(budget / t.n, 1);
  if (pattern.style == TileStyle::kHighF) {
    const auto s = split_two(rem, agg_feat, dims.vertices, agg_feat);
    t.f = s.a;
    t.v = s.b;
  } else {
    const auto s = split_two(rem, dims.vertices, agg_feat,
                             style_v_target(pattern.style, rem));
    t.v = s.a;
    t.f = s.b;
  }
  // Respect explicit temporal tags.
  if (pattern.agg.tag_of(Dim::kV) == MapTag::kTemporal) t.v = 1;
  if (pattern.agg.tag_of(Dim::kF) == MapTag::kTemporal) t.f = 1;
  if (pattern.agg.tag_of(Dim::kN) == MapTag::kTemporal) t.n = 1;
  return t;
}

TileSizes bind_cmb_tiles(const DataflowPattern& pattern,
                         const WorkloadDims& dims, std::size_t budget,
                         const TileSizes& agg_tiles) {
  TileSizes t;
  if (pattern.inter == InterPhase::kSPOptimized) {
    // Table II row 2: the intermediate tile is shared, so V/F tiles match
    // the Aggregation phase and G streams temporally over it.
    t.v = agg_tiles.v;
    t.f = agg_tiles.f;
    t.g = 1;
    return t;
  }
  const bool v_spatial_required = pattern.cmb.tag_of(Dim::kV) == MapTag::kSpatial;
  if (pattern.style == TileStyle::kHighRows || v_spatial_required) {
    // PP3/PP4: give V the budget first -> coarse pipeline rows.
    const std::size_t v_target = pattern.style == TileStyle::kHighRows
                                     ? budget
                                     : style_v_target(pattern.style, budget);
    const auto s = split_two(budget, dims.vertices, dims.out_features, v_target);
    t.v = s.a;
    t.g = s.b;
  } else {
    // VGF-style output-stationary: spatial G (bounded by the small hidden
    // width) and V.
    const auto s = split_two(budget, dims.out_features, dims.vertices,
                             std::min<std::size_t>(dims.out_features, 16));
    t.g = s.a;
    t.v = s.b;
  }
  // Leftover parallelism goes to F (spatially reduced partial products).
  const std::size_t used = t.v * t.g;
  if (used > 0 && pattern.cmb.tag_of(Dim::kF) != MapTag::kTemporal) {
    t.f = std::min(pow2_floor(dims.in_features),
                   std::max<std::size_t>(budget / used, 1));
  }
  if (pattern.cmb.tag_of(Dim::kV) == MapTag::kTemporal) t.v = 1;
  if (pattern.cmb.tag_of(Dim::kG) == MapTag::kTemporal) t.g = 1;
  if (pattern.cmb.tag_of(Dim::kF) == MapTag::kTemporal) t.f = 1;
  return t;
}

}  // namespace

DataflowDescriptor bind_tiles(const DataflowPattern& pattern,
                              const WorkloadDims& dims,
                              const AcceleratorConfig& hw) {
  OMEGA_CHECK(dims.vertices >= 1 && dims.in_features >= 1 &&
                  dims.out_features >= 1,
              "workload dims must be positive");
  hw.validate();

  std::size_t pes_agg = hw.num_pes;
  std::size_t pes_cmb = hw.num_pes;
  if (pattern.inter == InterPhase::kParallelPipeline) {
    // Bind-time validation (the pattern struct is plain data, so this is
    // the first place a bad fraction can be caught): 0 or 1 would starve a
    // phase of its tile budget below, and a NaN would reach llround —
    // undefined behavior.
    if (!(pattern.pp_agg_pe_fraction > 0.0 &&
          pattern.pp_agg_pe_fraction < 1.0)) {
      throw ResourceError(
          pattern.name + " (" + pattern.to_string() +
          "): pp_agg_pe_fraction must lie strictly inside (0, 1); 0, 1 or "
          "NaN would starve a phase of PEs before the allocation clamp");
    }
    if (hw.num_pes < 2) {
      throw ResourceError(pattern.name + " (" + pattern.to_string() +
                          "): parallel pipeline needs >= 2 PEs to split the "
                          "array between the phases");
    }
    pes_agg = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(hw.num_pes) * pattern.pp_agg_pe_fraction)));
    pes_agg = std::min(pes_agg, hw.num_pes - 1);
    pes_cmb = hw.num_pes - pes_agg;
  }

  DataflowDescriptor df;
  df.inter = pattern.inter;
  df.phase_order = pattern.phase_order;
  df.pp_agg_pe_fraction = pattern.pp_agg_pe_fraction;
  df.agg.phase = GnnPhase::kAggregation;
  df.agg.order = pattern.agg.order;
  df.cmb.phase = GnnPhase::kCombination;
  df.cmb.order = pattern.cmb.order;

  // Power-of-two budgets keep tile products exact.
  df.agg.tiles = bind_agg_tiles(pattern, dims, pow2_floor(pes_agg));
  df.cmb.tiles = bind_cmb_tiles(pattern, dims, pow2_floor(pes_cmb),
                                df.agg.tiles);
  df.validate();
  return df;
}

}  // namespace omega
