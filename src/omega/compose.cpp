#include "omega/compose.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/saturate.hpp"

namespace omega {

const char* to_string(ModelCompose c) {
  switch (c) {
    case ModelCompose::kSequential: return "sequential";
    case ModelCompose::kPipelined: return "pipelined";
  }
  return "?";
}

ModelCompose compose_from_string(const std::string& s) {
  if (s == "sequential") return ModelCompose::kSequential;
  if (s == "pipelined") return ModelCompose::kPipelined;
  throw InvalidArgumentError("unknown compose mode: " + s);
}

ModelComposition sequential_composition(const std::vector<RunResult>& layers) {
  OMEGA_CHECK(!layers.empty(), "model composition needs >= 1 layer");
  ModelComposition out;
  out.compose = ModelCompose::kSequential;
  out.layer_start.resize(layers.size(), 0);
  out.layer_finish.resize(layers.size(), 0);
  std::uint64_t clock = 0;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    out.layer_start[l] = clock;
    clock = sat_add_u64(clock, layers[l].cycles);
    out.layer_finish[l] = clock;
    if (l > 0) {
      BoundaryComposition b;
      b.reason = "sequential composition requested";
      out.boundaries.push_back(std::move(b));
    }
  }
  out.cycles = clock;
  out.sequential_cycles = clock;
  return out;
}

std::vector<std::uint64_t> retile_row_completion(
    const std::vector<std::uint64_t>& producer_block_completion,
    std::size_t rows, std::size_t producer_row_block,
    const std::vector<std::size_t>& dep_rows) {
  OMEGA_CHECK(!producer_block_completion.empty(),
              "producer profile needs >= 1 row block");
  std::vector<std::uint64_t> prefix = producer_block_completion;
  for (std::size_t i = 1; i < prefix.size(); ++i) {
    prefix[i] = std::max(prefix[i], prefix[i - 1]);
  }
  const std::size_t rb =
      std::min(producer_row_block == 0 ? std::max<std::size_t>(rows, 1)
                                       : producer_row_block,
               std::max<std::size_t>(rows, 1));
  std::vector<std::uint64_t> out;
  out.reserve(dep_rows.size());
  for (const std::size_t dep : dep_rows) {
    const std::size_t block = std::min(dep / rb, prefix.size() - 1);
    out.push_back(prefix[block]);
  }
  return out;
}

namespace {

/// Row block index of flattened chunk `i` under the grid's traversal major.
std::size_t row_block_of(const ChunkSpec& grid, std::size_t i) {
  return grid.major == TraversalMajor::kRowMajor ? i / grid.col_blocks()
                                                 : i % grid.row_blocks();
}

/// True when the phase's chunk completion is the prefix sum of its chunk
/// cycles — i.e. the phase visits each chunk once, in traversal order.
/// Revisiting producers (completion pinned to the last sweep) fail this and
/// degrade the boundary to phase-granular overlap.
bool monotone_timeline(const std::vector<std::uint64_t>& completion,
                       const std::vector<std::uint64_t>& cycles) {
  std::uint64_t prefix = 0;
  for (std::size_t i = 0; i < completion.size(); ++i) {
    prefix = sat_add_u64(prefix, cycles[i]);
    if (completion[i] != prefix) return false;
  }
  return true;
}

/// The phase producing the layer's intermediate (first to run) and the
/// phase consuming it (produces the layer's output).
const PhaseResult& first_phase(const RunResult& r) {
  return r.dataflow.phase_order == PhaseOrder::kAC ? r.agg : r.cmb;
}
const PhaseResult& second_phase(const RunResult& r) {
  return r.dataflow.phase_order == PhaseOrder::kAC ? r.cmb : r.agg;
}
std::size_t first_phase_pes(const RunResult& r) {
  return r.dataflow.phase_order == PhaseOrder::kAC ? r.pes_agg : r.pes_cmb;
}
std::size_t second_phase_pes(const RunResult& r) {
  return r.dataflow.phase_order == PhaseOrder::kAC ? r.pes_cmb : r.pes_agg;
}

/// Both phases report complete chunk timelines aligned with the grid.
bool usable_chunk_timelines(const RunResult& r) {
  const std::size_t chunks = r.chunk_grid.num_chunks();
  return chunks > 0 &&
         first_phase(r).chunk_completion.size() == chunks &&
         first_phase(r).chunk_cycles.size() == chunks &&
         second_phase(r).chunk_cycles.size() == chunks;
}

/// Absolute completion cycle of each *output* row block, from the layer's
/// absolute consumer-phase timeline: output rows r are done when the second
/// phase has consumed every chunk of intermediate row block r (the GEMM has
/// accumulated all F columns for AC; the Aggregation has folded all
/// neighbors for CA). `done_abs` empty means no chunk timeline — a single
/// block completing at `finish_abs`.
std::vector<std::uint64_t> output_row_profile(
    const RunResult& r, const std::vector<std::uint64_t>& done_abs,
    std::uint64_t finish_abs, std::size_t* row_block) {
  const ChunkSpec& grid = r.chunk_grid;
  *row_block = std::max<std::size_t>(grid.rows, 1);
  if (done_abs.empty()) return {finish_abs};
  std::vector<std::uint64_t> profile(grid.row_blocks(), 0);
  for (std::size_t i = 0; i < done_abs.size(); ++i) {
    std::uint64_t& slot = profile[row_block_of(grid, i)];
    slot = std::max(slot, done_abs[i]);
  }
  *row_block = std::min(std::max<std::size_t>(grid.row_block, 1),
                        std::max<std::size_t>(grid.rows, 1));
  return profile;
}

}  // namespace

ModelComposer::ModelComposer(const AcceleratorConfig& hw,
                             const CSRGraph& adjacency)
    : hw_(hw) {
  const std::size_t v = adjacency.num_vertices();
  dep_prefix_.resize(v);
  VertexId running = 0;
  for (std::size_t u = 0; u < v; ++u) {
    VertexId m = static_cast<VertexId>(u);
    const auto nbrs = adjacency.neighbors(static_cast<VertexId>(u));
    if (!nbrs.empty()) m = std::max(m, nbrs.back());  // rows are sorted
    running = std::max(running, m);
    dep_prefix_[u] = running;
  }
}

ModelComposition ModelComposer::compose(const std::vector<RunResult>& layers,
                                        ModelCompose mode) const {
  if (mode != ModelCompose::kPipelined) {
    return sequential_composition(layers);
  }
  OMEGA_CHECK(!layers.empty(), "model composition needs >= 1 layer");
  ModelComposition out;
  out.compose = mode;
  out.layer_start.resize(layers.size(), 0);
  out.layer_finish.resize(layers.size(), 0);
  for (const RunResult& r : layers) {
    out.sequential_cycles = sat_add_u64(out.sequential_cycles, r.cycles);
  }
  out.layer_finish[0] = layers[0].cycles;

  // Absolute consumer-phase completion per chunk of the layer processed
  // last — the producer profile the next boundary re-tiles. Carried forward
  // (rather than recomputed from the RunResult) so a layer whose second
  // phase was floored hands its *stretched* timeline downstream. Empty
  // means no chunk-granular timeline (non-PP layer / missing vectors).
  std::vector<std::uint64_t> prev_done_abs;
  if (layers[0].dataflow.inter == InterPhase::kParallelPipeline &&
      usable_chunk_timelines(layers[0])) {
    prev_done_abs = compose_parallel_pipeline_timeline(
        first_phase(layers[0]).chunk_completion,
        second_phase(layers[0]).chunk_cycles, 0);
  }

  for (std::size_t l = 1; l < layers.size(); ++l) {
    const RunResult& prev = layers[l - 1];
    const RunResult& cur = layers[l];
    const std::uint64_t prev_finish = out.layer_finish[l - 1];
    const std::uint64_t seq_finish = sat_add_u64(prev_finish, cur.cycles);
    BoundaryComposition b;
    std::uint64_t start = prev_finish;   // sequential fallback
    std::uint64_t finish = seq_finish;
    std::vector<std::uint64_t> cur_done_abs;  // replaces prev_done_abs below

    // GB residency of the inter-layer intermediate: overlapping the layers
    // keeps layer l-1's whole output live while both layers' ping-pong
    // partitions also occupy the buffer.
    const std::uint64_t inter_bytes = sat_mul_u64(
        sat_mul_u64(prev.num_rows, prev.out_features), hw_.element_bytes);
    const std::uint64_t partition_bytes = sat_mul_u64(
        sat_add_u64(prev.intermediate_buffer_elements,
                    cur.intermediate_buffer_elements),
        hw_.element_bytes);
    b.resident = sat_add_u64(inter_bytes, partition_bytes) <= hw_.gb_bytes;

    const bool both_pp =
        prev.dataflow.inter == InterPhase::kParallelPipeline &&
        cur.dataflow.inter == InterPhase::kParallelPipeline;
    // During the overlap window [start_l, prev_finish) the previous layer's
    // draining second phase and this layer's ramping first phase run
    // concurrently; their PP partitions must fit the array side by side.
    // This layer's *second* phase is floored at prev_finish (below), so it
    // never competes for PEs inside the window: at prev_finish the previous
    // layer's partition frees and the array holds exactly this layer's own
    // full split again.
    const bool pes_fit =
        second_phase_pes(prev) + first_phase_pes(cur) <= hw_.num_pes;

    const PhaseResult& head = first_phase(cur);
    const ChunkSpec& grid = cur.chunk_grid;
    const std::size_t chunks = grid.num_chunks();
    const bool ac = cur.dataflow.phase_order == PhaseOrder::kAC;
    // Scatter-order Aggregation reads arbitrary input rows from its first
    // step; only gather orders (V outside N) have the row-prefix
    // dependency structure chunk-granular overlap relies on.
    const bool scatter = ac && cur.dataflow.agg.order.depth_of(Dim::kV) >
                                   cur.dataflow.agg.order.depth_of(Dim::kN);
    const bool chunked = usable_chunk_timelines(cur) &&
                         grid.rows == dep_prefix_.size() &&
                         monotone_timeline(head.chunk_completion,
                                           head.chunk_cycles);

    if (!both_pp) {
      b.reason = "both boundary layers must be parallel-pipelined";
    } else if (!pes_fit) {
      b.reason = "boundary phases exceed the PE array side by side";
    } else if (!b.resident) {
      b.reason = "inter-layer intermediate does not fit the global buffer";
    } else if (prev.intermediate_spilled || cur.intermediate_spilled) {
      b.reason = "a boundary layer spills its intermediate to DRAM";
    } else if (!chunked || scatter) {
      b.reason = scatter
                     ? "scatter-order consumer reads arbitrary rows up front"
                     : "consumer has no monotone chunk timeline to overlap";
    } else {
      // Producer: when does each output row block of layer l-1 land
      // (absolute cycles, carried forward so a stretched producer timeline
      // is seen as stretched)?
      std::size_t prod_row_block = 0;
      const std::vector<std::uint64_t> profile = output_row_profile(
          prev, prev_done_abs, prev_finish, &prod_row_block);

      // Consumer: which producer row does each first-phase chunk need?
      std::vector<std::size_t> dep_rows;
      dep_rows.reserve(chunks);
      const std::size_t rb =
          std::min(std::max<std::size_t>(grid.row_block, 1), grid.rows);
      for (std::size_t i = 0; i < chunks; ++i) {
        const std::size_t rblk = row_block_of(grid, i);
        const std::size_t last_row = std::min((rblk + 1) * rb, grid.rows) - 1;
        dep_rows.push_back(ac ? dep_prefix_[last_row] : last_row);
      }
      const std::vector<std::uint64_t> ready = retile_row_completion(
          profile, prev.num_rows, prod_row_block, dep_rows);

      // Floor on the head phase's start: (a) layer l-1's first phase has
      // released its array partition, (b) layer l-2 has fully finished —
      // at most two layers are ever in flight, which is what makes the
      // pairwise PE and residency gates above sufficient for arbitrarily
      // long overlap chains (without it, a short middle layer would let
      // l's first phase run concurrently with l-2's unchecked drain).
      std::uint64_t floor =
          sat_add_u64(out.layer_start[l - 1], first_phase(prev).cycles);
      if (l >= 2) floor = std::max(floor, out.layer_finish[l - 2]);

      // Elastic re-simulation: instead of shifting the whole layer by the
      // worst chunk's slack (a rigid shift lets one late dependency erase
      // the overlap every earlier chunk had), re-run the head phase with
      // each chunk floored at its own dependency's landing time. Chunks
      // whose rows landed early run back-to-back; a late row stalls only
      // the chunks behind it. The head's own timeline is back-to-back
      // (the monotone gate above), so chunk_cycles fully describe it.
      const std::vector<std::uint64_t> head_done_abs =
          compose_parallel_pipeline_timeline(ready, head.chunk_cycles, floor);
      // The second phase cannot issue before prev_finish (its partition is
      // still held by the draining layer): re-run the intra-layer
      // recurrence with that floor. The boundary overlaps only when the
      // early head start more than pays for the stretch.
      const std::vector<std::uint64_t> done_abs =
          compose_parallel_pipeline_timeline(
              head_done_abs, second_phase(cur).chunk_cycles, prev_finish);
      const std::uint64_t overlapped_finish = done_abs.back();
      if (overlapped_finish < seq_finish) {
        b.overlapped = true;
        b.saved_cycles = seq_finish - overlapped_finish;
        ++out.overlapped_boundaries;
        // First head chunk issues at max(its dependency, the floor); cap at
        // prev_finish to keep layer starts monotone in degenerate cases.
        start = std::min(std::max(ready.front(), floor), prev_finish);
        finish = overlapped_finish;
        cur_done_abs = done_abs;
      } else {
        b.reason = "dependencies leave no overlap window";
      }
    }

    if (!b.overlapped && cur.dataflow.inter == InterPhase::kParallelPipeline &&
        usable_chunk_timelines(cur)) {
      // Sequentially-placed layer: its unstretched timeline, offset to its
      // start, still serves as the next boundary's producer profile.
      const std::vector<std::uint64_t> done_rel =
          compose_parallel_pipeline_timeline(first_phase(cur).chunk_completion,
                                             second_phase(cur).chunk_cycles,
                                             0);
      cur_done_abs.reserve(done_rel.size());
      for (const std::uint64_t d : done_rel) {
        cur_done_abs.push_back(sat_add_u64(start, d));
      }
    }

    out.boundaries.push_back(std::move(b));
    out.layer_start[l] = start;
    out.layer_finish[l] = finish;
    prev_done_abs = std::move(cur_done_abs);
  }

  out.cycles = out.layer_finish.back();
  return out;
}

}  // namespace omega
