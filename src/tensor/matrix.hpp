// Dense row-major matrix used for feature/weight/intermediate matrices and
// for the functional verification path of the simulated dataflows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace omega {

/// Row-major dense matrix with value semantics. Kept deliberately simple —
/// the simulator needs shape bookkeeping and element access, not BLAS.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws InvalidArgumentError on out-of-range.
  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    OMEGA_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return (*this)(r, c);
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    OMEGA_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return (*this)(r, c);
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] T* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  [[nodiscard]] const T* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Fills with uniform values in [lo, hi) from a deterministic RNG.
  void fill_uniform(Rng& rng, double lo = -1.0, double hi = 1.0) {
    for (auto& v : data_) v = static_cast<T>(rng.uniform(lo, hi));
  }

  [[nodiscard]] Matrix<T> transposed() const {
    Matrix<T> out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
  }

  [[nodiscard]] bool operator==(const Matrix<T>& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;

/// Largest absolute elementwise difference; shapes must match.
template <typename T>
[[nodiscard]] double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  OMEGA_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double d = std::abs(static_cast<double>(a(r, c)) -
                                static_cast<double>(b(r, c)));
      if (d > worst) worst = d;
    }
  }
  return worst;
}

/// True if all elements differ by at most `tol` (absolute) or `rtol` relative
/// to the larger magnitude — accommodates reduction-order differences between
/// the simulated dataflow and the reference kernel.
template <typename T>
[[nodiscard]] bool approx_equal(const Matrix<T>& a, const Matrix<T>& b,
                                double tol = 1e-4, double rtol = 1e-4) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double x = static_cast<double>(a(r, c));
      const double y = static_cast<double>(b(r, c));
      const double d = std::abs(x - y);
      const double scale = std::max(std::abs(x), std::abs(y));
      if (d > tol && d > rtol * scale) return false;
    }
  }
  return true;
}

}  // namespace omega
