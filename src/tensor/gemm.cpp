#include "tensor/gemm.hpp"

namespace omega {

void gemm_reference(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  OMEGA_CHECK(a.cols() == b.rows(), "gemm inner dimension mismatch");
  c = MatrixF(a.rows(), b.cols(), 0.0f);
  gemm_accumulate_reference(a, b, c);
}

void gemm_accumulate_reference(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  OMEGA_CHECK(a.cols() == b.rows(), "gemm inner dimension mismatch");
  OMEGA_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
              "gemm output shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  // i-k-j order streams B rows; good enough for verification-sized inputs.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a(i, kk);
      // omega-lint: allow(float-eq): sparsity skip on exact stored zeros
      if (aik == 0.0f) continue;
      const float* brow = b.row(kk);
      float* crow = c.row(i);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

MatrixF gemm(const MatrixF& a, const MatrixF& b) {
  MatrixF c;
  gemm_reference(a, b, c);
  return c;
}

}  // namespace omega
