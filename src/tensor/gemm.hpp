// Reference dense kernels. These define "ground truth" for the functional
// verification of simulated dataflows: whatever loop order / tiling a
// dataflow uses, its computed output must match these (within FP tolerance).
#pragma once

#include "tensor/matrix.hpp"

namespace omega {

/// C = A(BxK) * B(KxN). Shapes validated; C is resized.
void gemm_reference(const MatrixF& a, const MatrixF& b, MatrixF& c);

/// C += A * B with C already shaped (rows(a) x cols(b)).
void gemm_accumulate_reference(const MatrixF& a, const MatrixF& b, MatrixF& c);

/// Convenience value-returning form.
[[nodiscard]] MatrixF gemm(const MatrixF& a, const MatrixF& b);

}  // namespace omega
