// Reference SpMM: H = A * X with A in CSR. Ground truth for the Aggregation
// phase of the simulated dataflows.
#pragma once

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace omega {

/// H(v, f) = sum over neighbors n of value(v,n) * X(n, f).
/// Unweighted graphs use value 1 (sum aggregation).
void spmm_reference(const CSRGraph& a, const MatrixF& x, MatrixF& h);

[[nodiscard]] MatrixF spmm(const CSRGraph& a, const MatrixF& x);

}  // namespace omega
