#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace omega {

double percentile(std::vector<std::size_t> values, double p) {
  OMEGA_CHECK(!values.empty(), "percentile of empty set");
  OMEGA_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return static_cast<double>(values[lo]) +
         frac * (static_cast<double>(values[hi]) - static_cast<double>(values[lo]));
}

DegreeStats compute_degree_stats(const CSRGraph& g) {
  DegreeStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;

  std::vector<std::size_t> degrees(s.num_vertices);
  for (std::size_t v = 0; v < s.num_vertices; ++v) {
    degrees[v] = g.degree(static_cast<VertexId>(v));
  }
  s.min_degree = *std::min_element(degrees.begin(), degrees.end());
  s.max_degree = *std::max_element(degrees.begin(), degrees.end());
  s.mean_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  s.median_degree = percentile(degrees, 50.0);
  s.p99_degree = percentile(degrees, 99.0);

  double var = 0.0;
  for (const std::size_t d : degrees) {
    const double diff = static_cast<double>(d) - s.mean_degree;
    var += diff * diff;
  }
  var /= static_cast<double>(s.num_vertices);
  s.stddev_degree = std::sqrt(var);
  s.skew_ratio = s.mean_degree > 0.0
                     ? static_cast<double>(s.max_degree) / s.mean_degree
                     : 0.0;
  s.density = g.density();
  return s;
}

}  // namespace omega
