#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

#include "obs/quantile.hpp"

namespace omega {

double percentile(std::vector<std::size_t> values, double p) {
  // Delegates to the shared exact-quantile helper (obs/quantile.hpp) — one
  // percentile definition for graph stats, metrics histograms, and the
  // bench harness.
  std::vector<double> v(values.begin(), values.end());
  return obs::percentile(std::move(v), p);
}

DegreeStats compute_degree_stats(const CSRGraph& g) {
  DegreeStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;

  std::vector<std::size_t> degrees(s.num_vertices);
  for (std::size_t v = 0; v < s.num_vertices; ++v) {
    degrees[v] = g.degree(static_cast<VertexId>(v));
  }
  s.min_degree = *std::min_element(degrees.begin(), degrees.end());
  s.max_degree = *std::max_element(degrees.begin(), degrees.end());
  s.mean_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  s.median_degree = percentile(degrees, 50.0);
  s.p99_degree = percentile(degrees, 99.0);

  double var = 0.0;
  for (const std::size_t d : degrees) {
    const double diff = static_cast<double>(d) - s.mean_degree;
    var += diff * diff;
  }
  var /= static_cast<double>(s.num_vertices);
  s.stddev_degree = std::sqrt(var);
  s.skew_ratio = s.mean_degree > 0.0
                     ? static_cast<double>(s.max_degree) / s.mean_degree
                     : 0.0;
  s.density = g.density();
  return s;
}

}  // namespace omega
