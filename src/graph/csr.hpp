// Compressed Sparse Row graph representation (Fig. 3 of the paper).
//
// The adjacency matrix A drives the Aggregation phase: `vertex_array` (row
// pointers) and `edge_array` (neighbor ids) follow the paper's naming. An
// optional per-edge value array carries normalized adjacency weights (GCN's
// D^-1/2 (A+I) D^-1/2 or GraphSAGE's mean normalization); when absent the
// edge weight is 1, matching plain sum-aggregation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "tensor/matrix.hpp"

namespace omega {

using VertexId = std::uint32_t;

/// Immutable-after-build CSR adjacency structure.
class CSRGraph {
 public:
  CSRGraph() = default;
  // The cached transpose never survives a copy (normalization helpers copy
  // then rewrite edge values, which would leave a copied cache stale); moves
  // carry it along since the source relinquishes the arrays.
  CSRGraph(const CSRGraph& other);
  CSRGraph& operator=(const CSRGraph& other);
  CSRGraph(CSRGraph&& other) noexcept;
  CSRGraph& operator=(CSRGraph&& other) noexcept;

  /// Builds from an edge list of (dst, src) pairs: row v of A lists the
  /// neighbors whose features vertex v aggregates. Neighbors are sorted and
  /// (optionally) deduplicated per row.
  static CSRGraph from_coo(std::size_t num_vertices,
                           std::vector<std::pair<VertexId, VertexId>> edges,
                           bool dedup = true);

  /// Builds directly from per-row adjacency lists (already grouped).
  static CSRGraph from_rows(std::vector<std::vector<VertexId>> rows);

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return vertex_array_.empty() ? 0 : vertex_array_.size() - 1;
  }
  /// Number of stored edges == nnz of the adjacency matrix.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edge_array_.size();
  }

  [[nodiscard]] std::size_t degree(VertexId v) const {
    return static_cast<std::size_t>(vertex_array_[v + 1] - vertex_array_[v]);
  }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {edge_array_.data() + vertex_array_[v],
            edge_array_.data() + vertex_array_[v + 1]};
  }

  /// Edge values aligned with edge_array(); empty span if unweighted.
  [[nodiscard]] std::span<const float> edge_values(VertexId v) const {
    if (values_.empty()) return {};
    return {values_.data() + vertex_array_[v],
            values_.data() + vertex_array_[v + 1]};
  }

  [[nodiscard]] const std::vector<std::uint64_t>& vertex_array() const noexcept {
    return vertex_array_;
  }
  [[nodiscard]] const std::vector<VertexId>& edge_array() const noexcept {
    return edge_array_;
  }
  [[nodiscard]] bool has_values() const noexcept { return !values_.empty(); }
  [[nodiscard]] const std::vector<float>& values() const noexcept {
    return values_;
  }

  [[nodiscard]] std::size_t max_degree() const;
  [[nodiscard]] double avg_degree() const;
  /// nnz / (V*V); the paper reports >99% sparsity i.e. density < 1%.
  [[nodiscard]] double density() const;

  /// Returns a copy with self-loop edges (v,v) added where missing.
  [[nodiscard]] CSRGraph with_self_loops() const;

  /// Returns a copy carrying GCN symmetric normalization values
  /// value(u,v) = 1/sqrt(deg(u)*deg(v)) (degrees counted on this graph).
  [[nodiscard]] CSRGraph gcn_normalized() const;

  /// Returns a copy carrying mean-aggregator values value(v,·) = 1/deg(v).
  [[nodiscard]] CSRGraph mean_normalized() const;

  /// Dense adjacency for verification-sized graphs.
  [[nodiscard]] MatrixF to_dense() const;

  /// Transposed adjacency (edge values follow their edges). Scatter-style
  /// aggregation orders (N outside V, Table II rows 7-9) iterate the
  /// reverse adjacency, which is the transpose's forward adjacency.
  [[nodiscard]] CSRGraph transposed() const;

  /// Like transposed(), but computed at most once per graph and shared:
  /// repeated calls return the same immutable instance, so the thousands of
  /// scatter-order candidates of a design-space sweep pay the O(E) transpose
  /// a single time. Thread-safe (concurrent first calls may race to build;
  /// one result wins and the rest are discarded). Invalidated by
  /// set_values(), since edge values follow their edges into the transpose.
  [[nodiscard]] std::shared_ptr<const CSRGraph> shared_transposed() const;

  /// Attaches per-edge values (aligned with edge_array order); size must be
  /// exactly nnz. Pass an empty vector to drop values.
  void set_values(std::vector<float> values);

  /// Structural invariants (monotone row pointers, ids in range, sorted
  /// rows); throws InvalidArgumentError on violation.
  void validate() const;

 private:
  std::vector<std::uint64_t> vertex_array_;  // size V+1
  std::vector<VertexId> edge_array_;         // size nnz
  std::vector<float> values_;                // empty, or size nnz
  /// Lazily built by shared_transposed(); null until first use.
  mutable std::atomic<std::shared_ptr<const CSRGraph>> transpose_cache_{};
};

/// Concatenates graphs into one block-diagonal adjacency — the paper batches
/// 64 graph-classification graphs (32 for Reddit-bin) into a single matrix.
[[nodiscard]] CSRGraph block_diagonal(const std::vector<CSRGraph>& graphs);

}  // namespace omega
