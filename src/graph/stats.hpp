// Degree-distribution statistics used to characterize workloads (Table IV
// categories) and to verify that synthetic datasets reproduce the skew the
// paper's results depend on.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"

namespace omega {

struct DegreeStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  double median_degree = 0.0;
  double p99_degree = 0.0;
  double stddev_degree = 0.0;
  /// max/mean — the "evil row" indicator: > ~20 means a spatial-V dataflow
  /// with very high T_V will be bound by a few dense rows.
  double skew_ratio = 0.0;
  double density = 0.0;
};

[[nodiscard]] DegreeStats compute_degree_stats(const CSRGraph& g);

/// Percentile over an unsorted copy (nearest-rank); p in [0, 100].
[[nodiscard]] double percentile(std::vector<std::size_t> values, double p);

}  // namespace omega
