#include "graph/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace omega {

CSRGraph::CSRGraph(const CSRGraph& other)
    : vertex_array_(other.vertex_array_),
      edge_array_(other.edge_array_),
      values_(other.values_) {}

CSRGraph& CSRGraph::operator=(const CSRGraph& other) {
  if (this != &other) {
    vertex_array_ = other.vertex_array_;
    edge_array_ = other.edge_array_;
    values_ = other.values_;
    transpose_cache_.store(nullptr, std::memory_order_release);
  }
  return *this;
}

CSRGraph::CSRGraph(CSRGraph&& other) noexcept
    : vertex_array_(std::move(other.vertex_array_)),
      edge_array_(std::move(other.edge_array_)),
      values_(std::move(other.values_)) {
  transpose_cache_.store(other.transpose_cache_.exchange(nullptr),
                         std::memory_order_release);
}

CSRGraph& CSRGraph::operator=(CSRGraph&& other) noexcept {
  if (this != &other) {
    vertex_array_ = std::move(other.vertex_array_);
    edge_array_ = std::move(other.edge_array_);
    values_ = std::move(other.values_);
    transpose_cache_.store(other.transpose_cache_.exchange(nullptr),
                           std::memory_order_release);
  }
  return *this;
}

CSRGraph CSRGraph::from_coo(std::size_t num_vertices,
                            std::vector<std::pair<VertexId, VertexId>> edges,
                            bool dedup) {
  for (const auto& [dst, src] : edges) {
    OMEGA_CHECK(dst < num_vertices && src < num_vertices,
                "edge endpoint out of range");
  }
  std::sort(edges.begin(), edges.end());
  if (dedup) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  CSRGraph g;
  g.vertex_array_.assign(num_vertices + 1, 0);
  g.edge_array_.reserve(edges.size());
  for (const auto& [dst, src] : edges) {
    g.vertex_array_[dst + 1]++;
    g.edge_array_.push_back(src);
  }
  std::partial_sum(g.vertex_array_.begin(), g.vertex_array_.end(),
                   g.vertex_array_.begin());
  return g;
}

CSRGraph CSRGraph::from_rows(std::vector<std::vector<VertexId>> rows) {
  CSRGraph g;
  g.vertex_array_.assign(rows.size() + 1, 0);
  std::size_t nnz = 0;
  for (const auto& r : rows) nnz += r.size();
  g.edge_array_.reserve(nnz);
  for (std::size_t v = 0; v < rows.size(); ++v) {
    auto& r = rows[v];
    std::sort(r.begin(), r.end());
    for (const VertexId n : r) {
      OMEGA_CHECK(n < rows.size(), "neighbor id out of range");
      g.edge_array_.push_back(n);
    }
    g.vertex_array_[v + 1] = g.vertex_array_[v] + r.size();
  }
  return g;
}

std::size_t CSRGraph::max_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    best = std::max(best, degree(static_cast<VertexId>(v)));
  }
  return best;
}

double CSRGraph::avg_degree() const {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(num_vertices());
}

double CSRGraph::density() const {
  const double v = static_cast<double>(num_vertices());
  // omega-lint: allow(float-eq): v is an integer cast; exact zero guards the division
  if (v == 0.0) return 0.0;
  return static_cast<double>(num_edges()) / (v * v);
}

CSRGraph CSRGraph::with_self_loops() const {
  std::vector<std::vector<VertexId>> rows(num_vertices());
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    const auto nbrs = neighbors(static_cast<VertexId>(v));
    rows[v].assign(nbrs.begin(), nbrs.end());
    if (!std::binary_search(rows[v].begin(), rows[v].end(),
                            static_cast<VertexId>(v))) {
      rows[v].push_back(static_cast<VertexId>(v));
    }
  }
  return from_rows(std::move(rows));
}

CSRGraph CSRGraph::gcn_normalized() const {
  CSRGraph g = *this;
  g.values_.resize(g.edge_array_.size());
  auto deg = [&](VertexId v) {
    return std::max<std::size_t>(1, degree(v));
  };
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    const auto vid = static_cast<VertexId>(v);
    const double dv = static_cast<double>(deg(vid));
    for (std::uint64_t e = vertex_array_[v]; e < vertex_array_[v + 1]; ++e) {
      const double du = static_cast<double>(deg(edge_array_[e]));
      g.values_[e] = static_cast<float>(1.0 / std::sqrt(dv * du));
    }
  }
  return g;
}

CSRGraph CSRGraph::mean_normalized() const {
  CSRGraph g = *this;
  g.values_.resize(g.edge_array_.size());
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    const double dv =
        static_cast<double>(std::max<std::size_t>(1, degree(static_cast<VertexId>(v))));
    for (std::uint64_t e = vertex_array_[v]; e < vertex_array_[v + 1]; ++e) {
      g.values_[e] = static_cast<float>(1.0 / dv);
    }
  }
  return g;
}

MatrixF CSRGraph::to_dense() const {
  MatrixF a(num_vertices(), num_vertices(), 0.0f);
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    const auto vid = static_cast<VertexId>(v);
    const auto nbrs = neighbors(vid);
    const auto vals = edge_values(vid);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      a(v, nbrs[i]) = vals.empty() ? 1.0f : vals[i];
    }
  }
  return a;
}

CSRGraph CSRGraph::transposed() const {
  const std::size_t v_count = num_vertices();
  CSRGraph t;
  t.vertex_array_.assign(v_count + 1, 0);
  for (const VertexId n : edge_array_) t.vertex_array_[n + 1]++;
  std::partial_sum(t.vertex_array_.begin(), t.vertex_array_.end(),
                   t.vertex_array_.begin());
  t.edge_array_.resize(edge_array_.size());
  if (!values_.empty()) t.values_.resize(values_.size());
  std::vector<std::uint64_t> cursor(t.vertex_array_.begin(),
                                    t.vertex_array_.end() - 1);
  for (std::size_t v = 0; v < v_count; ++v) {
    for (std::uint64_t e = vertex_array_[v]; e < vertex_array_[v + 1]; ++e) {
      const VertexId n = edge_array_[e];
      const std::uint64_t slot = cursor[n]++;
      t.edge_array_[slot] = static_cast<VertexId>(v);
      if (!values_.empty()) t.values_[slot] = values_[e];
    }
  }
  return t;
}

std::shared_ptr<const CSRGraph> CSRGraph::shared_transposed() const {
  auto cached = transpose_cache_.load(std::memory_order_acquire);
  if (cached) return cached;
  auto fresh = std::make_shared<const CSRGraph>(transposed());
  std::shared_ptr<const CSRGraph> expected;
  if (transpose_cache_.compare_exchange_strong(expected, fresh,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
    return fresh;
  }
  return expected;  // another thread won the race; use its result
}

void CSRGraph::set_values(std::vector<float> values) {
  OMEGA_CHECK(values.empty() || values.size() == edge_array_.size(),
              "edge values must align with edge array");
  values_ = std::move(values);
  transpose_cache_.store(nullptr, std::memory_order_release);
}

void CSRGraph::validate() const {
  OMEGA_CHECK(!vertex_array_.empty(), "vertex array must have V+1 entries");
  OMEGA_CHECK(vertex_array_.front() == 0, "row pointers must start at 0");
  OMEGA_CHECK(vertex_array_.back() == edge_array_.size(),
              "row pointers must end at nnz");
  for (std::size_t v = 0; v + 1 < vertex_array_.size(); ++v) {
    OMEGA_CHECK(vertex_array_[v] <= vertex_array_[v + 1],
                "row pointers must be monotone");
    for (std::uint64_t e = vertex_array_[v] + 1; e < vertex_array_[v + 1]; ++e) {
      OMEGA_CHECK(edge_array_[e - 1] <= edge_array_[e],
                  "neighbors must be sorted within a row");
    }
  }
  for (const VertexId n : edge_array_) {
    OMEGA_CHECK(n < num_vertices(), "neighbor id out of range");
  }
  if (!values_.empty()) {
    OMEGA_CHECK(values_.size() == edge_array_.size(),
                "edge values must align with edge array");
  }
}

CSRGraph block_diagonal(const std::vector<CSRGraph>& graphs) {
  std::size_t total_v = 0;
  for (const auto& g : graphs) total_v += g.num_vertices();
  std::vector<std::vector<VertexId>> rows;
  rows.reserve(total_v);
  std::vector<float> values;
  bool any_values = false;
  for (const auto& g : graphs) any_values = any_values || g.has_values();

  VertexId offset = 0;
  for (const auto& g : graphs) {
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      const auto vid = static_cast<VertexId>(v);
      const auto nbrs = g.neighbors(vid);
      std::vector<VertexId> row;
      row.reserve(nbrs.size());
      for (const VertexId n : nbrs) row.push_back(n + offset);
      rows.push_back(std::move(row));
      if (any_values) {
        const auto vals = g.edge_values(vid);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          values.push_back(vals.empty() ? 1.0f : vals[i]);
        }
      }
    }
    offset += static_cast<VertexId>(g.num_vertices());
  }
  // Rows are built with already-sorted neighbor ids (offsets preserve order),
  // so from_rows' per-row sort is a no-op and value alignment is kept.
  CSRGraph out = CSRGraph::from_rows(std::move(rows));
  if (any_values) out.set_values(std::move(values));
  return out;
}

}  // namespace omega
