#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace omega {

const char* to_string(WorkloadCategory c) {
  switch (c) {
    case WorkloadCategory::kHighEdges: return "HE";
    case WorkloadCategory::kHighFeatures: return "HF";
    case WorkloadCategory::kLowEdgesFeatures: return "LEF";
  }
  return "?";
}

const std::vector<DatasetSpec>& table4_datasets() {
  // Numbers transcribed from Table IV. '*' features in the paper mean
  // indicator vectors were used; for the dataflow study only the width
  // matters. degree_sigma calibrates the lognormal tail of citation
  // networks so max-degree/mean-degree lands in the 30-60x range observed
  // in Citeseer/Cora (drives the "evil row" behaviour of SPhighV).
  static const std::vector<DatasetSpec> specs = {
      {"Mutag", 188, 17.93, 19.79, 28, WorkloadCategory::kLowEdgesFeatures,
       64, false, 0.0},
      {"Proteins", 1113, 39.06, 72.82, 29, WorkloadCategory::kLowEdgesFeatures,
       64, false, 0.0},
      {"Imdb-bin", 1000, 19.77, 96.53, 136, WorkloadCategory::kHighEdges, 64,
       false, 0.0},
      {"Collab", 5000, 74.49, 2457.78, 492, WorkloadCategory::kHighEdges, 64,
       false, 0.0},
      {"Reddit-bin", 2000, 429.63, 497.75, 3782,
       WorkloadCategory::kHighFeatures, 32, false, 0.0},
      {"Citeseer", 1, 3327.0, 9464.0, 3703, WorkloadCategory::kHighFeatures,
       1, true, 1.5},
      {"Cora", 1, 2708.0, 10858.0, 1433, WorkloadCategory::kHighFeatures, 1,
       true, 1.5},
  };
  return specs;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  const std::string needle = to_lower(name);
  for (const auto& spec : table4_datasets()) {
    if (to_lower(spec.name) == needle) return spec;
  }
  throw InvalidArgumentError("unknown dataset: " + name);
}

std::size_t clamp_edges(std::size_t vertices, std::size_t edges) {
  // vertices * (vertices - 1) wraps to SIZE_MAX for vertices == 0, turning
  // the cap into "unlimited"; 0- and 1-vertex graphs admit no edges.
  if (vertices < 2) return 0;
  const std::size_t cap = vertices * (vertices - 1);
  return std::min(edges, cap);
}

namespace {

CSRGraph synthesize_one_graph(const DatasetSpec& spec, double scale, Rng& rng) {
  if (spec.node_classification) {
    const auto v = static_cast<std::size_t>(
        std::max(2.0, std::round(spec.avg_nodes * scale)));
    const auto e = clamp_edges(
        v, static_cast<std::size_t>(std::round(spec.avg_edges * scale)));
    return lognormal_chung_lu(v, e, spec.degree_sigma, rng);
  }
  // Graph-classification members: sizes jitter around the Table IV averages
  // (sigma 15%) so the batch has realistic variety.
  const double nodes =
      std::max(2.0, rng.normal(spec.avg_nodes, 0.15 * spec.avg_nodes));
  const double ratio = spec.avg_edges / spec.avg_nodes;
  const auto v = static_cast<std::size_t>(
      std::max(2.0, std::round(nodes * scale)));
  const auto e = clamp_edges(
      v, static_cast<std::size_t>(std::max(
             1.0, std::round(nodes * ratio * scale))));
  return erdos_renyi(v, std::max<std::size_t>(e, 2), rng);
}

}  // namespace

GnnWorkload synthesize_workload(const DatasetSpec& spec,
                                const SynthesisOptions& options) {
  OMEGA_CHECK(options.scale > 0.0, "scale must be positive");
  Rng rng(options.seed ^ std::hash<std::string>{}(spec.name));

  std::vector<CSRGraph> members;
  const std::size_t batch =
      spec.node_classification
          ? 1
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::round(static_cast<double>(spec.batch_size))));
  members.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    members.push_back(synthesize_one_graph(spec, options.scale, rng));
  }

  CSRGraph adj = batch == 1 ? std::move(members.front())
                            : block_diagonal(members);
  if (options.add_self_loops) adj = adj.with_self_loops();
  if (options.gcn_normalize) adj = adj.gcn_normalized();
  adj.validate();

  GnnWorkload w;
  w.name = spec.name;
  w.category = spec.category;
  w.adjacency = std::move(adj);
  w.in_features = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::round(static_cast<double>(spec.num_features) * options.scale)));
  w.num_graphs_in_batch = batch;
  return w;
}

std::vector<GnnWorkload> synthesize_all_workloads(
    const SynthesisOptions& options) {
  std::vector<GnnWorkload> out;
  out.reserve(table4_datasets().size());
  for (const auto& spec : table4_datasets()) {
    out.push_back(synthesize_workload(spec, options));
  }
  return out;
}

}  // namespace omega
