#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace omega {

const char* to_string(WorkloadCategory c) {
  switch (c) {
    case WorkloadCategory::kHighEdges: return "HE";
    case WorkloadCategory::kHighFeatures: return "HF";
    case WorkloadCategory::kLowEdgesFeatures: return "LEF";
  }
  return "?";
}

const std::vector<DatasetSpec>& table4_datasets() {
  // Numbers transcribed from Table IV. '*' features in the paper mean
  // indicator vectors were used; for the dataflow study only the width
  // matters. degree_sigma calibrates the lognormal tail of citation
  // networks so max-degree/mean-degree lands in the 30-60x range observed
  // in Citeseer/Cora (drives the "evil row" behaviour of SPhighV).
  static const std::vector<DatasetSpec> specs = {
      {"Mutag", 188, 17.93, 19.79, 28, WorkloadCategory::kLowEdgesFeatures,
       64, false, 0.0},
      {"Proteins", 1113, 39.06, 72.82, 29, WorkloadCategory::kLowEdgesFeatures,
       64, false, 0.0},
      {"Imdb-bin", 1000, 19.77, 96.53, 136, WorkloadCategory::kHighEdges, 64,
       false, 0.0},
      {"Collab", 5000, 74.49, 2457.78, 492, WorkloadCategory::kHighEdges, 64,
       false, 0.0},
      {"Reddit-bin", 2000, 429.63, 497.75, 3782,
       WorkloadCategory::kHighFeatures, 32, false, 0.0},
      {"Citeseer", 1, 3327.0, 9464.0, 3703, WorkloadCategory::kHighFeatures,
       1, true, 1.5},
      {"Cora", 1, 2708.0, 10858.0, 1433, WorkloadCategory::kHighFeatures, 1,
       true, 1.5},
  };
  return specs;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  const std::string needle = to_lower(name);
  for (const auto& spec : table4_datasets()) {
    if (to_lower(spec.name) == needle) return spec;
  }
  throw InvalidArgumentError("unknown dataset: " + name);
}

std::size_t clamp_edges(std::size_t vertices, std::size_t edges) {
  // vertices * (vertices - 1) wraps to SIZE_MAX for vertices == 0, turning
  // the cap into "unlimited"; 0- and 1-vertex graphs admit no edges.
  if (vertices < 2) return 0;
  const std::size_t cap = vertices * (vertices - 1);
  return std::min(edges, cap);
}

namespace {

CSRGraph synthesize_one_graph(const DatasetSpec& spec, double scale, Rng& rng) {
  if (spec.node_classification) {
    const auto v = static_cast<std::size_t>(
        std::max(2.0, std::round(spec.avg_nodes * scale)));
    const auto e = clamp_edges(
        v, static_cast<std::size_t>(std::round(spec.avg_edges * scale)));
    return lognormal_chung_lu(v, e, spec.degree_sigma, rng);
  }
  // Graph-classification members: sizes jitter around the Table IV averages
  // (sigma 15%) so the batch has realistic variety.
  const double nodes =
      std::max(2.0, rng.normal(spec.avg_nodes, 0.15 * spec.avg_nodes));
  const double ratio = spec.avg_edges / spec.avg_nodes;
  const auto v = static_cast<std::size_t>(
      std::max(2.0, std::round(nodes * scale)));
  const auto e = clamp_edges(
      v, static_cast<std::size_t>(std::max(
             1.0, std::round(nodes * ratio * scale))));
  return erdos_renyi(v, std::max<std::size_t>(e, 2), rng);
}

}  // namespace

GnnWorkload synthesize_workload(const DatasetSpec& spec,
                                const SynthesisOptions& options) {
  OMEGA_CHECK(options.scale > 0.0, "scale must be positive");
  Rng rng(options.seed ^ std::hash<std::string>{}(spec.name));

  std::vector<CSRGraph> members;
  const std::size_t batch =
      spec.node_classification
          ? 1
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::round(static_cast<double>(spec.batch_size))));
  members.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    members.push_back(synthesize_one_graph(spec, options.scale, rng));
  }

  CSRGraph adj = batch == 1 ? std::move(members.front())
                            : block_diagonal(members);
  if (options.add_self_loops) adj = adj.with_self_loops();
  if (options.gcn_normalize) adj = adj.gcn_normalized();
  adj.validate();

  GnnWorkload w;
  w.name = spec.name;
  w.category = spec.category;
  w.adjacency = std::move(adj);
  w.in_features = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::round(static_cast<double>(spec.num_features) * options.scale)));
  w.num_graphs_in_batch = batch;
  return w;
}

std::vector<GnnWorkload> synthesize_all_workloads(
    const SynthesisOptions& options) {
  std::vector<GnnWorkload> out;
  out.reserve(table4_datasets().size());
  for (const auto& spec : table4_datasets()) {
    out.push_back(synthesize_workload(spec, options));
  }
  return out;
}

// ---- MatrixMarket loader ----------------------------------------------------

namespace {

[[noreturn]] void mtx_fail(std::size_t line_no, const std::string& why) {
  throw InvalidArgumentError("MatrixMarket line " + std::to_string(line_no) +
                             ": " + why);
}

/// Reads the next line that is neither blank nor a % comment; false at EOF.
bool next_content_line(std::istream& in, std::string& line,
                       std::size_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '%') continue;
    line = t;
    return true;
  }
  return false;
}

}  // namespace

CSRGraph load_matrix_market(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) {
    throw InvalidArgumentError("MatrixMarket: empty input");
  }
  ++line_no;

  // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (to_lower(banner) != "%%matrixmarket") {
    mtx_fail(line_no, "missing %%MatrixMarket banner");
  }
  if (to_lower(object) != "matrix") {
    mtx_fail(line_no, "unsupported object '" + object + "' (want matrix)");
  }
  if (to_lower(format) != "coordinate") {
    mtx_fail(line_no,
             "unsupported format '" + format + "' (want coordinate)");
  }
  field = to_lower(field);
  const bool has_value = field == "real" || field == "integer";
  if (!has_value && field != "pattern") {
    mtx_fail(line_no, "unsupported field '" + field +
                          "' (want pattern, real or integer)");
  }
  symmetry = to_lower(symmetry);
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    mtx_fail(line_no, "unsupported symmetry '" + symmetry +
                          "' (want general or symmetric)");
  }

  if (!next_content_line(in, line, line_no)) {
    mtx_fail(line_no, "missing size line");
  }
  std::istringstream size_line(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  if (!(size_line >> rows >> cols >> nnz)) {
    mtx_fail(line_no, "bad size line '" + line + "'");
  }
  if (rows != cols) {
    mtx_fail(line_no, "adjacency must be square, got " +
                          std::to_string(rows) + "x" + std::to_string(cols));
  }
  if (rows > static_cast<std::uint64_t>(
                 std::numeric_limits<VertexId>::max())) {
    mtx_fail(line_no, "vertex count exceeds the 32-bit id space");
  }

  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(symmetric ? 2 * nnz : nnz);
  for (std::uint64_t k = 0; k < nnz; ++k) {
    if (!next_content_line(in, line, line_no)) {
      mtx_fail(line_no, "expected " + std::to_string(nnz) +
                            " entries, got " + std::to_string(k));
    }
    std::istringstream entry(line);
    std::uint64_t i = 0, j = 0;
    if (!(entry >> i >> j)) {
      mtx_fail(line_no, "bad entry '" + line + "'");
    }
    if (has_value) {
      double value = 0.0;
      if (!(entry >> value)) {
        mtx_fail(line_no, "entry missing its value: '" + line + "'");
      }
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      mtx_fail(line_no, "index out of range: '" + line + "'");
    }
    // Entry A[i][j] != 0: vertex i aggregates from j (row = destination).
    const auto dst = static_cast<VertexId>(i - 1);
    const auto src = static_cast<VertexId>(j - 1);
    edges.emplace_back(dst, src);
    if (symmetric && dst != src) edges.emplace_back(src, dst);
  }
  if (next_content_line(in, line, line_no)) {
    mtx_fail(line_no, "trailing entries beyond the declared " +
                          std::to_string(nnz));
  }

  CSRGraph g = CSRGraph::from_coo(static_cast<std::size_t>(rows),
                                  std::move(edges));
  g.validate();
  return g;
}

CSRGraph load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgumentError("cannot open MatrixMarket file: " + path);
  }
  return load_matrix_market(in);
}

GnnWorkload workload_from_matrix_market(const std::string& path,
                                        std::size_t in_features,
                                        const SynthesisOptions& options) {
  OMEGA_CHECK(in_features >= 1, ".mtx workloads need an explicit in_features");
  CSRGraph adj = load_matrix_market(path);
  if (options.add_self_loops) adj = adj.with_self_loops();
  if (options.gcn_normalize) adj = adj.gcn_normalized();

  // Name = file stem ("data/cora.mtx" -> "cora").
  std::string name = path;
  if (const auto slash = name.find_last_of("/\\");
      slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }

  GnnWorkload w;
  w.name = name.empty() ? path : name;
  w.category = WorkloadCategory::kLowEdgesFeatures;
  w.adjacency = std::move(adj);
  w.in_features = in_features;
  w.num_graphs_in_batch = 1;
  return w;
}

}  // namespace omega
