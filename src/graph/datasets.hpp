// Synthetic workload models for the seven datasets of Table IV.
//
// Graph-classification sets (Mutag, Proteins, Imdb-bin, Collab, Reddit-bin)
// are evaluated as one batch of `batch_size` graphs assembled into a single
// block-diagonal adjacency, exactly as the paper does (batch of 64; 32 for
// Reddit-bin). Node-classification sets (Citeseer, Cora) are single graphs
// with heavy-tailed degree distributions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace omega {

/// Paper's workload categories (Section V-A2): high-edge, high-feature,
/// low-edge-and-feature.
enum class WorkloadCategory { kHighEdges, kHighFeatures, kLowEdgesFeatures };

[[nodiscard]] const char* to_string(WorkloadCategory c);

/// One row of Table IV.
struct DatasetSpec {
  std::string name;
  std::size_t num_graphs = 1;       // population size in the original corpus
  double avg_nodes = 0.0;           // per graph
  double avg_edges = 0.0;           // per graph (nnz of adjacency)
  std::size_t num_features = 0;     // input feature width F
  WorkloadCategory category = WorkloadCategory::kLowEdgesFeatures;
  std::size_t batch_size = 1;       // graphs evaluated per batch (1 == node task)
  bool node_classification = false;
  double degree_sigma = 0.0;        // lognormal degree skew (node tasks)
};

/// All seven rows of Table IV, in paper order.
[[nodiscard]] const std::vector<DatasetSpec>& table4_datasets();

/// Lookup by (case-insensitive) name; throws InvalidArgumentError if unknown.
[[nodiscard]] const DatasetSpec& dataset_by_name(const std::string& name);

/// A concrete GNN inference workload: batched adjacency + layer dims.
struct GnnWorkload {
  std::string name;
  WorkloadCategory category = WorkloadCategory::kLowEdgesFeatures;
  CSRGraph adjacency;           // block-diagonal batch, self-loops included
  std::size_t in_features = 0;  // F
  std::size_t num_graphs_in_batch = 1;

  [[nodiscard]] std::size_t num_vertices() const {
    return adjacency.num_vertices();
  }
  [[nodiscard]] std::size_t num_edges() const { return adjacency.num_edges(); }
};

/// Caps an edge budget at what a simple directed graph on `vertices`
/// vertices can hold (0 for 0/1-vertex graphs, which admit no edges).
/// Used by the synthesizers to keep generated graphs legal.
[[nodiscard]] std::size_t clamp_edges(std::size_t vertices, std::size_t edges);

/// Options controlling synthesis.
struct SynthesisOptions {
  std::uint64_t seed = 7;
  bool add_self_loops = true;   // GCN-style A+I
  bool gcn_normalize = true;    // attach D^-1/2 A D^-1/2 edge values
  /// Scale factor on batch/graph sizes for quick tests (1.0 == paper scale).
  double scale = 1.0;
};

/// Synthesizes the workload for one dataset spec.
[[nodiscard]] GnnWorkload synthesize_workload(const DatasetSpec& spec,
                                              const SynthesisOptions& options = {});

/// Synthesizes all Table IV workloads (paper order).
[[nodiscard]] std::vector<GnnWorkload> synthesize_all_workloads(
    const SynthesisOptions& options = {});

/// MatrixMarket adjacency loader (ROADMAP "Real dataset loaders"): parses
/// the NIST `.mtx` coordinate format — header
/// `%%MatrixMarket matrix coordinate <pattern|real|integer> <general|symmetric>`
/// — into a CSR adjacency. The matrix must be square (an adjacency);
/// symmetric files are mirrored, stored values (real/integer) are ignored
/// (the GNN normalization is recomputed from structure by the caller),
/// duplicate entries and self-loops are deduplicated. Throws
/// InvalidArgumentError on malformed input, naming the offending line.
[[nodiscard]] CSRGraph load_matrix_market(std::istream& in);
[[nodiscard]] CSRGraph load_matrix_market(const std::string& path);

/// Wraps a MatrixMarket graph into a ready-to-run workload: applies the
/// self-loop / GCN-normalization options, attaches the feature width, and
/// names the workload after the file stem. `in_features` must be >= 1
/// (.mtx carries no feature matrix, so the width is the caller's).
[[nodiscard]] GnnWorkload workload_from_matrix_market(
    const std::string& path, std::size_t in_features,
    const SynthesisOptions& options = {});

}  // namespace omega
