// Synthetic graph generators.
//
// The paper evaluates on TU-Dortmund graph-classification sets and Planetoid
// citation networks. Those files are not redistributable here, so we
// synthesize graphs whose *dataflow-relevant* statistics match Table IV:
// vertex/edge counts, density, and — crucially for the SPhighV "evil row"
// result — a skewed degree tail for the citation networks. Generators are
// deterministic given the seed.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace omega {

/// G(V, E) Erdős–Rényi-style: exactly `num_edges` distinct directed edges
/// placed uniformly (symmetrized if `undirected`, counting both directions
/// toward the edge budget). Self-loops excluded; add them via
/// CSRGraph::with_self_loops when building a GCN workload.
[[nodiscard]] CSRGraph erdos_renyi(std::size_t num_vertices,
                                   std::size_t num_edges, Rng& rng,
                                   bool undirected = true);

/// Recursive-matrix (R-MAT / Graph500-style) generator: each edge picks its
/// (dst, src) cell by descending `scale` levels of a 2x2 partition with
/// probabilities (a, b, c, d), a+b+c+d == 1. Skewed corners (a >> d)
/// produce the power-law degree tails large-scale DSE sweeps stress.
/// Vertices = 2^scale; duplicate edges are dropped, so the delivered edge
/// count is slightly below `num_edges` on dense corners. Self-loops
/// excluded.
[[nodiscard]] CSRGraph rmat(std::size_t scale, std::size_t num_edges, Rng& rng,
                            double a = 0.57, double b = 0.19, double c = 0.19,
                            bool undirected = false);

/// Chung-Lu style graph with lognormal expected degrees: heavy-tailed degree
/// distribution controlled by `sigma` (sigma ≈ 1.5 reproduces citation-network
/// skew: max degree ~50-100x the mean). Edge count approaches `num_edges` in
/// expectation and is then trimmed/topped-up to hit it exactly.
[[nodiscard]] CSRGraph lognormal_chung_lu(std::size_t num_vertices,
                                          std::size_t num_edges, double sigma,
                                          Rng& rng, bool undirected = true);

/// Banded adjacency: vertex v neighbors every vertex within
/// `half_bandwidth` positions (self-loop included) — the RCM-reordered
/// mesh/road-network archetype. Degree ~ 2*half_bandwidth + 1, and every
/// row's neighbors lie within the band, which is what makes cross-layer
/// chunk pipelining's dependency rows stream (omega/compose.hpp) instead
/// of saturating the way scale-free graphs do.
[[nodiscard]] CSRGraph banded_graph(std::size_t num_vertices,
                                    std::size_t half_bandwidth);

/// Deterministic structures for unit tests.
[[nodiscard]] CSRGraph path_graph(std::size_t num_vertices);
[[nodiscard]] CSRGraph cycle_graph(std::size_t num_vertices);
[[nodiscard]] CSRGraph star_graph(std::size_t num_leaves);  // hub = vertex 0
[[nodiscard]] CSRGraph complete_graph(std::size_t num_vertices);

/// The five-vertex example of Fig. 3 (self-loops included):
/// edge-array [0,1, 1,2, 1,2,4, 0,3, 0,4], vertex-array [0,2,4,7,9,11].
[[nodiscard]] CSRGraph paper_example_graph();

}  // namespace omega
