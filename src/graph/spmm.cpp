#include "graph/spmm.hpp"

#include "util/error.hpp"

namespace omega {

void spmm_reference(const CSRGraph& a, const MatrixF& x, MatrixF& h) {
  OMEGA_CHECK(x.rows() == a.num_vertices(),
              "feature rows must match vertex count");
  h = MatrixF(a.num_vertices(), x.cols(), 0.0f);
  const std::size_t f = x.cols();
  for (std::size_t v = 0; v < a.num_vertices(); ++v) {
    const auto vid = static_cast<VertexId>(v);
    const auto nbrs = a.neighbors(vid);
    const auto vals = a.edge_values(vid);
    float* hrow = h.row(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const float weight = vals.empty() ? 1.0f : vals[i];
      const float* xrow = x.row(nbrs[i]);
      for (std::size_t c = 0; c < f; ++c) hrow[c] += weight * xrow[c];
    }
  }
}

MatrixF spmm(const CSRGraph& a, const MatrixF& x) {
  MatrixF h;
  spmm_reference(a, x, h);
  return h;
}

}  // namespace omega
