#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace omega {

namespace {

using Edge = std::pair<VertexId, VertexId>;

/// Symmetrizes and materializes a set of undirected pairs into directed
/// (dst, src) edges for CSR rows.
std::vector<Edge> to_directed(const std::set<Edge>& undirected) {
  std::vector<Edge> out;
  out.reserve(undirected.size() * 2);
  for (const auto& [a, b] : undirected) {
    out.emplace_back(a, b);
    out.emplace_back(b, a);
  }
  return out;
}

}  // namespace

CSRGraph erdos_renyi(std::size_t num_vertices, std::size_t num_edges, Rng& rng,
                     bool undirected) {
  OMEGA_CHECK(num_vertices >= 2, "need at least two vertices");
  const std::size_t max_pairs = num_vertices * (num_vertices - 1);
  OMEGA_CHECK(num_edges <= max_pairs, "edge budget exceeds simple-graph bound");

  if (undirected) {
    // Budget counts both directions; keep an even budget's worth of pairs.
    const std::size_t pairs = num_edges / 2;
    std::set<Edge> chosen;
    while (chosen.size() < pairs) {
      auto a = static_cast<VertexId>(rng.next_below(num_vertices));
      auto b = static_cast<VertexId>(rng.next_below(num_vertices));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      chosen.insert({a, b});
    }
    return CSRGraph::from_coo(num_vertices, to_directed(chosen));
  }

  std::set<Edge> chosen;
  while (chosen.size() < num_edges) {
    const auto dst = static_cast<VertexId>(rng.next_below(num_vertices));
    const auto src = static_cast<VertexId>(rng.next_below(num_vertices));
    if (dst == src) continue;
    chosen.insert({dst, src});
  }
  return CSRGraph::from_coo(num_vertices,
                            std::vector<Edge>(chosen.begin(), chosen.end()));
}

CSRGraph rmat(std::size_t scale, std::size_t num_edges, Rng& rng, double a,
              double b, double c, bool undirected) {
  OMEGA_CHECK(scale >= 1 && scale < 31, "rmat scale must be in [1, 30]");
  OMEGA_CHECK(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0,
              "rmat quadrant probabilities must be positive and sum below 1");
  const std::size_t num_vertices = std::size_t{1} << scale;
  std::vector<Edge> edges;
  edges.reserve(num_edges * (undirected ? 2 : 1));
  for (std::size_t e = 0; e < num_edges; ++e) {
    VertexId dst = 0;
    VertexId src = 0;
    for (std::size_t level = 0; level < scale; ++level) {
      const double p = rng.uniform();
      dst <<= 1;
      src <<= 1;
      if (p < a) {
        // top-left: neither bit set
      } else if (p < a + b) {
        src |= 1;
      } else if (p < a + b + c) {
        dst |= 1;
      } else {
        dst |= 1;
        src |= 1;
      }
    }
    if (dst == src) continue;  // self-loops are added by the workload builder
    edges.emplace_back(dst, src);
    if (undirected) edges.emplace_back(src, dst);
  }
  return CSRGraph::from_coo(num_vertices, std::move(edges), /*dedup=*/true);
}

CSRGraph lognormal_chung_lu(std::size_t num_vertices, std::size_t num_edges,
                            double sigma, Rng& rng, bool undirected) {
  OMEGA_CHECK(num_vertices >= 2, "need at least two vertices");
  OMEGA_CHECK(sigma >= 0.0, "sigma must be non-negative");

  // Expected-degree weights; mu is irrelevant (weights get normalized).
  std::vector<double> weights(num_vertices);
  for (auto& w : weights) w = rng.lognormal(0.0, sigma);

  const std::size_t pair_budget = undirected ? num_edges / 2 : num_edges;
  const DiscreteSampler sampler(weights);
  std::set<std::pair<VertexId, VertexId>> chosen;
  // Sample endpoints proportional to weight until the pair budget is met.
  // Rejection on duplicates is cheap at the <1% densities of Table IV.
  std::size_t attempts = 0;
  const std::size_t attempt_cap = pair_budget * 200 + 1000;
  while (chosen.size() < pair_budget && attempts < attempt_cap) {
    ++attempts;
    auto a = static_cast<VertexId>(sampler.sample(rng));
    auto b = static_cast<VertexId>(sampler.sample(rng));
    if (a == b) continue;
    if (undirected && a > b) std::swap(a, b);
    chosen.insert({a, b});
  }
  // Top up with uniform edges if the weighted sampler saturated (possible on
  // tiny dense graphs).
  while (chosen.size() < pair_budget) {
    auto a = static_cast<VertexId>(rng.next_below(num_vertices));
    auto b = static_cast<VertexId>(rng.next_below(num_vertices));
    if (a == b) continue;
    if (undirected && a > b) std::swap(a, b);
    chosen.insert({a, b});
  }

  if (undirected) return CSRGraph::from_coo(num_vertices, to_directed(chosen));
  return CSRGraph::from_coo(
      num_vertices, std::vector<std::pair<VertexId, VertexId>>(chosen.begin(),
                                                               chosen.end()));
}

CSRGraph banded_graph(std::size_t num_vertices, std::size_t half_bandwidth) {
  std::vector<std::vector<VertexId>> rows(num_vertices);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    const std::size_t lo = v > half_bandwidth ? v - half_bandwidth : 0;
    // v + half_bandwidth can wrap for absurd bandwidths (the bench exposes
    // the knob via an env var); a wrapped hi would silently truncate the
    // band, so clamp the sum first.
    const std::size_t upper = v + half_bandwidth < v
                                  ? std::numeric_limits<std::size_t>::max()
                                  : v + half_bandwidth;
    const std::size_t hi =
        std::min(num_vertices == 0 ? 0 : num_vertices - 1, upper);
    rows[v].reserve(hi - lo + 1);
    for (std::size_t u = lo; u <= hi; ++u) {
      rows[v].push_back(static_cast<VertexId>(u));
    }
  }
  return CSRGraph::from_rows(std::move(rows));
}

CSRGraph path_graph(std::size_t num_vertices) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (std::size_t v = 0; v + 1 < num_vertices; ++v) {
    edges.emplace_back(static_cast<VertexId>(v), static_cast<VertexId>(v + 1));
    edges.emplace_back(static_cast<VertexId>(v + 1), static_cast<VertexId>(v));
  }
  return CSRGraph::from_coo(num_vertices, std::move(edges));
}

CSRGraph cycle_graph(std::size_t num_vertices) {
  OMEGA_CHECK(num_vertices >= 3, "cycle needs >= 3 vertices");
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (std::size_t v = 0; v < num_vertices; ++v) {
    const auto u = static_cast<VertexId>(v);
    const auto w = static_cast<VertexId>((v + 1) % num_vertices);
    edges.emplace_back(u, w);
    edges.emplace_back(w, u);
  }
  return CSRGraph::from_coo(num_vertices, std::move(edges));
}

CSRGraph star_graph(std::size_t num_leaves) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (std::size_t l = 1; l <= num_leaves; ++l) {
    edges.emplace_back(VertexId{0}, static_cast<VertexId>(l));
    edges.emplace_back(static_cast<VertexId>(l), VertexId{0});
  }
  return CSRGraph::from_coo(num_leaves + 1, std::move(edges));
}

CSRGraph complete_graph(std::size_t num_vertices) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (std::size_t a = 0; a < num_vertices; ++a) {
    for (std::size_t b = 0; b < num_vertices; ++b) {
      if (a == b) continue;
      edges.emplace_back(static_cast<VertexId>(a), static_cast<VertexId>(b));
    }
  }
  return CSRGraph::from_coo(num_vertices, std::move(edges));
}

CSRGraph paper_example_graph() {
  // Rows of the adjacency in Fig. 3c (with self-loops).
  return CSRGraph::from_rows({{0, 1}, {1, 2}, {1, 2, 4}, {0, 3}, {0, 4}});
}

}  // namespace omega
