// Multi-layer GNN inference through the OMEGA cost model: evaluates every
// layer of a model under one dataflow pattern (re-binding tile sizes per
// layer, since feature widths change) and aggregates runtime/energy.
#pragma once

#include "gnn/layers.hpp"
#include "omega/omega.hpp"

namespace omega {

struct ModelRunResult {
  std::vector<RunResult> layers;
  std::uint64_t total_cycles = 0;
  double total_on_chip_pj = 0.0;
  double total_pj = 0.0;
  std::uint64_t total_macs = 0;
};

/// Runs all layers of `spec` on `workload`'s graph with the given pattern.
/// The workload's in_features must equal spec.feature_widths.front().
[[nodiscard]] ModelRunResult run_model(const Omega& omega,
                                       const GnnWorkload& workload,
                                       const GnnModelSpec& spec,
                                       const DataflowPattern& pattern);

/// Functional end-to-end inference through the dataflow engines' loop
/// structures (per layer: functional SpMM/GEMM + ReLU), for verification
/// against reference_inference.
[[nodiscard]] MatrixF functional_inference(const CSRGraph& adj,
                                           const MatrixF& x,
                                           const std::vector<MatrixF>& weights,
                                           const GnnModelSpec& spec,
                                           const DataflowDescriptor& df);

}  // namespace omega
