// Multi-layer GNN inference through the OMEGA cost model: evaluates every
// layer of a model under one dataflow pattern (re-binding tile sizes per
// layer, since feature widths change) and composes runtime/energy — either
// as a plain layer sum or through the cross-layer pipeline composer
// (omega/compose.hpp).
#pragma once

#include "gnn/layers.hpp"
#include "omega/compose.hpp"
#include "omega/omega.hpp"

namespace omega {

struct ModelRunResult {
  std::vector<RunResult> layers;
  /// Model makespan under the requested composition: the saturating layer
  /// sum for kSequential, the composed timeline for kPipelined. Always
  /// <= sequential_cycles.
  std::uint64_t total_cycles = 0;
  /// Saturating sum of layer cycles (what total_cycles was historically).
  std::uint64_t sequential_cycles = 0;
  double total_on_chip_pj = 0.0;
  double total_pj = 0.0;
  std::uint64_t total_macs = 0;
  ModelCompose compose = ModelCompose::kSequential;
  /// Full composed timeline (layer starts/finishes, per-boundary outcome).
  ModelComposition composition;
};

/// Runs all layers of `spec` on `workload`'s graph with the given pattern.
/// The workload's in_features must equal spec.feature_widths.front().
/// `compose` selects how layer cycles combine into total_cycles; energy and
/// MAC totals are composition-independent sums either way.
[[nodiscard]] ModelRunResult run_model(
    const Omega& omega, const GnnWorkload& workload, const GnnModelSpec& spec,
    const DataflowPattern& pattern,
    ModelCompose compose = ModelCompose::kSequential);

/// Functional end-to-end inference through the dataflow engines' loop
/// structures (per layer: functional SpMM/GEMM + ReLU), for verification
/// against reference_inference. Cross-layer composition is a cost-model
/// concern only — functional outputs are identical under both modes.
[[nodiscard]] MatrixF functional_inference(const CSRGraph& adj,
                                           const MatrixF& x,
                                           const std::vector<MatrixF>& weights,
                                           const GnnModelSpec& spec,
                                           const DataflowDescriptor& df);

}  // namespace omega
