// GNN model layer specifications (Section II-A): GCN, GraphSAGE and GIN all
// decompose into Aggregation + Combination; they differ in the adjacency
// normalization, the allowed phase orders, and small epilogue details that
// do not affect the dataflow cost model.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "omega/tiler.hpp"
#include "tensor/matrix.hpp"

namespace omega {

enum class GnnModel : std::uint8_t { kGCN = 0, kGraphSAGE = 1, kGIN = 2 };

[[nodiscard]] const char* to_string(GnnModel m);

/// One layer of a GNN: feature widths plus the aggregation semantics.
struct GnnLayerSpec {
  GnnModel model = GnnModel::kGCN;
  std::size_t in_features = 0;   // F
  std::size_t out_features = 0;  // G
  bool relu = true;

  /// GCN admits both phase orders (A(XW) == (AX)W); GraphSAGE aggregates
  /// before combining (Section II-A), pinning the order to AC.
  [[nodiscard]] bool allows_phase_order(PhaseOrder order) const {
    if (model == GnnModel::kGraphSAGE) return order == PhaseOrder::kAC;
    return true;
  }

  [[nodiscard]] LayerSpec layer() const {
    return LayerSpec{out_features, in_features};
  }
};

/// Multi-layer model description (e.g. the classic 2-layer GCN: F -> 16 ->
/// #classes).
struct GnnModelSpec {
  GnnModel model = GnnModel::kGCN;
  std::vector<std::size_t> feature_widths;  // layer i: widths[i] -> widths[i+1]

  [[nodiscard]] std::size_t num_layers() const {
    return feature_widths.size() < 2 ? 0 : feature_widths.size() - 1;
  }
  [[nodiscard]] GnnLayerSpec layer_spec(std::size_t i) const;
};

/// The paper's evaluation model: single GCN layer, hidden width 16.
[[nodiscard]] GnnModelSpec gcn_eval_model(std::size_t in_features,
                                          std::size_t hidden = 16);
/// Classic 2-layer GCN for end-to-end inference tests.
[[nodiscard]] GnnModelSpec gcn_two_layer(std::size_t in_features,
                                         std::size_t hidden,
                                         std::size_t classes);

/// Adjacency pre-normalization per model: GCN uses symmetric D^-1/2(A+I)D^-1/2,
/// GraphSAGE mean-normalizes rows, GIN sums (1+eps fused into weights).
[[nodiscard]] CSRGraph normalize_adjacency(const CSRGraph& raw, GnnModel model);

/// Reference multi-layer inference (dense kernels + ReLU), the ground truth
/// for the dataflow engines' functional mode.
[[nodiscard]] MatrixF reference_inference(const CSRGraph& adj, const MatrixF& x,
                                          const std::vector<MatrixF>& weights,
                                          const GnnModelSpec& spec);

/// ReLU in place.
void relu_inplace(MatrixF& m);

}  // namespace omega
