#include "gnn/inference.hpp"

#include "engine/functional.hpp"
#include "util/error.hpp"
#include "util/saturate.hpp"

namespace omega {

ModelRunResult run_model(const Omega& omega, const GnnWorkload& workload,
                         const GnnModelSpec& spec,
                         const DataflowPattern& pattern,
                         ModelCompose compose) {
  OMEGA_CHECK(spec.num_layers() >= 1, "model needs at least one layer");
  OMEGA_CHECK(workload.in_features == spec.feature_widths.front(),
              "workload feature width must match the model's first layer");

  ModelRunResult out;
  out.compose = compose;
  for (std::size_t l = 0; l < spec.num_layers(); ++l) {
    const GnnLayerSpec layer = spec.layer_spec(l);
    OMEGA_CHECK(layer.allows_phase_order(pattern.phase_order),
                std::string(to_string(spec.model)) +
                    " does not allow phase order " +
                    to_string(pattern.phase_order));
    // layer.layer() carries the per-layer F override, so the original
    // workload (and any context cached against its adjacency) is reused
    // across every layer without copying the graph.
    RunResult r = omega.run_pattern(workload, layer.layer(), pattern);
    // Saturating accumulation (DESIGN.md "Overflow contract"): wrapped
    // totals would rank an adversarially huge model as nearly free.
    out.total_on_chip_pj += r.energy.on_chip_pj();
    out.total_pj += r.energy.total_pj();
    out.total_macs = sat_add_u64(out.total_macs,
                                 sat_add_u64(r.agg.macs, r.cmb.macs));
    out.layers.push_back(std::move(r));
  }
  if (compose == ModelCompose::kPipelined) {
    // The composer's O(V) dependency-prefix scan is only needed when
    // boundaries can actually overlap; sequential runs (best_fixed_pattern
    // replays nine of them) take the prefix-sum shortcut.
    const ModelComposer composer(omega.config(), workload.adjacency);
    out.composition = composer.compose(out.layers, compose);
  } else {
    out.composition = sequential_composition(out.layers);
  }
  out.total_cycles = out.composition.cycles;
  out.sequential_cycles = out.composition.sequential_cycles;
  return out;
}

MatrixF functional_inference(const CSRGraph& adj, const MatrixF& x,
                             const std::vector<MatrixF>& weights,
                             const GnnModelSpec& spec,
                             const DataflowDescriptor& df) {
  OMEGA_CHECK(weights.size() == spec.num_layers(),
              "one weight matrix per layer required");
  MatrixF h = x;
  for (std::size_t l = 0; l < spec.num_layers(); ++l) {
    const GnnLayerSpec layer = spec.layer_spec(l);
    h = functional_gcn_layer(adj, h, weights[l], df);
    if (layer.relu) relu_inplace(h);
  }
  return h;
}

}  // namespace omega
