#include "gnn/layers.hpp"

#include "graph/spmm.hpp"
#include "tensor/gemm.hpp"
#include "util/error.hpp"

namespace omega {

const char* to_string(GnnModel m) {
  switch (m) {
    case GnnModel::kGCN: return "GCN";
    case GnnModel::kGraphSAGE: return "GraphSAGE";
    case GnnModel::kGIN: return "GIN";
  }
  return "?";
}

GnnLayerSpec GnnModelSpec::layer_spec(std::size_t i) const {
  OMEGA_CHECK(i + 1 < feature_widths.size(), "layer index out of range");
  GnnLayerSpec spec;
  spec.model = model;
  spec.in_features = feature_widths[i];
  spec.out_features = feature_widths[i + 1];
  spec.relu = (i + 2 < feature_widths.size());  // no ReLU on the last layer
  return spec;
}

GnnModelSpec gcn_eval_model(std::size_t in_features, std::size_t hidden) {
  return GnnModelSpec{GnnModel::kGCN, {in_features, hidden}};
}

GnnModelSpec gcn_two_layer(std::size_t in_features, std::size_t hidden,
                           std::size_t classes) {
  return GnnModelSpec{GnnModel::kGCN, {in_features, hidden, classes}};
}

CSRGraph normalize_adjacency(const CSRGraph& raw, GnnModel model) {
  switch (model) {
    case GnnModel::kGCN:
      return raw.with_self_loops().gcn_normalized();
    case GnnModel::kGraphSAGE:
      return raw.with_self_loops().mean_normalized();
    case GnnModel::kGIN:
      // Sum aggregation; the (1+eps) self term becomes a self-loop of
      // weight 1 here (eps folded into the MLP weights).
      return raw.with_self_loops();
  }
  return raw;
}

void relu_inplace(MatrixF& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] = std::max(0.0f, row[c]);
  }
}

MatrixF reference_inference(const CSRGraph& adj, const MatrixF& x,
                            const std::vector<MatrixF>& weights,
                            const GnnModelSpec& spec) {
  OMEGA_CHECK(weights.size() == spec.num_layers(),
              "one weight matrix per layer required");
  MatrixF h = x;
  for (std::size_t l = 0; l < spec.num_layers(); ++l) {
    const GnnLayerSpec layer = spec.layer_spec(l);
    OMEGA_CHECK(weights[l].rows() == layer.in_features &&
                    weights[l].cols() == layer.out_features,
                "weight shape mismatch at layer " + std::to_string(l));
    h = gemm(spmm(adj, h), weights[l]);
    if (layer.relu) relu_inplace(h);
  }
  return h;
}

}  // namespace omega
