// Streaming TCP transport tests: round-trip byte-identity against the
// stdio batch path for legacy (v1) requests at 1 and 4 scheduler threads,
// per-connection response ordering, v2 priority requests over the wire,
// structured shed/error responses, and the stale-socket-file recovery of
// Listener::unix_socket.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hpp"
#include "service/tcp.hpp"
#include "util/json.hpp"

namespace omega::service {
namespace {

const char* kCoraQuarter =
    R"({"dataset":"Cora","scale":0.25})";

std::string line_evaluate(std::uint64_t id) {
  return R"({"id":)" + std::to_string(id) +
         R"(,"kind":"evaluate","workload":)" + kCoraQuarter +
         R"(,"out_features":16,"pattern":"SP2"})";
}

std::string line_search(std::uint64_t id) {
  return R"({"id":)" + std::to_string(id) +
         R"(,"kind":"search_mappings","workload":)" + kCoraQuarter +
         R"(,"out_features":16,"top_k":2})";
}

std::string line_evaluate_v2(std::uint64_t id, std::uint64_t priority) {
  return R"({"id":)" + std::to_string(id) + R"(,"version":2,"priority":)" +
         std::to_string(priority) + R"(,"kind":"evaluate","workload":)" +
         kCoraQuarter + R"(,"out_features":16,"pattern":"SP2"})";
}

/// Streams `lines` over one TCP connection against a fresh service with
/// `threads` scheduler threads and returns the response lines in arrival
/// order.
std::vector<std::string> tcp_exchange(const std::vector<std::string>& lines,
                                      std::size_t threads) {
  MappingService svc;
  Listener listener = Listener::tcp("127.0.0.1", 0);
  const std::uint16_t port = listener.port();
  ServeOptions so;
  so.max_connections = 1;
  so.scheduler_threads = threads;
  std::thread server([&] { serve_on(svc, listener, so); });
  std::vector<std::string> responses;
  {
    StreamClient client = StreamClient::connect_tcp("127.0.0.1", port);
    for (const std::string& line : lines) client.send_line(line);
    client.shutdown_writes();
    while (std::optional<std::string> r = client.read_line()) {
      responses.push_back(std::move(*r));
    }
  }
  server.join();
  return responses;
}

TEST(TcpStreamTest, RoundTripIsByteIdenticalToStdioBatch) {
  const std::vector<std::string> lines = {
      line_evaluate(1), line_search(2), line_evaluate(3),
      R"({"id":4,"kind":"stats"})", line_evaluate(5)};
  MappingService reference;
  const std::vector<std::string> expected = reference.handle_batch(lines);
  // The streaming transport must not change a single byte for legacy
  // requests, whether the scheduler runs serial or concurrent: v1 requests
  // all share band 0 and per-band emission preserves submission order.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::vector<std::string> got = tcp_exchange(lines, threads);
    ASSERT_EQ(got.size(), expected.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(TcpStreamTest, PerConnectionOrderHoldsAcrossThreadCounts) {
  std::vector<std::string> lines;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    lines.push_back(line_evaluate(id));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::vector<std::string> got = tcp_exchange(lines, threads);
    ASSERT_EQ(got.size(), lines.size()) << "threads=" << threads;
    for (std::uint64_t id = 1; id <= got.size(); ++id) {
      EXPECT_EQ(JsonValue::parse(got[id - 1]).find("id")->as_u64(), id)
          << "threads=" << threads;
    }
  }
}

TEST(TcpStreamTest, VersionTwoPriorityRequestsRoundTrip) {
  const std::vector<std::string> got = tcp_exchange(
      {line_evaluate_v2(1, 7), line_evaluate_v2(2, 0)}, /*threads=*/2);
  ASSERT_EQ(got.size(), 2u);
  for (const std::string& line : got) {
    const JsonValue v = JsonValue::parse(line);
    EXPECT_TRUE(v.find("ok")->as_bool());
    EXPECT_EQ(v.find("version")->as_u64(), 2u);
  }
}

TEST(TcpStreamTest, SchedulingFieldsOnV1LineYieldStructuredError) {
  // priority without "version":2 is a protocol violation — the server must
  // answer with a structured error on the stream, not drop the connection.
  const std::string bad = R"({"id":9,"priority":3,"kind":"evaluate",)"
                          R"("workload":)" +
                          std::string(kCoraQuarter) +
                          R"(,"out_features":16,"pattern":"SP2"})";
  const std::vector<std::string> got =
      tcp_exchange({bad, line_evaluate(10)}, /*threads=*/1);
  ASSERT_EQ(got.size(), 2u);
  const JsonValue err = JsonValue::parse(got[0]);
  EXPECT_EQ(err.find("id")->as_u64(), 9u);
  EXPECT_FALSE(err.find("ok")->as_bool());
  EXPECT_EQ(err.find("error")->find("type")->as_string(),
            "InvalidArgumentError");
  EXPECT_TRUE(JsonValue::parse(got[1]).find("ok")->as_bool());
}

TEST(TcpStreamTest, BatchClientMatchesStreamingClient) {
  MappingService svc;
  Listener listener = Listener::tcp("127.0.0.1", 0);
  const std::uint16_t port = listener.port();
  ServeOptions so;
  so.max_connections = 1;
  so.scheduler_threads = 1;
  std::thread server([&] { serve_on(svc, listener, so); });
  const std::string responses =
      send_to_tcp("127.0.0.1", port, line_evaluate(31) + "\n");
  server.join();
  MappingService reference;
  EXPECT_EQ(responses, reference.handle_line(line_evaluate(31)) + "\n");
}

TEST(TcpStreamTest, StaleUnixSocketFileIsReplaced) {
  const std::string path = ::testing::TempDir() + "omega_tcp_test_stale.sock";
  std::remove(path.c_str());
  {
    // Bind and immediately drop the listener WITHOUT unlinking by leaking
    // the file: simulate a crashed server by binding, closing via dtor…
    Listener first = Listener::unix_socket(path);
  }
  // …the dtor unlinks, so recreate a dead socket file the hard way: bind,
  // then move the listener into a scope we abandon after dup'ing nothing.
  // Simplest reliable stale state: create the file via a listener whose
  // unlink is defeated by renaming a fresh socket over the path.
  const std::string tmp = path + ".tmp";
  {
    Listener doomed = Listener::unix_socket(tmp);
    ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  }  // doomed's dtor unlinks tmp (already renamed away): `path` is now a
     // socket file with no listener behind it — exactly the crash leftover.
  Listener recovered = Listener::unix_socket(path);  // must not throw
  EXPECT_GE(recovered.fd(), 0);
}

TEST(TcpStreamTest, LiveUnixSocketIsNotStolen) {
  const std::string path = ::testing::TempDir() + "omega_tcp_test_live.sock";
  std::remove(path.c_str());
  Listener live = Listener::unix_socket(path);
  EXPECT_THROW(Listener::unix_socket(path), Error);
}

}  // namespace
}  // namespace omega::service
