// Accelerator-model and energy-model unit tests.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "arch/accelerator.hpp"
#include "arch/energy.hpp"
#include "engine/traffic.hpp"

namespace omega {
namespace {

TEST(AcceleratorConfigTest, DefaultsMatchPaperEvaluation) {
  const AcceleratorConfig hw = default_accelerator();
  EXPECT_EQ(hw.num_pes, 512u);                  // Section V-A3
  EXPECT_EQ(hw.rf_bytes_per_pe, 64u);           // 64B banked RF
  EXPECT_EQ(hw.rf_elements_per_pe(), 16u);      // fp32
  EXPECT_EQ(hw.distribution_bandwidth, AcceleratorConfig::kUnbounded);
  EXPECT_TRUE(hw.supports_spatial_reduction);
  EXPECT_TRUE(hw.supports_temporal_reduction);
  EXPECT_NO_THROW(hw.validate());
}

TEST(AcceleratorConfigTest, ValidationCatchesNonsense) {
  AcceleratorConfig hw;
  hw.num_pes = 0;
  EXPECT_THROW(hw.validate(), Error);
  hw = AcceleratorConfig{};
  hw.rf_bytes_per_pe = 2;  // smaller than one element
  EXPECT_THROW(hw.validate(), Error);
  hw = AcceleratorConfig{};
  hw.supports_spatial_reduction = false;
  hw.supports_temporal_reduction = false;
  EXPECT_THROW(hw.validate(), Error);
  hw = AcceleratorConfig{};
  hw.dram_bandwidth = 0;
  EXPECT_THROW(hw.validate(), Error);
}

TEST(AcceleratorConfigTest, SummaryMentionsBoundedBandwidth) {
  AcceleratorConfig hw;
  EXPECT_EQ(hw.summary().find("dist BW"), std::string::npos);
  hw.distribution_bandwidth = 128;
  EXPECT_NE(hw.summary().find("dist BW 128"), std::string::npos);
}

TEST(EnergyModelTest, PaperAccessEnergies) {
  const EnergyModel em;
  EXPECT_DOUBLE_EQ(em.gb_access_pj, 1.046);  // Dally et al., 1MB bank
  EXPECT_DOUBLE_EQ(em.rf_access_pj, 0.053);
}

TEST(EnergyModelTest, BufferEnergyScalesWithSqrtCapacity) {
  const EnergyModel em;
  // Reference bank -> full GB energy.
  EXPECT_DOUBLE_EQ(em.buffer_access_pj(1u << 20), em.gb_access_pj);
  // Quarter capacity -> half energy.
  EXPECT_NEAR(em.buffer_access_pj(1u << 18), em.gb_access_pj / 2, 1e-9);
  // Tiny partitions clamp at the RF energy, never below.
  EXPECT_DOUBLE_EQ(em.buffer_access_pj(16), em.rf_access_pj);
  // Oversized partitions clamp at the GB energy, never above.
  EXPECT_DOUBLE_EQ(em.buffer_access_pj(64u << 20), em.gb_access_pj);
  // Zero bytes behaves like a register.
  EXPECT_DOUBLE_EQ(em.buffer_access_pj(0), em.rf_access_pj);
}

TEST(TrafficCountersTest, AccumulationAndTotals) {
  TrafficCounters a;
  a.gb_for(TrafficCategory::kInput).reads = 10;
  a.gb_for(TrafficCategory::kWeight).writes = 5;
  a.rf.reads = 7;
  a.dram.writes = 3;
  TrafficCounters b;
  b.gb_for(TrafficCategory::kInput).reads = 1;
  b.intermediate_partition.reads = 4;
  a += b;
  EXPECT_EQ(a.gb_for(TrafficCategory::kInput).reads, 11u);
  EXPECT_EQ(a.gb_total(), 16u);
  EXPECT_EQ(a.rf.total(), 7u);
  EXPECT_EQ(a.dram.total(), 3u);
  EXPECT_EQ(a.intermediate_partition.total(), 4u);
}

TEST(TrafficCategoryTest, NamesMatchFig13Labels) {
  EXPECT_STREQ(to_string(TrafficCategory::kAdjacency), "Adj");
  EXPECT_STREQ(to_string(TrafficCategory::kInput), "Inp");
  EXPECT_STREQ(to_string(TrafficCategory::kIntermediate), "Int");
  EXPECT_STREQ(to_string(TrafficCategory::kWeight), "Wt");
  EXPECT_STREQ(to_string(TrafficCategory::kOutput), "Op");
  EXPECT_STREQ(to_string(TrafficCategory::kPsum), "Psum");
}

}  // namespace
}  // namespace omega
