// Inter-phase cost-model tests: Table III runtime/buffering relations, the
// pipeline recurrence, bandwidth sharing, DRAM spill behaviour, and the
// rigid-substrate flexibility checks of Section V-D.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/generators.hpp"
#include "omega/omega.hpp"

namespace omega {
namespace {

GnnWorkload small_workload(std::uint64_t seed = 1, std::size_t v = 96,
                           std::size_t e = 400, std::size_t f = 32) {
  Rng rng(seed);
  GnnWorkload w;
  w.name = "unit";
  w.adjacency = erdos_renyi(v, e, rng).with_self_loops().gcn_normalized();
  w.in_features = f;
  return w;
}

AcceleratorConfig small_hw(std::size_t pes = 64) {
  AcceleratorConfig hw;
  hw.num_pes = pes;
  return hw;
}

DataflowDescriptor seq_df() {
  auto df = DataflowDescriptor::parse("Seq_AC(VsFsNt, VsGsFt)");
  df.agg.tiles = {.v = 8, .n = 1, .f = 8, .g = 1};
  df.cmb.tiles = {.v = 8, .n = 1, .f = 1, .g = 8};
  return df;
}

namespace {
std::vector<std::uint64_t> prefix_sums(std::vector<std::uint64_t> v) {
  std::uint64_t cum = 0;
  for (auto& x : v) {
    cum += x;
    x = cum;
  }
  return v;
}
}  // namespace

TEST(ComposePipelineTest, PerfectOverlapApproachesSlowerPhase) {
  const auto prod_done = prefix_sums(std::vector<std::uint64_t>(100, 10));
  const std::vector<std::uint64_t> cons(100, 4);
  const std::uint64_t total = compose_parallel_pipeline(prod_done, cons);
  // Producer-bound: 100*10 plus the last consumer chunk.
  EXPECT_EQ(total, 100u * 10 + 4);
}

TEST(ComposePipelineTest, ConsumerBoundPipeline) {
  const auto prod_done = prefix_sums(std::vector<std::uint64_t>(50, 2));
  const std::vector<std::uint64_t> cons(50, 9);
  const std::uint64_t total = compose_parallel_pipeline(prod_done, cons);
  // First chunk fills, then the consumer dominates.
  EXPECT_EQ(total, 2u + 50 * 9);
}

TEST(ComposePipelineTest, LateCompletionGatesConsumer) {
  // A producer that only finishes chunk 0 late (revisiting sweeps) holds
  // the consumer back even if later chunks complete promptly after it.
  const std::vector<std::uint64_t> prod_done{90, 91, 92, 93};
  const std::vector<std::uint64_t> cons{5, 5, 5, 5};
  // cons: starts at 90 -> 95, 100, 105, 110.
  EXPECT_EQ(compose_parallel_pipeline(prod_done, cons), 110u);
}

TEST(ComposePipelineTest, MismatchedChunksThrow) {
  EXPECT_THROW(compose_parallel_pipeline({1, 2}, {1}), Error);
  EXPECT_THROW(compose_parallel_pipeline({}, {}), Error);
}

TEST(OmegaRunTest, SeqCyclesAreSumOfPhases) {
  const Omega omega(small_hw());
  const auto r = omega.run(small_workload(), LayerSpec{16}, seq_df());
  EXPECT_EQ(r.cycles, r.agg.cycles + r.cmb.cycles);
  EXPECT_EQ(r.pes_agg, 64u);
  EXPECT_EQ(r.pes_cmb, 64u);
}

TEST(OmegaRunTest, Table3BufferingReported) {
  const Omega omega(small_hw());
  const GnnWorkload w = small_workload();
  const auto seq = omega.run(w, LayerSpec{16}, seq_df());
  EXPECT_EQ(seq.intermediate_buffer_elements, w.num_vertices() * 32u);

  auto spo = DataflowDescriptor::parse("SP_AC(VsFsNt, VsFsGt)");
  spo.agg.tiles = {.v = 8, .n = 1, .f = 8, .g = 1};
  spo.cmb.tiles = {.v = 8, .n = 1, .f = 8, .g = 1};
  const auto sp = omega.run(w, LayerSpec{16}, spo);
  EXPECT_EQ(sp.intermediate_buffer_elements, 0u);

  auto pp = DataflowDescriptor::parse("PP_AC(VsFsNt, VsGsFt)");
  pp.agg.tiles = {.v = 4, .n = 1, .f = 8, .g = 1};
  pp.cmb.tiles = {.v = 4, .n = 1, .f = 1, .g = 8};
  const auto ppr = omega.run(w, LayerSpec{16}, pp);
  EXPECT_EQ(ppr.granularity, Granularity::kRow);
  EXPECT_EQ(ppr.intermediate_buffer_elements, 2u * 4 * 32);
}

TEST(OmegaRunTest, SpOptimizedBeatsSpGenericByLoadCredit) {
  // Table III: runtime(SP-Opt) = tA + tC - t_load. Same loop orders and
  // tiles evaluated as SP-Generic must be slower.
  const Omega omega(small_hw());
  const GnnWorkload w = small_workload();
  auto spo = DataflowDescriptor::parse("SP_AC(VsFsNt, VsFsGt)");
  spo.agg.tiles = {.v = 8, .n = 1, .f = 8, .g = 1};
  spo.cmb.tiles = {.v = 8, .n = 1, .f = 8, .g = 1};
  auto spg = spo;
  spg.inter = InterPhase::kSPGeneric;
  const auto opt = omega.run(w, LayerSpec{16}, spo);
  const auto gen = omega.run(w, LayerSpec{16}, spg);
  EXPECT_LT(opt.cycles, gen.cycles);
  // And the intermediate never touches the GB under SP-Optimized.
  EXPECT_EQ(opt.traffic.gb_for(TrafficCategory::kIntermediate).total(), 0u);
  EXPECT_GT(gen.traffic.gb_for(TrafficCategory::kIntermediate).total(), 0u);
}

TEST(OmegaRunTest, PPOverlapsButSplitsPEs) {
  const Omega omega(small_hw());
  const GnnWorkload w = small_workload();
  auto pp = DataflowDescriptor::parse("PP_AC(VsFsNt, VsGsFt)");
  pp.agg.tiles = {.v = 4, .n = 1, .f = 8, .g = 1};
  pp.cmb.tiles = {.v = 4, .n = 1, .f = 1, .g = 8};
  const auto r = omega.run(w, LayerSpec{16}, pp);
  EXPECT_EQ(r.pes_agg + r.pes_cmb, 64u);
  // Pipeline runtime is bounded by the phases it interleaves.
  EXPECT_GE(r.cycles, std::max(r.agg.cycles, r.cmb.cycles));
  EXPECT_LE(r.cycles, r.agg.cycles + r.cmb.cycles);
  EXPECT_GT(r.pipeline_chunks, 1u);
  // Intermediate goes through the ping-pong partition, not the GB.
  EXPECT_EQ(r.traffic.gb_for(TrafficCategory::kIntermediate).total(), 0u);
  EXPECT_GT(r.traffic.intermediate_partition.total(), 0u);
}

TEST(OmegaRunTest, PPAllocationShiftsBottleneck) {
  const Omega omega(small_hw(128));
  const GnnWorkload w = small_workload(3, 128, 1200, 64);
  auto pp = DataflowDescriptor::parse("PP_AC(VsFsNt, VsGsFt)");
  auto run_with = [&](double frac, TileSizes at, TileSizes ct) {
    pp.pp_agg_pe_fraction = frac;
    pp.agg.tiles = at;
    pp.cmb.tiles = ct;
    return omega.run(w, LayerSpec{16}, pp).cycles;
  };
  // Same tiles, different allocations: the extreme starving of one phase
  // must not beat the balanced split on a balanced workload.
  const auto balanced = run_with(0.5, {.v = 4, .n = 1, .f = 16, .g = 1},
                                 {.v = 4, .n = 1, .f = 1, .g = 16});
  const auto starved = run_with(0.1, {.v = 2, .n = 1, .f = 4, .g = 1},
                                {.v = 8, .n = 1, .f = 1, .g = 14});
  EXPECT_LE(balanced, starved);
}

TEST(OmegaRunTest, SeqSpillsLargeIntermediateToDram) {
  AcceleratorConfig hw = small_hw();
  hw.gb_bytes = 1024;      // force the spill
  hw.dram_bandwidth = 1;   // make the DRAM round-trip visible at toy scale
  const Omega omega(hw);
  const GnnWorkload w = small_workload();
  const auto r = omega.run(w, LayerSpec{16}, seq_df());
  EXPECT_TRUE(r.intermediate_spilled);
  EXPECT_GT(r.traffic.dram.total(), 0u);
  EXPECT_EQ(r.traffic.gb_for(TrafficCategory::kIntermediate).total(), 0u);
  // Spilling costs runtime.
  AcceleratorConfig big = small_hw();
  const auto on_chip = Omega(big).run(w, LayerSpec{16}, seq_df());
  EXPECT_GT(r.cycles, on_chip.cycles);
  EXPECT_FALSE(on_chip.intermediate_spilled);
}

TEST(OmegaRunTest, EnergyBreakdownConsistent) {
  const Omega omega(small_hw());
  const auto r = omega.run(small_workload(), LayerSpec{16}, seq_df());
  double sum = 0;
  for (const double pj : r.energy.gb_by_category_pj) sum += pj;
  EXPECT_DOUBLE_EQ(sum, r.energy.gb_pj);
  EXPECT_GT(r.energy.rf_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.energy.dram_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.energy.on_chip_pj(),
                   r.energy.gb_pj + r.energy.rf_pj + r.energy.partition_pj);
}

TEST(OmegaRunTest, RigidSubstrateRejectsUnsupportedReduction) {
  AcceleratorConfig rigid = small_hw();
  rigid.supports_spatial_reduction = false;
  const Omega omega(rigid);
  auto df = seq_df();
  df.agg.tiles = {.v = 4, .n = 4, .f = 4, .g = 1};  // spatial N needs a tree
  EXPECT_THROW(omega.run(small_workload(), LayerSpec{16}, df), ResourceError);
}

TEST(OmegaRunTest, SharedBandwidthHurtsPPMost) {
  // Section V-C3: lowering GB bandwidth degrades PP more than Seq because
  // the two phases contend.
  const GnnWorkload w = small_workload(7, 128, 900, 64);
  auto pp = DataflowDescriptor::parse("PP_AC(VsFsNt, VsGsFt)");
  pp.agg.tiles = {.v = 4, .n = 1, .f = 8, .g = 1};
  pp.cmb.tiles = {.v = 4, .n = 1, .f = 1, .g = 8};

  auto ratio = [&](const DataflowDescriptor& df) {
    AcceleratorConfig fast = small_hw();
    fast.distribution_bandwidth = 64;
    fast.reduction_bandwidth = 64;
    AcceleratorConfig slow = small_hw();
    slow.distribution_bandwidth = 8;
    slow.reduction_bandwidth = 8;
    const auto f = Omega(fast).run(w, LayerSpec{16}, df);
    const auto s = Omega(slow).run(w, LayerSpec{16}, df);
    return static_cast<double>(s.cycles) / static_cast<double>(f.cycles);
  };
  EXPECT_GT(ratio(pp), ratio(seq_df()) * 0.99);
}

TEST(OmegaRunTest, ValidatesDataflowBeforeRunning) {
  const Omega omega(small_hw());
  auto bad = DataflowDescriptor::parse("PP_AC(VsFsNt, VsGsFt)");
  bad.pp_agg_pe_fraction = 0.0;
  EXPECT_THROW(omega.run(small_workload(), LayerSpec{16}, bad), Error);
}

}  // namespace
}  // namespace omega
