// Model-level mapping search: per-layer winners against independent
// single-layer searches, lossless pruning, budget handling, and the
// run_model totals contract the combination math relies on.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "dse/model_search.hpp"
#include "graph/generators.hpp"

namespace omega {
namespace {

GnnWorkload toy_workload() {
  Rng rng(42);
  GnnWorkload w;
  w.name = "model-dse-toy";
  w.adjacency = erdos_renyi(80, 400, rng).with_self_loops().gcn_normalized();
  w.in_features = 24;
  return w;
}

Omega toy_omega() {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  return Omega(hw);
}

ModelSearchOptions base_options() {
  ModelSearchOptions opt;
  opt.layer.max_candidates = 300;
  opt.layer.top_k = 8;
  opt.prune = false;
  // Off for the bit-parity tests: a standalone search_mappings call has no
  // Table V seed candidates to compare against.
  opt.seed_table5 = false;
  return opt;
}

TEST(ModelSearchTest, PerLayerWinnersMatchIndependentSearch) {
  // With pruning and budgets off, every layer's sweep must be bit-identical
  // to a standalone search_mappings over the same layer dims (the shared
  // WorkloadContext is an optimization, not a semantic change).
  const Omega omega = toy_omega();
  const GnnWorkload w = toy_workload();
  const GnnModelSpec spec = gcn_two_layer(24, 16, 8);
  const ModelSearchOptions opt = base_options();
  const ModelSearchResult model = search_model_mappings(omega, w, spec, opt);
  ASSERT_EQ(model.layers.size(), 2u);

  GnnWorkload lw = w;
  for (std::size_t l = 0; l < spec.num_layers(); ++l) {
    const GnnLayerSpec layer = spec.layer_spec(l);
    lw.in_features = layer.in_features;
    const SearchResult solo = search_mappings(
        omega, lw, LayerSpec{layer.out_features}, opt.layer);
    ASSERT_FALSE(model.layers[l].search.ranked.empty());
    EXPECT_EQ(solo.best().dataflow.to_string(),
              model.layers[l].search.best().dataflow.to_string());
    EXPECT_EQ(solo.best().cycles, model.layers[l].search.best().cycles);
    EXPECT_EQ(solo.best().on_chip_pj,
              model.layers[l].search.best().on_chip_pj);
    EXPECT_EQ(solo.evaluated, model.layers[l].search.evaluated);
  }
}

TEST(ModelSearchTest, BestComboSumsPerLayerWinners) {
  // Runtime is additive across layers, so the model-level best is exactly
  // the per-layer winners stitched together.
  const ModelSearchResult r = search_model_mappings(
      toy_omega(), toy_workload(), gcn_two_layer(24, 16, 8), base_options());
  const ModelCandidate& best = r.best();
  ASSERT_EQ(best.per_layer.size(), 2u);
  std::uint64_t cycles = 0;
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_EQ(best.per_layer[l].to_string(),
              r.layers[l].search.best().dataflow.to_string());
    cycles += r.layers[l].search.best().cycles;
  }
  EXPECT_EQ(best.total_cycles, cycles);
  // Ranked list is sorted and bounded.
  EXPECT_LE(r.ranked.size(), 16u);
  for (std::size_t i = 1; i < r.ranked.size(); ++i) {
    EXPECT_LE(r.ranked[i - 1].score, r.ranked[i].score);
  }
  // Pareto frontier is monotone.
  for (std::size_t i = 1; i < r.pareto.size(); ++i) {
    EXPECT_GE(r.pareto[i].total_cycles, r.pareto[i - 1].total_cycles);
    EXPECT_LT(r.pareto[i].total_on_chip_pj, r.pareto[i - 1].total_on_chip_pj);
  }
}

TEST(ModelSearchTest, PruningReturnsSameBestCandidate) {
  const Omega omega = toy_omega();
  const GnnWorkload w = toy_workload();
  const GnnModelSpec spec = gcn_two_layer(24, 16, 8);
  ModelSearchOptions opt = base_options();
  const ModelSearchResult full = search_model_mappings(omega, w, spec, opt);
  opt.prune = true;
  opt.layer.prune_seed = 16;
  const ModelSearchResult pruned = search_model_mappings(omega, w, spec, opt);
  EXPECT_GT(pruned.pruned, 0u);
  EXPECT_LE(pruned.evaluated, full.evaluated);
  EXPECT_EQ(full.best().to_string(), pruned.best().to_string());
  EXPECT_EQ(full.best().total_cycles, pruned.best().total_cycles);
  EXPECT_EQ(full.best().total_on_chip_pj, pruned.best().total_on_chip_pj);
}

TEST(ModelSearchTest, HeterogeneousMatchesOrBeatsBestFixedPattern) {
  // With Table V seeding on, every layer's sweep contains each fixed
  // pattern's exact binding, so the heterogeneous winner can never lose to
  // the homogeneous baseline — even under a tiny candidate budget that
  // would subsample those bindings away.
  const Omega omega = toy_omega();
  const GnnWorkload w = toy_workload();
  const GnnModelSpec spec = gcn_two_layer(24, 16, 8);
  ModelSearchOptions opt = base_options();
  opt.seed_table5 = true;
  opt.layer.max_candidates = 40;  // aggressively budgeted
  const ModelSearchResult r = search_model_mappings(omega, w, spec, opt);
  const auto fixed = best_fixed_pattern(omega, w, spec);
  ASSERT_TRUE(fixed.has_value());
  EXPECT_LE(r.best().total_cycles, fixed->result.total_cycles)
      << "heterogeneous search lost to " << fixed->name;
}

TEST(ModelSearchTest, CandidateBudgetCapsEvaluationAcrossLayers) {
  ModelSearchOptions opt = base_options();
  opt.layer.max_candidates = 0;  // only the model budget applies
  opt.max_total_candidates = 120;
  opt.fallback_candidates = 16;
  const ModelSearchResult r = search_model_mappings(
      toy_omega(), toy_workload(), gcn_two_layer(24, 16, 8), opt);
  ASSERT_FALSE(r.ranked.empty());
  // Each layer gets its even share (or the floor), so the total stays near
  // the budget instead of sweeping the full population.
  EXPECT_LE(r.evaluated, 120u + 2 * 16u);
  EXPECT_LT(r.evaluated, r.generated);
}

TEST(ModelSearchTest, ZeroFallbackFloorStillCapsExhaustedBudget) {
  // Regression: fallback_candidates == 0 used to produce a per-layer share
  // of 0, which search_mappings reads as "unlimited" — an exhausted budget
  // then swept the full population. The floor clamps to >= 1 instead.
  ModelSearchOptions opt = base_options();
  opt.layer.max_candidates = 0;
  opt.max_total_candidates = 40;
  opt.fallback_candidates = 0;
  const ModelSearchResult r = search_model_mappings(
      toy_omega(), toy_workload(), gcn_two_layer(24, 16, 8), opt);
  ASSERT_FALSE(r.ranked.empty());
  EXPECT_LE(r.evaluated, 60u);
  EXPECT_LT(r.evaluated, r.generated);
}

TEST(ModelSearchTest, RankedOutputIdenticalAcrossThreadCounts) {
  const Omega omega = toy_omega();
  const GnnWorkload w = toy_workload();
  const GnnModelSpec spec = gcn_two_layer(24, 16, 8);
  ModelSearchOptions opt = base_options();
  opt.prune = true;  // pruning decisions must also be thread-invariant
  opt.layer.threads = 1;
  const ModelSearchResult serial = search_model_mappings(omega, w, spec, opt);
  opt.layer.threads = 8;
  const ModelSearchResult parallel =
      search_model_mappings(omega, w, spec, opt);
  ASSERT_EQ(serial.ranked.size(), parallel.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(serial.ranked[i].to_string(), parallel.ranked[i].to_string());
    EXPECT_EQ(serial.ranked[i].total_cycles, parallel.ranked[i].total_cycles);
  }
  EXPECT_EQ(serial.pruned, parallel.pruned);
}

TEST(ModelSearchTest, ModelRunResultTotalsEqualLayerSums) {
  const Omega omega = toy_omega();
  const GnnWorkload w = toy_workload();
  const GnnModelSpec spec = gcn_two_layer(24, 16, 8);
  const ModelRunResult r =
      run_model(omega, w, spec, table5_patterns().front());
  ASSERT_EQ(r.layers.size(), 2u);
  std::uint64_t cycles = 0, macs = 0;
  double on_chip = 0.0, total = 0.0;
  for (const auto& layer : r.layers) {
    cycles += layer.cycles;
    on_chip += layer.energy.on_chip_pj();
    total += layer.energy.total_pj();
    macs += layer.agg.macs + layer.cmb.macs;
  }
  EXPECT_EQ(r.total_cycles, cycles);
  EXPECT_DOUBLE_EQ(r.total_on_chip_pj, on_chip);
  EXPECT_DOUBLE_EQ(r.total_pj, total);
  EXPECT_EQ(r.total_macs, macs);
}

TEST(ModelSearchTest, RejectsMismatchedFeatureWidth) {
  EXPECT_THROW((void)search_model_mappings(toy_omega(), toy_workload(),
                                           gcn_two_layer(999, 16, 8), {}),
               Error);
}

TEST(ModelSearchTest, MacWeightedBudgetFavorsTheDominantLayer) {
  // Layer 0 (24 -> 4) carries ~6x the MACs of layer 1 (4 -> 4) on this
  // workload; the MAC-weighted split must give it the lion's share of the
  // model budget, while the even split hands both layers the same cap.
  ModelSearchOptions opt = base_options();
  opt.layer.max_candidates = 0;
  opt.max_total_candidates = 140;
  opt.fallback_candidates = 8;
  GnnModelSpec spec;
  spec.feature_widths = {24, 4, 4};

  opt.budget_allocation = BudgetAllocation::kMacWeighted;
  const ModelSearchResult mac = search_model_mappings(
      toy_omega(), toy_workload(), spec, opt);
  ASSERT_EQ(mac.layers.size(), 2u);
  EXPECT_GT(mac.layers[0].search.evaluated,
            3 * mac.layers[1].search.evaluated);
  EXPECT_LE(mac.evaluated, 140u + 2 * 8u);

  opt.budget_allocation = BudgetAllocation::kEven;
  const ModelSearchResult even = search_model_mappings(
      toy_omega(), toy_workload(), spec, opt);
  EXPECT_EQ(even.layers[0].search.evaluated, 70u);
  EXPECT_EQ(even.layers[1].search.evaluated, 70u);

  // Same budget spent either way; the weighted split just aims it better.
  EXPECT_LE(even.evaluated, 140u + 2 * 8u);
  ASSERT_FALSE(mac.ranked.empty());
  ASSERT_FALSE(even.ranked.empty());
}

TEST(ModelSearchTest, PipelinedComposedNeverExceedsSequential) {
  // The composed makespan of any candidate is bounded by its layer sum,
  // and the pipelined best is bounded by the sequential best (it could
  // always pick the same assignment and compose it).
  const Omega omega = toy_omega();
  const GnnWorkload w = toy_workload();
  const GnnModelSpec spec = gcn_two_layer(24, 16, 8);
  ModelSearchOptions opt = base_options();
  const ModelSearchResult seq = search_model_mappings(omega, w, spec, opt);
  opt.compose = ModelCompose::kPipelined;
  const ModelSearchResult pipe = search_model_mappings(omega, w, spec, opt);
  EXPECT_EQ(pipe.compose, ModelCompose::kPipelined);
  ASSERT_FALSE(pipe.ranked.empty());
  for (const ModelCandidate& c : pipe.ranked) {
    EXPECT_LE(c.composed_cycles, c.total_cycles);
  }
  EXPECT_LE(pipe.best().composed_cycles, seq.best().total_cycles);
  // Sequential mode reports composed == summed for every candidate.
  for (const ModelCandidate& c : seq.ranked) {
    EXPECT_EQ(c.composed_cycles, c.total_cycles);
  }
}

TEST(ModelSearchTest, PipelinedPpOnlyStudyBeatsSequentialStrictly) {
  // On a banded graph with the search confined to the Parallel-Pipeline
  // corner (the VersaGNN-style substrate), cross-layer chunk overlap must
  // produce a strictly smaller composed makespan than the sequential best —
  // the acceptance scenario for the composition model. The wide->narrow
  // model makes layer 1 Aggregation-bound: a first-phase head the
  // intra-layer pipeline cannot hide, but the cross-layer chain can.
  GnnWorkload w;
  w.name = "band-1024x16";
  w.adjacency = banded_graph(1024, 16).gcn_normalized();
  w.in_features = 64;
  GnnModelSpec spec;
  spec.feature_widths = {64, 64, 8};
  const Omega omega((AcceleratorConfig()));
  ModelSearchOptions opt;
  opt.layer.max_candidates = 300;
  opt.layer.include_seq = false;
  opt.layer.include_sp_generic = false;
  opt.layer.include_sp_optimized = false;
  opt.seed_table5 = false;  // Table V seeds include non-PP patterns
  opt.prune = true;
  const ModelSearchResult seq = search_model_mappings(omega, w, spec, opt);
  opt.compose = ModelCompose::kPipelined;
  const ModelSearchResult pipe = search_model_mappings(omega, w, spec, opt);
  EXPECT_LT(pipe.best().composed_cycles, seq.best().total_cycles);
  EXPECT_GT(pipe.best().overlapped_boundaries, 0u);
}

TEST(ModelSearchTest, PipelinedRankedIdenticalAcrossThreadCounts) {
  // The composed re-ranking runs on the thread pool; its results are stored
  // by index, so the ranked list must be bit-identical across thread counts
  // (the serve/batch/socket byte-identity tests build on this).
  const Omega omega = toy_omega();
  const GnnWorkload w = toy_workload();
  const GnnModelSpec spec = gcn_two_layer(24, 16, 8);
  ModelSearchOptions opt = base_options();
  opt.prune = true;
  opt.compose = ModelCompose::kPipelined;
  opt.layer.threads = 1;
  const ModelSearchResult serial = search_model_mappings(omega, w, spec, opt);
  opt.layer.threads = 8;
  const ModelSearchResult parallel =
      search_model_mappings(omega, w, spec, opt);
  ASSERT_EQ(serial.ranked.size(), parallel.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(serial.ranked[i].to_string(), parallel.ranked[i].to_string());
    EXPECT_EQ(serial.ranked[i].total_cycles, parallel.ranked[i].total_cycles);
    EXPECT_EQ(serial.ranked[i].composed_cycles,
              parallel.ranked[i].composed_cycles);
    EXPECT_EQ(serial.ranked[i].score, parallel.ranked[i].score);
  }
}

TEST(ModelSearchTest, SharedContextMatchesOwnContext) {
  // The service hands search_model_mappings the registry's warmed context;
  // results must be bit-identical to the self-built-context path.
  const Omega omega = toy_omega();
  const GnnWorkload w = toy_workload();
  const GnnModelSpec spec = gcn_two_layer(24, 16, 8);
  ModelSearchOptions opt = base_options();
  opt.prune = true;
  const ModelSearchResult own = search_model_mappings(omega, w, spec, opt);
  const WorkloadContext context(w.adjacency);
  const ModelSearchResult shared =
      search_model_mappings(omega, w, spec, opt, &context);
  ASSERT_EQ(own.ranked.size(), shared.ranked.size());
  for (std::size_t i = 0; i < own.ranked.size(); ++i) {
    EXPECT_EQ(own.ranked[i].to_string(), shared.ranked[i].to_string());
    EXPECT_EQ(own.ranked[i].total_cycles, shared.ranked[i].total_cycles);
    EXPECT_EQ(own.ranked[i].total_on_chip_pj,
              shared.ranked[i].total_on_chip_pj);
  }
  // And the shared context actually absorbed the layers' schedules.
  EXPECT_GT(context.phase_cache_size() + context.schedule_cache_size(), 0u);
}

}  // namespace
}  // namespace omega
