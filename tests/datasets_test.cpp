// Table IV dataset-model tests: the synthetic workloads must reproduce the
// statistics the dataflow study depends on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

#include "graph/datasets.hpp"
#include "graph/stats.hpp"

namespace omega {
namespace {

TEST(DatasetSpecTest, TableIVRows) {
  const auto& specs = table4_datasets();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "Mutag");
  EXPECT_EQ(specs[4].name, "Reddit-bin");
  EXPECT_EQ(specs[4].batch_size, 32u);  // paper: batch of 32 for Reddit-bin
  EXPECT_EQ(specs[3].batch_size, 64u);
  EXPECT_EQ(specs[5].name, "Citeseer");
  EXPECT_TRUE(specs[5].node_classification);
  EXPECT_EQ(specs[5].num_features, 3703u);
  EXPECT_EQ(specs[6].num_features, 1433u);
}

TEST(DatasetSpecTest, Categories) {
  EXPECT_EQ(dataset_by_name("Mutag").category,
            WorkloadCategory::kLowEdgesFeatures);
  EXPECT_EQ(dataset_by_name("Collab").category, WorkloadCategory::kHighEdges);
  EXPECT_EQ(dataset_by_name("Imdb-bin").category,
            WorkloadCategory::kHighEdges);
  EXPECT_EQ(dataset_by_name("cora").category,
            WorkloadCategory::kHighFeatures);
  EXPECT_THROW(dataset_by_name("pubmed"), Error);
}

TEST(ClampEdgesTest, DegenerateVertexCountsAdmitNoEdges) {
  // Regression: vertices * (vertices - 1) wrapped to SIZE_MAX for
  // vertices == 0, turning the edge cap into "unlimited".
  EXPECT_EQ(clamp_edges(0, 0), 0u);
  EXPECT_EQ(clamp_edges(0, 100), 0u);
  EXPECT_EQ(clamp_edges(1, 100), 0u);
  EXPECT_EQ(clamp_edges(2, 100), 2u);   // a 2-cycle at most
  EXPECT_EQ(clamp_edges(10, 42), 42u);  // under the cap: untouched
  EXPECT_EQ(clamp_edges(10, 1000), 90u);
}

TEST(SynthesisTest, BatchSizesMatchPaper) {
  SynthesisOptions opt;
  opt.scale = 1.0;
  const GnnWorkload mutag = synthesize_workload(dataset_by_name("Mutag"), opt);
  EXPECT_EQ(mutag.num_graphs_in_batch, 64u);
  // 64 graphs of ~17.9 nodes each.
  EXPECT_NEAR(static_cast<double>(mutag.num_vertices()), 64 * 17.93,
              64 * 17.93 * 0.2);
  EXPECT_EQ(mutag.in_features, 28u);
}

TEST(SynthesisTest, NodeClassificationMatchesSpec) {
  const GnnWorkload cs = synthesize_workload(dataset_by_name("Citeseer"));
  EXPECT_EQ(cs.num_vertices(), 3327u);
  // Self loops add V edges on top of the spec's 9464.
  EXPECT_NEAR(static_cast<double>(cs.num_edges()), 9464.0 + 3327.0,
              0.02 * (9464.0 + 3327.0));
  EXPECT_EQ(cs.in_features, 3703u);
  EXPECT_TRUE(cs.adjacency.has_values());  // GCN-normalized by default
}

TEST(SynthesisTest, CitationNetworksHaveEvilRows) {
  const GnnWorkload cs = synthesize_workload(dataset_by_name("Citeseer"));
  const auto stats = compute_degree_stats(cs.adjacency);
  // Section V-B: a handful of dense rows dominate lockstep dataflows. The
  // real Citeseer has max/mean ~26; require a clearly heavy tail.
  EXPECT_GT(stats.skew_ratio, 8.0);
  EXPECT_GT(static_cast<double>(stats.max_degree), 10 * stats.median_degree);
}

TEST(SynthesisTest, DenseGraphSetsAreDense) {
  SynthesisOptions opt;
  opt.scale = 0.5;  // keep the test fast
  const GnnWorkload collab =
      synthesize_workload(dataset_by_name("Collab"), opt);
  // Collab members are ~45% dense within each graph; after block-diagonal
  // batching the average degree is still the per-graph one (~33 * 0.5).
  EXPECT_GT(collab.adjacency.avg_degree(), 8.0);
}

TEST(SynthesisTest, DeterministicForSameSeed) {
  SynthesisOptions opt;
  opt.seed = 123;
  opt.scale = 0.25;
  const GnnWorkload a = synthesize_workload(dataset_by_name("Proteins"), opt);
  const GnnWorkload b = synthesize_workload(dataset_by_name("Proteins"), opt);
  EXPECT_EQ(a.adjacency.edge_array(), b.adjacency.edge_array());
  opt.seed = 124;
  const GnnWorkload c = synthesize_workload(dataset_by_name("Proteins"), opt);
  EXPECT_NE(a.adjacency.edge_array(), c.adjacency.edge_array());
}

TEST(SynthesisTest, ScaleShrinksEverything) {
  SynthesisOptions full;
  full.scale = 1.0;
  SynthesisOptions tiny;
  tiny.scale = 0.1;
  const auto spec = dataset_by_name("Imdb-bin");
  const GnnWorkload a = synthesize_workload(spec, full);
  const GnnWorkload b = synthesize_workload(spec, tiny);
  EXPECT_LT(b.num_vertices() * 5, a.num_vertices());
  EXPECT_LT(b.in_features, a.in_features);
}

TEST(SynthesisTest, AllWorkloadsSynthesizeAndValidate) {
  SynthesisOptions opt;
  opt.scale = 0.2;
  const auto all = synthesize_all_workloads(opt);
  ASSERT_EQ(all.size(), 7u);
  for (const auto& w : all) {
    SCOPED_TRACE(w.name);
    EXPECT_NO_THROW(w.adjacency.validate());
    EXPECT_GE(w.num_vertices(), 2u);
    EXPECT_GE(w.in_features, 1u);
    // Self-loops guarantee no empty rows, matching GCN semantics.
    EXPECT_GE(w.adjacency.avg_degree(), 1.0);
  }
}

// ---- MatrixMarket loader ----------------------------------------------------

TEST(MatrixMarketTest, LoadsCoordinatePattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "\n"
      "4 4 5\n"
      "1 2\n"
      "2 1\n"
      "3 4\n"
      "4 4\n"
      "1 2\n");  // duplicate entry, deduplicated
  const CSRGraph g = load_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);  // 5 entries, 1 duplicate
  ASSERT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);  // A[1][2] -> vertex 0 aggregates from 1
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.neighbors(3)[0], 3u);  // self-loop kept
}

TEST(MatrixMarketTest, SymmetricEntriesAreMirrored) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "2 1 0.5\n"
      "3 1 1.5\n"
      "2 2 2.0\n");  // diagonal entry: mirrored once, not twice
  const CSRGraph g = load_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 5u);  // 2 off-diagonal pairs + 1 diagonal
  EXPECT_EQ(g.degree(0), 2u);    // mirrored (1,2) and (1,3)
  EXPECT_EQ(g.degree(1), 2u);
  // Stored values are ignored; adjacency structure only.
  EXPECT_FALSE(g.has_values());
}

TEST(MatrixMarketTest, RejectsMalformedInputs) {
  const auto load = [](const char* text) {
    std::istringstream in(text);
    return load_matrix_market(in);
  };
  // Wrong banner / object / format / field / symmetry.
  EXPECT_THROW(load("%%NotMM matrix coordinate pattern general\n1 1 0\n"),
               InvalidArgumentError);
  EXPECT_THROW(load("%%MatrixMarket vector coordinate pattern general\n"),
               InvalidArgumentError);
  EXPECT_THROW(load("%%MatrixMarket matrix array real general\n2 2\n"),
               InvalidArgumentError);
  EXPECT_THROW(load("%%MatrixMarket matrix coordinate complex general\n"),
               InvalidArgumentError);
  EXPECT_THROW(
      load("%%MatrixMarket matrix coordinate pattern hermitian\n2 2 0\n"),
      InvalidArgumentError);
  // Non-square, out-of-range ids, truncated entries, missing value.
  EXPECT_THROW(
      load("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n"),
      InvalidArgumentError);
  EXPECT_THROW(
      load("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 5\n"),
      InvalidArgumentError);
  EXPECT_THROW(
      load("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n"),
      InvalidArgumentError);
  EXPECT_THROW(
      load("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n"),
      InvalidArgumentError);
  // Trailing entries beyond the declared count.
  EXPECT_THROW(load("%%MatrixMarket matrix coordinate pattern general\n"
                    "2 2 1\n1 2\n2 1\n"),
               InvalidArgumentError);
  // Missing file.
  EXPECT_THROW(load_matrix_market(std::string("/nonexistent/x.mtx")),
               InvalidArgumentError);
}

TEST(MatrixMarketTest, WorkloadFromFileIsServable) {
  const std::string path = ::testing::TempDir() + "omega_mtx_test.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "5 5 4\n"
        << "2 1\n3 1\n4 2\n5 3\n";
  }
  const GnnWorkload w = workload_from_matrix_market(path, 12);
  EXPECT_EQ(w.name, "omega_mtx_test");
  EXPECT_EQ(w.num_vertices(), 5u);
  EXPECT_EQ(w.in_features, 12u);
  // Default options add self-loops and GCN normalization, like synthesis.
  EXPECT_EQ(w.num_edges(), 2 * 4u + 5u);
  EXPECT_TRUE(w.adjacency.has_values());
  w.adjacency.validate();
  EXPECT_THROW((void)workload_from_matrix_market(path, 0),
               InvalidArgumentError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace omega
