// Tile-binding tests: the Table V configurations must bind to tiles whose
// static utilization is near 100% and whose distinguishing properties
// (high T_V, spatial N, ...) actually hold on representative workloads.
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "omega/tiler.hpp"

namespace omega {
namespace {

WorkloadDims citeseer_like() {
  WorkloadDims d;
  d.vertices = 3327;
  d.in_features = 3703;
  d.out_features = 16;
  d.avg_degree = 3.8;
  d.max_degree = 120;
  return d;
}

WorkloadDims collab_like() {
  WorkloadDims d;
  d.vertices = 4767;
  d.in_features = 492;
  d.out_features = 16;
  d.avg_degree = 33.0;
  d.max_degree = 70;
  return d;
}

TEST(TilerTest, Pow2Helpers) {
  EXPECT_EQ(pow2_floor(1), 1u);
  EXPECT_EQ(pow2_floor(511), 256u);
  EXPECT_EQ(pow2_floor(512), 512u);
  EXPECT_EQ(pow2_ceil(3), 4u);
  EXPECT_EQ(pow2_ceil(0), 1u);
}

TEST(TilerTest, AllPatternsBindAndValidate) {
  const AcceleratorConfig hw = default_accelerator();
  for (const auto& d : {citeseer_like(), collab_like()}) {
    for (const auto& p : table5_patterns()) {
      SCOPED_TRACE(p.name);
      const DataflowDescriptor df = bind_tiles(p, d, hw);
      EXPECT_FALSE(df.validation_error().has_value())
          << df.validation_error().value_or("");
      EXPECT_TRUE(p.agg.matches(df.agg.tiles))
          << p.name << " agg tiles violate the pattern tags";
    }
  }
}

TEST(TilerTest, StaticUtilizationNearFull) {
  // Section V-A3: tiles chosen so static utilization is ~100%.
  const AcceleratorConfig hw = default_accelerator();
  const auto d = citeseer_like();
  for (const auto& p : table5_patterns()) {
    SCOPED_TRACE(p.name);
    const DataflowDescriptor df = bind_tiles(p, d, hw);
    std::size_t pes_agg = hw.num_pes, pes_cmb = hw.num_pes;
    if (p.inter == InterPhase::kParallelPipeline) {
      pes_agg = hw.num_pes / 2;
      pes_cmb = hw.num_pes - pes_agg;
    }
    EXPECT_GE(static_utilization(df.agg, pes_agg), 0.99) << df.to_string();
    // SP-Optimized combination reuses the aggregation tile (G temporal), so
    // its spatial footprint equals the aggregation one.
    EXPECT_GE(static_utilization(df.cmb, pes_cmb), 0.49) << df.to_string();
  }
}

TEST(TilerTest, Seq2BindsSpatialNeighborsNearAvgDegree) {
  const DataflowDescriptor df = bind_tiles(pattern_by_name("Seq2"),
                                           collab_like(), default_accelerator());
  EXPECT_GT(df.agg.tiles.n, 1u);
  EXPECT_LE(df.agg.tiles.n, 64u);
}

TEST(TilerTest, SpHighVTakesAllPEs) {
  const DataflowDescriptor df = bind_tiles(
      pattern_by_name("SPhighV"), citeseer_like(), default_accelerator());
  EXPECT_EQ(df.agg.tiles.v, 512u);
  EXPECT_EQ(df.agg.tiles.f, 1u);
  EXPECT_EQ(df.cmb.tiles.v, 512u);  // tied by SP-Optimized
}

TEST(TilerTest, Sp2HasHighButNotExtremeV) {
  const DataflowDescriptor df = bind_tiles(
      pattern_by_name("SP2"), citeseer_like(), default_accelerator());
  EXPECT_GE(df.agg.tiles.v, 64u);
  EXPECT_LT(df.agg.tiles.v, 512u);
  EXPECT_GT(df.agg.tiles.f, 1u);
}

TEST(TilerTest, Sp1IsFeatureHeavy) {
  const DataflowDescriptor df = bind_tiles(
      pattern_by_name("SP1"), citeseer_like(), default_accelerator());
  EXPECT_GT(df.agg.tiles.f, df.agg.tiles.v);
  EXPECT_GE(df.agg.tiles.f, 128u);
}

TEST(TilerTest, PP3HasCoarserRowsThanPP1) {
  const auto d = citeseer_like();
  const DataflowDescriptor pp1 =
      bind_tiles(pattern_by_name("PP1"), d, default_accelerator());
  const DataflowDescriptor pp3 =
      bind_tiles(pattern_by_name("PP3"), d, default_accelerator());
  EXPECT_GT(pp3.t_row_max(), pp1.t_row_max());
}

TEST(TilerTest, PPFractionSplitsBudget) {
  DataflowPattern p = pattern_by_name("PP3");
  p.pp_agg_pe_fraction = 0.25;
  const DataflowDescriptor df =
      bind_tiles(p, citeseer_like(), default_accelerator());
  EXPECT_LE(df.agg.spatial_extent(), 128u);
  EXPECT_LE(df.cmb.spatial_extent(), 384u);
}

TEST(TilerTest, SmallWorkloadsClampTiles) {
  WorkloadDims d;
  d.vertices = 10;
  d.in_features = 4;
  d.out_features = 3;
  d.avg_degree = 2.0;
  d.max_degree = 4;
  for (const auto& p : table5_patterns()) {
    SCOPED_TRACE(p.name);
    const DataflowDescriptor df = bind_tiles(p, d, default_accelerator());
    EXPECT_LE(df.agg.tiles.v, 16u);
    EXPECT_LE(df.agg.tiles.f, 4u);
    EXPECT_FALSE(df.validation_error().has_value());
  }
}

}  // namespace
}  // namespace omega
