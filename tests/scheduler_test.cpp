// Request-scheduler tests: EDF-within-band dispatch order, priority bands
// (a low-priority flood never starves the high band), deterministic
// deadline shedding through the injectable clock, bounded admission with
// victim eviction, structured overloaded responses, exactly-once
// completions, and drain-on-stop. The policy is driven single-threaded via
// run_one() where order matters; the threaded paths are exercised for
// liveness and completion accounting (and run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "util/json.hpp"

namespace omega::service {
namespace {

/// Handler that records dispatch order and echoes the line back.
struct RecordingHandler {
  std::mutex mu;
  std::vector<std::string> dispatched;

  RequestScheduler::Handler fn() {
    return [this](const std::string& line) {
      const std::scoped_lock lock(mu);
      dispatched.push_back(line);
      return "handled:" + line;
    };
  }
};

// Completion callbacks capture the collection vector by reference, so in
// every test it is declared BEFORE the scheduler: the scheduler's
// destructor sheds whatever is still queued, and those completions must
// land in live storage.
struct CollectedResponse {
  std::string response;
  bool shed = false;
};

RequestScheduler::Completion collect(std::vector<CollectedResponse>& out,
                                     std::mutex& mu) {
  return [&out, &mu](std::string response, bool shed) {
    const std::scoped_lock lock(mu);
    out.push_back({std::move(response), shed});
  };
}

SubmitMeta meta_of(std::uint64_t id, std::uint64_t priority,
                   std::uint64_t deadline_ms = 0) {
  SubmitMeta m;
  m.id = id;
  m.version = 2;
  m.priority = priority;
  m.deadline_ms = deadline_ms;
  return m;
}

/// Shed responses are structured protocol errors, not dropped requests.
void expect_overloaded(const CollectedResponse& r, std::uint64_t id) {
  EXPECT_TRUE(r.shed);
  const JsonValue root = JsonValue::parse(r.response);
  EXPECT_EQ(root.find("id")->as_u64(), id);
  EXPECT_FALSE(root.find("ok")->as_bool());
  EXPECT_EQ(root.find("error")->find("type")->as_string(), "overloaded");
}

TEST(SchedulerTest, DispatchesHighestBandFirst) {
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  (void)sched.submit("low-a", meta_of(1, 0), collect(responses, mu));
  (void)sched.submit("high", meta_of(2, 7), collect(responses, mu));
  (void)sched.submit("mid", meta_of(3, 3), collect(responses, mu));
  (void)sched.submit("low-b", meta_of(4, 0), collect(responses, mu));

  while (sched.run_one()) {
  }
  const std::vector<std::string> want = {"high", "mid", "low-a", "low-b"};
  EXPECT_EQ(handler.dispatched, want);
  EXPECT_EQ(responses.size(), 4u);
}

TEST(SchedulerTest, EarliestDeadlineFirstWithinBand) {
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  // Same band: the later-submitted tighter deadline dispatches first;
  // no-deadline requests sort last, FIFO between themselves.
  (void)sched.submit("no-deadline-a", meta_of(1, 2), collect(responses, mu));
  (void)sched.submit("loose", meta_of(2, 2, 500), collect(responses, mu));
  (void)sched.submit("tight", meta_of(3, 2, 50), collect(responses, mu));
  (void)sched.submit("no-deadline-b", meta_of(4, 2), collect(responses, mu));

  while (sched.run_one()) {
  }
  const std::vector<std::string> want = {"tight", "loose", "no-deadline-a",
                                         "no-deadline-b"};
  EXPECT_EQ(handler.dispatched, want);
}

TEST(SchedulerTest, LowPriorityFloodNeverStarvesHighBand) {
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  for (int i = 0; i < 64; ++i) {
    (void)sched.submit("flood-" + std::to_string(i), meta_of(100 + i, 0),
                       collect(responses, mu));
  }
  for (int i = 0; i < 4; ++i) {
    (void)sched.submit("urgent-" + std::to_string(i), meta_of(200 + i, 7),
                       collect(responses, mu));
  }
  // Every high-band request dispatches before any of the queued flood.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(sched.run_one());
  const std::vector<std::string> want = {"urgent-0", "urgent-1", "urgent-2",
                                         "urgent-3"};
  EXPECT_EQ(handler.dispatched, want);
  while (sched.run_one()) {
  }
  EXPECT_EQ(handler.dispatched.size(), 68u);
}

TEST(SchedulerTest, DeadlineExpiredBeforeDispatchIsShedDeterministically) {
  RecordingHandler handler;
  std::uint64_t fake_now_us = 0;
  SchedulerOptions opts;
  opts.now_us = [&fake_now_us] { return fake_now_us; };
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  (void)sched.submit("expiring", meta_of(11, 0, 10), collect(responses, mu));
  (void)sched.submit("surviving", meta_of(12, 0, 1000),
                     collect(responses, mu));
  fake_now_us = 10 * 1000;  // exactly at the first deadline: expired
  while (sched.run_one()) {
  }
  // The expired request never reached the handler; the survivor did.
  const std::vector<std::string> want = {"surviving"};
  EXPECT_EQ(handler.dispatched, want);
  ASSERT_EQ(responses.size(), 2u);
  expect_overloaded(responses[0], 11);
  EXPECT_FALSE(responses[1].shed);
}

TEST(SchedulerTest, InfeasibleDeadlineShedsAtAdmission) {
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  opts.min_feasible_deadline_ms = 20;
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  EXPECT_EQ(sched.submit("hopeless", meta_of(21, 0, 5),
                         collect(responses, mu)),
            SubmitOutcome::kShedInfeasible);
  EXPECT_EQ(sched.submit("feasible", meta_of(22, 0, 20),
                         collect(responses, mu)),
            SubmitOutcome::kAdmitted);
  EXPECT_EQ(sched.submit("no-deadline", meta_of(23, 0),
                         collect(responses, mu)),
            SubmitOutcome::kAdmitted);
  ASSERT_GE(responses.size(), 1u);
  expect_overloaded(responses[0], 21);
  while (sched.run_one()) {
  }
  EXPECT_EQ(responses.size(), 3u);
}

TEST(SchedulerTest, FullQueueShedsIncomingAtSameOrLowerPriority) {
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  opts.max_queue_depth = 2;
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  EXPECT_EQ(sched.submit("a", meta_of(1, 3), collect(responses, mu)),
            SubmitOutcome::kAdmitted);
  EXPECT_EQ(sched.submit("b", meta_of(2, 3), collect(responses, mu)),
            SubmitOutcome::kAdmitted);
  // Same band: no victim below it, the incoming request sheds.
  EXPECT_EQ(sched.submit("c", meta_of(3, 3), collect(responses, mu)),
            SubmitOutcome::kShedQueueFull);
  ASSERT_EQ(responses.size(), 1u);
  expect_overloaded(responses[0], 3);
  EXPECT_EQ(sched.queue_depth(), 2u);
}

TEST(SchedulerTest, FullQueueEvictsLowerBandVictimForHigherPriority) {
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  opts.max_queue_depth = 2;
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  (void)sched.submit("low-old", meta_of(1, 0), collect(responses, mu));
  (void)sched.submit("low-new", meta_of(2, 0), collect(responses, mu));
  // Higher band outranks the queued flood: the newest lowest-band entry is
  // shed, the urgent request is admitted.
  EXPECT_EQ(sched.submit("urgent", meta_of(3, 7), collect(responses, mu)),
            SubmitOutcome::kAdmitted);
  ASSERT_EQ(responses.size(), 1u);
  expect_overloaded(responses[0], 2);
  EXPECT_EQ(sched.queue_depth(), 2u);
  while (sched.run_one()) {
  }
  const std::vector<std::string> want = {"urgent", "low-old"};
  EXPECT_EQ(handler.dispatched, want);
}

TEST(SchedulerTest, ShedResponseEchoesVersion) {
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  opts.max_queue_depth = 1;
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  (void)sched.submit("a", meta_of(1, 0), collect(responses, mu));
  (void)sched.submit("b", meta_of(9, 0), collect(responses, mu));
  ASSERT_EQ(responses.size(), 1u);
  const JsonValue root = JsonValue::parse(responses[0].response);
  EXPECT_EQ(root.find("version")->as_u64(), 2u);
}

TEST(SchedulerTest, ThreadedFloodCompletesEveryRequestExactlyOnce) {
  std::atomic<int> handled{0};
  SchedulerOptions opts;
  opts.workers = 4;
  opts.max_queue_depth = 16;  // small: forces sheds under the flood
  RequestScheduler sched(
      [&handled](const std::string&) {
        handled.fetch_add(1);
        return std::string("{\"ok\":true}");
      },
      opts);
  sched.start();

  std::mutex mu;
  std::vector<CollectedResponse> responses;
  constexpr int kFlood = 200;
  for (int i = 0; i < kFlood; ++i) {
    (void)sched.submit("r" + std::to_string(i),
                       meta_of(static_cast<std::uint64_t>(i), i % 2 == 0 ? 0 : 5),
                       collect(responses, mu));
  }
  sched.stop();  // drains: every admitted request completes
  EXPECT_EQ(responses.size(), static_cast<std::size_t>(kFlood));
  int sheds = 0;
  for (const CollectedResponse& r : responses) {
    if (r.shed) ++sheds;
  }
  EXPECT_EQ(handled.load(), kFlood - sheds);
}

TEST(SchedulerTest, StopShedsQueuedWorkInManualMode) {
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  (void)sched.submit("queued", meta_of(5, 0), collect(responses, mu));
  sched.stop();  // no workers were started: queued work sheds, not hangs
  ASSERT_EQ(responses.size(), 1u);
  expect_overloaded(responses[0], 5);
  // Submissions after stop shed too.
  EXPECT_EQ(sched.submit("late", meta_of(6, 0), collect(responses, mu)),
            SubmitOutcome::kShedShutdown);
  ASSERT_EQ(responses.size(), 2u);
  expect_overloaded(responses[1], 6);
}

TEST(SchedulerTest, EmitsQueueAndShedMetrics) {
  obs::MetricsRegistry metrics;
  RecordingHandler handler;
  SchedulerOptions opts;
  opts.now_us = [] { return std::uint64_t{0}; };
  opts.max_queue_depth = 1;
  opts.metrics = &metrics;
  std::mutex mu;
  std::vector<CollectedResponse> responses;
  RequestScheduler sched(handler.fn(), opts);
  (void)sched.submit("a", meta_of(1, 4), collect(responses, mu));
  (void)sched.submit("b", meta_of(2, 4), collect(responses, mu));  // shed
  while (sched.run_one()) {
  }
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("service.sched.submitted"), 2u);
  EXPECT_EQ(snap.counters.at("service.sched.dispatched"), 1u);
  EXPECT_EQ(snap.counters.at("service.sched.shed"), 1u);
  EXPECT_EQ(snap.counters.at("service.sched.shed.queue_full"), 1u);
  // Per-band latency histogram of the dispatched request's band.
  EXPECT_EQ(snap.histograms.count("service.sched.latency_us.band4"), 1u);
}

}  // namespace
}  // namespace omega::service
