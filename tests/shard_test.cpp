// Shard-router and sharded-registry tests: FNV-1a known-answer pins
// (platform-independent routing), route determinism across router
// instances, consistent-hash remap bounds when the shard count grows,
// shards == 1 identity with the unsharded registry, capacity splitting,
// and signature-sorted entry_stats merging across shards.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "service/registry.hpp"
#include "service/shard.hpp"

namespace omega::service {
namespace {

WorkloadRef ref_of(const std::string& dataset, double scale) {
  WorkloadRef r;
  r.dataset = dataset;
  r.scale = scale;
  return r;
}

TEST(ShardRouterTest, Fnv1a64KnownAnswers) {
  // Published FNV-1a 64-bit vectors: any deviation means the routing hash
  // (and therefore shard placement) changed across builds.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ShardRouterTest, RouteIsDeterministicAcrossInstances) {
  const ShardRouter a(8);
  const ShardRouter b(8);
  for (int i = 0; i < 100; ++i) {
    const std::string sig = "workload-signature-" + std::to_string(i);
    const std::size_t shard = a.route(sig);
    EXPECT_LT(shard, 8u);
    EXPECT_EQ(shard, b.route(sig));
    EXPECT_EQ(shard, a.route(sig));  // stable on repeat
  }
}

TEST(ShardRouterTest, SingleShardRoutesEverythingToZero) {
  const ShardRouter router(1);
  EXPECT_EQ(router.route(""), 0u);
  EXPECT_EQ(router.route("anything"), 0u);
}

TEST(ShardRouterTest, SpreadsKeysAcrossShards) {
  const ShardRouter router(8);
  std::set<std::size_t> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(router.route("key-" + std::to_string(i)));
  }
  // 200 keys over 8 shards: a ring that funnels everything into one or two
  // shards would defeat the point of sharding.
  EXPECT_GE(used.size(), 4u);
}

TEST(ShardRouterTest, GrowingTheRingRemapsOnlyAFraction) {
  const ShardRouter before(4);
  const ShardRouter after(5);
  constexpr int kKeys = 400;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string sig = "sig-" + std::to_string(i);
    if (before.route(sig) != after.route(sig)) ++moved;
  }
  // Consistent hashing: ~1/5 of keys move to the new shard. `hash % N`
  // would move ~4/5. Allow generous slack over the expectation.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(ShardRouterTest, WorkloadSignatureRoutingIsStable) {
  // The real routing keys are WorkloadRef signatures; pin that the same ref
  // always lands on the same shard and that distinct scales may differ.
  const ShardRouter router(4);
  const std::string cora = ref_of("Cora", 0.25).signature();
  const std::string cora_again = ref_of("Cora", 0.25).signature();
  EXPECT_EQ(cora, cora_again);
  EXPECT_EQ(router.route(cora), router.route(cora_again));
  EXPECT_NE(cora, ref_of("Cora", 0.5).signature());
}

TEST(ShardedRegistryTest, SingleShardMatchesUnshardedRegistry) {
  WorkloadRegistry plain(4);
  ShardedRegistry sharded(4, 1);
  const std::vector<WorkloadRef> refs = {
      ref_of("Cora", 0.1), ref_of("Cora", 0.2), ref_of("Cora", 0.1),
      ref_of("Citeseer", 0.1), ref_of("Cora", 0.2)};
  for (const WorkloadRef& r : refs) {
    (void)plain.acquire(r);
    (void)sharded.acquire(r);
  }
  const RegistryStats a = plain.stats();
  const RegistryStats b = sharded.stats();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.resident, b.resident);
  EXPECT_EQ(a.capacity, b.capacity);
  EXPECT_EQ(plain.epoch(), sharded.epoch());

  const std::vector<RegistryEntryStats> ea = plain.entry_stats();
  const std::vector<RegistryEntryStats> eb = sharded.entry_stats();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].signature, eb[i].signature);
    EXPECT_EQ(ea[i].hits, eb[i].hits);
    EXPECT_EQ(ea[i].last_hit_epoch, eb[i].last_hit_epoch);
    EXPECT_EQ(ea[i].warm, eb[i].warm);
  }
}

TEST(ShardedRegistryTest, SplitsCapacityAndAggregatesStats) {
  ShardedRegistry sharded(8, 4);
  EXPECT_EQ(sharded.shards(), 4u);
  // ceil(8 / 4) = 2 per shard, summed back to 8.
  EXPECT_EQ(sharded.stats().capacity, 8u);

  (void)sharded.acquire(ref_of("Cora", 0.1));
  (void)sharded.acquire(ref_of("Cora", 0.1));
  (void)sharded.acquire(ref_of("Citeseer", 0.1));
  const RegistryStats s = sharded.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.resident, 2u);
}

TEST(ShardedRegistryTest, EntryStatsMergeSignatureSorted) {
  ShardedRegistry sharded(8, 4);
  (void)sharded.acquire(ref_of("Cora", 0.1));
  (void)sharded.acquire(ref_of("Citeseer", 0.1));
  (void)sharded.acquire(ref_of("Mutag", 1.0));
  const std::vector<RegistryEntryStats> rows = sharded.entry_stats();
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].signature, rows[i].signature);
  }
}

TEST(ShardedRegistryTest, EpochAdvancesAllShardsTogether) {
  ShardedRegistry sharded(8, 4);
  EXPECT_EQ(sharded.epoch(), 1u);
  sharded.advance_epoch();
  sharded.advance_epoch();
  EXPECT_EQ(sharded.epoch(), 3u);
}

TEST(ShardedRegistryTest, RoutedAcquiresHitTheirOwnShard) {
  ShardedRegistry sharded(16, 4);
  const WorkloadRef ref = ref_of("Cora", 0.25);
  const std::size_t shard = sharded.shard_of(ref.signature());
  EXPECT_LT(shard, 4u);
  (void)sharded.acquire(ref);  // miss
  (void)sharded.acquire(ref);  // warm hit on the same shard
  const RegistryStats s = sharded.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

}  // namespace
}  // namespace omega::service
