// Mapping-search tests: tiling enumeration, objective ranking, Pareto
// structure, and the optimizer's value over the hand-picked Table V configs.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "dse/search.hpp"
#include "graph/generators.hpp"

namespace omega {
namespace {

GnnWorkload toy_workload() {
  Rng rng(42);
  GnnWorkload w;
  w.name = "dse-toy";
  w.adjacency = erdos_renyi(80, 400, rng).with_self_loops().gcn_normalized();
  w.in_features = 24;
  return w;
}

TEST(TileTriplesTest, RespectsBudgetAndCaps) {
  const auto triples = enumerate_tile_triples(64, 16, 4, 64, 0.5);
  ASSERT_FALSE(triples.empty());
  for (const auto& [a, b, c] : triples) {
    EXPECT_LE(a * b * c, 64u);
    EXPECT_GE(a * b * c, 32u);
    EXPECT_LE(a, 16u);
    EXPECT_LE(b, 4u);
    // Powers of two only.
    EXPECT_EQ(a & (a - 1), 0u);
  }
}

TEST(TileTriplesTest, SmallCapsStillYieldSaturatedPoints) {
  // Caps so small the budget cannot be filled: the saturated corner must
  // still be emitted (utilization floor is waived when nothing can grow).
  const auto triples = enumerate_tile_triples(512, 2, 2, 2, 0.9);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0][0] * triples[0][1] * triples[0][2], 8u);
}

TEST(SearchTest, FindsCandidatesAndRanksByObjective) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  SearchOptions opt;
  opt.max_candidates = 400;
  opt.top_k = 8;
  const SearchResult r =
      search_mappings(omega, toy_workload(), LayerSpec{8}, opt);
  ASSERT_FALSE(r.ranked.empty());
  EXPECT_GT(r.generated, 0u);
  EXPECT_LE(r.ranked.size(), 8u);
  for (std::size_t i = 1; i < r.ranked.size(); ++i) {
    EXPECT_LE(r.ranked[i - 1].score, r.ranked[i].score);
  }
  EXPECT_EQ(r.best().score, static_cast<double>(r.best().cycles));
}

TEST(SearchTest, ParetoFrontierIsMonotone) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  SearchOptions opt;
  opt.max_candidates = 300;
  const SearchResult r =
      search_mappings(omega, toy_workload(), LayerSpec{8}, opt);
  ASSERT_GE(r.pareto.size(), 1u);
  for (std::size_t i = 1; i < r.pareto.size(); ++i) {
    EXPECT_GE(r.pareto[i].cycles, r.pareto[i - 1].cycles);
    EXPECT_LT(r.pareto[i].on_chip_pj, r.pareto[i - 1].on_chip_pj);
  }
}

TEST(SearchTest, EnergyObjectiveChangesWinner) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  SearchOptions runtime_opt;
  runtime_opt.max_candidates = 300;
  SearchOptions energy_opt = runtime_opt;
  energy_opt.objective = Objective::kEnergy;
  const auto by_runtime =
      search_mappings(omega, toy_workload(), LayerSpec{8}, runtime_opt);
  const auto by_energy =
      search_mappings(omega, toy_workload(), LayerSpec{8}, energy_opt);
  EXPECT_LE(by_energy.best().on_chip_pj, by_runtime.best().on_chip_pj);
}

TEST(SearchTest, StrategyFiltersApply) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  SearchOptions opt;
  opt.include_seq = false;
  opt.include_sp_generic = false;
  opt.include_sp_optimized = true;
  opt.include_pp = false;
  opt.max_candidates = 100;
  const auto r = search_mappings(omega, toy_workload(), LayerSpec{8}, opt);
  for (const auto& c : r.ranked) {
    EXPECT_EQ(c.dataflow.inter, InterPhase::kSPOptimized);
  }
}

TEST(SearchTest, SinglePeAcceleratorSearchIsSafe) {
  // Regression: generate_for_pair used to hit clamp(x, 1, pes - 1) with
  // pes == 1 when PP generation was enabled — UB (hi < lo). A 1-PE search
  // must run clean (PP candidates skipped), and the winner is purely
  // temporal by construction.
  AcceleratorConfig hw;
  hw.num_pes = 1;
  const Omega omega(hw);
  SearchOptions opt;  // include_pp defaults to true — the regression trigger
  opt.max_candidates = 200;
  const SearchResult r =
      search_mappings(omega, toy_workload(), LayerSpec{8}, opt);
  ASSERT_FALSE(r.ranked.empty());
  for (const auto& c : r.ranked) {
    EXPECT_NE(c.dataflow.inter, InterPhase::kParallelPipeline);
  }
}

TEST(SearchTest, SinglePeRejectsParallelPipelineDescriptors) {
  // Omega::run on a hand-built PP descriptor must throw (not UB) on a
  // single-PE substrate.
  AcceleratorConfig hw;
  hw.num_pes = 1;
  const Omega omega(hw);
  AcceleratorConfig hw64;
  hw64.num_pes = 64;
  const Omega omega64(hw64);
  const GnnWorkload w = toy_workload();
  SearchOptions opt;
  opt.include_seq = false;
  opt.include_sp_generic = false;
  opt.include_sp_optimized = false;
  opt.max_candidates = 10;
  const auto pp =
      search_mappings(omega64, w, LayerSpec{8}, opt).best().dataflow;
  EXPECT_THROW((void)omega.run(w, LayerSpec{8}, pp), ResourceError);
}

TEST(SearchTest, RankedOutputIdenticalAcrossThreadCounts) {
  // Ranking breaks ties on (score, cycles, on_chip_pj, descriptor key), so
  // the ranked list is a pure function of the candidate population — not of
  // evaluation order or thread count.
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  const GnnWorkload w = toy_workload();
  SearchOptions opt;
  opt.max_candidates = 400;
  opt.top_k = 32;
  opt.threads = 1;
  const SearchResult serial = search_mappings(omega, w, LayerSpec{8}, opt);
  opt.threads = 8;
  const SearchResult parallel = search_mappings(omega, w, LayerSpec{8}, opt);
  ASSERT_EQ(serial.ranked.size(), parallel.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(serial.ranked[i].dataflow.to_string(),
              parallel.ranked[i].dataflow.to_string());
    EXPECT_EQ(serial.ranked[i].cycles, parallel.ranked[i].cycles);
    EXPECT_EQ(serial.ranked[i].on_chip_pj, parallel.ranked[i].on_chip_pj);
  }
  ASSERT_EQ(serial.pareto.size(), parallel.pareto.size());
  for (std::size_t i = 0; i < serial.pareto.size(); ++i) {
    EXPECT_EQ(serial.pareto[i].dataflow.to_string(),
              parallel.pareto[i].dataflow.to_string());
  }
}

TEST(SearchTest, IdealMacBoundIsALowerBound) {
  // Soundness of the pruning bound: no evaluated candidate finishes in
  // fewer cycles than its ideal-MAC bound.
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  const GnnWorkload w = toy_workload();
  const LayerSpec layer{8};
  const WorkloadDims dims = dims_of(w, layer);
  SearchOptions opt;
  opt.include_ca = true;
  const auto candidates =
      enumerate_search_candidates(opt, dims, hw.num_pes);
  ASSERT_FALSE(candidates.empty());
  std::size_t checked = 0;
  for (std::size_t i = 0; i < candidates.size(); i += 7) {
    const auto& df = candidates[i];
    try {
      const RunResult r = omega.run(w, layer, df);
      EXPECT_GE(r.cycles, ideal_mac_cycle_bound(df, hw.num_pes, w.num_edges(),
                                                dims))
          << df.to_string();
      ++checked;
    } catch (const Error&) {
      // infeasible on the default substrate; irrelevant to the bound
    }
  }
  EXPECT_GT(checked, 50u);
}

TEST(SearchTest, PrunedSearchReturnsBitIdenticalBest) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  const GnnWorkload w = toy_workload();
  SearchOptions opt;
  opt.max_candidates = 600;
  const SearchResult full = search_mappings(omega, w, LayerSpec{8}, opt);
  opt.prune = true;
  opt.prune_seed = 16;
  const SearchResult pruned = search_mappings(omega, w, LayerSpec{8}, opt);
  EXPECT_GT(pruned.pruned, 0u);  // the bound actually culls on this workload
  EXPECT_LE(pruned.evaluated, full.evaluated);
  EXPECT_EQ(full.best().dataflow.to_string(),
            pruned.best().dataflow.to_string());
  EXPECT_EQ(full.best().cycles, pruned.best().cycles);
  EXPECT_EQ(full.best().on_chip_pj, pruned.best().on_chip_pj);
}

TEST(SearchTest, ExtraCandidatesSurvivePruning) {
  // extra_candidates are contractually always evaluated — even when their
  // ideal-MAC bound would otherwise let the prune pass cull them.
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  const GnnWorkload w = toy_workload();
  SearchOptions opt;
  opt.max_candidates = 300;
  opt.top_k = 100000;  // keep everything evaluated in the ranked list
  const SearchResult full = search_mappings(omega, w, LayerSpec{8}, opt);
  ASSERT_GT(full.ranked.size(), 1u);
  const DataflowDescriptor worst = full.ranked.back().dataflow;

  SearchOptions popt;
  popt.max_candidates = 100;
  popt.top_k = 100000;
  popt.prune = true;
  popt.prune_seed = 8;
  popt.extra_candidates = {worst};
  const SearchResult pruned = search_mappings(omega, w, LayerSpec{8}, popt);
  const std::string key = worst.to_string();
  bool found = false;
  for (const auto& c : pruned.ranked) {
    if (c.dataflow.to_string() == key) found = true;
  }
  EXPECT_TRUE(found) << "seeded candidate " << key << " was culled";
}

TEST(SearchTest, OptimizerMatchesOrBeatsTableVConfigs) {
  // The future-work pitch of Section VI: a search over the taxonomy should
  // never lose to the nine hand-picked configurations.
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  const GnnWorkload w = toy_workload();
  SearchOptions opt;
  opt.max_candidates = 800;
  const auto best = search_mappings(omega, w, LayerSpec{8}, opt).best();
  for (const auto& p : table5_patterns()) {
    const auto r = omega.run_pattern(w, LayerSpec{8}, p);
    EXPECT_LE(best.cycles, r.cycles) << "search lost to " << p.name;
  }
}

}  // namespace
}  // namespace omega
