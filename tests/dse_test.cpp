// Mapping-search tests: tiling enumeration, objective ranking, Pareto
// structure, and the optimizer's value over the hand-picked Table V configs.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "dse/search.hpp"
#include "graph/generators.hpp"

namespace omega {
namespace {

GnnWorkload toy_workload() {
  Rng rng(42);
  GnnWorkload w;
  w.name = "dse-toy";
  w.adjacency = erdos_renyi(80, 400, rng).with_self_loops().gcn_normalized();
  w.in_features = 24;
  return w;
}

TEST(TileTriplesTest, RespectsBudgetAndCaps) {
  const auto triples = enumerate_tile_triples(64, 16, 4, 64, 0.5);
  ASSERT_FALSE(triples.empty());
  for (const auto& [a, b, c] : triples) {
    EXPECT_LE(a * b * c, 64u);
    EXPECT_GE(a * b * c, 32u);
    EXPECT_LE(a, 16u);
    EXPECT_LE(b, 4u);
    // Powers of two only.
    EXPECT_EQ(a & (a - 1), 0u);
  }
}

TEST(TileTriplesTest, SmallCapsStillYieldSaturatedPoints) {
  // Caps so small the budget cannot be filled: the saturated corner must
  // still be emitted (utilization floor is waived when nothing can grow).
  const auto triples = enumerate_tile_triples(512, 2, 2, 2, 0.9);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0][0] * triples[0][1] * triples[0][2], 8u);
}

TEST(SearchTest, FindsCandidatesAndRanksByObjective) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  SearchOptions opt;
  opt.max_candidates = 400;
  opt.top_k = 8;
  const SearchResult r =
      search_mappings(omega, toy_workload(), LayerSpec{8}, opt);
  ASSERT_FALSE(r.ranked.empty());
  EXPECT_GT(r.generated, 0u);
  EXPECT_LE(r.ranked.size(), 8u);
  for (std::size_t i = 1; i < r.ranked.size(); ++i) {
    EXPECT_LE(r.ranked[i - 1].score, r.ranked[i].score);
  }
  EXPECT_EQ(r.best().score, static_cast<double>(r.best().cycles));
}

TEST(SearchTest, ParetoFrontierIsMonotone) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  SearchOptions opt;
  opt.max_candidates = 300;
  const SearchResult r =
      search_mappings(omega, toy_workload(), LayerSpec{8}, opt);
  ASSERT_GE(r.pareto.size(), 1u);
  for (std::size_t i = 1; i < r.pareto.size(); ++i) {
    EXPECT_GE(r.pareto[i].cycles, r.pareto[i - 1].cycles);
    EXPECT_LT(r.pareto[i].on_chip_pj, r.pareto[i - 1].on_chip_pj);
  }
}

TEST(SearchTest, EnergyObjectiveChangesWinner) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  SearchOptions runtime_opt;
  runtime_opt.max_candidates = 300;
  SearchOptions energy_opt = runtime_opt;
  energy_opt.objective = Objective::kEnergy;
  const auto by_runtime =
      search_mappings(omega, toy_workload(), LayerSpec{8}, runtime_opt);
  const auto by_energy =
      search_mappings(omega, toy_workload(), LayerSpec{8}, energy_opt);
  EXPECT_LE(by_energy.best().on_chip_pj, by_runtime.best().on_chip_pj);
}

TEST(SearchTest, StrategyFiltersApply) {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  SearchOptions opt;
  opt.include_seq = false;
  opt.include_sp_generic = false;
  opt.include_sp_optimized = true;
  opt.include_pp = false;
  opt.max_candidates = 100;
  const auto r = search_mappings(omega, toy_workload(), LayerSpec{8}, opt);
  for (const auto& c : r.ranked) {
    EXPECT_EQ(c.dataflow.inter, InterPhase::kSPOptimized);
  }
}

TEST(SearchTest, OptimizerMatchesOrBeatsTableVConfigs) {
  // The future-work pitch of Section VI: a search over the taxonomy should
  // never lose to the nine hand-picked configurations.
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  const GnnWorkload w = toy_workload();
  SearchOptions opt;
  opt.max_candidates = 800;
  const auto best = search_mappings(omega, w, LayerSpec{8}, opt).best();
  for (const auto& p : table5_patterns()) {
    const auto r = omega.run_pattern(w, LayerSpec{8}, p);
    EXPECT_LE(best.cycles, r.cycles) << "search lost to " << p.name;
  }
}

}  // namespace
}  // namespace omega
