// GNN layer/model tests: normalization semantics, reference inference, and
// cost-model integration across layers.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "gnn/inference.hpp"
#include "graph/generators.hpp"
#include "graph/spmm.hpp"
#include "tensor/gemm.hpp"

namespace omega {
namespace {

TEST(GnnLayersTest, ModelSpecsAndLayerWidths) {
  const GnnModelSpec m = gcn_two_layer(128, 16, 7);
  EXPECT_EQ(m.num_layers(), 2u);
  const auto l0 = m.layer_spec(0);
  EXPECT_EQ(l0.in_features, 128u);
  EXPECT_EQ(l0.out_features, 16u);
  EXPECT_TRUE(l0.relu);
  const auto l1 = m.layer_spec(1);
  EXPECT_EQ(l1.out_features, 7u);
  EXPECT_FALSE(l1.relu);
  EXPECT_THROW(m.layer_spec(2), Error);
}

TEST(GnnLayersTest, PhaseOrderRules) {
  GnnLayerSpec gcn;
  gcn.model = GnnModel::kGCN;
  EXPECT_TRUE(gcn.allows_phase_order(PhaseOrder::kAC));
  EXPECT_TRUE(gcn.allows_phase_order(PhaseOrder::kCA));
  GnnLayerSpec sage;
  sage.model = GnnModel::kGraphSAGE;
  EXPECT_TRUE(sage.allows_phase_order(PhaseOrder::kAC));
  EXPECT_FALSE(sage.allows_phase_order(PhaseOrder::kCA));
}

TEST(GnnLayersTest, NormalizationPerModel) {
  const CSRGraph raw = cycle_graph(5);
  const CSRGraph gcn = normalize_adjacency(raw, GnnModel::kGCN);
  EXPECT_TRUE(gcn.has_values());
  EXPECT_EQ(gcn.num_edges(), raw.num_edges() + 5);  // self loops
  const CSRGraph sage = normalize_adjacency(raw, GnnModel::kGraphSAGE);
  ASSERT_TRUE(sage.has_values());
  const auto vals = sage.edge_values(0);
  double sum = 0;
  for (const float v : vals) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  const CSRGraph gin = normalize_adjacency(raw, GnnModel::kGIN);
  EXPECT_FALSE(gin.has_values());  // plain sum aggregation
}

TEST(GnnLayersTest, ReluClampsNegatives) {
  MatrixF m(1, 3);
  m(0, 0) = -1.0f;
  m(0, 1) = 0.0f;
  m(0, 2) = 2.0f;
  relu_inplace(m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 2), 2.0f);
}

TEST(GnnInferenceTest, FunctionalMatchesReferenceTwoLayers) {
  Rng rng(606);
  const CSRGraph adj =
      normalize_adjacency(erdos_renyi(22, 90, rng), GnnModel::kGCN);
  MatrixF x(22, 12);
  x.fill_uniform(rng);
  std::vector<MatrixF> weights;
  weights.emplace_back(12, 8);
  weights.emplace_back(8, 3);
  weights[0].fill_uniform(rng);
  weights[1].fill_uniform(rng);
  const GnnModelSpec spec = gcn_two_layer(12, 8, 3);
  const MatrixF ref = reference_inference(adj, x, weights, spec);

  auto df = DataflowDescriptor::parse("Seq_AC(VsFsNt, VsGsFt)");
  df.agg.tiles = {.v = 4, .n = 1, .f = 4, .g = 1};
  df.cmb.tiles = {.v = 4, .n = 1, .f = 1, .g = 4};
  const MatrixF got = functional_inference(adj, x, weights, spec, df);
  EXPECT_TRUE(approx_equal(got, ref, 1e-3, 1e-3));
}

TEST(GnnInferenceTest, RunModelAggregatesLayers) {
  Rng rng(707);
  GnnWorkload w;
  w.name = "toy";
  w.adjacency =
      normalize_adjacency(erdos_renyi(64, 256, rng), GnnModel::kGCN);
  w.in_features = 32;
  AcceleratorConfig hw;
  hw.num_pes = 64;
  const Omega omega(hw);
  const GnnModelSpec spec = gcn_two_layer(32, 16, 4);
  const ModelRunResult r =
      run_model(omega, w, spec, pattern_by_name("SP2"));
  ASSERT_EQ(r.layers.size(), 2u);
  EXPECT_EQ(r.total_cycles, r.layers[0].cycles + r.layers[1].cycles);
  EXPECT_GT(r.total_macs, 0u);
  // Layer 0 moves F=32 -> 16, layer 1 16 -> 4: layer 0 dominates.
  EXPECT_GT(r.layers[0].cycles, r.layers[1].cycles);
}

TEST(GnnInferenceTest, RejectsMismatchedWidths) {
  Rng rng(808);
  GnnWorkload w;
  w.adjacency = normalize_adjacency(erdos_renyi(16, 60, rng), GnnModel::kGCN);
  w.in_features = 10;  // model expects 32
  const Omega omega(AcceleratorConfig{.num_pes = 64});
  EXPECT_THROW(
      run_model(omega, w, gcn_two_layer(32, 16, 4), pattern_by_name("SP2")),
      Error);
}

}  // namespace
}  // namespace omega
