// omega_lint rule-engine tests over the committed fixtures in
// tests/lint_fixtures/. Each rule gets one positive case (detected at the
// expected file:line) and one suppressed case; baseline tests cover the
// add/remove (stale) workflow and the --json schema is validated with the
// project JSON parser.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"
#include "util/json.hpp"

namespace {

using omega::JsonValue;
using omega::lint::BaselineResult;
using omega::lint::Finding;
using omega::lint::Linter;
using omega::lint::LintOptions;
using omega::lint::LintReport;

std::string fixture(const std::string& name) {
  const std::string path = std::string(OMEGA_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs one fixture under the given virtual path (the path decides rule
/// scoping, so raw-arith fixtures mount under src/engine/ and so on).
LintReport run_one(const std::string& virtual_path, const std::string& name,
                   LintOptions options = {}) {
  Linter linter(std::move(options));
  linter.add_file(virtual_path, fixture(name));
  return linter.run();
}

std::vector<std::size_t> lines_of(const LintReport& report,
                                  const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const Finding& f : report.findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

TEST(LintRawArith, PositiveSuppressedAndLineNumbers) {
  const LintReport r = run_one("src/engine/raw_arith.cpp", "raw_arith.cpp");
  EXPECT_EQ(lines_of(r, "raw-arith"), (std::vector<std::size_t>{6, 9}));
  EXPECT_EQ(r.suppressed, 1u);
  for (const Finding& f : r.findings) {
    EXPECT_EQ(f.file, "src/engine/raw_arith.cpp");
    EXPECT_FALSE(f.hint.empty());
    EXPECT_FALSE(f.snippet.empty());
  }
}

TEST(LintRawArith, OutOfScopeDirectoryIsClean) {
  // Same content outside src/engine|omega|dse: the rule does not apply.
  const LintReport r = run_one("src/graph/raw_arith.cpp", "raw_arith.cpp");
  EXPECT_TRUE(lines_of(r, "raw-arith").empty());
}

TEST(LintUnorderedIter, PositiveSuppressedAndOrderedSink) {
  const LintReport r =
      run_one("src/service/unordered_iter.cpp", "unordered_iter.cpp");
  // Line 10 flagged; line 14 suppressed; line 18 passes via ordered sink.
  EXPECT_EQ(lines_of(r, "unordered-iter"), (std::vector<std::size_t>{10}));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintWallClock, PositiveAndSuppressed) {
  const LintReport r = run_one("src/gnn/wall_clock.cpp", "wall_clock.cpp");
  EXPECT_EQ(lines_of(r, "wall-clock"), (std::vector<std::size_t>{6}));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintWallClock, ObservabilityLayerIsAllowlisted) {
  const LintReport r = run_one("src/obs/wall_clock.cpp", "wall_clock.cpp");
  EXPECT_TRUE(lines_of(r, "wall-clock").empty());
}

TEST(LintFloatEq, PositiveSuppressedTieAndNullptr) {
  const LintReport r = run_one("src/omega/float_eq.cpp", "float_eq.cpp");
  // Line 7 flagged; line 12 suppressed; the symmetric same-field tie at 16
  // and the pointer compare at 20 both pass.
  EXPECT_EQ(lines_of(r, "float-eq"), (std::vector<std::size_t>{7}));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintFloatAccum, PositiveAndSuppressed) {
  const LintReport r = run_one("src/dse/float_accum.cpp", "float_accum.cpp");
  EXPECT_EQ(lines_of(r, "float-accum"), (std::vector<std::size_t>{5}));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintUncaughtEscape, PositiveSuppressedAndCatchAll) {
  const LintReport r =
      run_one("src/service/uncaught_escape.cpp", "uncaught_escape.cpp");
  EXPECT_EQ(lines_of(r, "uncaught-escape"), (std::vector<std::size_t>{7}));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintPragmaOnce, MissingSuppressedAndPresent) {
  EXPECT_EQ(lines_of(run_one("src/arch/pragma_missing.hpp",
                             "pragma_missing.hpp"),
                     "pragma-once"),
            (std::vector<std::size_t>{1}));
  const LintReport suppressed =
      run_one("src/arch/pragma_suppressed.hpp", "pragma_suppressed.hpp");
  EXPECT_TRUE(suppressed.findings.empty());
  EXPECT_EQ(suppressed.suppressed, 1u);
  EXPECT_TRUE(
      run_one("src/arch/pragma_ok.hpp", "pragma_ok.hpp").findings.empty());
}

TEST(LintBadSuppression, UnknownRuleAndMissingReason) {
  const LintReport r =
      run_one("src/util/bad_suppression.cpp", "bad_suppression.cpp");
  EXPECT_EQ(lines_of(r, "bad-suppression"), (std::vector<std::size_t>{2, 4}));
}

TEST(LintOptionsTest, PathAllowlistDropsFindings) {
  LintOptions options;
  options.allow.emplace_back("raw-arith", "src/engine/");
  const LintReport r =
      run_one("src/engine/raw_arith.cpp", "raw_arith.cpp", options);
  EXPECT_TRUE(r.findings.empty());
  // The allowlist is applied before inline suppressions, so the suppressed
  // site counts as allowlisted too.
  EXPECT_EQ(r.allowlisted, 3u);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(LintBaseline, AddThenRemoveReportsStale) {
  // "Add": baseline today's findings -> report comes back clean.
  LintReport dirty = run_one("src/engine/raw_arith.cpp", "raw_arith.cpp");
  ASSERT_EQ(dirty.findings.size(), 2u);
  const std::string doc = omega::lint::baseline_json(dirty.findings);
  const std::vector<omega::lint::BaselineEntry> entries =
      omega::lint::parse_baseline(doc);
  ASSERT_EQ(entries.size(), 2u);
  const BaselineResult applied = omega::lint::apply_baseline(dirty, entries);
  EXPECT_TRUE(dirty.findings.empty());
  EXPECT_EQ(applied.baselined, 2u);
  EXPECT_TRUE(applied.stale.empty());

  // "Remove": the violations get fixed -> every entry is stale (and a clean
  // tree plus stale entries still means zero findings, so exit stays 0).
  Linter clean_linter;
  clean_linter.add_file("src/engine/raw_arith.cpp",
                        "#include <cstdint>\nint fixture_clean = 0;\n");
  LintReport clean = clean_linter.run();
  const BaselineResult stale = omega::lint::apply_baseline(clean, entries);
  EXPECT_TRUE(clean.findings.empty());
  EXPECT_EQ(stale.baselined, 0u);
  EXPECT_EQ(stale.stale.size(), 2u);
}

TEST(LintBaseline, MultisetMatchingAbsorbsAtMostN) {
  // One baseline entry absorbs one of the two identical-snippet findings
  // only if the snippets match; distinct snippets match one-for-one.
  LintReport dirty = run_one("src/engine/raw_arith.cpp", "raw_arith.cpp");
  ASSERT_EQ(dirty.findings.size(), 2u);
  const std::vector<omega::lint::BaselineEntry> one = {
      {dirty.findings[0].file, dirty.findings[0].rule,
       dirty.findings[0].snippet}};
  const BaselineResult applied = omega::lint::apply_baseline(dirty, one);
  EXPECT_EQ(applied.baselined, 1u);
  EXPECT_EQ(dirty.findings.size(), 1u);
  EXPECT_TRUE(applied.stale.empty());
}

TEST(LintJson, ReportSchemaParsesAndCounts) {
  LintReport r = run_one("src/engine/raw_arith.cpp", "raw_arith.cpp");
  const BaselineResult no_baseline;
  const JsonValue doc =
      JsonValue::parse(omega::lint::report_json(r, no_baseline));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("version")->as_u64(), 1u);
  const JsonValue* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is_array());
  ASSERT_EQ(findings->items().size(), 2u);
  for (const JsonValue& f : findings->items()) {
    EXPECT_TRUE(f.find("file")->is_string());
    EXPECT_TRUE(f.find("line")->is_number());
    EXPECT_TRUE(f.find("rule")->is_string());
    EXPECT_TRUE(f.find("message")->is_string());
    EXPECT_TRUE(f.find("hint")->is_string());
    EXPECT_TRUE(f.find("snippet")->is_string());
  }
  const JsonValue* counts = doc.find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->find("files")->as_u64(), 1u);
  EXPECT_EQ(counts->find("findings")->as_u64(), 2u);
  EXPECT_EQ(counts->find("suppressed")->as_u64(), 1u);
  const JsonValue* stale = doc.find("stale_baseline");
  ASSERT_NE(stale, nullptr);
  EXPECT_TRUE(stale->is_array());
}

TEST(LintRules, CatalogIsStable) {
  EXPECT_TRUE(omega::lint::is_known_rule("raw-arith"));
  EXPECT_TRUE(omega::lint::is_known_rule("all"));
  EXPECT_FALSE(omega::lint::is_known_rule("no-such-rule"));
  EXPECT_EQ(omega::lint::rules().size(), 8u);
}

}  // namespace
