// Cross-layer composition: the pipeline-recurrence overflow regressions,
// the 128-bit bandwidth-scaling regression, the chunk-grid re-tiling rule,
// and the ModelComposer's boundary gates (residency, PE disjointness,
// strategy eligibility) on hand-built and engine-produced layer results.
#include <gtest/gtest.h>

#include <limits>

#include "gnn/inference.hpp"
#include "graph/generators.hpp"
#include "omega/compose.hpp"
#include "util/error.hpp"

namespace omega {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

// ---- Overflow regressions ---------------------------------------------------

TEST(ComposeOverflowTest, ParallelPipelineSaturatesInsteadOfWrapping) {
  // Regression: `start + consumer_chunk_cycles[i]` wrapped u64, reporting a
  // near-zero makespan for near-UINT64_MAX chunk cycles. The recurrence now
  // saturates, so the ordering "pipelined >= any single chunk" survives.
  const std::vector<std::uint64_t> producer{kMax - 10, kMax - 5};
  const std::vector<std::uint64_t> consumer{100, 100};
  EXPECT_EQ(compose_parallel_pipeline(producer, consumer), kMax);

  // Single-chunk variant right at the edge: no saturation needed.
  EXPECT_EQ(compose_parallel_pipeline({kMax - 10}, {10}), kMax);
  // And one past the edge saturates.
  EXPECT_EQ(compose_parallel_pipeline({kMax - 10}, {11}), kMax);

  // The consumer-side accumulation alone can also wrap.
  const std::vector<std::uint64_t> zero_producer{0, 0, 0};
  const std::vector<std::uint64_t> huge_consumer{kMax / 2, kMax / 2, kMax / 2};
  EXPECT_EQ(compose_parallel_pipeline(zero_producer, huge_consumer), kMax);
}

TEST(ComposeOverflowTest, TimelineMatchesScalarRecurrence) {
  const std::vector<std::uint64_t> producer{5, 12, 30, 31};
  const std::vector<std::uint64_t> consumer{4, 4, 4, 4};
  const std::vector<std::uint64_t> done =
      compose_parallel_pipeline_timeline(producer, consumer);
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], 9u);   // max(5,0)+4
  EXPECT_EQ(done[1], 16u);  // max(12,9)+4
  EXPECT_EQ(done[2], 34u);  // max(30,16)+4
  EXPECT_EQ(done[3], 38u);  // max(31,34)+4
  EXPECT_EQ(done.back(), compose_parallel_pipeline(producer, consumer));
}

TEST(ComposeOverflowTest, ScaledBandwidthComputesIn128Bit) {
  // Regression: `bw * part` wrapped std::size_t before the divide for large
  // configured bandwidths, handing a PP phase a garbage share.
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_EQ(scaled_bandwidth(huge, 256, 512), huge / 2);
  EXPECT_EQ(scaled_bandwidth(huge, 512, 512), huge);
  // Floor at 1 element/cycle survives.
  EXPECT_EQ(scaled_bandwidth(1, 1, 512), 1u);
  // kUnbounded passes through untouched.
  EXPECT_EQ(scaled_bandwidth(AcceleratorConfig::kUnbounded, 1, 512),
            AcceleratorConfig::kUnbounded);
}

// ---- Re-tiling --------------------------------------------------------------

TEST(RetileTest, MapsDependencyRowsThroughMismatchedGrids) {
  // Producer: 6 rows in blocks of 2 -> 3 blocks, completing at 10/50/20
  // (out of order: a column-major producer can finish a later row block
  // first). The prefix max makes the ready function monotone.
  const std::vector<std::uint64_t> blocks{10, 50, 20};
  const std::vector<std::size_t> deps{0, 1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> ready =
      retile_row_completion(blocks, 6, 2, deps);
  const std::vector<std::uint64_t> want{10, 10, 50, 50, 50, 50};
  EXPECT_EQ(ready, want);
}

TEST(RetileTest, ClampsOutOfRangeRowsAndDegenerateBlocks) {
  const std::vector<std::uint64_t> blocks{7, 9};
  // Dep row far past the grid clamps to the last block.
  EXPECT_EQ(retile_row_completion(blocks, 4, 2, {99}),
            (std::vector<std::uint64_t>{9}));
  // row_block == 0 means a single all-covering block.
  EXPECT_EQ(retile_row_completion({42}, 4, 0, {0, 3}),
            (std::vector<std::uint64_t>{42, 42}));
  // Coarse producer grid onto a fine consumer: every dep in block 0.
  EXPECT_EQ(retile_row_completion({17}, 8, 8, {0, 2, 7}),
            (std::vector<std::uint64_t>{17, 17, 17}));
}

// ---- ModelComposer on hand-built layers -------------------------------------

/// A synthetic PP layer over `rows` rows with `blocks` row blocks (single
/// column block): the first phase finishes block i at (i+1)*phase_step, the
/// second phase takes phase_step per block.
RunResult synthetic_pp_layer(std::size_t rows, std::size_t blocks,
                             std::uint64_t phase_step, std::size_t in_f,
                             std::size_t out_f) {
  RunResult r;
  r.dataflow = DataflowDescriptor::parse("PP_AC(VtFsNt, VsGsFt)");
  r.num_rows = rows;
  r.in_features = in_f;
  r.out_features = out_f;
  r.pes_agg = 16;
  r.pes_cmb = 16;
  r.pipeline_chunks = blocks;
  r.intermediate_buffer_elements = 8;
  r.chunk_grid.rows = rows;
  r.chunk_grid.cols = in_f;
  r.chunk_grid.row_block = (rows + blocks - 1) / blocks;
  r.chunk_grid.col_block = in_f;  // one column block
  for (std::size_t i = 0; i < blocks; ++i) {
    r.agg.chunk_cycles.push_back(phase_step);
    r.agg.chunk_completion.push_back((i + 1) * phase_step);
    r.cmb.chunk_cycles.push_back(phase_step);
    r.cmb.chunk_completion.push_back((i + 1) * phase_step);
  }
  r.agg.cycles = blocks * phase_step;
  r.cmb.cycles = blocks * phase_step;
  r.cycles = compose_parallel_pipeline(r.agg.chunk_completion,
                                       r.cmb.chunk_cycles);
  return r;
}

AcceleratorConfig synthetic_hw() {
  AcceleratorConfig hw;
  hw.num_pes = 64;
  return hw;
}

TEST(ModelComposerTest, BandedGraphOverlapsAndBeatsSequentialStrictly) {
  // Path graph: row block r depends on rows <= 2r+2, which the producer
  // finishes long before its own tail — the consumer slides under it.
  const CSRGraph g = path_graph(8).with_self_loops();
  const ModelComposer composer(synthetic_hw(), g);
  const std::vector<RunResult> layers{
      synthetic_pp_layer(8, 4, 10, 32, 16),
      synthetic_pp_layer(8, 4, 10, 16, 8),
  };
  const ModelComposition seq =
      composer.compose(layers, ModelCompose::kSequential);
  EXPECT_EQ(seq.cycles, seq.sequential_cycles);
  EXPECT_EQ(seq.cycles, layers[0].cycles + layers[1].cycles);
  EXPECT_EQ(seq.overlapped_boundaries, 0u);

  const ModelComposition pipe =
      composer.compose(layers, ModelCompose::kPipelined);
  EXPECT_EQ(pipe.sequential_cycles, seq.sequential_cycles);
  EXPECT_LT(pipe.cycles, pipe.sequential_cycles);  // strict overlap win
  EXPECT_EQ(pipe.overlapped_boundaries, 1u);
  ASSERT_EQ(pipe.boundaries.size(), 1u);
  EXPECT_TRUE(pipe.boundaries[0].overlapped);
  EXPECT_TRUE(pipe.boundaries[0].resident);
  EXPECT_EQ(pipe.boundaries[0].saved_cycles,
            pipe.sequential_cycles - pipe.cycles);
  // The consumer still cannot start before the producer's first phase has
  // released the array partition.
  EXPECT_GE(pipe.layer_start[1], layers[0].agg.cycles);
  // Exact timeline: layer 1's chunk i begins at 10*i and needs producer
  // rows <= 2i+2, i.e. producer block i+1, ready at done[i+1] = 20+10*(i+1).
  // The binding chunk forces a shift of 40 -> 10 cycles of overlap.
  EXPECT_EQ(pipe.layer_start[1], 40u);
  EXPECT_EQ(pipe.cycles, 40u + layers[1].cycles);
}

TEST(ModelComposerTest, MismatchedChunkGridsRetile) {
  // Producer carves 8 rows into 4 blocks; consumer uses 2 coarser blocks
  // (a different c_f choice). The boundary still overlaps: consumer block 0
  // needs producer rows <= 4 (block 2 of 4), not the whole output.
  const CSRGraph g = path_graph(8).with_self_loops();
  const ModelComposer composer(synthetic_hw(), g);
  const std::vector<RunResult> layers{
      synthetic_pp_layer(8, 4, 10, 32, 16),
      synthetic_pp_layer(8, 2, 20, 16, 8),
  };
  const ModelComposition pipe =
      composer.compose(layers, ModelCompose::kPipelined);
  EXPECT_LT(pipe.cycles, pipe.sequential_cycles);
  EXPECT_EQ(pipe.overlapped_boundaries, 1u);
}

TEST(ModelComposerTest, SequentialStrategiesDoNotOverlap) {
  const CSRGraph g = path_graph(8).with_self_loops();
  const ModelComposer composer(synthetic_hw(), g);
  std::vector<RunResult> layers{
      synthetic_pp_layer(8, 4, 10, 32, 16),
      synthetic_pp_layer(8, 4, 10, 16, 8),
  };
  layers[0].dataflow = DataflowDescriptor::parse("Seq_AC(VtNtFt, VtFtGt)");
  const ModelComposition pipe =
      composer.compose(layers, ModelCompose::kPipelined);
  EXPECT_EQ(pipe.cycles, pipe.sequential_cycles);
  EXPECT_EQ(pipe.overlapped_boundaries, 0u);
  EXPECT_FALSE(pipe.boundaries[0].reason.empty());
}

TEST(ModelComposerTest, ResidencyGateFallsBackToSequential) {
  // Same layers, but a global buffer too small to hold the inter-layer
  // intermediate alongside both partitions: the boundary must serialize.
  AcceleratorConfig hw = synthetic_hw();
  hw.gb_bytes = 16;  // 8 rows x 16 features x 4 B never fits
  const CSRGraph g = path_graph(8).with_self_loops();
  const ModelComposer composer(hw, g);
  const std::vector<RunResult> layers{
      synthetic_pp_layer(8, 4, 10, 32, 16),
      synthetic_pp_layer(8, 4, 10, 16, 8),
  };
  const ModelComposition pipe =
      composer.compose(layers, ModelCompose::kPipelined);
  EXPECT_EQ(pipe.cycles, pipe.sequential_cycles);
  EXPECT_EQ(pipe.overlapped_boundaries, 0u);
  EXPECT_FALSE(pipe.boundaries[0].resident);
}

TEST(ModelComposerTest, PeDisjointnessGateFallsBackToSequential) {
  AcceleratorConfig hw = synthetic_hw();
  const CSRGraph g = path_graph(8).with_self_loops();
  const ModelComposer composer(hw, g);
  std::vector<RunResult> layers{
      synthetic_pp_layer(8, 4, 10, 32, 16),
      synthetic_pp_layer(8, 4, 10, 16, 8),
  };
  layers[0].pes_cmb = 60;  // draining phase hogs the array
  layers[1].pes_agg = 60;
  const ModelComposition pipe =
      composer.compose(layers, ModelCompose::kPipelined);
  EXPECT_EQ(pipe.cycles, pipe.sequential_cycles);
  EXPECT_EQ(pipe.overlapped_boundaries, 0u);
}

TEST(ModelComposerTest, ChainedBoundariesKeepAtMostTwoLayersInFlight) {
  // Three PP layers where the middle one is tiny: without the
  // finish[l-2] start constraint, layer 2's first phase could run while
  // layer 0 was still draining — a phase pair no pairwise PE gate ever
  // checked. At most two layers may be in flight at any cycle.
  const CSRGraph g = path_graph(8).with_self_loops();
  const ModelComposer composer(synthetic_hw(), g);
  const std::vector<RunResult> layers{
      synthetic_pp_layer(8, 4, 10, 32, 16),
      synthetic_pp_layer(8, 4, 1, 16, 16),  // short middle layer
      synthetic_pp_layer(8, 4, 10, 16, 8),
  };
  const ModelComposition pipe =
      composer.compose(layers, ModelCompose::kPipelined);
  ASSERT_EQ(pipe.layer_start.size(), 3u);
  EXPECT_GE(pipe.layer_start[2], pipe.layer_finish[0]);
  EXPECT_LE(pipe.cycles, pipe.sequential_cycles);
}

TEST(ModelComposerTest, HubGraphDependenciesBlockOverlap) {
  // A star graph's first vertex neighbors the last: every consumer chunk
  // depends on the producer's final rows, so chunk overlap cannot open a
  // window larger than the dependency slack (typically none).
  const CSRGraph g = star_graph(7).with_self_loops();
  const ModelComposer composer(synthetic_hw(), g);
  const std::vector<RunResult> layers{
      synthetic_pp_layer(8, 4, 10, 32, 16),
      synthetic_pp_layer(8, 4, 10, 16, 8),
  };
  const ModelComposition pipe =
      composer.compose(layers, ModelCompose::kPipelined);
  // dep_prefix saturates at V-1 for every row: no chunk can start before
  // the whole producer output is done.
  EXPECT_EQ(pipe.cycles, pipe.sequential_cycles);
  EXPECT_EQ(pipe.overlapped_boundaries, 0u);
}

TEST(ModelComposerTest, SaturatesOnAdversarialCycleCounts) {
  const CSRGraph g = path_graph(8).with_self_loops();
  const ModelComposer composer(synthetic_hw(), g);
  std::vector<RunResult> layers{
      synthetic_pp_layer(8, 4, 10, 32, 16),
      synthetic_pp_layer(8, 4, 10, 16, 8),
  };
  layers[0].cycles = kMax - 5;
  layers[1].cycles = kMax - 5;
  const ModelComposition seq =
      composer.compose(layers, ModelCompose::kSequential);
  EXPECT_EQ(seq.sequential_cycles, kMax);
  EXPECT_EQ(seq.cycles, kMax);
  const ModelComposition pipe =
      composer.compose(layers, ModelCompose::kPipelined);
  EXPECT_LE(pipe.cycles, pipe.sequential_cycles);
}

// ---- run_model end-to-end ---------------------------------------------------

GnnWorkload banded_workload(std::size_t v, std::size_t f) {
  GnnWorkload w;
  w.name = "band";
  w.adjacency = path_graph(v).with_self_loops().gcn_normalized();
  w.in_features = f;
  return w;
}

TEST(RunModelComposeTest, PipelinedPatternOverlapsOnBandedGraph) {
  const GnnWorkload w = banded_workload(2048, 64);
  GnnModelSpec spec;
  spec.feature_widths = {64, 32, 16};
  const Omega omega((AcceleratorConfig()));
  const DataflowPattern& pp3 = pattern_by_name("PP3");
  const ModelRunResult seq =
      run_model(omega, w, spec, pp3, ModelCompose::kSequential);
  const ModelRunResult pipe =
      run_model(omega, w, spec, pp3, ModelCompose::kPipelined);

  // The composition mode must not perturb the per-layer cost model.
  ASSERT_EQ(seq.layers.size(), pipe.layers.size());
  for (std::size_t l = 0; l < seq.layers.size(); ++l) {
    EXPECT_EQ(seq.layers[l].cycles, pipe.layers[l].cycles);
    EXPECT_EQ(seq.layers[l].agg.cycles, pipe.layers[l].agg.cycles);
    EXPECT_EQ(seq.layers[l].cmb.cycles, pipe.layers[l].cmb.cycles);
    EXPECT_DOUBLE_EQ(seq.layers[l].energy.on_chip_pj(),
                     pipe.layers[l].energy.on_chip_pj());
  }
  EXPECT_EQ(seq.total_cycles, seq.sequential_cycles);
  EXPECT_EQ(pipe.sequential_cycles, seq.sequential_cycles);
  EXPECT_DOUBLE_EQ(pipe.total_on_chip_pj, seq.total_on_chip_pj);
  EXPECT_EQ(pipe.total_macs, seq.total_macs);
  // And on this banded graph the PP boundaries genuinely overlap.
  EXPECT_LT(pipe.total_cycles, pipe.sequential_cycles);
  EXPECT_GT(pipe.composition.overlapped_boundaries, 0u);
}

TEST(RunModelComposeTest, FunctionalOutputsIndependentOfComposeMode) {
  // Cross-layer composition is a cost-model concern: the functional path
  // computes identical outputs whichever mode costed the schedule.
  const GnnWorkload w = banded_workload(32, 8);
  const GnnModelSpec spec = gcn_two_layer(8, 6, 4);
  Rng rng(3);
  MatrixF x(32, 8);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      x(i, j) = static_cast<float>(rng.uniform() - 0.5);
    }
  }
  std::vector<MatrixF> weights;
  std::vector<std::size_t> dims{8, 6, 4};
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    MatrixF wl(dims[l], dims[l + 1]);
    for (std::size_t i = 0; i < wl.rows(); ++i) {
      for (std::size_t j = 0; j < wl.cols(); ++j) {
        wl(i, j) = static_cast<float>(rng.uniform() - 0.5);
      }
    }
    weights.push_back(std::move(wl));
  }
  const DataflowDescriptor df =
      DataflowDescriptor::parse("PP_AC(VtFsNt, VsGsFt)");
  const MatrixF a = functional_inference(w.adjacency, x, weights, spec, df);
  // Costing the model under either composition leaves the numerics alone.
  const Omega omega((AcceleratorConfig()));
  (void)run_model(omega, w, spec, pattern_by_name("PP1"),
                  ModelCompose::kSequential);
  const MatrixF b = functional_inference(w.adjacency, x, weights, spec, df);
  (void)run_model(omega, w, spec, pattern_by_name("PP1"),
                  ModelCompose::kPipelined);
  const MatrixF c = functional_inference(w.adjacency, x, weights, spec, df);
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j));
      EXPECT_EQ(a(i, j), c(i, j));
    }
  }
}

}  // namespace
}  // namespace omega
